"""Unit tests for the LSM baseline components."""

import pytest

from repro.baselines.io_service import DedicatedIoService
from repro.baselines.lsm.bloom import BloomFilter
from repro.baselines.lsm.memtable import MemTable
from repro.baselines.lsm.sstable import SSTable, decode_page, encode_page, plan_pages
from repro.baselines.lsm.store import LsmConfig, LsmStore
from repro.errors import StorageError
from repro.nvme.device import NvmeDevice, fast_test_profile
from repro.nvme.driver import NvmeDriver
from repro.sim.engine import Engine
from repro.simos.scheduler import OsProfile, SimOS


class TestBloom:
    def test_no_false_negatives(self):
        bloom = BloomFilter(100)
        keys = [k * 7 + 1 for k in range(100)]
        for key in keys:
            bloom.add(key)
        assert all(bloom.may_contain(k) for k in keys)

    def test_mostly_rejects_absent(self):
        bloom = BloomFilter(200)
        for key in range(200):
            bloom.add(key)
        false_positives = sum(
            1 for key in range(10_000, 12_000) if bloom.may_contain(key)
        )
        assert false_positives < 100  # ~1% expected at 10 bits/key


class TestMemTable:
    def test_put_get_delete(self):
        table = MemTable()
        table.put(5, b"five")
        assert table.get(5) == (True, b"five")
        table.delete(5)
        assert table.get(5) == (True, None)  # tombstone
        assert table.get(6) == (False, None)

    def test_sorted_items(self):
        table = MemTable()
        for key in (5, 1, 9, 3):
            table.put(key, b"x")
        assert [k for k, _v in table.sorted_items()] == [1, 3, 5, 9]

    def test_range_items(self):
        table = MemTable()
        for key in range(0, 100, 10):
            table.put(key, bytes([key]))
        assert [k for k, _v in table.range_items(25, 55)] == [30, 40, 50]

    def test_bytes_used_tracks_overwrites(self):
        table = MemTable()
        table.put(1, b"aaaa")
        used = table.bytes_used
        table.put(1, b"bb")
        assert table.bytes_used == used - 2


class TestSSTablePages:
    def test_page_roundtrip_with_tombstones(self):
        entries = [(1, b"value-a"), (2, None), (3, b"v")]
        image = encode_page(256, entries)
        assert len(image) == 256
        assert decode_page(image) == entries

    def test_plan_pages_splits_by_size(self):
        items = [(k, bytes(100)) for k in range(10)]
        pages = plan_pages(512, items)
        assert all(len(chunk) <= 4 for chunk in pages)
        assert sum(len(chunk) for chunk in pages) == 10

    def test_oversized_value_rejected(self):
        with pytest.raises(StorageError):
            plan_pages(128, [(1, bytes(200))])

    def test_table_plan_metadata(self):
        items = [(k * 10, bytes(8)) for k in range(100)]
        table, images = SSTable.plan(512, items)
        assert table.min_key == 0
        assert table.max_key == 990
        assert table.entry_count == 100
        assert len(images) == len(table.page_lbas)
        assert table.overlaps(500, 600)
        assert not table.overlaps(1_000, 2_000)

    def test_page_index_for(self):
        items = [(k, bytes(8)) for k in range(100)]
        table, _images = SSTable.plan(512, items)
        index = table.page_index_for(50)
        start, end = table.page_range_for(0, 99)
        assert index is not None
        assert start == 0
        assert end == len(table.page_lbas)
        assert table.page_index_for(5_000) is None

    def test_empty_table_rejected(self):
        with pytest.raises(StorageError):
            SSTable.plan(512, [])


def make_store(persistence="weak", memtable_entries=50):
    engine = Engine(seed=2)
    simos = SimOS(engine, OsProfile(cores=4))
    device = NvmeDevice(engine, fast_test_profile())
    driver = NvmeDriver(device)
    io_service = DedicatedIoService(driver)
    store = LsmStore(
        device,
        io_service,
        LsmConfig(memtable_entries=memtable_entries, wal_pages=1_024),
        persistence=persistence,
    )
    return engine, simos, io_service, store


def run_thread(engine, simos, body):
    holder = {}

    def wrapper():
        holder["result"] = yield from body
    thread = simos.spawn(wrapper())
    engine.run(until=lambda: thread.done)
    return holder.get("result")


class TestLsmStore:
    def test_put_get_through_flush(self):
        engine, simos, io_service, store = make_store(memtable_entries=20)
        tls = io_service.register_thread()

        def body():
            for key in range(100):
                yield from store._apply(tls, key, bytes([key % 256]) * 8)
            results = []
            for key in (0, 50, 99):
                value = yield from store.get(tls, key)
                results.append(value)
            return results

        results = run_thread(engine, simos, body())
        assert results == [bytes([0]) * 8, bytes([50]) * 8, bytes([99]) * 8]
        assert store.flushes >= 4

    def test_delete_masks_older_versions(self):
        engine, simos, io_service, store = make_store(memtable_entries=10)
        tls = io_service.register_thread()

        def body():
            for key in range(30):
                yield from store._apply(tls, key, bytes(8))
            yield from store._apply(tls, 7, None)  # tombstone after flushes
            return (yield from store.get(tls, 7))

        assert run_thread(engine, simos, body()) is None

    def test_range_merges_levels_and_memtable(self):
        engine, simos, io_service, store = make_store(memtable_entries=10)
        tls = io_service.register_thread()

        def body():
            for key in range(0, 50, 2):
                yield from store._apply(tls, key, b"old-" + bytes(4))
            yield from store._apply(tls, 4, b"new-" + bytes(4))
            return (yield from store.range(tls, 0, 10))

        results = dict(run_thread(engine, simos, body()))
        assert results[4] == b"new-" + bytes(4)
        assert sorted(results) == [0, 2, 4, 6, 8, 10]

    def test_bulk_load_readable(self):
        engine, simos, io_service, store = make_store()
        items = [(k * 3, bytes([k % 251]) * 8) for k in range(200)]
        store.bulk_load(items)
        tls = io_service.register_thread()

        def body():
            return (yield from store.get(tls, 300))

        assert run_thread(engine, simos, body()) == bytes([100 % 251]) * 8

    def test_bulk_load_unsorted_rejected(self):
        engine, simos, io_service, store = make_store()
        with pytest.raises(StorageError):
            store.bulk_load([(5, b"x"), (1, b"y")])

    def test_strong_persistence_flushes_wal_per_write(self):
        engine, simos, io_service, store = make_store(persistence="strong")
        tls = io_service.register_thread()

        def body():
            for key in range(5):
                yield from store._apply(tls, key, bytes(8))

        run_thread(engine, simos, body())
        assert store.wal.pending_records() == 0

    def test_weak_persistence_defers_wal(self):
        engine, simos, io_service, store = make_store(persistence="weak")
        tls = io_service.register_thread()

        def body():
            yield from store._apply(tls, 1, bytes(8))

        run_thread(engine, simos, body())
        assert store.wal.pending_records() == 1

        def sync_body():
            return (yield from store.sync(tls))

        run_thread(engine, simos, sync_body())
        assert store.wal.pending_records() == 0

    def test_compaction_reclaims_level0(self):
        engine, simos, io_service, store = make_store(memtable_entries=10)
        tls = io_service.register_thread()

        def body():
            for key in range(300):
                yield from store._apply(tls, key % 40, key.to_bytes(8, "little"))

        run_thread(engine, simos, body())
        assert store.compactions >= 1
        assert len(store.levels[0]) <= store.config.level0_limit

        def verify():
            results = []
            for key in range(40):
                value = yield from store.get(tls, key)
                results.append(int.from_bytes(value, "little"))
            return results

        values = run_thread(engine, simos, verify())
        # newest version of each key survives compaction
        for key, value in enumerate(values):
            assert value % 40 == key
