"""Edge-case tests for the PA engine: open-loop idling, submission
backpressure, write serialization per LBA, sources and policies wired
through the full stack."""


from repro.buffer import ReadWriteBuffer
from repro.core.engine import PaTreeEngine
from repro.core.ops import insert_op, search_op, sync_op, update_op
from repro.core.source import ClosedLoopSource, OpenLoopSource
from repro.core.tree import PaTree
from repro.nvme.device import NvmeDevice, fast_test_profile, i3_nvme_profile
from repro.nvme.driver import NvmeDriver
from repro.sched.naive import NaiveScheduling
from repro.sched.probe_model import cached_probe_model
from repro.sched.workload_aware import WorkloadAwareScheduling
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.simos.scheduler import OsProfile, SimOS


def payload(key):
    return (key % 2**64).to_bytes(8, "little")


def build(seed=1, policy=None, preload=500, profile=None, **kwargs):
    engine = Engine(seed=seed)
    simos = SimOS(engine, OsProfile(cores=8))
    device = NvmeDevice(engine, profile or fast_test_profile())
    driver = NvmeDriver(device)
    tree = PaTree.create(device)
    if preload:
        tree.bulk_load([(k * 10, payload(k * 10)) for k in range(1, preload + 1)])
    pa = PaTreeEngine(
        simos,
        driver,
        tree,
        policy or NaiveScheduling(),
        source=ClosedLoopSource([], window=16),
        **kwargs,
    )
    return engine, pa


class TestOpenLoop:
    def test_open_loop_completes_all(self):
        engine, pa = build()
        rng = RngRegistry(9).stream("arrivals")
        ops = [search_op((k % 500 + 1) * 10) for k in range(200)]
        pa.source = OpenLoopSource(ops, rate_per_sec=100_000, rng=rng)
        pa.run_to_completion()
        assert pa.completed.value == 200
        assert all(op.result is not None for op in ops)

    def test_open_loop_with_yielding_policy(self):
        model = cached_probe_model(i3_nvme_profile())
        policy = WorkloadAwareScheduling(model)
        engine, pa = build(policy=policy, profile=i3_nvme_profile())
        rng = RngRegistry(9).stream("arrivals")
        ops = [search_op((k % 500 + 1) * 10) for k in range(100)]
        pa.source = OpenLoopSource(ops, rate_per_sec=5_000, rng=rng)
        pa.run_to_completion()
        assert pa.completed.value == 100
        # at 5K ops/s the worker slept most of the time
        busy_fraction = pa.simos.total_busy_ns() / engine.now
        assert busy_fraction < 0.7


class TestBackpressure:
    def test_giant_sync_does_not_overrun_ring(self):
        # dirty far more pages than the submission ring holds
        engine, pa = build(
            preload=120_000,
            buffer=ReadWriteBuffer(8_192),
            persistence="weak",
        )
        # stride past the leaf fan-out so every update dirties its own leaf
        ops = [update_op(k * 24 * 10, payload(k + 1)) for k in range(1, 5_001)]
        pa.source = ClosedLoopSource(ops, window=32)
        pa.run_to_completion()
        assert pa.buffer.dirty_count > 4_096  # more dirty than the SQ
        pa.source = ClosedLoopSource([sync_op()], window=1)
        pa._shutdown = False
        pa.run_to_completion()  # would raise QueueFullError without metering
        assert pa.buffer.dirty_count == 0
        pa.tree.validate()

    def test_same_page_writes_serialize_in_order(self):
        # repeated updates to one key: the page's final media content
        # must be the last write, regardless of device reordering
        engine, pa = build(preload=100)
        ops = [update_op(10, payload(version)) for version in range(1, 60)]
        pa.source = ClosedLoopSource(ops, window=16)
        pa.run_to_completion()
        assert dict(pa.tree.iterate_items_raw())[10] == payload(59)


class TestEngineMisc:
    def test_zero_operations_run(self):
        engine, pa = build()
        pa.source = ClosedLoopSource([], window=4)
        pa.run_to_completion()
        assert pa.completed.value == 0

    def test_duplicate_batches_accumulate_stats(self):
        engine, pa = build()
        for _ in range(3):
            pa.source = ClosedLoopSource([search_op(10)], window=1)
            pa._shutdown = False
            pa.run_to_completion()
        assert pa.completed.value == 3
        assert len(pa.latencies) == 3

    def test_insert_beyond_all_keys_appends(self):
        engine, pa = build(preload=100)
        ops = [insert_op(10_000 + k, payload(k)) for k in range(100)]
        pa.source = ClosedLoopSource(ops, window=8)
        pa.run_to_completion()
        keys = [k for k, _v in pa.tree.iterate_items_raw()]
        assert keys[-1] == 10_099
        pa.tree.validate()

    def test_engine_survives_mixed_hot_key_contention(self):
        # every op targets the same key: maximal latch contention
        engine, pa = build(preload=100)
        ops = []
        for version in range(80):
            ops.append(update_op(10, payload(version)))
            ops.append(search_op(10))
        pa.source = ClosedLoopSource(ops, window=32)
        pa.run_to_completion()
        assert pa.latch_wait_events.value > 0
        pa.tree.validate()

    def test_probe_deadline_bounds_detection(self):
        # single op on an otherwise idle engine: the workload-aware
        # gate must still detect the completion within the deadline
        model = cached_probe_model(i3_nvme_profile())
        policy = WorkloadAwareScheduling(model)
        engine, pa = build(policy=policy, profile=i3_nvme_profile())
        pa.source = ClosedLoopSource([search_op(10)], window=1)
        pa.run_to_completion()
        (length,) = [pa.latencies._samples[0]]
        # service ~85us + bounded detection delay (<= deadline + granule)
        assert length < 400_000
