"""Unit tests for scheduling: I/O history, probe model, ready queues,
probing policies."""

import pytest

from repro.core.ops import search_op, update_op
from repro.nvme.device import NvmeDevice, fast_test_profile, i3_nvme_profile
from repro.nvme.driver import NvmeDriver
from repro.sched.history import IoHistory
from repro.sched.naive import NaiveScheduling
from repro.sched.policies import AvgLatencyProbing, FixedRateProbing
from repro.sched.priority import FifoReadyQueue, PriorityReadyQueue
from repro.sched.probe_model import LinearProbeModel, train_probe_model
from repro.sim.clock import usec
from repro.sim.engine import Engine

import numpy as np


class TestIoHistory:
    def _history(self):
        engine = Engine(seed=1)
        device = NvmeDevice(engine, fast_test_profile())
        driver = NvmeDriver(device)
        qpair = driver.alloc_qpair()
        history = IoHistory(engine.clock, window_us=1000, slices=20)
        return engine, driver, qpair, history

    def test_outstanding_tracking(self):
        engine, driver, qpair, history = self._history()
        command = driver.read(qpair, 1)
        history.on_submit(command)
        assert history.outstanding_count == 1
        engine.run()
        driver.probe(qpair)
        history.on_complete(command)
        assert history.outstanding_count == 0
        assert history.detected_completions == 1

    def test_feature_vector_buckets_by_age(self):
        engine, driver, qpair, history = self._history()
        read = driver.read(qpair, 1)
        history.on_submit(read)
        write = driver.write(qpair, 2, bytes(512))
        history.on_submit(write)
        features = history.feature_vector()
        n = history.slices
        assert features[n] == 1.0  # read, slice 0
        assert features[0] == 1.0  # write, slice 0
        # project the same vector 120us into the future: both age
        future = history.feature_vector(engine.now + usec(120))
        assert future[n + 2] == 1.0
        assert future[2] == 1.0

    def test_old_commands_clamp_to_last_slice(self):
        engine, driver, qpair, history = self._history()
        command = driver.read(qpair, 1)
        history.on_submit(command)
        features = history.feature_vector(engine.now + usec(5_000))
        assert features[2 * history.slices - 1] == 1.0

    def test_avg_latency_window(self):
        engine, driver, qpair, history = self._history()
        commands = [driver.read(qpair, lba) for lba in range(1, 5)]
        for command in commands:
            history.on_submit(command)
        engine.run()
        driver.probe(qpair)
        for command in commands:
            history.on_complete(command)
        average = history.avg_completion_latency_ns()
        assert usec(5) < average < usec(60)


class TestProbeModel:
    def test_training_produces_sane_model(self):
        model = train_probe_model(
            5, i3_nvme_profile(), duration_us=150_000
        )
        # a device-latency-aged read should predict ~1 completion
        n = model.slices
        features = [0.0] * (2 * n)
        features[n + 2] = 4.0  # four reads aged ~100-150us
        w0, r0 = model.predict(features)
        assert r0 > 1.0
        assert abs(w0) < 1.0
        # an empty system predicts nothing
        assert model.predict([0.0] * (2 * n)) == (0.0, 0.0)

    def test_predicts_completion_threshold(self):
        beta = np.zeros((40, 2))
        beta[20, 1] = 0.5
        model = LinearProbeModel(beta)
        features = [0.0] * 40
        features[20] = 1.0
        assert not model.predicts_completion(features)
        features[20] = 2.0
        assert model.predicts_completion(features)

    def test_beta_shape_validated(self):
        with pytest.raises(ValueError):
            LinearProbeModel(np.zeros((3, 2)))


class TestReadyQueues:
    def test_fifo_order(self):
        queue = FifoReadyQueue()
        ops = [search_op(i) for i in range(3)]
        for i, op in enumerate(ops):
            op.seq = i
            queue.push(op)
        assert [queue.pop() for _ in range(3)] == ops
        assert queue.pop() is None

    def test_priority_write_latch_holders_first(self):
        queue = PriorityReadyQueue()
        reader = search_op(1)
        reader.seq = 0
        writer = update_op(2, b"x" * 8)
        writer.seq = 5
        writer.write_latches = 1
        queue.push(reader)
        queue.push(writer)
        assert queue.pop() is writer
        assert queue.pop() is reader

    def test_priority_admission_order_tiebreak(self):
        queue = PriorityReadyQueue()
        older = search_op(1)
        older.seq = 1
        newer = search_op(2)
        newer.seq = 9
        queue.push(newer)
        queue.push(older)
        assert queue.pop() is older


class _FakeEngine:
    """Minimal engine stub for policy unit tests."""

    def __init__(self):
        self.clock = Engine(seed=0).clock

        class _History:
            outstanding_count = 1

            @staticmethod
            def avg_completion_latency_ns():
                return usec(40)

        self.io_history = _History()


class TestProbingPolicies:
    def test_naive_always_probes(self):
        policy = NaiveScheduling()
        assert policy.should_probe()
        assert policy.idle_sleep_ns() == 0

    def test_fixed_rate_period(self):
        policy = FixedRateProbing(50)
        engine = _FakeEngine()
        policy.bind(engine)
        assert policy.should_probe()  # never probed yet
        policy.note_probe(engine.clock.now, 0)
        assert not policy.should_probe()
        engine.clock.advance_to(usec(49))
        assert not policy.should_probe()
        engine.clock.advance_to(usec(51))
        assert policy.should_probe()

    def test_fixed_rate_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedRateProbing(-1)

    def test_avg_latency_follows_measured_average(self):
        policy = AvgLatencyProbing()
        engine = _FakeEngine()
        policy.bind(engine)
        policy.note_probe(engine.clock.now, 0)
        engine.clock.advance_to(usec(39))
        assert not policy.should_probe()
        engine.clock.advance_to(usec(41))
        assert policy.should_probe()

    def test_timer_policies_skip_probe_with_no_outstanding(self):
        policy = FixedRateProbing(0)
        engine = _FakeEngine()
        engine.io_history.outstanding_count = 0
        policy.bind(engine)
        assert not policy.should_probe()
