"""Unit tests for the simulated OS: threads, scheduling, semaphores."""

import pytest

from repro.sim.clock import usec
from repro.sim.engine import Engine
from repro.sim.metrics import CPU_REAL_WORK
from repro.simos.scheduler import OsProfile, SimOS
from repro.simos.sync import Mutex, Semaphore
from repro.simos.thread import Cpu, SemPost, SemWait, Sleep, YieldCpu


def make_os(cores=2, **kwargs):
    engine = Engine(seed=1)
    return engine, SimOS(engine, OsProfile(cores=cores, **kwargs))


def test_single_thread_runs_to_completion():
    engine, simos = make_os()
    trace = []

    def body():
        yield Cpu(usec(5), CPU_REAL_WORK)
        trace.append(engine.now)
        yield Cpu(usec(3), CPU_REAL_WORK)
        trace.append(engine.now)

    thread = simos.spawn(body())
    engine.run()
    assert thread.done
    assert trace == [usec(5), usec(8)]
    assert thread.account.total_ns == usec(8)


def test_threads_run_in_parallel_on_separate_cores():
    engine, simos = make_os(cores=2)
    finish = {}

    def body(name):
        yield Cpu(usec(10), CPU_REAL_WORK)
        finish[name] = engine.now

    simos.spawn(body("a"))
    simos.spawn(body("b"))
    engine.run()
    # both finish at t=10us: true parallelism across cores
    assert finish == {"a": usec(10), "b": usec(10)}


def test_oversubscription_serializes():
    engine, simos = make_os(cores=1)
    finish = {}

    def body(name):
        yield Cpu(usec(10), CPU_REAL_WORK)
        finish[name] = engine.now

    simos.spawn(body("a"))
    simos.spawn(body("b"))
    engine.run()
    assert finish["a"] == usec(10)
    # b waited for a, plus one context switch
    assert finish["b"] >= usec(20)


def test_context_switches_counted_and_charged():
    engine, simos = make_os(cores=1, context_switch_ns=usec(3))
    def body():
        yield Cpu(usec(10), CPU_REAL_WORK)

    simos.spawn(body())
    simos.spawn(body())
    engine.run()
    assert simos.context_switches.value >= 1
    # busy time includes the switch cost
    assert simos.total_busy_ns() == usec(10) * 2 + simos.context_switches.value * usec(3)


def test_sleep_releases_core():
    engine, simos = make_os(cores=1)
    trace = []

    def sleeper():
        yield Sleep(usec(50))
        trace.append(("sleeper", engine.now))

    def worker():
        yield Cpu(usec(10), CPU_REAL_WORK)
        trace.append(("worker", engine.now))

    simos.spawn(sleeper())
    simos.spawn(worker())
    engine.run()
    # worker used the core while the sleeper slept (10us of work plus
    # the context switch charged when it took over the vacated core)
    assert ("worker", usec(13)) in trace
    assert trace[-1][0] == "sleeper"


def test_semaphore_blocks_and_wakes():
    engine, simos = make_os(cores=2)
    sem = Semaphore(0)
    trace = []

    def waiter():
        yield SemWait(sem)
        trace.append(("woke", engine.now))

    def poster():
        yield Cpu(usec(20), CPU_REAL_WORK)
        yield SemPost(sem)

    simos.spawn(waiter())
    simos.spawn(poster())
    engine.run()
    assert len(trace) == 1
    # wake happens after the 20us of work plus syscall/wakeup costs
    assert trace[0][1] > usec(20)
    assert sem.block_count == 1


def test_semaphore_no_block_when_available():
    engine, simos = make_os()
    sem = Semaphore(1)

    def body():
        yield SemWait(sem)

    thread = simos.spawn(body())
    engine.run()
    assert thread.done
    assert sem.count == 0
    assert sem.block_count == 0


def test_semaphore_fifo_wakeup():
    engine, simos = make_os(cores=4)
    sem = Semaphore(0)
    order = []

    def waiter(name):
        yield SemWait(sem)
        order.append(name)

    def poster():
        yield Cpu(usec(10), CPU_REAL_WORK)
        for _ in range(3):
            yield SemPost(sem)
            yield Cpu(usec(10), CPU_REAL_WORK)

    # spawn waiters in order a, b, c
    for name in "abc":
        simos.spawn(waiter(name))
    simos.spawn(poster())
    engine.run()
    assert order == ["a", "b", "c"]


def test_mutex_mutual_exclusion():
    engine, simos = make_os(cores=2)
    mutex = Mutex()
    active = {"n": 0, "max": 0}

    def body():
        for _ in range(5):
            yield SemWait(mutex)
            active["n"] += 1
            active["max"] = max(active["max"], active["n"])
            yield Cpu(usec(3), CPU_REAL_WORK)
            active["n"] -= 1
            yield SemPost(mutex)

    simos.spawn(body())
    simos.spawn(body())
    engine.run()
    assert active["max"] == 1


def test_preemption_under_oversubscription():
    engine, simos = make_os(cores=1, quantum_ns=usec(50))

    def hog():
        for _ in range(100):
            yield Cpu(usec(10), CPU_REAL_WORK)

    simos.spawn(hog())
    simos.spawn(hog())
    engine.run()
    assert simos.preemptions.value > 5


def test_yield_cpu_round_robins():
    engine, simos = make_os(cores=1)
    order = []

    def body(name):
        for _ in range(3):
            yield Cpu(usec(1), CPU_REAL_WORK)
            order.append(name)
            yield YieldCpu()

    simos.spawn(body("a"))
    simos.spawn(body("b"))
    engine.run()
    assert order[:4] == ["a", "b", "a", "b"]


def test_cpu_accounting_by_group():
    engine, simos = make_os(cores=2)

    def body():
        yield Cpu(usec(4), CPU_REAL_WORK)

    simos.spawn(body(), group="g1")
    simos.spawn(body(), group="g2")
    engine.run()
    assert simos.cpu_account("g1").total_ns == usec(4)
    assert simos.cpu_account().total_ns == usec(8)


def test_cores_used_measurement():
    engine, simos = make_os(cores=4)

    def body():
        yield Cpu(usec(100), CPU_REAL_WORK)

    start_busy = simos.total_busy_ns()
    start_time = engine.now
    simos.spawn(body())
    simos.spawn(body())
    engine.run()
    assert simos.cores_used(start_busy, start_time) == pytest.approx(2.0)


def test_thread_exit_callback():
    engine, simos = make_os()
    done = []

    def body():
        yield Cpu(usec(1), CPU_REAL_WORK)

    thread = simos.spawn(body())
    thread.on_exit.append(lambda t: done.append(t.tid))
    engine.run()
    assert done == [thread.tid]


def test_thread_exception_propagates():
    engine, simos = make_os()

    def body():
        yield Cpu(usec(1), CPU_REAL_WORK)
        raise ValueError("boom")

    simos.spawn(body())
    with pytest.raises(ValueError, match="boom"):
        engine.run()
