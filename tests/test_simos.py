"""Unit tests for the simulated OS: threads, scheduling, semaphores."""

import pytest

from repro.errors import SchedulerError
from repro.sim.clock import usec
from repro.sim.engine import Engine
from repro.sim.metrics import CPU_REAL_WORK
from repro.simos.scheduler import OsProfile, SimOS
from repro.simos.sync import Mutex, Semaphore
from repro.simos.thread import Cpu, SemPost, SemWait, Sleep, YieldCpu


def make_os(cores=2, **kwargs):
    engine = Engine(seed=1)
    return engine, SimOS(engine, OsProfile(cores=cores, **kwargs))


def test_single_thread_runs_to_completion():
    engine, simos = make_os()
    trace = []

    def body():
        yield Cpu(usec(5), CPU_REAL_WORK)
        trace.append(engine.now)
        yield Cpu(usec(3), CPU_REAL_WORK)
        trace.append(engine.now)

    thread = simos.spawn(body())
    engine.run()
    assert thread.done
    assert trace == [usec(5), usec(8)]
    assert thread.account.total_ns == usec(8)


def test_threads_run_in_parallel_on_separate_cores():
    engine, simos = make_os(cores=2)
    finish = {}

    def body(name):
        yield Cpu(usec(10), CPU_REAL_WORK)
        finish[name] = engine.now

    simos.spawn(body("a"))
    simos.spawn(body("b"))
    engine.run()
    # both finish at t=10us: true parallelism across cores
    assert finish == {"a": usec(10), "b": usec(10)}


def test_oversubscription_serializes():
    engine, simos = make_os(cores=1)
    finish = {}

    def body(name):
        yield Cpu(usec(10), CPU_REAL_WORK)
        finish[name] = engine.now

    simos.spawn(body("a"))
    simos.spawn(body("b"))
    engine.run()
    assert finish["a"] == usec(10)
    # b waited for a, plus one context switch
    assert finish["b"] >= usec(20)


def test_context_switches_counted_and_charged():
    engine, simos = make_os(cores=1, context_switch_ns=usec(3))
    def body():
        yield Cpu(usec(10), CPU_REAL_WORK)

    simos.spawn(body())
    simos.spawn(body())
    engine.run()
    assert simos.context_switches.value >= 1
    # busy time includes the switch cost
    assert simos.total_busy_ns() == usec(10) * 2 + simos.context_switches.value * usec(3)


def test_sleep_releases_core():
    engine, simos = make_os(cores=1)
    trace = []

    def sleeper():
        yield Sleep(usec(50))
        trace.append(("sleeper", engine.now))

    def worker():
        yield Cpu(usec(10), CPU_REAL_WORK)
        trace.append(("worker", engine.now))

    simos.spawn(sleeper())
    simos.spawn(worker())
    engine.run()
    # worker used the core while the sleeper slept (10us of work plus
    # the context switch charged when it took over the vacated core)
    assert ("worker", usec(13)) in trace
    assert trace[-1][0] == "sleeper"


def test_semaphore_blocks_and_wakes():
    engine, simos = make_os(cores=2)
    sem = Semaphore(0)
    trace = []

    def waiter():
        yield SemWait(sem)
        trace.append(("woke", engine.now))

    def poster():
        yield Cpu(usec(20), CPU_REAL_WORK)
        yield SemPost(sem)

    simos.spawn(waiter())
    simos.spawn(poster())
    engine.run()
    assert len(trace) == 1
    # wake happens after the 20us of work plus syscall/wakeup costs
    assert trace[0][1] > usec(20)
    assert sem.block_count == 1


def test_semaphore_no_block_when_available():
    engine, simos = make_os()
    sem = Semaphore(1)

    def body():
        yield SemWait(sem)

    thread = simos.spawn(body())
    engine.run()
    assert thread.done
    assert sem.count == 0
    assert sem.block_count == 0


def test_semaphore_fifo_wakeup():
    engine, simos = make_os(cores=4)
    sem = Semaphore(0)
    order = []

    def waiter(name):
        yield SemWait(sem)
        order.append(name)

    def poster():
        yield Cpu(usec(10), CPU_REAL_WORK)
        for _ in range(3):
            yield SemPost(sem)
            yield Cpu(usec(10), CPU_REAL_WORK)

    # spawn waiters in order a, b, c
    for name in "abc":
        simos.spawn(waiter(name))
    simos.spawn(poster())
    engine.run()
    assert order == ["a", "b", "c"]


def test_mutex_mutual_exclusion():
    engine, simos = make_os(cores=2)
    mutex = Mutex()
    active = {"n": 0, "max": 0}

    def body():
        for _ in range(5):
            yield SemWait(mutex)
            active["n"] += 1
            active["max"] = max(active["max"], active["n"])
            yield Cpu(usec(3), CPU_REAL_WORK)
            active["n"] -= 1
            yield SemPost(mutex)

    simos.spawn(body())
    simos.spawn(body())
    engine.run()
    assert active["max"] == 1


def test_preemption_under_oversubscription():
    engine, simos = make_os(cores=1, quantum_ns=usec(50))

    def hog():
        for _ in range(100):
            yield Cpu(usec(10), CPU_REAL_WORK)

    simos.spawn(hog())
    simos.spawn(hog())
    engine.run()
    assert simos.preemptions.value > 5


def test_yield_cpu_round_robins():
    engine, simos = make_os(cores=1)
    order = []

    def body(name):
        for _ in range(3):
            yield Cpu(usec(1), CPU_REAL_WORK)
            order.append(name)
            yield YieldCpu()

    simos.spawn(body("a"))
    simos.spawn(body("b"))
    engine.run()
    assert order[:4] == ["a", "b", "a", "b"]


def test_cpu_accounting_by_group():
    engine, simos = make_os(cores=2)

    def body():
        yield Cpu(usec(4), CPU_REAL_WORK)

    simos.spawn(body(), group="g1")
    simos.spawn(body(), group="g2")
    engine.run()
    assert simos.cpu_account("g1").total_ns == usec(4)
    assert simos.cpu_account().total_ns == usec(8)


def test_cores_used_measurement():
    engine, simos = make_os(cores=4)

    def body():
        yield Cpu(usec(100), CPU_REAL_WORK)

    start_busy = simos.total_busy_ns()
    start_time = engine.now
    simos.spawn(body())
    simos.spawn(body())
    engine.run()
    assert simos.cores_used(start_busy, start_time) == pytest.approx(2.0)


def test_thread_exit_callback():
    engine, simos = make_os()
    done = []

    def body():
        yield Cpu(usec(1), CPU_REAL_WORK)

    thread = simos.spawn(body())
    thread.on_exit.append(lambda t: done.append(t.tid))
    engine.run()
    assert done == [thread.tid]


def test_thread_exception_propagates():
    engine, simos = make_os()

    def body():
        yield Cpu(usec(1), CPU_REAL_WORK)
        raise ValueError("boom")

    simos.spawn(body())
    with pytest.raises(ValueError, match="boom"):
        engine.run()


# ---------------------------------------------------------------------------
# stall guard: a drained event queue with blocked threads is a deadlock
# ---------------------------------------------------------------------------


def test_two_thread_semaphore_deadlock_raises_typed_error():
    engine, simos = make_os(cores=2)
    sem_a = Semaphore(0, name="a")
    sem_b = Semaphore(0, name="b")

    def first():
        yield SemWait(sem_a)
        yield SemPost(sem_b)

    def second():
        yield SemWait(sem_b)
        yield SemPost(sem_a)

    simos.spawn(first(), name="first")
    simos.spawn(second(), name="second")
    with pytest.raises(SchedulerError) as excinfo:
        engine.run()
    message = str(excinfo.value)
    assert "stalled" in message
    # the error names every blocked thread
    assert "first" in message and "second" in message


def test_stall_guard_silent_on_clean_completion():
    engine, simos = make_os(cores=1)

    def body():
        yield Cpu(usec(1), CPU_REAL_WORK)

    thread = simos.spawn(body())
    engine.run()
    assert thread.done  # no SchedulerError from the idle hook


def test_stall_guard_silent_when_some_thread_can_still_run():
    # one thread blocks forever, the other finishes: the queue drains
    # with a blocked thread remaining, but also a DONE one -- still a
    # deadlock of the blocked thread, and the guard must name only
    # all-blocked stalls... the blocked thread IS the only live one,
    # so this run stalls too.
    engine, simos = make_os(cores=2)
    sem = Semaphore(0)

    def blocked():
        yield SemWait(sem)

    def fine():
        yield Cpu(usec(1), CPU_REAL_WORK)

    simos.spawn(blocked(), name="blocked")
    simos.spawn(fine(), name="fine")
    with pytest.raises(SchedulerError, match="blocked"):
        engine.run()


# ---------------------------------------------------------------------------
# semaphore wakeup order: explicit FIFO contract
# ---------------------------------------------------------------------------


def test_waiters_deque_is_fifo_and_pop_waiter_bounds_checked():
    engine, simos = make_os(cores=4)
    sem = Semaphore(0)

    def waiter():
        yield SemWait(sem)

    def keepalive():
        # a pending wakeup event keeps the queue non-empty, so the
        # bounded run below stops on time rather than tripping the
        # stall guard over the deliberately-blocked waiters
        yield Sleep(usec(1_000))

    threads = [simos.spawn(waiter(), name="w%d" % i) for i in range(3)]
    simos.spawn(keepalive(), name="keepalive")
    engine.run_for(usec(50))
    # arrival order is preserved in the explicit FIFO
    assert [t.tid for t in sem.waiters] == [t.tid for t in threads]
    with pytest.raises(SchedulerError, match="out of range"):
        sem.pop_waiter(3)
    with pytest.raises(SchedulerError, match="out of range"):
        sem.pop_waiter(-1)
    # head pop is arrival order; indexed pop removes mid-queue
    assert sem.pop_waiter(0) is threads[0]
    assert sem.pop_waiter(1) is threads[2]
    assert sem.pop_waiter(0) is threads[1]


def test_default_wakeup_order_is_arrival_order_regression():
    # regression companion to test_semaphore_fifo_wakeup: interleaved
    # posts keep waking in arrival order even when later waiters have
    # re-blocked in between
    engine, simos = make_os(cores=4)
    sem = Semaphore(0)
    order = []

    def waiter(name):
        yield SemWait(sem)
        order.append(name)
        yield SemWait(sem)
        order.append(name)

    def poster():
        yield Cpu(usec(10), CPU_REAL_WORK)
        for _ in range(6):
            yield SemPost(sem)
            yield Cpu(usec(20), CPU_REAL_WORK)

    for name in "abc":
        simos.spawn(waiter(name))
    simos.spawn(poster())
    engine.run()
    assert order == ["a", "b", "c", "a", "b", "c"]


# ---------------------------------------------------------------------------
# scheduler edges: empty-queue yield, exact quantum boundary, state hook
# ---------------------------------------------------------------------------


def test_yield_cpu_with_empty_run_queue_keeps_running():
    engine, simos = make_os(cores=1)
    trace = []

    def body():
        yield Cpu(usec(1), CPU_REAL_WORK)
        trace.append(engine.now)
        yield YieldCpu()
        # nobody else runnable: the yield is free and we keep the core
        yield Cpu(usec(1), CPU_REAL_WORK)
        trace.append(engine.now)

    thread = simos.spawn(body())
    engine.run()
    assert thread.done
    # no context switch, no preemption, no delay from the empty yield
    assert trace == [usec(1), usec(2)]
    assert simos.preemptions.value == 0
    assert simos.context_switches.value == 0


def test_preemption_fires_exactly_at_quantum_boundary():
    # one burst of exactly the quantum with a rival queued: the
    # >=-boundary must preempt (quantum_used == quantum_ns)
    engine, simos = make_os(cores=1, quantum_ns=usec(50), context_switch_ns=0)

    def hog():
        yield Cpu(usec(50), CPU_REAL_WORK)
        yield Cpu(usec(1), CPU_REAL_WORK)

    def rival():
        yield Cpu(usec(1), CPU_REAL_WORK)

    simos.spawn(hog(), name="hog")
    simos.spawn(rival(), name="rival")
    engine.run()
    assert simos.preemptions.value == 1


def test_sub_quantum_burst_is_not_preempted():
    engine, simos = make_os(cores=1, quantum_ns=usec(50), context_switch_ns=0)

    def polite():
        yield Cpu(usec(49), CPU_REAL_WORK)
        yield YieldCpu()

    def rival():
        yield Cpu(usec(1), CPU_REAL_WORK)

    simos.spawn(polite(), name="polite")
    simos.spawn(rival(), name="rival")
    engine.run()
    assert simos.preemptions.value == 0


def test_on_thread_state_hook_ordering_across_transitions():
    engine, simos = make_os(cores=1, quantum_ns=usec(50), context_switch_ns=0)
    events = []

    simos.on_thread_state = lambda thread, state: events.append(
        (thread.name, state)
    )

    def hog():
        yield Cpu(usec(60), CPU_REAL_WORK)
        yield Cpu(usec(1), CPU_REAL_WORK)

    def rival():
        yield Cpu(usec(1), CPU_REAL_WORK)

    simos.spawn(hog(), name="hog")
    simos.spawn(rival(), name="rival")
    engine.run()

    from repro.simos.thread import T_DONE, T_RUNNABLE, T_RUNNING

    # spawn: hog dispatches straight to the core, rival queues
    assert events[0] == ("hog", T_RUNNABLE)
    assert events[1] == ("hog", T_RUNNING)
    assert events[2] == ("rival", T_RUNNABLE)
    # preemption at the quantum boundary: hog goes RUNNABLE *before*
    # the core is released, then the release dispatches rival RUNNING
    boundary = events.index(("hog", T_RUNNABLE), 3)
    assert events[boundary + 1] == ("rival", T_RUNNING)
    # every thread ends DONE, reported before its core re-dispatches
    assert events.count(("hog", T_DONE)) == 1
    assert events.count(("rival", T_DONE)) == 1
