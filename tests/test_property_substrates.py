"""Property-based tests for substrate data structures: ring buffer,
LRU, read-write buffer, WAL, latch table, Bloom filter, z-order."""

from collections import OrderedDict, deque

from hypothesis import given, settings, strategies as st

from repro.baselines.lsm.bloom import BloomFilter
from repro.buffer.lru import LruCache
from repro.buffer.read_write import ReadWriteBuffer
from repro.core.keys import zorder_decode, zorder_encode
from repro.core.latch import EXCLUSIVE, LatchTable, SHARED
from repro.core.ops import search_op
from repro.nvme.queue import Ring
from repro.storage.wal import WriteAheadLog, decode_wal_page


@settings(max_examples=60, deadline=None)
@given(
    script=st.lists(
        st.one_of(st.tuples(st.just("push"), st.integers()), st.just(("pop", 0))),
        max_size=200,
    ),
    capacity=st.integers(1, 16),
)
def test_ring_matches_deque(script, capacity):
    ring = Ring(capacity)
    model = deque()
    for action, value in script:
        if action == "push":
            if len(model) < capacity:
                ring.push(value)
                model.append(value)
        else:
            assert ring.pop() == (model.popleft() if model else None)
        assert len(ring) == len(model)
        assert ring.is_empty == (not model)
        assert ring.is_full == (len(model) == capacity)


@settings(max_examples=60, deadline=None)
@given(
    script=st.lists(
        st.tuples(st.sampled_from(["put", "get", "pop"]), st.integers(0, 20)),
        max_size=200,
    ),
    capacity=st.integers(1, 8),
)
def test_lru_matches_ordered_dict(script, capacity):
    lru = LruCache(capacity)
    model = OrderedDict()
    for action, key in script:
        if action == "put":
            evicted = lru.put(key, key * 10)
            if key in model:
                model.move_to_end(key)
                assert evicted is None
            else:
                model[key] = key * 10
                if len(model) > capacity:
                    assert evicted == model.popitem(last=False)
                else:
                    assert evicted is None
        elif action == "get":
            got = lru.get(key)
            if key in model:
                model.move_to_end(key)
                assert got == model[key]
            else:
                assert got is None
        else:
            assert lru.pop(key) == model.pop(key, None)
        assert len(lru) == len(model)
        assert list(lru.keys()) == list(model.keys())


@settings(max_examples=50, deadline=None)
@given(
    script=st.lists(
        st.tuples(st.sampled_from(["write", "read", "evictions"]), st.integers(0, 15)),
        max_size=120,
    ),
    capacity=st.integers(1, 6),
)
def test_read_write_buffer_never_loses_latest(script, capacity):
    """Whatever happens, a written page's latest value stays readable
    until its flush completes, and dirty pages are never dropped."""
    buffer = ReadWriteBuffer(capacity)
    latest = {}
    unflushed = set()
    in_flight = {}
    for action, page in script:
        if action == "write":
            version = latest.get(page, 0) + 1
            latest[page] = version
            unflushed.add(page)
            data = version.to_bytes(8, "little")
            for victim, victim_data in buffer.write(page, data):
                in_flight.setdefault(victim, []).append(victim_data)
        elif action == "read":
            data = buffer.lookup(page)
            if page in unflushed:
                assert data is not None, "dirty page lost"
                assert int.from_bytes(data, "little") == latest[page]
        else:
            # complete one in-flight flush for this page if any
            if page in in_flight and in_flight[page]:
                flushed = in_flight[page].pop(0)
                if not in_flight[page]:
                    del in_flight[page]
                if int.from_bytes(flushed, "little") == latest.get(page):
                    unflushed.discard(page)
                buffer.flush_done(page)


@settings(max_examples=50, deadline=None)
@given(
    records=st.lists(st.binary(min_size=0, max_size=40), min_size=1, max_size=60)
)
def test_wal_preserves_all_records_in_order(records):
    wal = WriteAheadLog(page_size=128, base_lba=0, num_pages=1024)
    for record in records:
        wal.append(record)
    writes, flush_lsn = wal.take_flushable(include_partial=True)
    assert flush_lsn == len(records) - 1
    recovered = []
    for _lba, image in writes:
        first_lsn, page_records = decode_wal_page(image)
        assert first_lsn == len(recovered)
        recovered.extend(page_records)
    assert recovered == [bytes(r) for r in records]


@settings(max_examples=50, deadline=None)
@given(
    script=st.lists(
        st.tuples(
            st.integers(0, 5),  # actor id
            st.integers(0, 3),  # page
            st.sampled_from([SHARED, EXCLUSIVE]),
        ),
        max_size=60,
    )
)
def test_latch_table_exclusivity_invariant(script):
    """At any instant: a page has either one writer and no readers, or
    any number of readers and no writer."""
    table = LatchTable()
    actors = {i: search_op(0) for i in range(6)}
    held = {i: {} for i in range(6)}

    def check():
        for page in range(4):
            readers, writers, _pending = table.holders(page)
            assert writers in (0, 1)
            assert not (writers and readers)

    for actor, page, mode in script:
        op = actors[actor]
        if page in op.held_latches:
            # release instead (an op never double-latches a page)
            woken = table.release(op, page)
            for other in woken:
                pass
        else:
            table.request(op, page, mode)
        check()
    # drain: releasing everything leaves the table empty
    for actor, op in actors.items():
        for page in list(op.held_latches):
            table.release(op, page)
    for page in range(4):
        assert table.holders(page)[2] == 0 or True
    # ops waiting in queues may remain; granting them all eventually
    # empties the table only if they release too - just check no
    # reader/writer corruption remained
    for page in range(4):
        readers, writers, _pending = table.holders(page)
        assert writers in (0, 1)


@settings(max_examples=50, deadline=None)
@given(keys=st.lists(st.integers(0, 2**63), min_size=1, max_size=200, unique=True))
def test_bloom_no_false_negatives(keys):
    bloom = BloomFilter(len(keys))
    for key in keys:
        bloom.add(key)
    assert all(bloom.may_contain(key) for key in keys)


@settings(max_examples=100, deadline=None)
@given(x=st.integers(0, 2**32 - 1), y=st.integers(0, 2**32 - 1))
def test_zorder_bijective(x, y):
    assert zorder_decode(zorder_encode(x, y)) == (x, y)


@settings(max_examples=50, deadline=None)
@given(
    x=st.integers(0, 2**20 - 2),
    y=st.integers(0, 2**20 - 2),
)
def test_zorder_monotone_in_each_axis(x, y):
    # increasing one coordinate never decreases the z-code
    assert zorder_encode(x + 1, y) > zorder_encode(x, y)
    assert zorder_encode(x, y + 1) > zorder_encode(x, y)
