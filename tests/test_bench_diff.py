"""Tests for the bench regression gate (repro.bench.diff) and the
``python -m repro.bench metrics`` health CLI (repro.bench.health)."""

import json

import pytest

from repro.bench import diff, health


# ----------------------------------------------------------------------
# leaf flattening and classification
# ----------------------------------------------------------------------


def test_flatten_walks_nested_dicts_and_lists():
    leaves = diff.flatten(
        {
            "result": {"throughput_ops": 10.5, "name": "x", "ok": True},
            "rows": [{"p99_us": 7}, {"p99_us": 9}],
        }
    )
    assert leaves == {
        "result.throughput_ops": 10.5,
        "rows[0].p99_us": 7,
        "rows[1].p99_us": 9,
    }


@pytest.mark.parametrize(
    "path,direction",
    [
        ("result.p99_latency_us", "lower"),
        ("health.slo.rows[0].violations", "lower"),
        ("result.failed_ops", "lower"),
        ("result.io_errors", "lower"),
        ("result.throughput_ops", "higher"),
        ("result.goodput_ops", "higher"),
        ("result.iops", "higher"),
        ("result.elapsed_s", None),
        ("result.probes", None),
    ],
)
def test_classify_directions(path, direction):
    assert diff.classify(path) == direction


# ----------------------------------------------------------------------
# comparison semantics
# ----------------------------------------------------------------------


def test_identical_payloads_always_pass():
    payload = {"throughput_ops": 100.0, "p99_latency_us": 50.0}
    findings = diff.compare(payload, dict(payload), threshold=0.0)
    assert findings["regressions"] == []
    assert findings["improvements"] == []
    assert findings["drifts"] == []


def test_latency_increase_past_threshold_regresses():
    findings = diff.compare(
        {"p99_latency_us": 100.0}, {"p99_latency_us": 125.0}, threshold=0.10
    )
    assert [r["path"] for r in findings["regressions"]] == ["p99_latency_us"]
    # within threshold: no regression
    ok = diff.compare(
        {"p99_latency_us": 100.0}, {"p99_latency_us": 105.0}, threshold=0.10
    )
    assert ok["regressions"] == []


def test_throughput_drop_past_threshold_regresses():
    findings = diff.compare(
        {"throughput_ops": 100.0}, {"throughput_ops": 80.0}, threshold=0.10
    )
    assert [r["path"] for r in findings["regressions"]] == ["throughput_ops"]
    improved = diff.compare(
        {"throughput_ops": 100.0}, {"throughput_ops": 130.0}, threshold=0.10
    )
    assert improved["regressions"] == []
    assert [r["path"] for r in improved["improvements"]] == ["throughput_ops"]


def test_zero_to_nonzero_error_count_regresses_at_any_threshold():
    findings = diff.compare(
        {"lost_writes": 0}, {"lost_writes": 1}, threshold=5.0
    )
    assert [r["path"] for r in findings["regressions"]] == ["lost_writes"]


def test_unclassified_leaves_drift_but_never_gate():
    findings = diff.compare(
        {"probes": 100}, {"probes": 900}, threshold=0.01
    )
    assert findings["regressions"] == []
    assert [r["path"] for r in findings["drifts"]] == ["probes"]


def test_added_and_removed_keys_reported_not_gated():
    findings = diff.compare({"old_only": 1}, {"new_only": 2}, threshold=0.1)
    assert findings["added"] == ["new_only"]
    assert findings["removed"] == ["old_only"]
    assert findings["regressions"] == []


# ----------------------------------------------------------------------
# wall-clock-variant exclusion (file backend artifacts)
# ----------------------------------------------------------------------


def test_wall_clock_prefixes_found_directly_and_via_backend_key():
    payload = {
        "result": {"backend": {"kind": "file", "wall_clock_variant": True}},
        "calibration": {"wall_clock_variant": True},
        "rows": [{"backend": {"wall_clock_variant": True}}],
    }
    prefixes = diff.wall_clock_prefixes(payload)
    # nested backend descriptors may add redundant sub-prefixes; the
    # contract is that each variant subtree root is covered
    assert {"result", "calibration", "rows[0]"} <= prefixes


def test_wall_clock_variant_subtree_never_gates():
    old = {
        "result": {
            "backend": {"wall_clock_variant": True},
            "p99_latency_us": 100.0,
        },
        "sim": {"p99_latency_us": 50.0},
    }
    new = {
        "result": {
            "backend": {"wall_clock_variant": True},
            "p99_latency_us": 900.0,  # wild wall-clock swing: not gated
        },
        "sim": {"p99_latency_us": 50.0},
    }
    findings = diff.compare(old, new, threshold=0.05)
    assert findings["regressions"] == []
    assert [r["path"] for r in findings["wall_clock"]] == [
        "result.p99_latency_us"
    ]


def test_sim_leaves_still_gate_next_to_wall_clock_subtrees():
    old = {
        "file": {"backend": {"wall_clock_variant": True}, "iops": 10.0},
        "sim": {"p99_latency_us": 50.0},
    }
    new = {
        "file": {"backend": {"wall_clock_variant": True}, "iops": 2.0},
        "sim": {"p99_latency_us": 500.0},
    }
    findings = diff.compare(old, new, threshold=0.05)
    assert [r["path"] for r in findings["regressions"]] == [
        "sim.p99_latency_us"
    ]


# ----------------------------------------------------------------------
# file-level gate and exit codes
# ----------------------------------------------------------------------


def _write(path, payload):
    path.write_text(json.dumps(payload))
    return str(path)


def test_diff_files_pass_and_fail(tmp_path):
    lines = []
    old = _write(tmp_path / "old.json", {"p99_latency_us": 100.0})
    same = _write(tmp_path / "same.json", {"p99_latency_us": 100.0})
    bad = _write(tmp_path / "bad.json", {"p99_latency_us": 300.0})
    assert diff.diff_files(old, same, out=lines.append) == 0
    assert diff.diff_files(old, bad, out=lines.append) == 1
    assert any("REGRESSION" in line for line in lines)


def test_diff_files_usage_errors(tmp_path):
    lines = []
    assert diff.diff_files(None, None, out=lines.append) == 2
    missing = str(tmp_path / "nope.json")
    assert diff.diff_files(missing, missing, out=lines.append) == 2


# ----------------------------------------------------------------------
# metrics health CLI end to end
# ----------------------------------------------------------------------


def test_metrics_cli_writes_artifacts_and_gate_passes(tmp_path):
    lines = []
    out_a = tmp_path / "a"
    out_b = tmp_path / "b"
    paths_a = health.run_metrics(
        "faults", ops=150, seed=1, out_dir=str(out_a), out=lines.append
    )
    paths_b = health.run_metrics(
        "faults", ops=150, seed=1, out_dir=str(out_b), out=lines.append
    )
    # postmortem artefact present: the fault config escalates errors
    names = [p.rsplit("/", 1)[-1] for p in paths_a]
    assert "faults.postmortem.json" in names
    assert "BENCH_metrics_faults.json" in names
    # same-seed runs are byte-identical, so the regression gate passes
    for first, second in zip(paths_a, paths_b):
        assert open(first, "rb").read() == open(second, "rb").read()
    bench_a = [p for p in paths_a if p.endswith(".json") and "BENCH" in p][0]
    bench_b = [p for p in paths_b if p.endswith(".json") and "BENCH" in p][0]
    assert diff.diff_files(bench_a, bench_b, out=lines.append) == 0
    assert any("== health: SLO ==" in line for line in lines)


def test_metrics_cli_gate_fails_on_seeded_regression(tmp_path):
    lines = []
    paths = health.run_metrics(
        "fig7", ops=120, seed=1, out_dir=str(tmp_path), out=lines.append
    )
    bench = [p for p in paths if "BENCH" in p][0]
    payload = json.loads(open(bench).read())
    payload["result"]["failed_ops"] = (
        payload["result"].get("failed_ops", 0) + 10
    )
    regressed = _write(tmp_path / "regressed.json", payload)
    assert diff.diff_files(bench, regressed, out=lines.append) == 1


def test_metrics_cli_unknown_target_exits_2():
    class _Args:
        target = "nope"
        ops = None
        seed = 1
        out = None

    lines = []
    assert health.main(_Args(), out=lines.append) == 2
    assert any("unknown metrics target" in line for line in lines)
