"""Unit tests for tree creation, bulk loading and validation."""

import pytest

from repro.core.meta import TreeMeta
from repro.core.tree import PaTree
from repro.errors import TreeError
from repro.nvme.device import NvmeDevice, fast_test_profile
from repro.sim.engine import Engine


def make_device():
    return NvmeDevice(Engine(seed=1), fast_test_profile())


def items(n, start=1, stride=10):
    return [
        ((start + i) * stride, ((start + i) * stride).to_bytes(8, "little"))
        for i in range(n)
    ]


class TestCreateOpen:
    def test_create_empty_tree(self):
        tree = PaTree.create(make_device())
        assert tree.meta.height == 1
        assert tree.meta.key_count == 0
        assert tree.validate() == {"levels": 1, "nodes": 1, "keys": 0}

    def test_open_reads_meta_back(self):
        device = make_device()
        tree = PaTree.create(device)
        tree.bulk_load(items(100))
        reopened = PaTree.open(device)
        assert reopened.meta.key_count == 100
        assert reopened.meta.root_page == tree.meta.root_page
        assert list(reopened.iterate_items_raw()) == items(100)

    def test_open_allocator_watermark_preserved(self):
        device = make_device()
        tree = PaTree.create(device)
        tree.bulk_load(items(500))
        reopened = PaTree.open(device)
        fresh = reopened.allocator.allocate()
        assert fresh >= tree.allocator.next_page - 1

    def test_meta_roundtrip(self):
        meta = TreeMeta(512, 8, root_page=7, height=3, next_page=99, key_count=42)
        restored = TreeMeta.from_bytes(meta.to_bytes())
        assert restored.root_page == 7
        assert restored.height == 3
        assert restored.next_page == 99
        assert restored.key_count == 42


class TestBulkLoad:
    def test_small_load_single_leaf(self):
        tree = PaTree.create(make_device())
        tree.bulk_load(items(5))
        stats = tree.validate()
        assert stats == {"levels": 2, "nodes": 2, "keys": 5} or stats["keys"] == 5

    def test_multi_level_load(self):
        tree = PaTree.create(make_device())
        tree.bulk_load(items(5_000))
        stats = tree.validate(check_fill=True)
        assert stats["keys"] == 5_000
        assert stats["levels"] >= 3
        assert list(tree.iterate_items_raw()) == items(5_000)

    def test_unsorted_input_rejected(self):
        tree = PaTree.create(make_device())
        with pytest.raises(TreeError):
            tree.bulk_load([(5, b"x" * 8), (3, b"y" * 8)])

    def test_duplicate_input_rejected(self):
        tree = PaTree.create(make_device())
        with pytest.raises(TreeError):
            tree.bulk_load([(5, b"x" * 8), (5, b"y" * 8)])

    def test_non_empty_tree_rejected(self):
        tree = PaTree.create(make_device())
        tree.bulk_load(items(10))
        with pytest.raises(TreeError):
            tree.bulk_load(items(10, start=1000))

    def test_empty_load_is_noop(self):
        tree = PaTree.create(make_device())
        tree.bulk_load([])
        assert tree.meta.key_count == 0

    def test_fill_factor_bounds(self):
        tree = PaTree.create(make_device())
        with pytest.raises(TreeError):
            tree.bulk_load(items(10), fill_factor=0.01)

    @pytest.mark.parametrize("count", [1, 21, 22, 441, 463, 2000])
    def test_boundary_sizes(self, count):
        """Sizes around leaf/inner fan-out boundaries build correctly."""
        tree = PaTree.create(make_device())
        tree.bulk_load(items(count))
        stats = tree.validate()
        assert stats["keys"] == count
        assert list(tree.iterate_items_raw()) == items(count)

    def test_leaf_chain_high_keys(self):
        tree = PaTree.create(make_device())
        tree.bulk_load(items(300))
        node = tree.read_node_raw(tree.meta.root_page)
        while not node.is_leaf:
            node = tree.read_node_raw(node.children[0])
        while node.next_id:
            next_node = tree.read_node_raw(node.next_id)
            assert node.high_key == next_node.keys[0]
            node = next_node


class TestValidation:
    def test_detects_count_mismatch(self):
        tree = PaTree.create(make_device())
        tree.bulk_load(items(50))
        tree.meta.key_count = 49
        with pytest.raises(TreeError):
            tree.validate()


class TestMetaVersioning:
    def test_bad_meta_version_detected(self):
        from repro.core.meta import TreeMeta
        from repro.errors import CorruptPageError

        meta = TreeMeta(512, 8, root_page=1, height=1, next_page=2)
        image = bytearray(meta.to_bytes())
        image[4] = 0xFF  # corrupt the version field
        with pytest.raises(CorruptPageError):
            TreeMeta.from_bytes(bytes(image))

    def test_bad_meta_magic_detected(self):
        from repro.core.meta import TreeMeta
        from repro.errors import CorruptPageError

        with pytest.raises(CorruptPageError):
            TreeMeta.from_bytes(bytes(512))


class TestRecovery:
    def test_recovery_recounts_and_raises_watermark(self):
        device = make_device()
        tree = PaTree.create(device)
        tree.bulk_load(items(200))
        # simulate a crash where meta lags: claim fewer keys and an old
        # watermark, as if updates after the last root change were lost
        stale_next = tree.meta.root_page  # far below the real watermark
        tree.meta.key_count = 3
        tree.meta.next_page = stale_next
        device.raw_write(0, tree.meta.to_bytes())

        recovered = PaTree.open(device, recover=True)
        assert recovered.meta.key_count == 200
        assert recovered.allocator.next_page > stale_next
        fresh = recovered.allocator.allocate()
        # the recovered allocator never hands out a reachable page
        reachable = set()
        stack = [recovered.meta.root_page]
        while stack:
            page_id = stack.pop()
            reachable.add(page_id)
            node = recovered.read_node_raw(page_id)
            if not node.is_leaf:
                stack.extend(node.children)
        assert fresh not in reachable
