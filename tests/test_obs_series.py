"""Edge-case tests for repro.obs.series (Histogram, TimeSeriesSampler).

The happy paths are covered alongside the tracer tests; this file pins
the corners the metrics subsystem leans on: empty histograms, extreme
quantiles, the overflow bucket's clamping behaviour, and the sampler's
start/stop/re-start lifecycle.
"""

import pytest

from repro.obs import Histogram, TimeSeriesSampler, latency_histogram
from repro.sim.engine import Engine


# ----------------------------------------------------------------------
# histogram edges
# ----------------------------------------------------------------------


def test_empty_histogram_is_all_zeros():
    histogram = latency_histogram()
    assert histogram.quantile(0.5) == 0
    assert histogram.mean() == 0.0
    snap = histogram.snapshot()
    assert snap["count"] == 0
    assert snap["min_us"] == 0.0 and snap["max_us"] == 0.0
    assert snap["p50_us"] == 0.0 and snap["p999_us"] == 0.0


def test_quantile_extremes_clamp_to_observed_range():
    histogram = Histogram([10, 100, 1_000])
    for value in (5, 50, 500):
        histogram.record(value)
    assert histogram.quantile(0.0) == 10  # upper edge of first bucket
    assert histogram.quantile(1.0) == 500  # clamped to observed max
    assert histogram.min == 5 and histogram.max == 500


def test_single_sample_every_quantile_is_that_bucket():
    histogram = Histogram([10, 100])
    histogram.record(7)
    for q in (0.0, 0.5, 0.99, 1.0):
        assert histogram.quantile(q) == 7  # clamped to max=7


def test_overflow_bucket_catches_values_past_last_bound():
    histogram = Histogram([10, 20])
    histogram.record(21)
    histogram.record(10_000)
    assert histogram.counts[-1] == 2
    # quantiles in the overflow bucket report the observed max
    assert histogram.quantile(0.99) == 10_000
    snap = histogram.snapshot()
    assert snap["buckets"][-1] == {"le_us": "inf", "count": 2}


def test_exact_moments_alongside_approximate_percentiles():
    histogram = Histogram([1_000])
    for value in (100, 200, 300):
        histogram.record(value)
    assert histogram.mean() == pytest.approx(200.0)
    assert histogram.sum == 600 and histogram.count == 3


def test_unsorted_bounds_rejected():
    with pytest.raises(ValueError):
        Histogram([100, 10])


# ----------------------------------------------------------------------
# sampler lifecycle
# ----------------------------------------------------------------------


def test_sampler_stop_then_restart_resumes_ticking():
    engine = Engine(seed=1)
    sampler = TimeSeriesSampler(engine, interval_ns=1_000)
    sampler.add_probe("depth", lambda: 1)

    sampler.start()
    engine.schedule(2_500, sampler.stop)
    engine.schedule(4_500, sampler.start)
    engine.schedule(6_700, sampler.stop)
    engine.run()

    # ticks at 1000/2000, silence while stopped, resumed ticks counted
    # from the restart time
    times = [t for t, _row in sampler.samples]
    assert times == [1_000, 2_000, 5_500, 6_500]


def test_sampler_start_is_idempotent():
    engine = Engine(seed=1)
    sampler = TimeSeriesSampler(engine, interval_ns=1_000)
    sampler.add_probe("depth", lambda: 1)
    sampler.start()
    sampler.start()  # second start must not double-schedule
    engine.schedule(3_500, sampler.stop)
    engine.run()
    assert [t for t, _row in sampler.samples] == [1_000, 2_000, 3_000]


def test_sampler_stop_without_start_is_a_no_op():
    engine = Engine(seed=1)
    sampler = TimeSeriesSampler(engine, interval_ns=1_000)
    sampler.stop()
    assert sampler.samples == []


def test_sampler_caps_samples_and_halts():
    engine = Engine(seed=1)
    sampler = TimeSeriesSampler(engine, interval_ns=1_000, max_samples=3)
    sampler.add_probe("depth", lambda: 1)
    sampler.start()
    engine.run()  # would tick forever without the cap
    assert len(sampler.samples) == 3
    assert sampler._running is False


def test_sampler_rejects_nonpositive_interval():
    engine = Engine(seed=1)
    with pytest.raises(ValueError):
        TimeSeriesSampler(engine, interval_ns=0)
