"""Unit tests for the PA-Tree latch table (working-thread granted)."""

import pytest

from repro.core.latch import EXCLUSIVE, LatchTable, SHARED
from repro.core.ops import search_op
from repro.errors import LatchError


def op():
    return search_op(0)


class TestGrantRules:
    def test_shared_latches_coexist(self):
        table = LatchTable()
        a, b = op(), op()
        assert table.request(a, 1, SHARED)
        assert table.request(b, 1, SHARED)
        assert table.holders(1) == (2, 0, 0)

    def test_exclusive_blocks_shared(self):
        table = LatchTable()
        a, b = op(), op()
        assert table.request(a, 1, EXCLUSIVE)
        assert not table.request(b, 1, SHARED)
        assert table.holders(1) == (0, 1, 1)

    def test_shared_blocks_exclusive(self):
        table = LatchTable()
        a, b = op(), op()
        assert table.request(a, 1, SHARED)
        assert not table.request(b, 1, EXCLUSIVE)

    def test_release_wakes_fifo(self):
        table = LatchTable()
        a, b, c = op(), op(), op()
        table.request(a, 1, EXCLUSIVE)
        table.request(b, 1, SHARED)
        table.request(c, 1, SHARED)
        woken = table.release(a, 1)
        assert woken == [b, c]
        assert table.holders(1) == (2, 0, 0)

    def test_no_barging_past_queued_writer(self):
        table = LatchTable()
        a, b, c = op(), op(), op()
        table.request(a, 1, SHARED)
        table.request(b, 1, EXCLUSIVE)  # queued
        # c's shared request must queue behind b even though w == 0
        assert not table.request(c, 1, SHARED)
        woken = table.release(a, 1)
        assert woken == [b]

    def test_writer_then_reader_drain_stops_at_conflict(self):
        table = LatchTable()
        a, b, c, d = op(), op(), op(), op()
        table.request(a, 1, EXCLUSIVE)
        table.request(b, 1, SHARED)
        table.request(c, 1, EXCLUSIVE)
        table.request(d, 1, SHARED)
        woken = table.release(a, 1)
        assert woken == [b]  # c cannot be granted while b reads; d waits behind c
        woken = table.release(b, 1)
        assert woken == [c]
        woken = table.release(c, 1)
        assert woken == [d]

    def test_different_pages_independent(self):
        table = LatchTable()
        a, b = op(), op()
        assert table.request(a, 1, EXCLUSIVE)
        assert table.request(b, 2, EXCLUSIVE)


class TestProtocolErrors:
    def test_double_latch_same_page_rejected(self):
        table = LatchTable()
        a = op()
        table.request(a, 1, SHARED)
        with pytest.raises(LatchError):
            table.request(a, 1, SHARED)

    def test_release_without_hold_rejected(self):
        table = LatchTable()
        with pytest.raises(LatchError):
            table.release(op(), 1)

    def test_unknown_mode_rejected(self):
        table = LatchTable()
        with pytest.raises(LatchError):
            table.request(op(), 1, "banana")

    def test_quiescence_check(self):
        table = LatchTable()
        a = op()
        table.request(a, 1, SHARED)
        with pytest.raises(LatchError):
            table.assert_quiescent()
        table.release(a, 1)
        table.assert_quiescent()


class TestWriteLatchTracking:
    def test_write_latch_count_for_priority(self):
        table = LatchTable()
        a = op()
        table.request(a, 1, EXCLUSIVE)
        table.request(a, 2, EXCLUSIVE)
        assert a.write_latches == 2
        table.release(a, 1)
        assert a.write_latches == 1
        table.release(a, 2)
        assert a.write_latches == 0

    def test_shared_does_not_count(self):
        table = LatchTable()
        a = op()
        table.request(a, 1, SHARED)
        assert a.write_latches == 0

    def test_entry_cleanup_when_idle(self):
        table = LatchTable()
        a = op()
        table.request(a, 1, SHARED)
        table.release(a, 1)
        assert table.holders(1) == (0, 0, 0)
        assert not table._entries
