"""Tests for the benchmark harness: reporting, runner, CLI."""


import pytest

from repro.bench.cli import main as cli_main
from repro.bench.report import format_value, print_series, print_table, shape_ratio
from repro.bench.runner import WorkloadSpec, _interleave_syncs, run_pa, run_sync_baseline
from repro.core.ops import SYNC, search_op, update_op
from repro.errors import BenchmarkError
from repro.nvme.device import fast_test_profile
from repro.sim.rng import RngRegistry


class TestReport:
    def test_format_value(self):
        assert format_value(0.0) == "0"
        assert format_value(12345.6) == "12346"
        assert format_value(12.34) == "12.3"
        assert format_value(1.2345) == "1.234"
        assert format_value("text") == "text"
        assert format_value(7) == "7"

    def test_print_table_alignment(self):
        lines = []
        print_table(
            "T",
            [("name", "n"), ("value", "v")],
            [{"n": "alpha", "v": 1.5}, {"n": "b", "v": 22222.0}],
            out=lines.append,
        )
        assert any("== T ==" in line for line in lines)
        header = next(line for line in lines if line.startswith("name"))
        row = next(line for line in lines if line.startswith("alpha"))
        assert header.index("value") == row.index("1.500")

    def test_print_table_missing_key_blank(self):
        lines = []
        print_table("T", [("a", "a"), ("b", "b")], [{"a": 1}], out=lines.append)
        assert any(line.startswith("1") for line in lines)

    def test_print_series(self):
        lines = []
        print_series(
            "S", "x", [1, 2], {"y1": [10, 20], "y2": [30, 40]}, out=lines.append
        )
        body = "\n".join(lines)
        assert "y1" in body and "40" in body

    def test_shape_ratio(self):
        assert shape_ratio(10, 5) == 2.0
        assert shape_ratio(10, 0) == float("inf")
        assert shape_ratio(0, 0) == 1.0


class TestWorkloadSpec:
    def test_builds_each_kind(self):
        rng = RngRegistry(1).stream("x")
        for kind in ("ycsb", "tdrive", "sse"):
            spec = WorkloadSpec(kind=kind, n_keys=100, n_ops=10, n_actors=5)
            workload = spec.build(rng)
            assert workload.preload_items()
            assert list(workload.operations())

    def test_unknown_kind_rejected(self):
        rng = RngRegistry(1).stream("x")
        with pytest.raises(BenchmarkError):
            WorkloadSpec(kind="nope").build(rng)

    def test_interleave_syncs(self):
        ops = [update_op(1, bytes(8)) for _ in range(5)] + [search_op(1)]
        result = list(_interleave_syncs(iter(ops), sync_every=2))
        kinds = [op.kind for op in result]
        assert kinds.count(SYNC) == 2
        assert kinds[2] == SYNC and kinds[5] == SYNC


class TestRunnerSmoke:
    def test_run_pa_small(self):
        spec = WorkloadSpec(kind="ycsb", n_keys=300, n_ops=60, mix="default")
        row = run_pa(
            spec,
            seed=3,
            scheduler="naive",
            device_profile=fast_test_profile(),
        )
        assert row["completed"] == 60
        assert row["throughput_ops"] > 0
        assert row["approach"] == "pa-tree"
        assert 0 <= row["cpu_breakdown"]["real_work"] <= 1

    def test_run_pa_weak_with_syncs(self):
        spec = WorkloadSpec(
            kind="ycsb", n_keys=300, n_ops=60, mix="update_heavy", sync_every=10
        )
        row = run_pa(
            spec,
            seed=3,
            scheduler="naive",
            persistence="weak",
            buffer_pages=128,
            device_profile=fast_test_profile(),
        )
        assert row["completed"] == 60  # sync ops excluded from the count

    def test_run_baseline_small(self):
        spec = WorkloadSpec(kind="ycsb", n_keys=300, n_ops=40, mix="default")
        row = run_sync_baseline(
            spec, "dedicated", 4, seed=3, device_profile=fast_test_profile()
        )
        assert row["completed"] == 40
        assert row["threads"] == 4

    def test_run_baseline_unknown_mode(self):
        spec = WorkloadSpec(kind="ycsb", n_keys=10, n_ops=1)
        with pytest.raises(BenchmarkError):
            run_sync_baseline(spec, "bogus", 1)

    def test_run_pa_unknown_scheduler(self):
        spec = WorkloadSpec(kind="ycsb", n_keys=10, n_ops=1)
        with pytest.raises(BenchmarkError):
            run_pa(spec, scheduler="bogus")


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        captured = capsys.readouterr().out
        assert "fig15" in captured and "table1" in captured

    def test_unknown_exhibit_errors(self):
        with pytest.raises(SystemExit):
            cli_main(["figure-nine-thousand"])


class TestCsvExport:
    def test_write_csv_flattens_and_orders(self, tmp_path):
        from repro.bench.report import write_csv

        rows = [
            {"a": 1, "nested": {"x": 0.5, "y": 2}, "skip": [1, 2]},
            {"a": 3, "nested": {"x": 0.7, "y": 4}},
        ]
        path = tmp_path / "out.csv"
        write_csv(rows, str(path))
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "a,nested.x,nested.y"
        assert lines[1] == "1,0.5,2"
        assert lines[2] == "3,0.7,4"

    def test_write_csv_explicit_columns(self, tmp_path):
        from repro.bench.report import write_csv

        rows = [{"a": 1, "b": 2}]
        path = tmp_path / "out.csv"
        write_csv(rows, str(path), columns=[("alpha", "a")])
        assert path.read_text().strip().splitlines() == ["alpha", "1"]
