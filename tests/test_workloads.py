"""Unit tests for the workload generators."""

import pytest

from repro.core.keys import order_key_decode
from repro.core.ops import DELETE, INSERT, RANGE, SEARCH, UPDATE
from repro.errors import WorkloadError
from repro.sim.rng import RngRegistry
from repro.workloads.sse import SseWorkload
from repro.workloads.tdrive import TDriveWorkload, SEQ_BITS
from repro.workloads.ycsb import (
    MIX_DEFAULT,
    MIX_READ_ONLY,
    MIX_UPDATE_HEAVY,
    YcsbWorkload,
)
from repro.workloads.zipf import ZipfSampler, scatter_rank


def rng(seed=1, name="wl"):
    return RngRegistry(seed).stream(name)


class TestZipf:
    def test_uniform_when_alpha_zero(self):
        sampler = ZipfSampler(1000, 0.0, rng())
        draws = sampler.sample_many(5_000)
        low_half = sum(1 for d in draws if d < 500)
        assert 0.44 < low_half / len(draws) < 0.56

    def test_skew_concentrates_low_ranks(self):
        sampler = ZipfSampler(1000, 1.2, rng())
        draws = sampler.sample_many(5_000)
        top_decile = sum(1 for d in draws if d < 100)
        assert top_decile / len(draws) > 0.5

    def test_draws_in_range(self):
        sampler = ZipfSampler(50, 0.9, rng())
        assert all(0 <= d < 50 for d in sampler.sample_many(1_000))

    def test_deterministic_given_seed(self):
        a = ZipfSampler(100, 0.5, rng(7)).sample_many(100)
        b = ZipfSampler(100, 0.5, rng(7)).sample_many(100)
        assert a == b

    def test_scatter_rank_bijective(self):
        n = 997
        assert sorted(scatter_rank(r, n) for r in range(n)) == list(range(n))

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ZipfSampler(0, 0.5, rng())
        with pytest.raises(WorkloadError):
            ZipfSampler(10, -1, rng())


class TestYcsb:
    def test_preload_sorted_unique(self):
        workload = YcsbWorkload(1_000, 100, mix=MIX_DEFAULT, rng=rng())
        items = workload.preload_items()
        keys = [k for k, _v in items]
        assert keys == sorted(set(keys))
        assert len(items) == 1_000

    def test_mix_ratios(self):
        for mix, expected in (
            (MIX_READ_ONLY, 0.0),
            (MIX_DEFAULT, 0.10),
            (MIX_UPDATE_HEAVY, 0.50),
        ):
            workload = YcsbWorkload(1_000, 4_000, mix=mix, rng=rng())
            ops = list(workload.operations())
            updates = sum(1 for op in ops if op.kind == UPDATE)
            assert abs(updates / len(ops) - expected) < 0.04

    def test_updates_target_preloaded_keys(self):
        workload = YcsbWorkload(500, 500, mix=MIX_UPDATE_HEAVY, rng=rng())
        preloaded = {k for k, _v in workload.preload_items()}
        for op in workload.operations():
            if op.kind in (UPDATE, SEARCH):
                assert op.key in preloaded

    def test_insert_ratio_produces_fresh_keys(self):
        workload = YcsbWorkload(
            500, 2_000, mix=MIX_UPDATE_HEAVY, rng=rng(), insert_ratio=0.5
        )
        preloaded = {k for k, _v in workload.preload_items()}
        inserts = [op for op in workload.operations() if op.kind == INSERT]
        assert inserts
        assert all(op.key not in preloaded for op in inserts)

    def test_payload_size_respected(self):
        workload = YcsbWorkload(
            100, 200, mix=MIX_UPDATE_HEAVY, rng=rng(), payload_size=64
        )
        for op in workload.operations():
            if op.payload is not None:
                assert len(op.payload) == 64

    def test_unknown_mix_rejected(self):
        with pytest.raises(WorkloadError):
            YcsbWorkload(10, 10, mix="bogus", rng=rng())

    def test_rng_required(self):
        with pytest.raises(WorkloadError):
            YcsbWorkload(10, 10)


class TestTDrive:
    def test_update_ratio(self):
        workload = TDriveWorkload(50, 1_000, 3_000, rng())
        workload.preload_items()
        ops = list(workload.operations())
        inserts = sum(1 for op in ops if op.kind == INSERT)
        ranges = sum(1 for op in ops if op.kind == RANGE)
        assert inserts + ranges == len(ops)
        assert abs(inserts / len(ops) - 0.70) < 0.04

    def test_preload_sorted_unique(self):
        workload = TDriveWorkload(20, 2_000, 0, rng())
        items = workload.preload_items()
        keys = [k for k, _v in items]
        assert keys == sorted(set(keys))

    def test_keys_unique_across_stream(self):
        workload = TDriveWorkload(20, 500, 2_000, rng())
        seen = {k for k, _v in workload.preload_items()}
        for op in workload.operations():
            if op.kind == INSERT:
                assert op.key not in seen
                seen.add(op.key)

    def test_range_queries_nonempty_bounds(self):
        workload = TDriveWorkload(20, 100, 500, rng())
        workload.preload_items()
        for op in workload.operations():
            if op.kind == RANGE:
                assert op.key <= op.high_key
                # z-range spans at least one sequence block
                assert op.high_key - op.key >= (1 << SEQ_BITS) - 1


class TestSse:
    def test_update_ratio_and_kinds(self):
        workload = SseWorkload(50, 2_000, 4_000, rng())
        workload.preload_items()
        ops = list(workload.operations())
        updates = sum(1 for op in ops if op.kind in (INSERT, DELETE))
        assert abs(updates / len(ops) - 0.28) < 0.04
        assert all(op.kind in (INSERT, DELETE, RANGE) for op in ops)

    def test_deletes_target_live_orders(self):
        workload = SseWorkload(10, 500, 2_000, rng())
        live = {k for k, _v in workload.preload_items()}
        for op in workload.operations():
            if op.kind == INSERT:
                live.add(op.key)
            elif op.kind == DELETE:
                assert op.key in live
                live.discard(op.key)

    def test_range_queries_single_stock(self):
        workload = SseWorkload(10, 100, 1_000, rng())
        workload.preload_items()
        for op in workload.operations():
            if op.kind == RANGE:
                stock_low, _p, _s = order_key_decode(op.key)
                stock_high, _p, _s = order_key_decode(op.high_key)
                assert stock_low == stock_high

    def test_payload_size(self):
        workload = SseWorkload(5, 50, 200, rng(), payload_size=100)
        for _k, value in workload.preload_items():
            assert len(value) == 100


class TestYcsbScanMix:
    def test_range_ratio_produces_scans(self):
        workload = YcsbWorkload(
            500, 2_000, mix=MIX_DEFAULT, rng=rng(), range_ratio=0.2, range_span=10
        )
        workload.preload_items()
        ops = list(workload.operations())
        ranges = [op for op in ops if op.kind == RANGE]
        assert 0.1 < len(ranges) / len(ops) < 0.3
        for op in ranges:
            assert op.high_key > op.key
            assert op.limit == 10

    def test_range_ratio_validation(self):
        with pytest.raises(WorkloadError):
            YcsbWorkload(10, 10, mix=MIX_DEFAULT, rng=rng(), range_ratio=2.0)
