"""Unit tests for the B+ tree node format."""

import pytest

from repro.core.node import Node, TreeConfig
from repro.errors import CorruptPageError, TreeError


@pytest.fixture
def config():
    return TreeConfig(page_size=512, payload_size=8)


def make_leaf(config, page_id, keys):
    leaf = Node.new_leaf(config, page_id)
    for key in keys:
        leaf.leaf_insert(key, key.to_bytes(8, "little"))
    return leaf


def make_inner(config, page_id, level, keys, children):
    inner = Node.new_inner(config, page_id, level)
    inner.keys = list(keys)
    inner.children = list(children)
    return inner


class TestConfig:
    def test_capacities_512(self, config):
        # (512 - 32) / 16 = 30 entries
        assert config.leaf_capacity == 30
        assert config.inner_capacity == 29
        assert config.leaf_min == 15

    def test_large_payload_reduces_fanout(self):
        config = TreeConfig(page_size=512, payload_size=100)
        assert config.leaf_capacity == 4

    def test_too_small_page_rejected(self):
        with pytest.raises(ValueError):
            TreeConfig(page_size=64, payload_size=60)


class TestLeafOps:
    def test_insert_sorted_lookup(self, config):
        leaf = make_leaf(config, 7, [30, 10, 20])
        assert leaf.keys == [10, 20, 30]
        assert leaf.leaf_lookup(20) == (20).to_bytes(8, "little")
        assert leaf.leaf_lookup(15) is None

    def test_insert_overwrites(self, config):
        leaf = make_leaf(config, 7, [5])
        assert leaf.leaf_insert(5, b"new-val!") is False
        assert leaf.leaf_lookup(5) == b"new-val!"
        assert leaf.count == 1

    def test_insert_wrong_payload_size(self, config):
        leaf = Node.new_leaf(config, 1)
        with pytest.raises(TreeError):
            leaf.leaf_insert(1, b"short")

    def test_insert_full_raises(self, config):
        leaf = make_leaf(config, 1, range(config.leaf_capacity))
        with pytest.raises(TreeError):
            leaf.leaf_insert(999, (999).to_bytes(8, "little"))

    def test_delete(self, config):
        leaf = make_leaf(config, 1, [1, 2, 3])
        assert leaf.leaf_delete(2) is True
        assert leaf.leaf_delete(2) is False
        assert leaf.keys == [1, 3]

    def test_range_from(self, config):
        leaf = make_leaf(config, 1, [10, 20, 30])
        assert leaf.leaf_range_from(15) == 1
        assert leaf.leaf_range_from(20) == 1
        assert leaf.leaf_range_from(31) == 3


class TestInnerOps:
    def test_child_routing(self, config):
        inner = make_inner(config, 9, 1, [10, 20], [100, 101, 102])
        assert inner.child_for(5) == 100
        assert inner.child_for(10) == 101  # separator = min of right subtree
        assert inner.child_for(15) == 101
        assert inner.child_for(20) == 102
        assert inner.child_for(99) == 102

    def test_inner_insert(self, config):
        inner = make_inner(config, 9, 1, [10], [100, 101])
        inner.inner_insert(20, 102)
        assert inner.keys == [10, 20]
        assert inner.children == [100, 101, 102]

    def test_inner_insert_duplicate_separator(self, config):
        inner = make_inner(config, 9, 1, [10], [100, 101])
        with pytest.raises(TreeError):
            inner.inner_insert(10, 103)

    def test_remove_child(self, config):
        inner = make_inner(config, 9, 1, [10, 20], [100, 101, 102])
        inner.inner_remove_child(1)
        assert inner.keys == [20]
        assert inner.children == [100, 102]


class TestSplit:
    def test_leaf_split_preserves_all_keys(self, config):
        keys = list(range(0, 60, 2))[: config.leaf_capacity]
        leaf = make_leaf(config, 1, keys)
        leaf.next_id = 77
        right, separator = leaf.split(2)
        assert separator == right.keys[0]
        assert leaf.keys + right.keys == sorted(keys)
        assert leaf.next_id == 2
        assert right.next_id == 77
        assert leaf.high_key == separator

    def test_inner_split_pushes_separator_up(self, config):
        n = config.inner_capacity
        inner = make_inner(config, 1, 2, list(range(n)), list(range(100, 100 + n + 1)))
        right, separator = inner.split(2)
        # separator appears in neither node
        assert separator not in inner.keys
        assert separator not in right.keys
        assert sorted(inner.keys + [separator] + right.keys) == list(range(n))
        assert len(inner.children) == len(inner.keys) + 1
        assert len(right.children) == len(right.keys) + 1

    def test_split_tiny_node_rejected(self, config):
        leaf = make_leaf(config, 1, [5])
        with pytest.raises(TreeError):
            leaf.split(2)


class TestMergeBorrow:
    def test_leaf_merge(self, config):
        left = make_leaf(config, 1, [1, 2])
        right = make_leaf(config, 2, [5, 6])
        right.next_id = 9
        left.next_id = 2
        left.merge_from_right(right, separator=5)
        assert left.keys == [1, 2, 5, 6]
        assert left.next_id == 9

    def test_inner_merge_includes_separator(self, config):
        left = make_inner(config, 1, 1, [10], [100, 101])
        right = make_inner(config, 2, 1, [30], [102, 103])
        left.merge_from_right(right, separator=20)
        assert left.keys == [10, 20, 30]
        assert left.children == [100, 101, 102, 103]

    def test_leaf_borrow_from_right(self, config):
        left = make_leaf(config, 1, [1])
        right = make_leaf(config, 2, [5, 6, 7])
        new_sep = left.borrow_from_right(right, separator=5)
        assert left.keys == [1, 5]
        assert right.keys == [6, 7]
        assert new_sep == 6

    def test_inner_borrow_from_right(self, config):
        left = make_inner(config, 1, 1, [10], [100, 101])
        right = make_inner(config, 2, 1, [30, 40], [102, 103, 104])
        new_sep = left.borrow_from_right(right, separator=20)
        assert left.keys == [10, 20]
        assert left.children == [100, 101, 102]
        assert new_sep == 30
        assert right.keys == [40]

    def test_leaf_borrow_from_left(self, config):
        left = make_leaf(config, 1, [1, 2, 3])
        right = make_leaf(config, 2, [9])
        new_sep = right.borrow_from_left(left, separator=9)
        assert right.keys == [3, 9]
        assert left.keys == [1, 2]
        assert new_sep == 3


class TestSerialization:
    def test_leaf_roundtrip(self, config):
        leaf = make_leaf(config, 42, [3, 1, 2])
        leaf.next_id = 99
        leaf.high_key = 100
        restored = Node.from_bytes(config, 42, leaf.to_bytes())
        assert restored.keys == [1, 2, 3]
        assert restored.values == leaf.values
        assert restored.next_id == 99
        assert restored.high_key == 100
        assert restored.is_leaf

    def test_inner_roundtrip(self, config):
        inner = make_inner(config, 7, 3, [10, 20], [100, 200, 300])
        restored = Node.from_bytes(config, 7, inner.to_bytes())
        assert restored.keys == [10, 20]
        assert restored.children == [100, 200, 300]
        assert restored.level == 3
        assert not restored.is_leaf
        assert restored.high_key is None

    def test_wrong_page_id_detected(self, config):
        leaf = make_leaf(config, 42, [1])
        with pytest.raises(CorruptPageError):
            Node.from_bytes(config, 43, leaf.to_bytes())

    def test_bad_magic_detected(self, config):
        leaf = make_leaf(config, 42, [1])
        image = bytearray(leaf.to_bytes())
        image[0] = 0
        with pytest.raises(CorruptPageError):
            Node.from_bytes(config, 42, bytes(image))

    def test_out_of_order_keys_detected(self, config):
        leaf = make_leaf(config, 1, [1, 2])
        leaf.keys = [2, 1]  # corrupt in memory
        image = leaf.to_bytes()
        with pytest.raises(CorruptPageError):
            Node.from_bytes(config, 1, image)

    def test_wrong_image_size_detected(self, config):
        with pytest.raises(CorruptPageError):
            Node.from_bytes(config, 1, b"\x00" * 100)

    def test_safety_predicates(self, config):
        leaf = make_leaf(config, 1, range(config.leaf_capacity))
        assert not leaf.is_safe_for_insert()
        assert leaf.is_safe_for_delete()
        small = make_leaf(config, 2, range(config.leaf_min))
        assert small.is_safe_for_insert()
        assert not small.is_safe_for_delete()
