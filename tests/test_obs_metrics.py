"""Tests for the metrics & health subsystem (repro.obs.metrics et al).

Covers the labeled registry (identity, ordering, kind conflicts, the
null registry's zero-cost contract), the Prometheus and JSONL
exporters, the virtual-time scraper, the SLO tracker, the flight
recorder with its postmortems, and the end-to-end MetricsSession
guarantees: artefacts are byte-identical across same-seed runs and an
attached session never perturbs the simulation's results.
"""

import json

import pytest

from repro.api import PATreeSession, ShardedSession
from repro.errors import RetryExhaustedError
from repro.obs import (
    DEFAULT_TARGETS_US,
    FlightRecorder,
    MetricError,
    MetricRegistry,
    MetricScraper,
    NULL_REGISTRY,
    SloTracker,
    prometheus_text,
)
from repro.sim.clock import Clock, usec
from repro.sim.engine import Engine
from repro.workloads import YcsbWorkload
from repro.sim.rng import RngRegistry


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------


def test_registry_identity_is_name_plus_labels():
    registry = MetricRegistry()
    a = registry.counter("reads_total", {"shard": "0"})
    b = registry.counter("reads_total", {"shard": "1"})
    again = registry.counter("reads_total", {"shard": "0"})
    assert a is again and a is not b
    a.inc(3)
    assert registry.get("reads_total", {"shard": "0"}).read() == 3
    assert registry.get("reads_total", {"shard": "1"}).read() == 0


def test_registry_label_order_does_not_split_identity():
    registry = MetricRegistry()
    a = registry.gauge("depth_count", {"a": 1, "b": 2})
    b = registry.gauge("depth_count", {"b": 2, "a": 1})
    assert a is b
    assert a.flat == 'depth_count{a="1",b="2"}'


def test_registry_iterates_in_registration_order():
    registry = MetricRegistry()
    registry.counter("z_total")
    registry.gauge("a_count")
    registry.counter("m_total")
    assert [m.name for m in registry] == ["z_total", "a_count", "m_total"]


def test_registry_rejects_kind_conflicts_and_bad_names():
    registry = MetricRegistry()
    registry.counter("reads_total")
    with pytest.raises(MetricError):
        registry.gauge("reads_total")
    with pytest.raises(MetricError):
        registry.counter("BadName_total")
    with pytest.raises(MetricError):
        registry.counter("reads")  # no unit suffix


def test_callback_counters_read_live_values():
    registry = MetricRegistry()
    state = {"n": 0}
    metric = registry.counter("events_total", fn=lambda: state["n"])
    assert metric.read() == 0
    state["n"] = 7
    assert metric.read() == 7
    assert registry.scalars() == {"events_total": 7}


def test_null_registry_is_inert():
    metric = NULL_REGISTRY.counter("anything at all")  # no validation
    metric.inc()
    metric.set(5)
    metric.observe(123)
    assert metric.read() == 0
    assert NULL_REGISTRY.enabled is False
    assert len(NULL_REGISTRY) == 0
    assert NULL_REGISTRY.scalars() == {}
    assert NULL_REGISTRY.snapshot() == {}


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------


def test_prometheus_text_shape():
    registry = MetricRegistry()
    registry.counter("reads_total", {"shard": "0"}, help="device reads").inc(4)
    registry.counter("reads_total", {"shard": "1"}).inc(2)
    registry.gauge("depth_count").set(9)
    text = prometheus_text(registry)
    lines = text.splitlines()
    assert lines[0] == "# HELP reads_total device reads"
    assert lines[1] == "# TYPE reads_total counter"
    assert 'reads_total{shard="0"} 4' in lines
    assert 'reads_total{shard="1"} 2' in lines
    # one TYPE header per name, even with two label sets
    assert sum(1 for l in lines if l.startswith("# TYPE reads_total")) == 1
    assert "depth_count 9" in lines


def test_prometheus_histogram_is_cumulative():
    registry = MetricRegistry()
    hist = registry.histogram("lat_ns", bounds=[1_000, 10_000])
    for value in (500, 5_000, 50_000):
        hist.observe(value)
    lines = prometheus_text(registry).splitlines()
    assert 'lat_ns_bucket{le="1.0"} 1' in lines
    assert 'lat_ns_bucket{le="10.0"} 2' in lines
    assert 'lat_ns_bucket{le="+Inf"} 3' in lines
    assert "lat_ns_count 3" in lines


def test_scraper_rides_virtual_time_and_stops():
    engine = Engine(seed=1)
    registry = MetricRegistry()
    counter = registry.counter("ticks_total")
    scraper = MetricScraper(engine, registry, interval_ns=1_000)
    engine.schedule(500, counter.inc)
    engine.schedule(2_500, counter.inc)
    scraper.start()
    engine.schedule(3_500, scraper.stop)
    engine.run()
    assert [t for t, _row in scraper.samples] == [1_000, 2_000, 3_000]
    assert [row["ticks_total"] for _t, row in scraper.samples] == [1, 1, 2]


def test_scraper_jsonl_round_trips(tmp_path):
    engine = Engine(seed=1)
    registry = MetricRegistry()
    registry.gauge("depth_count", fn=lambda: 4)
    scraper = MetricScraper(engine, registry, interval_ns=1_000)
    scraper.start()
    engine.schedule(2_500, scraper.stop)
    engine.run()
    path = scraper.write_jsonl(str(tmp_path / "m.jsonl"))
    rows = [json.loads(line) for line in open(path)]
    assert rows == [
        {"t_ns": 1_000, "metrics": {"depth_count": 4}},
        {"t_ns": 2_000, "metrics": {"depth_count": 4}},
    ]


# ----------------------------------------------------------------------
# SLO tracker
# ----------------------------------------------------------------------


def test_slo_tracker_counts_violations_per_class():
    registry = MetricRegistry()
    slo = SloTracker(registry)
    target_ns = usec(DEFAULT_TARGETS_US["search"])
    slo.observe("search", target_ns - 1)
    slo.observe("search", target_ns + 1)
    slo.observe("range", usec(100.0))  # well under the range target
    (search_row, range_row) = slo.table()
    assert search_row["op"] == "search" and search_row["count"] == 2
    assert search_row["violations"] == 1
    assert range_row["violations"] == 0
    assert slo.total_violations() == 1
    # the registry view agrees with the table view
    assert registry.get(
        "slo_violations_total", {"op": "search"}
    ).read() == 1


def test_slo_tracker_shard_labels_split_cells():
    slo = SloTracker(MetricRegistry())
    slo.observe("search", usec(1_000.0), shard=0)
    slo.observe("search", usec(1.0), shard=1)
    rows = {row["shard"]: row for row in slo.table()}
    assert rows["0"]["violations"] == 1
    assert rows["1"]["violations"] == 0


def test_slo_tracker_custom_targets():
    slo = SloTracker(MetricRegistry(), targets_us={"search": 1.0})
    slo.observe("search", usec(2.0))
    assert slo.total_violations() == 1
    # unknown classes fall back to the default target
    assert slo.target_us("compact") == 1_000.0


# ----------------------------------------------------------------------
# flight recorder
# ----------------------------------------------------------------------


class _Cmd:
    def __init__(self, opcode="read", lba=7, retries=0):
        self.opcode = opcode
        self.lba = lba
        self.retries = retries


def test_flight_recorder_ring_is_bounded():
    clock = Clock()
    flight = FlightRecorder(clock, capacity=3)
    for i in range(5):
        clock.advance_to(i * 100)
        flight.record_completion(_Cmd(lba=i), ok=True)
    events = flight.events()
    assert len(events) == 3
    assert [e["lba"] for e in events] == [2, 3, 4]  # oldest dropped
    summary = flight.summary()
    assert summary["recorded_total"] == 5
    assert summary["in_ring"] == 3
    assert summary["by_kind"] == {"completion": 3}


def test_flight_recorder_postmortem_names_the_failure():
    clock = Clock()
    flight = FlightRecorder(clock, capacity=8)
    flight.record_completion(_Cmd(lba=42), ok=False, status="media_error")
    error = RetryExhaustedError(
        "read of lba 42 failed", status="media_error", opcode="read", lba=42
    )
    flight.record_error(error)
    report = flight.postmortem(error, context={"op_seq": 5})
    assert report["error"] == "RetryExhaustedError"
    assert report["lba"] == 42 and report["op"] == "read"
    assert report["context"] == {"op_seq": 5}
    assert report["recent_events"][-1]["kind"] == "error"


# ----------------------------------------------------------------------
# MetricsSession end to end
# ----------------------------------------------------------------------

_FAULTS = {"read_error_rate": 0.3, "poison_ranges": ((40, 60),)}
_RETRY = {"max_retries": 2}


def _workload(seed, n_ops=250):
    return YcsbWorkload(
        2_000, n_ops, mix="default", rng=RngRegistry(seed).stream("workload")
    )


def _run_session(seed=3, metrics=True, **config):
    workload = _workload(seed)
    with PATreeSession(seed=seed, **config) as session:
        recorder = session.attach_metrics() if metrics else None
        session.bulk_load(workload.preload_items())
        if recorder is not None:
            recorder.start()
        session.execute(workload.operations())
        if recorder is not None:
            recorder.finish()
        stats = session.stats()
    return stats, recorder


def test_metrics_session_populates_every_layer():
    _stats, recorder = _run_session()
    scalars = recorder.registry.scalars()
    for name in (
        "device_reads_total",
        "driver_retries_total",
        "qpair_completed_total",
        "latch_grants_total",
        "buffer_hits_total",
        "sched_ready_ops",
        "engine_completed_total",
        "engine_probes_total",
    ):
        assert name in scalars, name
    assert scalars["engine_completed_total"] > 0
    assert recorder.slo.table()  # at least one op class observed
    assert recorder.flight.summary()["recorded_total"] > 0
    assert recorder.scraper.samples


def test_metrics_session_does_not_perturb_results():
    bare, _ = _run_session(metrics=False)
    observed, _ = _run_session(metrics=True)
    assert bare == observed


def test_metrics_session_restores_hooks_on_finish():
    workload = _workload(3)
    with PATreeSession(seed=3) as session:
        device = session.env.device
        before = device.on_complete
        recorder = session.attach_metrics()
        session.bulk_load(workload.preload_items())
        recorder.start()
        assert device.on_complete is not before
        session.execute(workload.operations())
        recorder.finish()
        assert device.on_complete is before
        assert session.pa_engine.op_observer is None


def test_fault_run_captures_postmortems():
    _stats, recorder = _run_session(faults=_FAULTS, retry=_RETRY)
    assert recorder.postmortems
    first = recorder.postmortems[0]
    assert first["error"] in ("RetryExhaustedError", "IoError")
    assert first["lba"] is not None and first["op"] is not None
    assert recorder.registry.scalars()["fault_media_errors_total"] > 0


def test_metrics_artifacts_byte_identical_across_same_seed_runs(tmp_path):
    paths = []
    for run in ("a", "b"):
        _stats, recorder = _run_session(faults=_FAULTS, retry=_RETRY)
        prefix = str(tmp_path / run)
        paths.append(recorder.write_artifacts(prefix))
    for first, second in zip(*paths):
        assert open(first, "rb").read() == open(second, "rb").read()
    assert len(paths[0]) == 3  # jsonl + prom + postmortem


def test_sharded_session_metrics_carry_shard_labels():
    workload = _workload(5)
    with ShardedSession(seed=5, shards=2) as session:
        recorder = session.attach_metrics()
        session.bulk_load(workload.preload_items())
        recorder.start()
        session.execute(workload.operations())
        recorder.finish()
    scalars = recorder.registry.scalars()
    assert 'engine_completed_total{shard="0"}' in scalars
    assert 'engine_completed_total{shard="1"}' in scalars
    assert "router_user_completed_total" in scalars
    total = sum(
        scalars['engine_completed_total{shard="%d"}' % i] for i in (0, 1)
    )
    assert total == scalars["router_user_completed_total"]


def test_health_report_mentions_the_three_sections():
    _stats, recorder = _run_session()
    text = recorder.health_report()
    assert "== health: metrics ==" in text
    assert "== health: SLO ==" in text
    assert "== health: flight recorder ==" in text


def test_trace_and_metrics_sessions_coexist():
    # attach a trace session and a metrics session to the same run to
    # prove hook chaining keeps both observers fed
    workload = _workload(3)
    with PATreeSession(seed=3) as session:
        from repro.obs import TraceSession

        trace = TraceSession(session.env.engine)
        trace.attach_device(session.env.device)
        trace.attach_worker(session.pa_engine)
        recorder = session.attach_metrics()
        session.bulk_load(workload.preload_items())
        trace.start()
        recorder.start()
        session.execute(workload.operations())
        recorder.finish()
        trace.finish()
    assert trace.tracer.events
    assert recorder.flight.summary()["recorded_total"] > 0
