"""Property-based tests (hypothesis) for the tree and its substrates.

The central property: a PA-Tree driven by any interleaved sequence of
operations is observationally equivalent to a sorted dict, and every
on-media structural invariant holds afterwards.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.node import Node, TreeConfig
from repro.core.ops import delete_op, insert_op, range_op, search_op, update_op
from repro.core.source import ClosedLoopSource
from repro.core.engine import PaTreeEngine
from repro.core.tree import PaTree
from repro.nvme.device import NvmeDevice, fast_test_profile
from repro.nvme.driver import NvmeDriver
from repro.sched.naive import NaiveScheduling
from repro.sim.engine import Engine
from repro.simos.scheduler import OsProfile, SimOS


def payload(key):
    return (key % 2**64).to_bytes(8, "little")


KEYS = st.integers(min_value=0, max_value=5_000)

OPERATION = st.one_of(
    st.tuples(st.just("insert"), KEYS),
    st.tuples(st.just("delete"), KEYS),
    st.tuples(st.just("update"), KEYS),
    st.tuples(st.just("search"), KEYS),
    st.tuples(st.just("range"), KEYS),
)


def build_engine(seed):
    engine = Engine(seed=seed)
    simos = SimOS(engine, OsProfile(cores=4))
    device = NvmeDevice(engine, fast_test_profile())
    driver = NvmeDriver(device)
    tree = PaTree.create(device)
    pa = PaTreeEngine(
        simos,
        driver,
        tree,
        NaiveScheduling(),
        source=ClosedLoopSource([], window=16),
    )
    return pa


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(script=st.lists(OPERATION, min_size=1, max_size=120), seed=st.integers(0, 100))
def test_tree_equivalent_to_dict(script, seed):
    pa = build_engine(seed)
    model = {}
    operations = []
    expected = []
    for kind, key in script:
        if kind == "insert":
            operations.append(insert_op(key, payload(key)))
            expected.append(key not in model)
            model[key] = payload(key)
        elif kind == "delete":
            operations.append(delete_op(key))
            expected.append(key in model)
            model.pop(key, None)
        elif kind == "update":
            operations.append(update_op(key, payload(key + 1)))
            expected.append(key in model)
            if key in model:
                model[key] = payload(key + 1)
        elif kind == "search":
            operations.append(search_op(key))
            expected.append(model.get(key))
        else:
            operations.append(range_op(key, key + 100))
            expected.append(
                sorted((k, v) for k, v in model.items() if key <= k <= key + 100)
            )

    # window=1 keeps operations sequential so per-op results are exact
    pa.source = ClosedLoopSource(operations, window=1)
    pa.run_to_completion()

    for op, want in zip(operations, expected):
        assert op.result == want, (op.kind, op.key)

    assert dict(pa.tree.iterate_items_raw()) == model
    stats = pa.tree.validate()
    assert stats["keys"] == len(model)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    script=st.lists(OPERATION, min_size=1, max_size=150),
    seed=st.integers(0, 100),
    window=st.integers(2, 24),
)
def test_tree_interleaved_final_state(script, seed, window):
    """With interleaving, per-op results depend on order, but the final
    media state must equal the dict built from sequential application
    (keys never collide mid-flight when each key appears once in
    flight; we assert only invariants + key-set sanity)."""
    pa = build_engine(seed)
    operations = []
    touched = set()
    for kind, key in script:
        if kind == "insert":
            operations.append(insert_op(key, payload(key)))
            touched.add(key)
        elif kind == "delete":
            operations.append(delete_op(key))
        elif kind == "update":
            operations.append(update_op(key, payload(key + 1)))
        elif kind == "search":
            operations.append(search_op(key))
        else:
            operations.append(range_op(key, key + 50))
    pa.source = ClosedLoopSource(operations, window=window)
    pa.run_to_completion()
    stats = pa.tree.validate()
    media = dict(pa.tree.iterate_items_raw())
    assert stats["keys"] == len(media)
    assert set(media) <= touched


@settings(max_examples=50, deadline=None)
@given(
    keys=st.lists(
        st.integers(0, 2**64 - 1), min_size=1, max_size=60, unique=True
    )
)
def test_node_serialization_roundtrip(keys):
    config = TreeConfig(page_size=1024, payload_size=8)
    keys = sorted(keys)[: config.leaf_capacity]
    leaf = Node.new_leaf(config, 3)
    for key in keys:
        leaf.leaf_insert(key, payload(key))
    restored = Node.from_bytes(config, 3, leaf.to_bytes())
    assert restored.keys == sorted(keys)
    assert restored.values == [payload(k) for k in sorted(keys)]


@settings(max_examples=50, deadline=None)
@given(
    keys=st.lists(st.integers(0, 10**9), min_size=4, max_size=40, unique=True)
)
def test_split_then_merge_is_identity(keys):
    config = TreeConfig(page_size=1024, payload_size=8)
    keys = sorted(keys)[: config.leaf_capacity]
    if len(keys) < 4:
        return
    leaf = Node.new_leaf(config, 1)
    for key in keys:
        leaf.leaf_insert(key, payload(key))
    right, separator = leaf.split(2)
    assert leaf.keys == [k for k in keys if k < separator]
    assert right.keys == [k for k in keys if k >= separator]
    leaf.merge_from_right(right, separator)
    assert leaf.keys == keys


@settings(max_examples=40, deadline=None)
@given(
    items=st.lists(
        st.tuples(st.integers(0, 2**40), st.binary(min_size=8, max_size=8)),
        min_size=1,
        max_size=500,
        unique_by=lambda kv: kv[0],
    )
)
def test_bulk_load_roundtrip(items):
    device = NvmeDevice(Engine(seed=0), fast_test_profile())
    tree = PaTree.create(device)
    items = sorted(items)
    tree.bulk_load(items)
    assert list(tree.iterate_items_raw()) == items
    stats = tree.validate(check_fill=True)
    assert stats["keys"] == len(items)
