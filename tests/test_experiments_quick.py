"""Quick integration tests over the experiment modules themselves.

These run each paper-exhibit module at a very small scale so the
benchmark code paths (sweeps, memoization, reporting, shape helpers)
are exercised by ``pytest tests/`` without the full benchmark cost.
"""



from repro.bench.experiments import fig3_device, fig7_fig8
from repro.bench.runner import WorkloadSpec, run_pa


class TestFig3Quick:
    def test_single_point(self):
        point = fig3_device.run_fixed_qd(8, 0.5, duration_us=5_000)
        assert point["completed"] > 0
        assert point["iops"] > 0
        assert point["mean_latency_us"] > 0

    def test_small_sweep_monotone(self):
        qds, iops_series, _lat = fig3_device.run_fig3a_b(
            qd_sweep=(1, 8), write_rates=(0.0,), duration_us=5_000
        )
        reads = iops_series["write=0%"]
        assert reads[1] > 3 * reads[0]

    def test_fig3c_small(self):
        cycles, iops, latency = fig3_device.run_fig3c(
            probe_cycles_us=(5, 100), duration_us=5_000
        )
        assert len(iops["iops"]) == 2
        assert latency["latency_us"][1] > latency["latency_us"][0]


class TestFig7Quick:
    def test_tiny_grid_memoized(self):
        rows = fig7_fig8.run_grid(
            mixes=("default",), threads=(1,), n_keys=2_000, n_ops=150
        )
        again = fig7_fig8.run_grid(
            mixes=("default",), threads=(1,), n_keys=2_000, n_ops=150
        )
        assert rows is again  # memoized
        approaches = {row["approach"] for row in rows}
        assert approaches == {"pa-tree", "shared", "dedicated"}
        pa = next(r for r in rows if r["approach"] == "pa-tree")
        assert pa["throughput_ops"] > 0

    def test_best_baseline_helper(self):
        rows = fig7_fig8.run_grid(
            mixes=("default",), threads=(1,), n_keys=2_000, n_ops=150
        )
        best = fig7_fig8.best_baseline(rows, "default", "shared")
        assert best["approach"] == "shared"

    def test_report_renders(self):
        rows = fig7_fig8.run_grid(
            mixes=("default",), threads=(1,), n_keys=2_000, n_ops=150
        )
        lines = []
        fig7_fig8.report(rows, out=lines.append)
        assert any("pa-tree" in str(line) for line in lines)


class TestRunPaVariants:
    def test_naive_vs_aware_same_results(self):
        spec = WorkloadSpec(kind="ycsb", n_keys=2_000, n_ops=200, mix="default")
        naive = run_pa(spec, seed=5, scheduler="naive")
        aware = run_pa(spec, seed=5, scheduler="workload_aware")
        assert naive["completed"] == aware["completed"] == 200

    def test_deterministic_given_seed(self):
        spec = WorkloadSpec(kind="ycsb", n_keys=2_000, n_ops=200, mix="default")
        a = run_pa(spec, seed=9, scheduler="naive")
        b = run_pa(spec, seed=9, scheduler="naive")
        assert a["throughput_ops"] == b["throughput_ops"]
        assert a["mean_latency_us"] == b["mean_latency_us"]
        assert a["device_reads"] == b["device_reads"]

    def test_different_seeds_differ(self):
        spec = WorkloadSpec(kind="ycsb", n_keys=2_000, n_ops=200, mix="default")
        a = run_pa(spec, seed=9, scheduler="naive")
        b = run_pa(spec, seed=10, scheduler="naive")
        assert a["mean_latency_us"] != b["mean_latency_us"]
