"""Tests for patlint (tools.analysis): rules, framework, CLI, shim.

Each rule gets inline fixture snippets for the positive, negative and
suppressed cases; the framework tests cover scoping, suppressions,
baselines and reporters; and the self-checks pin the acceptance
invariant that the repository itself analyzes clean.
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if REPO_ROOT not in sys.path:
    sys.path.insert(0, REPO_ROOT)

from tools.analysis import analyze
from tools.analysis.cli import main as patlint_main


def run_snippet(tmp_path, code, scope="src", filename="mod.py"):
    # ``filename`` may carry subdirectories (path-scoped rules such as
    # PA407 key on segments like repro/fuzz/)
    target = tmp_path / scope / filename
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(code))
    return analyze([str(target)]).findings


def codes(findings):
    return [finding.code for finding in findings]


# ---------------------------------------------------------------------------
# PA1xx determinism
# ---------------------------------------------------------------------------


def test_pa101_wall_clock_direct(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        import time

        def now():
            return time.time()
        """,
    )
    assert codes(findings) == ["PA101"]
    assert "time.time" in findings[0].message


def test_pa101_wall_clock_alias_and_from_import(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        import time as t
        from time import perf_counter

        def now():
            return t.monotonic() + perf_counter()
        """,
    )
    assert codes(findings) == ["PA101", "PA101"]


def test_pa101_datetime_now(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        from datetime import datetime

        def stamp():
            return datetime.now()
        """,
    )
    assert codes(findings) == ["PA101"]


def test_pa101_negative_virtual_clock(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        def now(engine):
            return engine.now
        """,
    )
    assert findings == []


def test_pa101_suppressed(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        import time

        def now():
            return time.time()  # patlint: ignore[PA101]
        """,
    )
    assert findings == []


def test_pa101_not_checked_outside_src(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        import time

        def now():
            return time.time()
        """,
        scope="tests",
    )
    assert findings == []


def test_pa102_module_level_random(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        import random

        def draw():
            return random.randint(0, 7)
        """,
    )
    assert codes(findings) == ["PA102"]


def test_pa102_urandom_and_uuid(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        import os
        import uuid

        def token():
            return os.urandom(8), uuid.uuid4()
        """,
    )
    assert codes(findings) == ["PA102", "PA102"]


def test_pa102_allows_seeded_random_instances(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        import random

        def stream(seed):
            return random.Random(seed)
        """,
    )
    assert findings == []


def test_pa103_sort_keyed_on_id(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        def order(nodes):
            return sorted(nodes, key=id)

        def order_lambda(nodes):
            nodes.sort(key=lambda node: id(node))
        """,
    )
    assert codes(findings) == ["PA103", "PA103"]


def test_pa103_negative_stable_key(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        def order(nodes):
            return sorted(nodes, key=lambda node: node.page_id)
        """,
    )
    assert findings == []


def test_pa110_set_iteration(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        def emit(counts):
            return [key for key in set(counts)]
        """,
    )
    assert codes(findings) == ["PA110"]


def test_pa110_for_loop_over_set_literal(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        def walk():
            for kind in {"read", "write"}:
                yield kind
        """,
    )
    assert codes(findings) == ["PA110"]


def test_pa110_sorted_wrapper_is_clean(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        def emit(counts):
            return [key for key in sorted(set(counts))]
        """,
    )
    assert findings == []


def test_pa110_emit_context_set_local(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        class Worker:
            def stats(self):
                pages = set(self._dirty)
                out = {}
                for page in pages:
                    out[page] = 1
                return out
        """,
    )
    assert codes(findings) == ["PA110"]
    assert "'pages'" in findings[0].message


def test_pa110_non_emit_function_local_not_tracked(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        def prefetch(self):
            pages = set(self._dirty)
            for page in pages:
                self.load(page)
        """,
    )
    assert findings == []


# ---------------------------------------------------------------------------
# PA2xx virtual-time discipline
# ---------------------------------------------------------------------------


def test_pa201_real_sleep(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        import time

        def wait():
            time.sleep(0.1)
        """,
    )
    assert codes(findings) == ["PA201"]


def test_pa202_threading_import(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        import threading
        from concurrent.futures import ThreadPoolExecutor

        def spin():
            return threading.Thread(target=ThreadPoolExecutor)
        """,
    )
    assert codes(findings) == ["PA202", "PA202"]


def test_pa203_asyncio_and_native_async(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        import asyncio

        async def poll():
            return asyncio.get_event_loop()
        """,
    )
    assert codes(findings) == ["PA203", "PA203"]


# ---------------------------------------------------------------------------
# PA3xx fault-path hygiene
# ---------------------------------------------------------------------------


def test_pa301_bare_except(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        def probe(driver):
            try:
                return driver.probe()
            except:
                return None
        """,
    )
    assert codes(findings) == ["PA301"]


def test_pa301_named_except_is_clean(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        def probe(driver):
            try:
                return driver.probe()
            except ValueError:
                return None
        """,
    )
    assert findings == []


def test_pa301_relaxed_in_tests_scope(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        def probe(driver):
            try:
                return driver.probe()
            except:
                return None
        """,
        scope="tests",
    )
    assert findings == []


def test_pa302_status_string_compare(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        def ok(command):
            return command.status == "completed"
        """,
    )
    assert codes(findings) == ["PA302"]


def test_pa302_enum_compare_is_clean(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        from repro.nvme.command import IoStatus

        def ok(command):
            return command.status is IoStatus.SUCCESS
        """,
    )
    assert findings == []


def test_pa303_non_exhaustive_dispatch(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        from repro.nvme.command import IoStatus

        def classify(completion):
            if completion.status is IoStatus.SUCCESS:
                return "ok"
            elif completion.status is IoStatus.MEDIA_ERROR:
                return "retry"
        """,
    )
    assert codes(findings) == ["PA303"]
    for member in ("PENDING", "SUBMITTED", "UNRECOVERED_READ"):
        assert member in findings[0].message


def test_pa303_exhaustive_dispatch_is_clean(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        from repro.nvme.command import IoStatus

        def classify(completion):
            if completion.status is IoStatus.SUCCESS:
                return "ok"
            elif completion.status is IoStatus.MEDIA_ERROR:
                return "retry"
            elif completion.status in (
                IoStatus.PENDING,
                IoStatus.SUBMITTED,
                IoStatus.UNRECOVERED_READ,
            ):
                return "other"
        """,
    )
    assert findings == []


def test_pa303_else_arm_is_clean(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        from repro.nvme.command import IoStatus

        def classify(completion):
            if completion.status is IoStatus.SUCCESS:
                return "ok"
            elif completion.status is IoStatus.MEDIA_ERROR:
                return "retry"
            else:
                return "other"
        """,
    )
    assert findings == []


def test_pa303_single_if_guard_is_clean(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        from repro.nvme.command import IoStatus

        def guard(completion):
            if completion.status is IoStatus.MEDIA_ERROR:
                return "retry"
        """,
    )
    assert findings == []


def test_pa303_mixed_chain_is_clean(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        from repro.nvme.command import IoStatus

        def classify(completion, deadline):
            if completion.status is IoStatus.SUCCESS:
                return "ok"
            elif deadline.expired:
                return "late"
        """,
    )
    assert findings == []


def test_pa303_uses_members_from_analyzed_class(tmp_path):
    # the fixture defines its own (smaller) IoStatus, so the model is
    # derived from it: the two-arm chain is exhaustive, but PA304
    # reports the drift from patlint's fallback member list.
    findings = run_snippet(
        tmp_path,
        """
        import enum

        class IoStatus(enum.Enum):
            OK = "ok"
            BAD = "bad"

        def classify(completion):
            if completion.status is IoStatus.OK:
                return "ok"
            elif completion.status is IoStatus.BAD:
                return "bad"
        """,
    )
    assert codes(findings) == ["PA304"]


# ---------------------------------------------------------------------------
# PA4xx API contracts
# ---------------------------------------------------------------------------


def test_pa401_stats_by_reference(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        class Worker:
            def stats(self):
                return self._stats
        """,
    )
    assert codes(findings) == ["PA401"]


def test_pa401_fresh_copy_is_clean(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        class Worker:
            def stats(self):
                return dict(self._stats)

            def snapshot(self):
                return {"completed": self._completed}
        """,
    )
    assert findings == []


def test_pa401_only_stats_style_names(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        class Worker:
            def raw_handle(self):
                return self._stats
        """,
    )
    assert findings == []


def test_pa402_unused_import_full_dotted_name(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        import os.path

        VALUE = 1
        """,
    )
    assert codes(findings) == ["PA402"]
    assert "'os.path'" in findings[0].message


def test_pa402_submodule_import_used_via_root(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        import os.path

        def join(a, b):
            return os.path.join(a, b)
        """,
    )
    assert findings == []


def test_pa402_string_annotation_counts_as_use(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        from typing import TYPE_CHECKING

        if TYPE_CHECKING:
            from repro.nvme.command import Completion

        def handle(completion: "Completion") -> "Completion":
            return completion
        """,
    )
    assert findings == []


def test_pa402_nested_string_annotation_counts_as_use(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        from typing import Optional, TYPE_CHECKING

        if TYPE_CHECKING:
            from repro.faults import FaultConfig

        def configure(config: Optional["FaultConfig"] = None):
            return config
        """,
    )
    assert findings == []


def test_pa402_assignment_does_not_count_as_use(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        from os import sep

        sep = "/"
        """,
    )
    assert codes(findings) == ["PA402"]


def test_pa402_dunder_all_counts_as_use(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        from os import sep

        __all__ = ["sep"]
        """,
    )
    assert findings == []


def test_pa402_init_module_exempt(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        from os import sep
        """,
        filename="__init__.py",
    )
    assert findings == []


def test_pa402_applies_in_tests_scope(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        import os

        VALUE = 1
        """,
        scope="tests",
    )
    assert codes(findings) == ["PA402"]


def test_pa404_print_and_stream_writes(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        import sys


        def report(rows):
            print(rows)
            sys.stderr.write("boom")
            sys.stdout.write("ok")
        """,
    )
    assert codes(findings) == ["PA404", "PA404", "PA404"]
    assert "print()" in findings[0].message


def test_pa404_out_callable_default_is_clean(tmp_path):
    # the repo's CLI idiom: a Name reference to print is not a call
    findings = run_snippet(
        tmp_path,
        """
        def report(rows, out=print):
            for row in rows:
                out(row)
        """,
    )
    assert findings == []


def test_pa404_only_in_src_scope(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        def show(value):
            print(value)
        """,
        scope="tests",
    )
    assert findings == []


def test_pa404_suppressible(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        def show(value):
            print(value)  # patlint: ignore[PA404]
        """,
    )
    assert findings == []


def test_pa405_metric_name_hygiene(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        def register(registry):
            registry.counter("BadName_total", None)
            registry.gauge("queue_depth", None)
            registry.histogram("op_latency_ns", None)
        """,
    )
    assert codes(findings) == ["PA405", "PA405"]
    assert "snake_case" in findings[0].message
    assert "unit suffix" in findings[1].message


def test_pa405_attribute_receivers_and_metrics_alias(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        class Device:
            def register(self):
                self.registry.counter("reads", None)
                self._metrics.gauge("Depth_count", None)
        """,
    )
    assert codes(findings) == ["PA405", "PA405"]


def test_pa405_ignores_other_receivers_and_dynamic_names(tmp_path):
    # a tracer's counter(track, ...) and computed names are out of scope
    findings = run_snippet(
        tmp_path,
        """
        def emit(tracer, registry, name):
            tracer.counter("track", "anything goes")
            registry.counter(name, None)
        """,
    )
    assert findings == []


def test_pa405_suffixes_match_registry():
    from repro.obs.metrics import METRIC_NAME_SUFFIXES as runtime
    from tools.analysis.rules.observability import (
        METRIC_NAME_SUFFIXES as linted,
    )

    assert runtime == linted


def test_pa406_per_element_loop_over_scalar_helper(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        def apply_group(leaf, changes):
            for key, payload in changes:
                leaf.leaf_insert(key, payload)
        """,
    )
    assert codes(findings) == ["PA406"]
    assert "leaf_apply_many" in findings[0].message


def test_pa406_lookup_loop_and_innermost_only(tmp_path):
    # nested fors report once, against the loop actually iterating
    findings = run_snippet(
        tmp_path,
        """
        def read_groups(leaf, groups):
            out = []
            for group in groups:
                for key in group:
                    out.append(leaf.leaf_lookup(key))
            return out
        """,
    )
    assert codes(findings) == ["PA406"]
    assert "leaf_lookup_many" in findings[0].message


def test_pa406_negative_vectorized_and_straight_line(tmp_path):
    # vectorized calls, straight-line scalar calls and while-loop
    # descents are all fine
    findings = run_snippet(
        tmp_path,
        """
        def ok(leaf, keys, changes):
            values = leaf.leaf_lookup_many(keys)
            leaf.leaf_apply_many(changes)
            single = leaf.leaf_lookup(keys[0])
            while keys:
                single = leaf.leaf_delete(keys.pop())
            return values, single
        """,
    )
    assert findings == []


def test_pa406_loop_iter_evaluated_once_is_clean(tmp_path):
    # the iterable expression runs once, not per element
    findings = run_snippet(
        tmp_path,
        """
        def ok(leaf, keys):
            for value in leaf.leaf_lookup_many(keys):
                yield value
        """,
    )
    assert findings == []


def test_pa406_only_in_src_scope(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        def oracle(leaf, keys):
            out = []
            for key in keys:
                out.append(leaf.leaf_lookup(key))
            return out
        """,
        scope="tests",
    )
    assert findings == []


def test_pa406_suppressible(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        def apply_group(leaf, changes):
            for key, payload in changes:
                leaf.leaf_insert(key, payload)  # patlint: ignore[PA406]
        """,
    )
    assert findings == []


# ---------------------------------------------------------------------------
# PA407 schedule-fuzzing hygiene
# ---------------------------------------------------------------------------


def test_pa407_private_random_in_fuzz_package(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        import random


        def make_explorer(seed):
            return random.Random(seed)
        """,
        filename="repro/fuzz/hooks.py",
    )
    assert codes(findings) == ["PA407"]


def test_pa407_private_random_at_hook_site(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        import random


        class SimOS:
            def __init__(self):
                self.jitter = random.Random(7)
        """,
        filename="repro/simos/scheduler.py",
    )
    assert codes(findings) == ["PA407"]


def test_pa407_registry_stream_is_clean(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        def make_explorer(registry):
            return registry.stream("fuzz:schedule")
        """,
        filename="repro/fuzz/hooks.py",
    )
    assert findings == []


def test_pa407_random_elsewhere_in_src_not_flagged(tmp_path):
    # random.Random construction outside fuzz/hook-site files is the
    # RngRegistry's own business (PA102 already polices ambient use)
    findings = run_snippet(
        tmp_path,
        """
        import random


        def stream(seed):
            return random.Random(seed)
        """,
        filename="repro/sim/rng.py",
    )
    assert findings == []


def test_pa407_hook_non_null_default(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        class SimOS:
            def __init__(self):
                self.pick_runnable = lambda queue: 0
        """,
        filename="repro/simos/scheduler.py",
    )
    assert codes(findings) == ["PA407"]


def test_pa407_hook_null_default_is_clean(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        class Engine:
            def __init__(self):
                self.perturb_delay = None
                self.on_idle = None
        """,
        filename="repro/sim/engine.py",
    )
    assert findings == []


def test_pa407_fuzz_binder_assignment_is_exempt(tmp_path):
    # the fuzz package binds hooks at runtime; the null-default rule
    # polices only the modules that define the hook sites
    findings = run_snippet(
        tmp_path,
        """
        def bind(simos, decider):
            simos.pick_runnable = lambda queue: decider.pick(len(queue))
        """,
        filename="repro/fuzz/hooks.py",
    )
    assert findings == []


def test_pa407_suppressible(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        import random


        def draw():
            return random.Random(0)  # patlint: ignore[PA407]
        """,
        filename="repro/fuzz/harness.py",
    )
    assert findings == []


# ---------------------------------------------------------------------------
# PA408 backend boundary
# ---------------------------------------------------------------------------


def test_pa408_direct_device_construction(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        from repro.nvme.device import NvmeDevice
        from repro.nvme.driver import NvmeDriver


        def build(engine, profile):
            device = NvmeDevice(engine, profile)
            return NvmeDriver(device)
        """,
        filename="repro/bench/machine.py",
    )
    assert codes(findings) == ["PA408", "PA408"]
    assert "make_backend" in findings[0].message


def test_pa408_aliased_module_construction(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        import repro.nvme.device as dev


        def build(engine, profile):
            return dev.NvmeDevice(engine, profile)
        """,
        filename="repro/core/wiring.py",
    )
    assert codes(findings) == ["PA408"]


def test_pa408_backend_package_is_exempt(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        from repro.nvme.device import NvmeDevice
        from repro.nvme.driver import NvmeDriver


        def build(engine, profile):
            device = NvmeDevice(engine, profile)
            return NvmeDriver(device)
        """,
        filename="repro/backend/base.py",
    )
    assert findings == []


def test_pa408_factory_usage_is_clean(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        from repro.backend import make_backend


        def build(engine, profile):
            return make_backend("sim", engine=engine, profile=profile)
        """,
        filename="repro/bench/machine.py",
    )
    assert findings == []


def test_pa408_not_checked_in_tests_scope(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        from repro.nvme.device import NvmeDevice


        def build(engine, profile):
            return NvmeDevice(engine, profile)
        """,
        scope="tests",
        filename="test_device.py",
    )
    assert findings == []


def test_pa408_suppressible(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        from repro.nvme.device import NvmeDevice


        def build(engine, profile):
            return NvmeDevice(engine, profile)  # patlint: ignore[PA408]
        """,
        filename="repro/sched/special.py",
    )
    assert findings == []


# ---------------------------------------------------------------------------
# framework: suppressions, parse failures, baseline, reporters
# ---------------------------------------------------------------------------


def test_pa901_stale_suppression(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        def clean():
            return 1  # patlint: ignore[PA101]
        """,
    )
    assert codes(findings) == ["PA901"]
    assert "PA101" in findings[0].message


def test_pa901_malformed_pragma(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        def clean():
            return 1  # patlint: ignore everything
        """,
    )
    assert codes(findings) == ["PA901"]


def test_suppression_covers_only_named_codes(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        import time

        def now():
            return time.sleep(1)  # patlint: ignore[PA101]
        """,
    )
    # time.sleep is PA201; the PA101 pragma silences nothing -> stale.
    assert sorted(codes(findings)) == ["PA201", "PA901"]


def test_multi_code_suppression(tmp_path):
    findings = run_snippet(
        tmp_path,
        """
        import time

        def now():
            return time.time()  # patlint: ignore[PA101, PA999]
        """,
    )
    # PA101 suppressed; the PA999 half matched nothing -> stale.
    assert codes(findings) == ["PA901"]


def test_pa902_syntax_error(tmp_path):
    findings = run_snippet(tmp_path, "def broken(:\n    pass\n")
    assert codes(findings) == ["PA902"]


def test_cli_exit_codes_for_seeded_violations(tmp_path, capsys):
    bad = tmp_path / "src" / "bad.py"
    bad.parent.mkdir()
    bad.write_text(
        textwrap.dedent(
            """
            import time

            def now():
                return time.time()
            """
        )
    )
    exit_code = patlint_main([str(bad), "--no-baseline", "--no-compile"])
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "PA101" in out

    good = tmp_path / "src" / "good.py"
    good.write_text("def now(engine):\n    return engine.now\n")
    assert patlint_main([str(good), "--no-baseline", "--no-compile"]) == 0


def test_cli_json_reporter_schema(tmp_path, capsys):
    bad = tmp_path / "src" / "bad.py"
    bad.parent.mkdir()
    bad.write_text("import time\n\n\ndef f():\n    return time.time()\n")
    exit_code = patlint_main(
        [str(bad), "--format", "json", "--no-baseline", "--no-compile"]
    )
    document = json.loads(capsys.readouterr().out)
    assert exit_code == 1
    assert document["tool"] == "patlint"
    assert document["summary"]["new"] == 1
    assert document["summary"]["files"] == 1
    (finding,) = document["findings"]
    assert finding["code"] == "PA101"
    assert finding["baselined"] is False
    assert finding["line"] == 5


def test_baseline_grandfathers_and_catches_new(tmp_path, capsys):
    target = tmp_path / "src" / "legacy.py"
    target.parent.mkdir()
    target.write_text("import time\n\n\ndef f():\n    return time.time()\n")
    baseline_path = tmp_path / "baseline.json"
    assert (
        patlint_main(
            [
                str(target),
                "--write-baseline",
                "--baseline",
                str(baseline_path),
                "--no-compile",
            ]
        )
        == 0
    )
    capsys.readouterr()

    # the grandfathered finding no longer fails the run...
    assert (
        patlint_main(
            [str(target), "--baseline", str(baseline_path), "--no-compile"]
        )
        == 0
    )
    assert "baselined" in capsys.readouterr().out

    # ...but a new violation alongside it does.
    target.write_text(
        "import time\n\n\ndef f():\n    return time.time()\n"
        "\n\ndef g():\n    return time.perf_counter()\n"
    )
    assert (
        patlint_main(
            [str(target), "--baseline", str(baseline_path), "--no-compile"]
        )
        == 1
    )
    out = capsys.readouterr().out
    assert "perf_counter" in out


def test_select_filters_reported_codes(tmp_path, capsys):
    bad = tmp_path / "src" / "bad.py"
    bad.parent.mkdir()
    bad.write_text(
        "import time\nimport os.path\n\n\ndef f():\n    return time.time()\n"
    )
    exit_code = patlint_main(
        [str(bad), "--select", "PA4", "--no-baseline", "--no-compile"]
    )
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "PA402" in out and "PA101" not in out


# ---------------------------------------------------------------------------
# self-checks and the legacy shim
# ---------------------------------------------------------------------------


def test_analyzer_analyzes_its_own_package_cleanly():
    result = analyze([os.path.join(REPO_ROOT, "tools")])
    assert result.findings == []


def test_repository_self_run_is_clean():
    """The acceptance invariant: src+tests+benchmarks, empty baseline."""
    paths = [os.path.join(REPO_ROOT, name) for name in ("src", "tests", "benchmarks")]
    result = analyze(paths)
    assert result.findings == []


def test_lint_shim_still_works(tmp_path):
    bad = tmp_path / "src" / "bad.py"
    bad.parent.mkdir()
    bad.write_text("def f(x):\n    return x.status == 'completed'\n")
    proc = subprocess.run(
        [sys.executable, "tools/lint.py", str(bad)],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1
    assert "PA302" in proc.stdout

    good = tmp_path / "src" / "good.py"
    good.write_text("def f(x):\n    return x\n")
    proc = subprocess.run(
        [sys.executable, "tools/lint.py", str(good)],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_byte_compile_leaves_no_pycache(tmp_path):
    target = tmp_path / "src" / "clean.py"
    target.parent.mkdir()
    target.write_text("def f(x):\n    return x\n")
    proc = subprocess.run(
        [sys.executable, "-m", "tools.analysis", str(target)],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    litter = [
        os.path.join(dirpath, name)
        for dirpath, dirnames, _files in os.walk(tmp_path)
        for name in dirnames
        if name == "__pycache__"
    ]
    assert litter == []


def test_list_rules_catalog(capsys):
    assert patlint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in (
        "PA101",
        "PA102",
        "PA103",
        "PA110",
        "PA201",
        "PA202",
        "PA203",
        "PA301",
        "PA302",
        "PA303",
        "PA304",
        "PA401",
        "PA402",
        "PA404",
        "PA405",
        "PA406",
        "PA407",
        "PA901",
        "PA902",
    ):
        assert code in out


@pytest.mark.parametrize(
    "snippet,expected",
    [
        ("import time\n\n\ndef f():\n    return time.time()\n", "PA101"),
        (
            "def stats(c):\n    return [k for k in set(c)]\n",
            "PA110",
        ),
        (
            "def f(d):\n    try:\n        return d.probe()\n"
            "    except:\n        return None\n",
            "PA301",
        ),
        (
            "from repro.nvme.command import IoStatus\n\n\n"
            "def f(c):\n    if c.status is IoStatus.SUCCESS:\n"
            "        return 1\n    elif c.status is IoStatus.MEDIA_ERROR:\n"
            "        return 2\n",
            "PA303",
        ),
    ],
)
def test_seeded_violation_fails_with_expected_code(
    tmp_path, capsys, snippet, expected
):
    """One seeded violation per acceptance rule class exits nonzero."""
    target = tmp_path / "src" / "seeded.py"
    target.parent.mkdir(exist_ok=True)
    target.write_text(snippet)
    exit_code = patlint_main([str(target), "--no-baseline", "--no-compile"])
    out = capsys.readouterr().out
    assert exit_code == 1
    assert expected in out
