"""Unit tests for metric recorders."""

import pytest

from repro.sim.clock import Clock
from repro.sim.metrics import (
    CPU_NVME,
    CPU_OTHER,
    CPU_REAL_WORK,
    Counter,
    CpuAccount,
    LatencyRecorder,
    TimeWeightedGauge,
    throughput_per_sec,
)


def test_counter():
    counter = Counter()
    counter.add()
    counter.add(4)
    assert counter.value == 5


def test_gauge_time_weighted_average():
    clock = Clock()
    gauge = TimeWeightedGauge(clock)
    gauge.set(10)          # value 10 from t=0
    clock.advance_to(100)
    gauge.set(0)           # 10 * 100
    clock.advance_to(200)  # 0 * 100
    assert gauge.average() == pytest.approx(5.0)


def test_gauge_add_and_max():
    clock = Clock()
    gauge = TimeWeightedGauge(clock)
    gauge.add(3)
    gauge.add(4)
    gauge.add(-2)
    assert gauge.value == 5
    assert gauge.max_value == 7


def test_gauge_average_since_window():
    clock = Clock()
    gauge = TimeWeightedGauge(clock)
    clock.advance_to(100)
    gauge.set(8)
    clock.advance_to(200)
    # from t=100 to t=200 value was 8 (set at 100)
    assert gauge.average(since_ns=100) == pytest.approx(8.0)


def test_gauge_windowed_average_with_mark():
    clock = Clock()
    gauge = TimeWeightedGauge(clock)
    gauge.set(100)
    clock.advance_to(1_000)
    start = gauge.mark()
    gauge.set(2)
    clock.advance_to(2_000)
    # only the [1000, 2000) window counts: value 2 throughout, not the
    # value-100 prefix that used to inflate windowed averages
    assert gauge.average(since_ns=start) == pytest.approx(2.0)
    # whole-lifetime average still exact
    assert gauge.average() == pytest.approx((100 * 1_000 + 2 * 1_000) / 2_000)


def test_gauge_tail_window_exact_without_mark():
    clock = Clock()
    gauge = TimeWeightedGauge(clock)
    gauge.set(50)
    clock.advance_to(100)
    gauge.set(4)  # last change at t=100
    clock.advance_to(300)
    # window starts after the last change: value constant at 4
    assert gauge.average(since_ns=200) == pytest.approx(4.0)


def test_gauge_unknowable_window_raises():
    clock = Clock()
    gauge = TimeWeightedGauge(clock)
    gauge.set(50)
    clock.advance_to(100)
    gauge.set(4)
    clock.advance_to(300)
    with pytest.raises(ValueError):
        gauge.average(since_ns=50)  # mid-history, never marked


def test_latency_recorder_stats():
    recorder = LatencyRecorder()
    for latency_us in [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]:
        recorder.record(latency_us * 1_000)
    assert recorder.mean_usec() == pytest.approx(5.5)
    assert recorder.p50_usec() == pytest.approx(5.5)
    assert recorder.max_usec() == pytest.approx(10.0)
    assert recorder.percentile_usec(0) == pytest.approx(1.0)
    assert recorder.percentile_usec(100) == pytest.approx(10.0)


def test_latency_recorder_empty():
    recorder = LatencyRecorder()
    assert recorder.mean_usec() == 0.0
    assert recorder.p99_usec() == 0.0
    assert len(recorder) == 0


def test_latency_recorder_single_sample():
    recorder = LatencyRecorder()
    recorder.record(2_000)
    assert recorder.p50_usec() == pytest.approx(2.0)
    assert recorder.p99_usec() == pytest.approx(2.0)


def test_latency_recorder_percentile_does_not_mutate_order():
    recorder = LatencyRecorder()
    arrivals = [9_000, 1_000, 5_000, 3_000]
    for sample in arrivals:
        recorder.record(sample)
    recorder.p99_usec()
    assert recorder.samples() == arrivals  # arrival order preserved
    # interleaving record with queries stays correct
    recorder.record(10_000)
    assert recorder.max_usec() == pytest.approx(10.0)
    assert recorder.samples() == arrivals + [10_000]


def test_latency_recorder_p999_and_snapshot():
    recorder = LatencyRecorder()
    for sample_us in range(1, 1001):
        recorder.record(sample_us * 1_000)
    assert recorder.p999_usec() == pytest.approx(999.001, rel=1e-6)
    snap = recorder.snapshot()
    assert snap["count"] == 1000
    assert snap["p50_us"] == pytest.approx(500.5)
    assert snap["p999_us"] == recorder.p999_usec()
    assert snap["max_us"] == pytest.approx(1000.0)


def test_cpu_account_categories():
    account = CpuAccount()
    account.charge(100, CPU_REAL_WORK)
    account.charge(300, CPU_NVME)
    account.charge(100, "bogus-category")  # folds into other
    assert account.total_ns == 500
    assert account.by_category[CPU_REAL_WORK] == 100
    assert account.by_category[CPU_OTHER] == 100
    assert account.fraction(CPU_NVME) == pytest.approx(0.6)


def test_cpu_account_merge():
    a = CpuAccount()
    b = CpuAccount()
    a.charge(10, CPU_REAL_WORK)
    b.charge(30, CPU_REAL_WORK)
    merged = a.merged(b)
    assert merged.by_category[CPU_REAL_WORK] == 40
    assert merged.total_ns == 40
    assert a.total_ns == 10  # inputs untouched


def test_throughput_helper():
    assert throughput_per_sec(500, 1_000_000_000) == pytest.approx(500.0)
    assert throughput_per_sec(500, 0) == 0.0
