"""SessionConfig(backend=...) plumbing through the session facade.

Pins the three contracts the refactor must not bend: legacy configs
(no ``backend=``) run on the simulated substrate with zero behavior
change, unknown backend names fail fast with a typed error, and
sharded sessions reject per-shard backend lists that mix kinds.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import (
    AsyncLsmSession,
    PATreeSession,
    SessionConfig,
    ShardedSession,
)
from repro.backend import (
    BackendSpec,
    get_default_backend,
    normalize_backend_spec,
    set_default_backend,
)
from repro.errors import BackendConfigError, ReproError
from repro.nvme.device import fast_test_profile


def payload(key):
    return (key % 2**64).to_bytes(8, "little")


def fast(**overrides):
    base = dict(seed=5, scheduler="naive", device_profile=fast_test_profile())
    base.update(overrides)
    return SessionConfig(**base)


def run_workload(session, n=64):
    for key in range(n):
        session.put(key * 7, payload(key))
    for key in range(0, n, 3):
        session.delete(key * 7)
    hits = sum(1 for key in range(n) if session.get(key * 7) is not None)
    stats = session.stats()
    return hits, stats


# ---------------------------------------------------------------------------
# legacy default: sim, bit-for-bit
# ---------------------------------------------------------------------------


class TestLegacyDefault:
    def test_config_default_backend_is_unset(self):
        assert SessionConfig().backend is None

    @pytest.mark.parametrize(
        "factory", [PATreeSession, AsyncLsmSession, ShardedSession]
    )
    def test_explicit_sim_matches_legacy_default(self, factory):
        with factory(fast()) as legacy:
            legacy_hits, legacy_stats = run_workload(legacy)
        with factory(fast(backend="sim")) as explicit:
            explicit_hits, explicit_stats = run_workload(explicit)
        assert explicit_hits == legacy_hits
        assert explicit_stats == legacy_stats

    def test_legacy_sessions_ride_the_sim_backend(self):
        with PATreeSession(fast()) as session:
            assert session.env.backend.kind == "sim"
            assert session.env.backend.wall_clock_variant is False
            assert session.env.backend.device is session.env.device
            assert session.env.backend.driver is session.env.driver


# ---------------------------------------------------------------------------
# typed failures
# ---------------------------------------------------------------------------


class TestTypedErrors:
    @pytest.mark.parametrize("name", ["flash", "sim:extra", "replay", ""])
    def test_unknown_or_malformed_names_raise(self, name):
        with pytest.raises(BackendConfigError):
            PATreeSession(fast(backend=name))

    def test_backend_config_error_is_a_repro_error(self):
        assert issubclass(BackendConfigError, ReproError)

    def test_sharded_rejects_mixed_per_shard_backends(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        with pytest.raises(BackendConfigError):
            ShardedSession(
                fast(shards=2, backend=["sim", "replay:%s" % trace])
            )

    def test_sharded_rejects_wrong_length_backend_list(self):
        with pytest.raises(BackendConfigError):
            ShardedSession(fast(shards=2, backend=["sim"]))

    def test_sharded_accepts_uniform_backend_list(self):
        with ShardedSession(fast(shards=2, backend=["sim", "sim"])) as session:
            session.put(1, payload(1))
            assert session.get(1) == payload(1)
            assert session.sharded.backend_kind == "sim"


# ---------------------------------------------------------------------------
# non-sim substrates through the facade
# ---------------------------------------------------------------------------


class TestFileBackendSessions:
    def test_patree_session_on_file_backend(self, tmp_path):
        scratch = tmp_path / "scratch.dat"
        config = fast(backend="file:%s" % scratch)
        with PATreeSession(config) as session:
            hits, stats = run_workload(session, n=32)
            assert hits > 0
            assert session.env.backend.kind == "file"
            assert session.env.backend.wall_clock_variant is True
        # close() released the descriptor but kept the named file
        assert scratch.exists()

    def test_sharded_session_suffixes_explicit_file_paths(self, tmp_path):
        scratch = tmp_path / "scratch.dat"
        config = fast(shards=2, backend="file:%s" % scratch)
        with ShardedSession(config) as session:
            session.put(3, payload(3))
            paths = [backend.path for backend in session.sharded.backends]
        assert len(set(paths)) == 2
        assert all(str(scratch) in path for path in paths)


# ---------------------------------------------------------------------------
# process default (--backend retargeting)
# ---------------------------------------------------------------------------


class TestProcessDefault:
    def test_unset_config_follows_process_default(self, tmp_path):
        saved = get_default_backend()
        try:
            set_default_backend("file:%s" % (tmp_path / "scratch.dat"))
            with PATreeSession(fast()) as session:
                assert session.env.backend.kind == "file"
            with PATreeSession(fast(backend="sim")) as session:
                assert session.env.backend.kind == "sim"
        finally:
            set_default_backend(saved)

    def test_spec_normalization_roundtrip(self):
        spec = normalize_backend_spec("replay:trace.jsonl")
        assert isinstance(spec, BackendSpec)
        assert spec.kind == "replay"
        assert normalize_backend_spec(spec) == spec
