"""Integration tests for the synchronous baselines: blocking latches,
I/O services, sync/Blink/LCB tree accessors under concurrency."""

import random

import pytest

from repro.baselines.blink_tree import BlinkTreeAccessor
from repro.baselines.io_service import DedicatedIoService, SharedIoService
from repro.baselines.latching import BlockingLatchTable
from repro.baselines.lcb_tree import LcbTreeAccessor
from repro.baselines.runner import BaselineRunner
from repro.baselines.sync_tree import SyncTreeAccessor
from repro.buffer import ReadOnlyBuffer, ReadWriteBuffer
from repro.core.latch import EXCLUSIVE, SHARED
from repro.core.ops import delete_op, insert_op, range_op, search_op, sync_op, update_op
from repro.core.tree import PaTree
from repro.nvme.device import NvmeDevice, fast_test_profile
from repro.nvme.driver import NvmeDriver
from repro.sim.engine import Engine
from repro.simos.scheduler import OsProfile, SimOS


def payload(key):
    return (key % 2**64).to_bytes(8, "little")


def make_machine(seed=1, preload=1_000):
    engine = Engine(seed=seed)
    simos = SimOS(engine, OsProfile(cores=8))
    device = NvmeDevice(engine, fast_test_profile())
    driver = NvmeDriver(device)
    tree = PaTree.create(device)
    if preload:
        tree.bulk_load([(k * 10, payload(k * 10)) for k in range(1, preload + 1)])
    return engine, simos, device, driver, tree


def mixed_ops(seed, n, preload):
    rng = random.Random(seed)
    model = {k * 10: payload(k * 10) for k in range(1, preload + 1)}
    ops = []
    for _ in range(n):
        roll = rng.random()
        key = rng.choice(sorted(model)) if model and roll < 0.7 else rng.randrange(1, 10**7)
        if roll < 0.3:
            ops.append(search_op(key))
        elif roll < 0.5:
            ops.append(insert_op(key, payload(key)))
            model[key] = payload(key)
        elif roll < 0.65:
            ops.append(update_op(key, payload(key ^ 9)))
            if key in model:
                model[key] = payload(key ^ 9)
        elif roll < 0.8:
            ops.append(delete_op(key))
            model.pop(key, None)
        else:
            ops.append(range_op(key, key + 5_000, limit=16))
    return ops, model


class TestBlockingLatchTable:
    def test_exclusive_serializes_threads(self):
        engine, simos, _device, _driver, _tree = make_machine(preload=0)
        table = BlockingLatchTable()
        active = {"n": 0, "max": 0}

        def body():
            from repro.simos.thread import Cpu

            for _ in range(10):
                yield from table.acquire(7, EXCLUSIVE)
                active["n"] += 1
                active["max"] = max(active["max"], active["n"])
                yield Cpu(1_000, "real_work")
                active["n"] -= 1
                yield from table.release(7, EXCLUSIVE)

        for _ in range(4):
            simos.spawn(body())
        engine.run()
        assert active["max"] == 1
        table.assert_quiescent()

    def test_readers_share(self):
        engine, simos, _device, _driver, _tree = make_machine(preload=0)
        table = BlockingLatchTable()
        active = {"n": 0, "max": 0}

        def body():
            from repro.simos.thread import Cpu

            yield from table.acquire(7, SHARED)
            active["n"] += 1
            active["max"] = max(active["max"], active["n"])
            # hold long enough to overlap despite the table-mutex
            # serialization of the acquire path itself
            yield Cpu(50_000, "real_work")
            active["n"] -= 1
            yield from table.release(7, SHARED)

        for _ in range(4):
            simos.spawn(body())
        engine.run()
        assert active["max"] == 4


class TestIoServices:
    @pytest.mark.parametrize("service_kind", ["dedicated", "shared"])
    def test_blocking_read_write_roundtrip(self, service_kind):
        engine, simos, device, driver, _tree = make_machine(preload=0)
        if service_kind == "dedicated":
            service = DedicatedIoService(driver)
        else:
            service = SharedIoService(driver)
        service.start(simos)
        tls = service.register_thread()
        results = {}

        def body():
            yield from service.write(tls, 5, b"\xab" * 512)
            data = yield from service.read(tls, 5)
            results["data"] = data

        thread = simos.spawn(body())
        engine.run(until=lambda: thread.done)
        service.stop()
        engine.run()
        assert results["data"] == b"\xab" * 512

    def test_shared_daemon_serves_many_threads(self):
        engine, simos, device, driver, _tree = make_machine(preload=0)
        service = SharedIoService(driver)
        service.start(simos)
        done = []

        def body(lba):
            yield from service.write(tls_map[lba], lba, bytes([lba % 256]) * 512)
            data = yield from service.read(tls_map[lba], lba)
            done.append(data[0] == lba % 256)

        tls_map = {}
        threads = []
        for lba in range(1, 9):
            tls_map[lba] = service.register_thread()
            threads.append(simos.spawn(body(lba)))
        engine.run(until=lambda: all(t.done for t in threads))
        service.stop()
        engine.run()
        assert done == [True] * 8


@pytest.mark.parametrize(
    "accessor_kind,persistence",
    [
        ("sync", "strong"),
        ("sync", "weak"),
        ("blink", "strong"),
        ("blink", "weak"),
        ("lcb", "strong"),
        ("lcb", "weak"),
    ],
)
def test_accessor_fuzz_vs_model(accessor_kind, persistence):
    preload = 1_000
    engine, simos, device, driver, tree = make_machine(seed=4, preload=preload)
    io_service = DedicatedIoService(driver)
    latches = BlockingLatchTable()
    buffer = None
    if persistence == "weak" and accessor_kind != "lcb":
        buffer = ReadWriteBuffer(256)
    elif accessor_kind == "lcb":
        buffer = ReadOnlyBuffer(256)

    if accessor_kind == "sync":
        accessor = SyncTreeAccessor(tree, io_service, latches, buffer, persistence)
    elif accessor_kind == "blink":
        accessor = BlinkTreeAccessor(tree, io_service, latches, buffer, persistence)
    else:
        accessor = LcbTreeAccessor(
            tree, io_service, latches, buffer, persistence, wal_pages=4_096
        )

    ops, model = mixed_ops(11, 800, preload)
    if persistence == "weak":
        ops.append(sync_op())
    runner = BaselineRunner(simos, accessor, ops, n_threads=8, name=accessor_kind)
    runner.run_to_completion()
    latches.assert_quiescent()

    if accessor_kind == "lcb":
        accessor.materialize_delta()
    elif persistence == "weak":
        # drain the rw buffer to media for raw validation
        for page_id, data in accessor.buffer.take_dirty():
            device.raw_write(page_id, data)

    assert dict(tree.iterate_items_raw()) == model
    tree.validate()


def test_blink_reads_need_no_latches():
    preload = 2_000
    engine, simos, device, driver, tree = make_machine(seed=9, preload=preload)
    latches = BlockingLatchTable()
    accessor = BlinkTreeAccessor(tree, DedicatedIoService(driver), latches)
    ops = [search_op(k * 10) for k in range(1, 500)]
    runner = BaselineRunner(simos, accessor, ops, n_threads=8, name="blink")
    runner.run_to_completion()
    assert latches.acquisitions == 0  # pure reads never latched
    assert all(op.result == payload(op.key) for op in ops)


def test_lcb_checkpoint_writes_back():
    engine, simos, device, driver, tree = make_machine(seed=2, preload=500)
    accessor = LcbTreeAccessor(
        tree,
        DedicatedIoService(driver),
        BlockingLatchTable(),
        buffer=None,
        persistence="weak",
        wal_pages=4_096,
        checkpoint_pages=16,
    )
    ops = [update_op(k * 10, payload(k)) for k in range(1, 400)]
    runner = BaselineRunner(simos, accessor, ops, n_threads=4, name="lcb")
    runner.run_to_completion()
    assert accessor.checkpoints >= 1
    accessor.materialize_delta()
    tree.validate()


def test_blink_concurrent_growth_from_empty():
    """Grow a Blink-tree from a single empty leaf under heavy thread
    concurrency: exercises leaf splits, bottom-up parent insertion and
    the concurrent root-growth fallback."""
    engine, simos, device, driver, tree = make_machine(seed=13, preload=0)
    accessor = BlinkTreeAccessor(tree, DedicatedIoService(driver), BlockingLatchTable())
    rng = random.Random(3)
    keys = rng.sample(range(1, 10**6), 1_500)
    ops = [insert_op(k, payload(k)) for k in keys]
    runner = BaselineRunner(simos, accessor, ops, n_threads=16, name="blink-growth")
    runner.run_to_completion()
    assert sorted(k for k, _v in tree.iterate_items_raw()) == sorted(keys)
    tree.validate()
