"""Tests for the polled-mode asynchronous LSM store (PA-LSM)."""

import random


from repro.core.ops import delete_op, insert_op, range_op, search_op, sync_op
from repro.core.source import ClosedLoopSource
from repro.nvme.device import NvmeDevice, fast_test_profile
from repro.nvme.driver import NvmeDriver
from repro.palsm import AsyncLsmStore, PolledLsmWorker
from repro.sched.naive import NaiveScheduling
from repro.sim.engine import Engine
from repro.simos.scheduler import OsProfile, SimOS


def payload(key):
    return (key % 2**64).to_bytes(8, "little")


def build(persistence="strong", memtable_entries=100, **kwargs):
    engine = Engine(seed=8)
    simos = SimOS(engine, OsProfile(cores=4))
    device = NvmeDevice(engine, fast_test_profile())
    driver = NvmeDriver(device)
    store = AsyncLsmStore(
        device,
        persistence=persistence,
        memtable_entries=memtable_entries,
        wal_pages=4_096,
        **kwargs,
    )
    worker = PolledLsmWorker(
        simos, driver, store, NaiveScheduling(), ClosedLoopSource([], window=16)
    )
    return device, store, worker


class TestPaLsmBasics:
    def test_put_get_in_memtable(self):
        _device, _store, worker = build()
        ops = worker.run_operations(
            [insert_op(5, payload(5)), search_op(5), search_op(6)]
        )
        assert ops[1].result == payload(5)
        assert ops[2].result is None

    def test_flush_and_read_back(self):
        _device, store, worker = build(memtable_entries=50)
        inserts = [insert_op(k, payload(k)) for k in range(300)]
        worker.run_operations(inserts, window=8)
        assert store.flushes >= 4
        searches = worker.run_operations([search_op(k) for k in range(0, 300, 17)])
        assert all(op.result == payload(op.key) for op in searches)

    def test_delete_tombstone_masks_flushed_value(self):
        _device, store, worker = build(memtable_entries=20)
        worker.run_operations([insert_op(k, payload(k)) for k in range(60)])
        worker.run_operations([delete_op(7)])
        (found,) = worker.run_operations([search_op(7)])
        assert found.result is None

    def test_range_across_memtable_and_tables(self):
        _device, store, worker = build(memtable_entries=25)
        worker.run_operations([insert_op(k * 2, payload(k)) for k in range(100)])
        worker.run_operations([insert_op(31, payload(31))])  # stays in memtable
        (op,) = worker.run_operations([range_op(20, 40)])
        keys = [k for k, _v in op.result]
        assert keys == sorted(set(list(range(20, 41, 2)) + [31]))

    def test_compaction_triggered_and_correct(self):
        _device, store, worker = build(memtable_entries=20, level0_limit=2)
        ops = [insert_op(k % 60, (k).to_bytes(8, "little")) for k in range(600)]
        worker.run_operations(ops, window=8)
        assert store.compactions >= 1
        assert len(store.levels[0]) <= store.level0_limit
        checks = worker.run_operations([search_op(k) for k in range(60)])
        for op in checks:
            # last writer for key k is the largest j < 600 with j % 60 == k
            expected = (540 + op.key).to_bytes(8, "little")
            assert op.result == expected

    def test_bulk_load_then_get(self):
        _device, store, worker = build()
        store.bulk_load([(k * 3, payload(k)) for k in range(500)])
        (op,) = worker.run_operations([search_op(300)])
        assert op.result == payload(100)

    def test_sync_flushes_wal(self):
        _device, store, worker = build(persistence="weak")
        worker.run_operations([insert_op(1, payload(1))])
        assert store.wal.pending_records() == 1
        (sync,) = worker.run_operations([sync_op()])
        assert store.wal.pending_records() == 0

    def test_strong_persistence_wal_durable_per_op(self):
        _device, store, worker = build(persistence="strong")
        worker.run_operations([insert_op(1, payload(1)), insert_op(2, payload(2))])
        assert store.wal.pending_records() == 0

    def test_quarantined_pages_eventually_freed(self):
        _device, store, worker = build(memtable_entries=20, level0_limit=2)
        worker.run_operations(
            [insert_op(k % 50, payload(k)) for k in range(400)], window=8
        )
        assert store.compactions >= 1
        assert not store._pending_frees  # drained once ops completed


class TestPaLsmFuzz:
    def test_equivalent_to_dict(self):
        _device, store, worker = build(memtable_entries=40, level0_limit=2)
        rng = random.Random(21)
        model = {}
        ops = []
        for _ in range(1_200):
            roll = rng.random()
            key = rng.randrange(0, 500)
            if roll < 0.45:
                ops.append(insert_op(key, payload(key ^ rng.randrange(256))))
                model[key] = ops[-1].payload
            elif roll < 0.6:
                ops.append(delete_op(key))
                model.pop(key, None)
            elif roll < 0.85:
                ops.append(search_op(key))
            else:
                ops.append(range_op(key, key + 40))
        # sequential (window=1) so per-op expectations are exact
        worker.run_operations(ops, window=1)
        checks = worker.run_operations([search_op(k) for k in range(500)], window=1)
        for op in checks:
            assert op.result == model.get(op.key), op.key

        (full,) = worker.run_operations([range_op(0, 10**9)])
        assert dict(full.result) == model

    def test_interleaved_window_preserves_final_state(self):
        _device, store, worker = build(memtable_entries=30, level0_limit=2)
        rng = random.Random(5)
        keys = list(range(200))
        ops = [insert_op(k, payload(k)) for k in keys]
        rng.shuffle(ops)
        worker.run_operations(ops, window=16)
        (full,) = worker.run_operations([range_op(0, 10**9)])
        assert [k for k, _v in full.result] == keys
