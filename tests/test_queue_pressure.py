"""Submission-ring pressure: QueueFullError at the driver and engine.

The driver surfaces a full SQ ring as a typed
:class:`~repro.errors.QueueFullError` (and its retry path backs off and
resubmits instead of dropping the command); the engine-level working
threads bound their own submissions and defer flushes / escalations so
a full ring never escapes a run.
"""

import pytest

from repro.core.engine import PaTreeEngine
from repro.core.ops import search_op, sync_op, update_op
from repro.core.source import ClosedLoopSource
from repro.core.tree import PaTree
from repro.errors import DeviceError, QueueFullError
from repro.faults import FaultConfig
from repro.nvme.device import NvmeDevice, fast_test_profile
from repro.nvme.driver import NvmeDriver, RetryPolicy
from repro.sched.naive import NaiveScheduling
from repro.sim.engine import Engine
from repro.simos.scheduler import OsProfile, SimOS


def payload(key):
    return (key & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")


class TestDriverQueuePressure:
    def test_sq_ring_overflow_raises_typed_error(self):
        engine = Engine(seed=1)
        device = NvmeDevice(engine, fast_test_profile(channels=2))
        driver = NvmeDriver(device)
        qpair = driver.alloc_qpair(sq_size=4)
        # 2 commands go straight into channels, 4 fill the ring
        for lba in range(1, 7):
            driver.read(qpair, lba)
        with pytest.raises(QueueFullError) as excinfo:
            driver.read(qpair, 99)
        assert isinstance(excinfo.value, DeviceError)

    def test_submit_failure_leaves_no_partial_state(self):
        engine = Engine(seed=1)
        device = NvmeDevice(engine, fast_test_profile(channels=2))
        driver = NvmeDriver(device)
        qpair = driver.alloc_qpair(sq_size=4)
        for lba in range(1, 7):
            driver.read(qpair, lba)
        outstanding_before = qpair.outstanding
        with pytest.raises(QueueFullError):
            driver.read(qpair, 99)
        assert qpair.outstanding == outstanding_before
        # the rejected submission must not wedge the queue pair: the
        # accepted commands all complete once the device drains
        engine.run()
        completed = driver.probe(qpair)
        assert len(completed) == 6
        assert all(c.ok for c in completed)

    def test_retry_resubmit_survives_a_full_ring(self):
        """A retry that collides with a full SQ backs off, not drops."""
        engine = Engine(seed=1)
        device = NvmeDevice(
            engine,
            fast_test_profile(channels=1),
            faults=FaultConfig(read_error_rate=1.0),
        )
        driver = NvmeDriver(device, retry=RetryPolicy(max_retries=1))
        qpair = driver.alloc_qpair(sq_size=2)
        victim = driver.read(qpair, 1)
        delivered = []
        for _ in range(200):
            engine.run()
            delivered.extend(driver.probe(qpair))
            if engine.events.peek_time() is None:
                break
            # keep the ring saturated so the scheduled resubmit finds
            # it full at least once
            while qpair.sq.free_slots and qpair.outstanding < 3:
                driver.read(qpair, 2)
        victims = [c for c in delivered if c.command is victim]
        assert len(victims) == 1
        assert victim.retries == 1  # the retry happened despite pressure


class TestEngineQueuePressure:
    def _build(self, sq_size, faults=None, preload=300):
        engine = Engine(seed=1)
        simos = SimOS(engine, OsProfile(cores=8))
        device = NvmeDevice(engine, fast_test_profile(), faults=faults)
        driver = NvmeDriver(device)
        qpair = driver.alloc_qpair(sq_size=sq_size, cq_size=4096)
        tree = PaTree.create(device)
        tree.bulk_load(
            [(k * 10, payload(k * 10)) for k in range(1, preload + 1)]
        )
        pa = PaTreeEngine(
            simos,
            driver,
            tree,
            NaiveScheduling(),
            source=ClosedLoopSource([], window=16),
            qpair=qpair,
        )
        return pa

    def _run(self, pa, operations, window=16):
        pa.source = ClosedLoopSource(operations, window=window)
        pa._shutdown = False
        pa.run_to_completion()
        return operations

    def test_engine_completes_through_a_tiny_ring(self):
        """The working thread never overruns a small submission ring."""
        pa = self._build(sq_size=128)
        ops = [search_op(k * 10) for k in range(1, 200)]
        ops += [update_op(k * 10, payload(k)) for k in range(1, 100)]
        self._run(pa, ops)
        assert all(op.error is None for op in ops)
        assert pa.failed_ops.value == 0
        pa.tree.validate()

    def test_deferred_escalations_drain_through_a_tiny_ring(self):
        """Failed-write escalations queue up and re-drive later instead
        of raising QueueFullError from completion-callback context."""
        pa = self._build(
            sq_size=128, faults=FaultConfig(write_error_rate=0.4)
        )
        ops = [update_op(k * 10, payload(k + 1)) for k in range(1, 150)]
        self._run(pa, ops)
        assert all(op.error is None for op in ops)
        assert pa.lost_writes.value == 0
        assert not pa._deferred_escalations
        pa.tree.validate()

    def test_sync_flush_burst_respects_the_ring(self):
        """A large sync() defers its page writes while the ring is hot."""
        from repro.buffer import ReadWriteBuffer

        engine = Engine(seed=1)
        simos = SimOS(engine, OsProfile(cores=8))
        device = NvmeDevice(engine, fast_test_profile())
        driver = NvmeDriver(device)
        qpair = driver.alloc_qpair(sq_size=256, cq_size=4096)
        tree = PaTree.create(device)
        tree.bulk_load([(k * 10, payload(k * 10)) for k in range(1, 2_001)])
        pa = PaTreeEngine(
            simos,
            driver,
            tree,
            NaiveScheduling(),
            source=ClosedLoopSource([], window=16),
            buffer=ReadWriteBuffer(4_096),
            persistence="weak",
            qpair=qpair,
        )
        ops = [update_op(k * 10, payload(k + 7)) for k in range(1, 600)]
        ops.append(sync_op())
        self._run(pa, ops)
        assert all(op.error is None for op in ops)
        assert ops[-1].result > 0  # the dirty pages were flushed
        # in-window updates may re-dirty pages after the sync snapshot;
        # a solo trailing sync drains them (the run_pa shape)
        (tail,) = self._run(pa, [sync_op()], window=1)
        assert tail.error is None
        assert pa.buffer.dirty_count == 0
        pa.tree.validate()
