"""Batch-vs-single parity for the vectored operation pipeline.

The batch planner (``repro.core.batch``) must be observationally
equivalent to replaying the same specs one at a time: identical
per-spec results in input order, identical final tree state, intact
structural invariants — through leaf splits, merges and root
growth/shrink, across shards, and under injected media errors (where a
failing batch must surface a typed :class:`~repro.errors.BatchError`
naming the failing key without corrupting the rest of the tree).
"""

import warnings

import pytest

from repro.api import (
    AsyncLsmSession,
    BaseSession,
    PATreeSession,
    ShardedSession,
)
from repro.baselines.io_service import DedicatedIoService
from repro.baselines.latching import BlockingLatchTable
from repro.baselines.runner import BaselineRunner
from repro.baselines.sync_tree import SyncTreeAccessor
from repro.core.ops import DELETE, GET, PUT, OpSpec, batch_op
from repro.core.tree import PaTree
from repro.errors import BatchError, IoError, ReproError, TreeError
from repro.faults import FaultConfig
from repro.nvme.device import NvmeDevice, fast_test_profile
from repro.nvme.driver import NvmeDriver
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.simos.scheduler import OsProfile, SimOS


def payload(key, size=8):
    return (key % 2 ** 64).to_bytes(size, "little")


def make_spec_stream(seed, n, keyspace=2_000, size=8):
    """Deterministic mixed stream: 45% put / 35% get / 20% delete."""
    rng = RngRegistry(seed).stream("parity")
    specs = []
    for _ in range(n):
        key = rng.randrange(1, keyspace)
        roll = rng.random()
        if roll < 0.45:
            specs.append(OpSpec.put(key, payload(key, size)))
        elif roll < 0.8:
            specs.append(OpSpec.get(key))
        else:
            specs.append(OpSpec.delete(key))
    return specs


def oracle_replay(specs, model):
    """Expected per-spec results of replaying ``specs`` on a dict."""
    expected = []
    for spec in specs:
        if spec.verb == PUT:
            expected.append(spec.key not in model)
            model[spec.key] = spec.payload
        elif spec.verb == GET:
            expected.append(model.get(spec.key))
        elif spec.verb == DELETE:
            expected.append(model.pop(spec.key, None) is not None)
    return expected


def run_batches(session, specs, batch_size):
    """Drive ``specs`` through the session in ``batch_size`` chunks."""
    results = []
    for start in range(0, len(specs), batch_size):
        chunk = specs[start:start + batch_size]
        op = batch_op(chunk)
        session.execute([op])
        assert op.error is None
        results.extend(op.result)
    return results


class TestDictOracleParity:
    def test_mixed_batches_match_dict_oracle(self):
        specs = make_spec_stream(seed=7, n=1_200)
        model = {}
        expected = oracle_replay(specs, model)
        with PATreeSession(seed=7) as session:
            results = run_batches(session, specs, batch_size=48)
            assert results == expected
            assert dict(session.tree.iterate_items_raw()) == model
            session.validate()

    def test_many_verbs_match_oracle(self):
        with PATreeSession(seed=3) as session:
            flags = session.put_many(
                (key, payload(key)) for key in range(1, 301)
            )
            assert flags == [True] * 300
            # re-putting half overwrites, not inserts
            flags = session.put_many(
                (key, payload(key + 1)) for key in range(1, 151)
            )
            assert flags == [False] * 150
            got = session.get_many([150, 151, 999])
            assert got == [payload(151), payload(151), None]
            dels = session.delete_many([150, 150, 999])
            # second delete of the same key in one batch sees it gone
            assert dels == [True, False, False]
            session.validate()

    def test_duplicate_keys_replay_in_input_order(self):
        with PATreeSession(seed=5) as session:
            op = batch_op(
                [
                    OpSpec.put(42, payload(1)),
                    OpSpec.get(42),
                    OpSpec.delete(42),
                    OpSpec.get(42),
                    OpSpec.put(42, payload(2)),
                ]
            )
            session.execute([op])
            assert op.result == [True, payload(1), True, None, True]
            assert session.get(42) == payload(2)


class TestStructuralStraddling:
    # payload 112 -> leaf capacity (512-32)//(8+112) = 4: every batch
    # of a few dozen keys straddles many splits/merges
    SIZE = 112

    def test_batches_through_splits_and_merges(self):
        with PATreeSession(seed=11, payload_size=self.SIZE) as session:
            keys = list(range(1, 241))
            flags = session.put_many((k, payload(k, self.SIZE)) for k in keys)
            assert flags == [True] * len(keys)
            stats = session.validate()
            assert stats["levels"] >= 3  # one batch grew a multi-level tree
            assert dict(session.tree.iterate_items_raw()) == {
                k: payload(k, self.SIZE) for k in keys
            }

            # delete in interleaved batches to force merges and borrows
            dels = session.delete_many(keys[::2])
            assert dels == [True] * len(keys[::2])
            session.validate()
            dels = session.delete_many(keys)
            assert dels == [k % 2 == 0 for k in keys]
            assert len(session) == 0
            stats = session.validate()
            assert stats["levels"] == 1  # root shrank back to one leaf

    def test_mixed_stream_small_leaves_matches_oracle(self):
        specs = make_spec_stream(seed=13, n=600, keyspace=300, size=self.SIZE)
        model = {}
        expected = oracle_replay(specs, model)
        with PATreeSession(seed=13, payload_size=self.SIZE) as session:
            results = run_batches(session, specs, batch_size=32)
            assert results == expected
            assert dict(session.tree.iterate_items_raw()) == model
            session.validate()


class TestSyncTreeOracle:
    def test_batch_results_match_sync_tree_replay(self):
        specs = make_spec_stream(seed=17, n=500)
        preload = [(k, payload(k)) for k in range(10, 1_000, 10)]

        with PATreeSession(seed=17) as session:
            session.bulk_load(preload)
            batched = run_batches(session, specs, batch_size=64)
            batched_items = dict(session.tree.iterate_items_raw())
            session.validate()

        # the same stream, one op at a time, on the synchronous oracle
        engine = Engine(seed=17)
        simos = SimOS(engine, OsProfile(cores=8))
        device = NvmeDevice(engine, fast_test_profile())
        tree = PaTree.create(device)
        tree.bulk_load(preload)
        accessor = SyncTreeAccessor(
            tree, DedicatedIoService(NvmeDriver(device)), BlockingLatchTable()
        )
        ops = [spec.to_operation() for spec in specs]
        BaselineRunner(simos, accessor, ops, n_threads=1).run_to_completion()

        assert batched == [op.result for op in ops]
        assert batched_items == dict(tree.iterate_items_raw())


class TestShardedParity:
    def test_batch_fans_out_and_merges_in_input_order(self):
        specs = make_spec_stream(seed=23, n=800)
        model = {}
        expected = oracle_replay(specs, model)
        with ShardedSession(seed=23, shards=4) as session:
            results = run_batches(session, specs, batch_size=64)
            assert results == expected
            session.validate()
            got = session.get_many(sorted(model))
            assert got == [model[k] for k in sorted(model)]

    def test_single_shard_batch_stays_whole(self):
        with ShardedSession(seed=2, shards=4, partitioning="range") as session:
            session.bulk_load((k, payload(k)) for k in range(1, 2_001))
            # range partitioning: a tight key cluster lands on one shard
            got = session.get_many(list(range(100, 140)))
            assert got == [payload(k) for k in range(100, 140)]
            stats = session.stats()
            assert stats["user_completed"] >= 1


class TestLsmBatchVerbs:
    def test_lsm_many_verbs_roundtrip(self):
        with AsyncLsmSession(seed=29) as session:
            flags = session.put_many((k, payload(k)) for k in range(1, 201))
            assert flags == [True] * 200
            got = session.get_many([1, 100, 200, 999])
            assert got == [payload(1), payload(100), payload(200), None]
            session.delete_many([100, 999])
            assert session.get_many([100, 101]) == [None, payload(101)]


class TestDeterminism:
    def test_same_seed_same_results_and_virtual_time(self):
        def run():
            specs = make_spec_stream(seed=31, n=400)
            with PATreeSession(seed=31) as session:
                results = run_batches(session, specs, batch_size=64)
                stats = session.stats()
            return results, stats["virtual_time_us"], stats["batch_groups"]

        assert run() == run()


def _leaf_lba_for(key, preload, seed):
    """The on-media LBA of the leaf holding ``key`` (deterministic)."""
    probe = PATreeSession(seed=seed, buffer_pages=0)
    probe.bulk_load(preload)
    tree = probe.tree
    node = tree.read_node_raw(tree.meta.root_page)
    while not node.is_leaf:
        node = tree.read_node_raw(node.child_for(key))
    return node.page_id


class TestBatchFaults:
    PRELOAD = [(k, payload(k)) for k in range(1, 211)]

    def _poisoned_session(self, seed=41):
        lba = _leaf_lba_for(50, self.PRELOAD, seed)
        session = PATreeSession(
            seed=seed, buffer_pages=0, faults=FaultConfig(poison_lbas=(lba,))
        )
        session.bulk_load(self.PRELOAD)
        return session, lba

    def test_media_error_mid_batch_names_the_failing_key(self):
        session, _lba = self._poisoned_session()
        keys = [10, 50, 150]  # three distinct leaf groups; 50 is poisoned
        with pytest.raises(BatchError) as excinfo:
            session.get_many(keys)
        error = excinfo.value
        assert isinstance(error, IoError)
        assert error.key == 50
        assert error.index == keys.index(50)
        assert error.__cause__ is not None
        assert "get(key=50)" in str(error)

        # the rest of the tree is intact and the session stays usable
        assert session.get_many([10, 150]) == [payload(10), payload(150)]
        session.validate()

    def test_single_op_error_stays_plain_io_error(self):
        session, _lba = self._poisoned_session()
        with pytest.raises(IoError) as excinfo:
            session.get(50)
        assert not isinstance(excinfo.value, BatchError)
        # single-op callers keep the untranslated device failure
        assert session.get(10) == payload(10)


class TestExecuteContract:
    def test_spec_lists_return_op_results(self):
        with PATreeSession(seed=1) as session:
            results = session.execute(
                [OpSpec.put(9, payload(9)), OpSpec.get(9), OpSpec.scan(1, 20)]
            )
            assert [r.verb for r in results] == ["put", "get", "scan"]
            assert results[0].value is True
            assert results[1].value == payload(9)
            assert results[2].value == [(9, payload(9))]
            assert all(r.ok and r.error is None for r in results)

    def test_mixed_spec_and_operation_inputs_raise(self):
        with PATreeSession(seed=1) as session:
            with pytest.raises(ReproError):
                session.execute([OpSpec.get(1), batch_op([OpSpec.get(2)])])

    def test_unbatchable_verb_rejected(self):
        with pytest.raises(TreeError):
            batch_op([OpSpec.scan(1, 10)])
        with pytest.raises(TreeError):
            batch_op([OpSpec.update(1, payload(1))])

    def test_empty_batches_are_no_ops(self):
        with PATreeSession(seed=1) as session:
            assert session.put_many([]) == []
            assert session.get_many([]) == []
            assert session.delete_many([]) == []

    def test_deprecated_aliases_warn_once(self):
        with PATreeSession(seed=1) as session:
            BaseSession._warned_aliases = set()
            with pytest.warns(DeprecationWarning, match="use put"):
                session.insert(5, payload(5))
            with pytest.warns(DeprecationWarning, match="use get"):
                session.search(5)
            with pytest.warns(DeprecationWarning, match="use scan"):
                session.range_search(1, 10)
            with warnings.catch_warnings(record=True) as again:
                warnings.simplefilter("always")
                session.insert(6, payload(6))
                session.search(6)
                session.range_search(1, 10)
            assert not [w for w in again if w.category is DeprecationWarning]
