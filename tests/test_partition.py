"""Tests for the multi-worker (range-partitioned) PA-Tree extension."""

import random

import pytest

from repro.core.engine import PERSISTENCE_WEAK
from repro.core.ops import (
    delete_op,
    insert_op,
    range_op,
    search_op,
    sync_op,
    update_op,
)
from repro.core.partition import PartitionedPaTree
from repro.errors import SchedulerError
from repro.nvme.device import NvmeDevice, fast_test_profile
from repro.nvme.driver import NvmeDriver
from repro.sim.engine import Engine
from repro.simos.scheduler import OsProfile, SimOS


def payload(key):
    return (key % 2**64).to_bytes(8, "little")


def build(n_partitions=4, preload=2_000, **kwargs):
    engine = Engine(seed=6)
    simos = SimOS(engine, OsProfile(cores=8))
    device = NvmeDevice(engine, fast_test_profile())
    driver = NvmeDriver(device)
    tree = PartitionedPaTree(simos, driver, n_partitions, **kwargs)
    if preload:
        tree.bulk_load([(k * 10, payload(k * 10)) for k in range(1, preload + 1)])
    return tree


class TestPartitionedBasics:
    def test_partition_count_validated(self):
        with pytest.raises(SchedulerError):
            build(n_partitions=0, preload=0)

    def test_bulk_load_balances(self):
        tree = build(n_partitions=4, preload=4_000)
        counts = [t.meta.key_count for t in tree.trees]
        assert sum(counts) == 4_000
        assert min(counts) >= 900  # quantile split keeps partitions even

    def test_search_routes_to_right_partition(self):
        tree = build()
        ops = tree.run_operations([search_op(10), search_op(19_990), search_op(5)])
        assert ops[0].result == payload(10)
        assert ops[1].result == payload(19_990)
        assert ops[2].result is None

    def test_mutations_across_partitions(self):
        tree = build(n_partitions=3, preload=1_500)
        ops = tree.run_operations(
            [
                insert_op(5, payload(5)),
                insert_op(14_999, payload(14_999)),
                update_op(10, payload(1)),
                delete_op(20, ),
            ]
        )
        assert [op.result for op in ops] == [True, True, True, True]
        assert tree.validate()["keys"] == 1_501
        data = dict(tree.iterate_items_raw())
        assert data[5] == payload(5)
        assert 20 not in data

    def test_range_within_one_partition(self):
        tree = build()
        (op,) = tree.run_operations([range_op(100, 200)])
        assert [k for k, _v in op.result] == list(range(100, 201, 10))

    def test_range_spanning_partitions(self):
        tree = build(n_partitions=4, preload=2_000)
        low, high = 10, 20_000
        (op,) = tree.run_operations([range_op(low, high)])
        keys = [k for k, _v in op.result]
        assert keys == [k * 10 for k in range(1, 2_001)]
        assert keys == sorted(keys)

    def test_range_spanning_with_limit(self):
        tree = build(n_partitions=4, preload=2_000)
        (op,) = tree.run_operations([range_op(10, 20_000, limit=25)])
        assert len(op.result) == 25
        assert [k for k, _v in op.result] == [k * 10 for k in range(1, 26)]

    def test_sync_broadcast(self):
        tree = build(
            n_partitions=2,
            preload=500,
            persistence=PERSISTENCE_WEAK,
            buffer_pages_per_partition=512,
        )
        tree.run_operations(
            [update_op(10, payload(1)), update_op(4_990, payload(2))]
        )
        (sync,) = tree.run_operations([sync_op()])
        assert sync.result >= 2  # both partitions flushed something
        tree.validate()


class TestPartitionedFuzz:
    def test_equivalent_to_dict(self):
        tree = build(n_partitions=4, preload=1_000)
        rng = random.Random(12)
        model = {k * 10: payload(k * 10) for k in range(1, 1_001)}
        ops = []
        for _ in range(600):
            roll = rng.random()
            key = rng.choice(sorted(model)) if model and roll < 0.7 else rng.randrange(1, 10**6)
            if roll < 0.3:
                ops.append(search_op(key))
            elif roll < 0.55:
                ops.append(insert_op(key, payload(key)))
                model[key] = payload(key)
            elif roll < 0.75:
                ops.append(delete_op(key))
                model.pop(key, None)
            else:
                ops.append(update_op(key, payload(key ^ 3)))
                if key in model:
                    model[key] = payload(key ^ 3)
        tree.run_operations(ops, window=32)
        assert dict(tree.iterate_items_raw()) == model
        tree.validate()

    def test_multiple_batches(self):
        tree = build(n_partitions=2, preload=200)
        tree.run_operations([insert_op(3, payload(3))])
        tree.run_operations([insert_op(7, payload(7))])
        (found,) = tree.run_operations([search_op(3)])
        assert found.result == payload(3)
        assert tree.key_count == 202
