"""Tests for repro.fuzz: hooks, decision layer, harness, shrink, CLI."""

import json

import pytest

from repro.api import PATreeSession
from repro.errors import LivelockError, SchedulerError
from repro.fuzz import (
    FuzzConfig,
    FuzzRunConfig,
    HookBinder,
    NoProgressWatchdog,
    ScheduleExplorer,
    TraceDecider,
    config_from_jsonable,
    config_jsonable,
    explore,
    known_bad_config,
    make_workload,
    replay,
    run_one,
    shrink_trace,
)
from repro.fuzz.cli import main as fuzz_main
from repro.sim.clock import usec
from repro.sim.engine import Engine
from repro.sim.metrics import CPU_REAL_WORK
from repro.sim.rng import RngRegistry
from repro.simos.scheduler import OsProfile, SimOS
from repro.simos.sync import Semaphore
from repro.simos.thread import Cpu, SemPost, SemWait


def make_os(cores=1, **kwargs):
    engine = Engine(seed=1)
    return engine, SimOS(engine, OsProfile(cores=cores, **kwargs))


# ---------------------------------------------------------------------------
# scheduler exploration hooks
# ---------------------------------------------------------------------------


def test_pick_runnable_hook_reorders_dispatch():
    engine, simos = make_os(cores=1, context_switch_ns=0)
    order = []

    def body(name):
        yield Cpu(usec(1), CPU_REAL_WORK)
        order.append(name)

    # with one core, b and c queue behind a; picking the tail first
    # inverts their dispatch order
    simos.pick_runnable = lambda queue: len(queue) - 1
    simos.spawn(body("a"))
    simos.spawn(body("b"))
    simos.spawn(body("c"))
    engine.run()
    assert order == ["a", "c", "b"]


def test_pick_runnable_out_of_range_raises():
    engine, simos = make_os(cores=1)

    def body():
        yield Cpu(usec(1), CPU_REAL_WORK)

    simos.pick_runnable = lambda queue: len(queue)
    simos.spawn(body())
    simos.spawn(body())
    simos.spawn(body())
    with pytest.raises(SchedulerError, match="out of range"):
        engine.run()


def test_preempt_policy_hook_forces_early_preemption():
    # bursts far below the quantum, but the policy preempts every one
    engine, simos = make_os(cores=1, quantum_ns=usec(1_000), context_switch_ns=0)

    def body():
        for _ in range(3):
            yield Cpu(usec(1), CPU_REAL_WORK)

    simos.preempt_policy = lambda thread, used_ns, quantum_ns: True
    simos.spawn(body())
    simos.spawn(body())
    engine.run()
    assert simos.preemptions.value >= 4


def test_preempt_policy_not_consulted_without_rivals():
    engine, simos = make_os(cores=1, quantum_ns=usec(1))
    consults = []

    def body():
        for _ in range(5):
            yield Cpu(usec(10), CPU_REAL_WORK)

    def policy(thread, used_ns, quantum_ns):
        consults.append(used_ns)
        return False

    simos.preempt_policy = policy
    simos.spawn(body())  # alone: every burst exceeds the quantum
    engine.run()
    assert consults == []
    assert simos.preemptions.value == 0


def test_wakeup_pick_hook_reorders_wakeups():
    engine, simos = make_os(cores=4)
    sem = Semaphore(0)
    order = []

    def waiter(name):
        yield SemWait(sem)
        order.append(name)

    def poster():
        yield Cpu(usec(10), CPU_REAL_WORK)
        for _ in range(3):
            yield SemPost(sem)
            yield Cpu(usec(10), CPU_REAL_WORK)

    simos.wakeup_pick = lambda waiters: len(waiters) - 1  # LIFO
    for name in "abc":
        simos.spawn(waiter(name))
    simos.spawn(poster())
    engine.run()
    assert order == ["c", "b", "a"]


def test_engine_perturb_delay_scales_schedule():
    engine = Engine(seed=1)
    engine.perturb_delay = lambda delay_ns: delay_ns * 2
    fired = []
    engine.schedule(100, lambda: fired.append(engine.now))
    engine.run()
    assert fired == [200]


def test_device_perturb_service_changes_completion_time():
    def run(factor):
        session = PATreeSession(seed=1, buffer_pages=0)
        if factor != 1:
            session.env.device.perturb_service = (
                lambda command, service_ns: service_ns * factor
            )
        session.bulk_load((k, b"x" * 8) for k in range(1, 200, 2))
        session.get_many(list(range(1, 50)))
        return session.env.now_usec

    assert run(3) > run(1)


# ---------------------------------------------------------------------------
# decision layer: explorer records, decider replays
# ---------------------------------------------------------------------------


def test_explorer_records_every_consultation():
    explorer = ScheduleExplorer(
        FuzzConfig(pick_rate=1.0, wakeup_rate=1.0, io_jitter_rate=1.0),
        RngRegistry(7).stream("fuzz:schedule"),
    )
    explorer.pick(4)
    explorer.preempt(10, 100)
    explorer.wakeup(3)
    explorer.io_service(1_000)
    assert [entry[0] for entry in explorer.trace] == [
        "pick", "preempt", "wakeup", "io",
    ]


def test_explorer_is_deterministic_per_seed():
    def run():
        explorer = ScheduleExplorer(
            FuzzConfig(), RngRegistry(3).stream("fuzz:schedule")
        )
        return [
            explorer.pick(5),
            explorer.io_service(10_000),
            explorer.wakeup(4),
            explorer.preempt(200, 100),
        ], explorer.trace

    assert run() == run()


def test_trace_decider_replays_then_defaults():
    decider = TraceDecider([["pick", 2], ["io", 500]])
    assert decider.pick(5) == 2
    assert decider.io_service(1_000) == 500
    # queues exhausted: pinned defaults
    assert decider.pick(5) == 0
    assert decider.io_service(1_000) == 1_000
    assert decider.preempt(200, 100) is True  # default >= boundary
    assert decider.preempt(50, 100) is False
    assert decider.consumed == 2
    assert decider.defaulted > 0


def test_trace_decider_clamps_indices_into_range():
    decider = TraceDecider([["pick", 9], ["wakeup", 9]])
    assert decider.pick(3) == 2
    assert decider.wakeup(2) == 1


def test_trace_decider_rejects_unknown_site():
    with pytest.raises(SchedulerError, match="unknown trace site"):
        TraceDecider([["warp", 1]])


def test_hook_binder_installs_and_restores():
    engine, simos = make_os(cores=1)
    decider = TraceDecider([["delay", 1_000]])
    with HookBinder(decider).bind(simos=simos, engine=engine):
        assert simos.pick_runnable is not None
        assert simos.preempt_policy is not None
        assert simos.wakeup_pick is not None
        assert engine.perturb_delay is not None  # trace has a delay entry
    assert simos.pick_runnable is None
    assert simos.preempt_policy is None
    assert simos.wakeup_pick is None
    assert engine.perturb_delay is None


def test_hook_binder_refuses_double_bind():
    engine, simos = make_os(cores=1)
    simos.pick_runnable = lambda queue: 0
    with pytest.raises(SchedulerError, match="already bound"):
        HookBinder(TraceDecider([])).bind(simos=simos)


# ---------------------------------------------------------------------------
# watchdog
# ---------------------------------------------------------------------------


def test_watchdog_raises_livelock_without_progress():
    engine = Engine(seed=1)
    watchdog = NoProgressWatchdog(engine, budget=50)
    watchdog.bind()

    def tick():
        engine.schedule(10, tick)

    engine.schedule(10, tick)
    with pytest.raises(LivelockError, match="no completion"):
        engine.run()


def test_watchdog_progress_resets_counter():
    engine = Engine(seed=1)
    watchdog = NoProgressWatchdog(engine, budget=50)
    watchdog.bind()
    remaining = [120]

    def tick():
        watchdog.progress()  # completions keep arriving
        remaining[0] -= 1
        if remaining[0]:
            engine.schedule(10, tick)

    engine.schedule(10, tick)
    engine.run()
    assert remaining[0] == 0
    watchdog.unbind()
    assert engine.on_dispatch is None


# ---------------------------------------------------------------------------
# harness: determinism, parity, replay
# ---------------------------------------------------------------------------

QUICK = dict(n_ops=80)


def test_workload_is_deterministic_and_batch_keys_distinct():
    cfg = FuzzRunConfig(**QUICK)
    steps_a, preload_a = make_workload(5, cfg)
    steps_b, preload_b = make_workload(5, cfg)
    assert repr(steps_a) == repr(steps_b)  # OpSpec has no __eq__
    assert preload_a == preload_b
    assert any(step[0] == "batch" for step in steps_a)
    for step in steps_a:
        if step[0] == "batch":
            keys = [spec.key for spec in step[1]]
            assert len(keys) == len(set(keys))


@pytest.mark.parametrize("target", ["patree", "lsm", "sharded"])
def test_clean_run_passes_all_checks(target):
    cfg = FuzzRunConfig(target=target, **QUICK)
    result = run_one(3, cfg)
    assert result["ok"], result["failure"]
    assert result["failure"] is None
    assert result["ops"] == cfg.n_ops
    assert result["decisions"] == len(result["trace"])
    assert result["virtual_time_us"] > 0


def test_same_seed_same_run_bit_identical():
    cfg = FuzzRunConfig(**QUICK)
    assert run_one(11, cfg) == run_one(11, cfg)


def test_different_seeds_explore_different_schedules():
    cfg = FuzzRunConfig(**QUICK)
    assert run_one(1, cfg)["trace"] != run_one(2, cfg)["trace"]


def test_replaying_a_full_trace_reproduces_the_run():
    cfg = FuzzRunConfig(**QUICK)
    explored = run_one(7, cfg)
    replayed = replay(7, cfg, explored["trace"])
    assert replayed["trace"] == explored["trace"]
    assert replayed["virtual_time_us"] == explored["virtual_time_us"]
    assert replayed["ok"] == explored["ok"]


def test_empty_trace_replay_equals_unfuzzed_run():
    # a drained decider answers every site with the pinned default, so
    # the replayed schedule is the ordinary deterministic one
    cfg = FuzzRunConfig(**QUICK)
    baseline = replay(3, cfg, [])

    from repro.fuzz.harness import _build_session

    session = _build_session(3, cfg)
    steps, preload = make_workload(3, cfg)
    session.bulk_load(preload)
    for step in steps:
        if step[0] == "scan":
            session.scan(step[1], step[2])
        else:
            session._run_batch(list(step[1]))
    session.scan(0, cfg.keyspace + 1)  # the harness's final sweep
    session.validate()
    assert baseline["ok"]
    assert baseline["virtual_time_us"] == session.env.now_usec


def test_sync_tree_oracle_agrees_on_clean_runs():
    cfg = FuzzRunConfig(sync_oracle=True, **QUICK)
    result = run_one(5, cfg)
    assert result["ok"], result["failure"]


def test_fault_composition_tolerates_and_keeps_parity():
    cfg = FuzzRunConfig(
        n_ops=150,
        faults={"read_error_rate": 0.05, "write_error_rate": 0.05},
        retry={"max_retries": 0},
    )
    result = run_one(1, cfg)
    assert result["ok"], result["failure"]
    assert result["tolerated_faults"] > 0


def test_config_jsonable_round_trip():
    cfg = FuzzRunConfig(
        target="sharded",
        n_ops=64,
        faults={"read_error_rate": 0.01},
        fuzz=FuzzConfig(pick_rate=0.5),
    )
    data = json.loads(json.dumps(config_jsonable(cfg)))
    rebuilt = config_from_jsonable(data)
    assert rebuilt.target == "sharded"
    assert rebuilt.n_ops == 64
    assert rebuilt.fuzz.pick_rate == 0.5
    assert rebuilt.faults == {"read_error_rate": 0.01}


# ---------------------------------------------------------------------------
# shrink + known-bad reproducer
# ---------------------------------------------------------------------------


def test_shrink_trace_isolates_the_triggering_entry():
    poison = ["io", 13]

    def replay_fn(trace):
        failing = poison in trace
        failure = {"kind": "parity", "detail": "x"} if failing else None
        return {"failure": failure}

    noise = [["io", 1_000]] * 40
    trace = noise[:20] + [poison] + noise[20:]
    shrunk, runs = shrink_trace(replay_fn, trace, ["parity", "x"])
    assert shrunk == [poison]
    assert runs > 0


def test_shrink_gives_up_gracefully_when_nothing_reproduces():
    def replay_fn(trace):
        return {"failure": None}

    trace = [["io", 1_000]] * 10
    shrunk, _runs = shrink_trace(replay_fn, trace, ["parity", "x"])
    assert shrunk == trace  # nothing matched, nothing removed


def test_known_bad_schedule_yields_verified_minimal_reproducer():
    cfg = known_bad_config(FuzzRunConfig(**QUICK))
    report = explore(cfg, [1])
    assert report["failures_found"] == 1
    failure = report["failures"][0]
    assert failure["kind"] == "io_error"
    assert "unrecovered" in failure["signature"][1]
    shrink = failure["shrink"]
    assert shrink["verified"]
    assert shrink["shrunk_decisions"] <= shrink["original_decisions"]
    # the reproducer round-trips through JSON and replays to the same
    # failure signature
    repro = json.loads(json.dumps(failure["reproducer"]))
    result = replay(
        repro["seed"], config_from_jsonable(repro["config"]), repro["trace"]
    )
    assert result["failure"] is not None
    assert result["failure"]["signature"] == failure["signature"]
    assert result["failure"]["postmortem"]["error"]


def test_explore_reports_clean_seeds():
    cfg = FuzzRunConfig(n_ops=60)
    report = explore(cfg, [1, 2])
    assert report["seeds_explored"] == 2
    assert report["failures_found"] == 0
    assert [row["seed"] for row in report["results"]] == [1, 2]
    assert all(row["ok"] for row in report["results"])


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_smoke_writes_report(tmp_path, capsys):
    out = tmp_path / "fuzz"
    code = fuzz_main(
        ["--seeds", "2", "--ops", "60", "--out", str(out)]
    )
    assert code == 0
    report = json.loads((out / "fuzz_report_patree.json").read_text())
    assert report["seeds_explored"] == 2
    assert report["failures_found"] == 0
    assert "verdict" in capsys.readouterr().out


def test_cli_known_bad_and_replay_round_trip(tmp_path, capsys):
    out = tmp_path / "fuzz"
    code = fuzz_main(
        ["--known-bad", "--ops", "60", "--out", str(out)]
    )
    assert code == 0
    repro_path = out / "fuzz_repro_patree_1.json"
    assert repro_path.exists()
    assert (out / "fuzz_postmortem_patree_1.json").exists()
    code = fuzz_main(["--replay", str(repro_path)])
    assert code == 0
    assert "reproduced" in capsys.readouterr().out


def test_cli_output_is_deterministic(tmp_path):
    out_a = tmp_path / "a"
    out_b = tmp_path / "b"
    fuzz_main(["--seeds", "2", "--ops", "60", "--out", str(out_a)])
    fuzz_main(["--seeds", "2", "--ops", "60", "--out", str(out_b)])
    name = "fuzz_report_patree.json"
    assert (out_a / name).read_text() == (out_b / name).read_text()


# ---------------------------------------------------------------------------
# bench exhibit
# ---------------------------------------------------------------------------


def test_bench_fuzz_exhibit_rows_and_determinism(tmp_path):
    from repro.bench.experiments import fuzz_explore

    rows = fuzz_explore.run_experiment(
        n_ops=60, seeds=(1,), targets=("patree", "lsm")
    )
    assert [row["target"] for row in rows] == ["patree", "lsm"]
    assert all(row["verdict"] == "ok" for row in rows)
    assert rows == fuzz_explore.run_experiment(
        n_ops=60, seeds=(1,), targets=("patree", "lsm")
    )
    lines = []
    fuzz_explore.report(rows, out=lines.append, json_dir=str(tmp_path))
    assert (tmp_path / "BENCH_fuzz.json").exists()
    assert any("0 failure(s)" in line for line in lines)
