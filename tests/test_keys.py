"""Unit tests for key encoding: u64 validation, z-order, order keys."""

import pytest

from repro.core.keys import (
    KEY_MAX,
    check_key,
    order_key,
    order_key_decode,
    order_key_range,
    quantize_coordinate,
    zorder_decode,
    zorder_encode,
)
from repro.errors import KeyEncodingError


class TestCheckKey:
    def test_accepts_bounds(self):
        assert check_key(0) == 0
        assert check_key(KEY_MAX) == KEY_MAX

    def test_rejects_negative(self):
        with pytest.raises(KeyEncodingError):
            check_key(-1)

    def test_rejects_overflow(self):
        with pytest.raises(KeyEncodingError):
            check_key(KEY_MAX + 1)

    def test_rejects_non_int(self):
        with pytest.raises(KeyEncodingError):
            check_key("abc")


class TestZOrder:
    def test_roundtrip(self):
        for x, y in [(0, 0), (1, 2), (12345, 67890), (2**32 - 1, 2**32 - 1)]:
            code = zorder_encode(x, y)
            assert zorder_decode(code) == (x, y)

    def test_bit_interleaving(self):
        # x contributes even bits, y odd bits
        assert zorder_encode(1, 0) == 0b01
        assert zorder_encode(0, 1) == 0b10
        assert zorder_encode(1, 1) == 0b11
        assert zorder_encode(2, 0) == 0b0100

    def test_locality_monotonic_in_quadrant(self):
        # points within the same power-of-two cell share a prefix:
        # codes in [0,4) are the 2x2 cell at origin
        cell = {zorder_encode(x, y) for x in (0, 1) for y in (0, 1)}
        assert cell == {0, 1, 2, 3}

    def test_range_rejected(self):
        with pytest.raises(KeyEncodingError):
            zorder_encode(2**32, 0)
        with pytest.raises(KeyEncodingError):
            zorder_encode(0, -1)


class TestQuantize:
    def test_endpoints(self):
        assert quantize_coordinate(0.0, 0.0, 1.0, bits=8) == 0
        assert quantize_coordinate(1.0, 0.0, 1.0, bits=8) == 255

    def test_clamping(self):
        assert quantize_coordinate(-5.0, 0.0, 1.0, bits=8) == 0
        assert quantize_coordinate(5.0, 0.0, 1.0, bits=8) == 255

    def test_monotonic(self):
        values = [quantize_coordinate(v / 10, 0.0, 1.0) for v in range(11)]
        assert values == sorted(values)

    def test_empty_range_rejected(self):
        with pytest.raises(KeyEncodingError):
            quantize_coordinate(0.5, 1.0, 1.0)


class TestOrderKey:
    def test_roundtrip(self):
        key = order_key(123, 45678, 999)
        assert order_key_decode(key) == (123, 45678, 999)

    def test_sort_order_stock_then_price_then_seq(self):
        keys = [
            order_key(1, 100, 5),
            order_key(1, 100, 6),
            order_key(1, 101, 0),
            order_key(2, 0, 0),
        ]
        assert keys == sorted(keys)

    def test_range_covers_price_band(self):
        low, high = order_key_range(7, 100, 200)
        assert low == order_key(7, 100, 0)
        assert low <= order_key(7, 150, 12345) <= high
        assert order_key(7, 201, 0) > high
        assert order_key(8, 0, 0) > high

    def test_field_overflow_rejected(self):
        with pytest.raises(KeyEncodingError):
            order_key(1 << 16, 0, 0)
        with pytest.raises(KeyEncodingError):
            order_key(0, 1 << 24, 0)
        with pytest.raises(KeyEncodingError):
            order_key(0, 0, 1 << 24)
