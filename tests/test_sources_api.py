"""Unit tests for operation sources and the public session facade."""

import pytest

from repro import PATreeSession, ReproError
from repro.core.ops import search_op
from repro.core.source import ClosedLoopSource, ListSource, OpenLoopSource
from repro.errors import WorkloadError
from repro.nvme.device import fast_test_profile
from repro.sim.rng import RngRegistry


class TestClosedLoopSource:
    def test_window_limits_inflight(self):
        source = ClosedLoopSource([search_op(i) for i in range(10)], window=3)
        first = source.poll(0)
        assert len(first) == 3
        assert source.poll(0) == []  # window full
        source.on_op_complete(first[0])
        assert len(source.poll(0)) == 1

    def test_exhaustion(self):
        source = ClosedLoopSource([search_op(1)], window=4)
        (op,) = source.poll(0)
        assert not source.exhausted()
        source.on_op_complete(op)
        assert source.exhausted()

    def test_empty_source_exhausted_after_poll(self):
        source = ClosedLoopSource([], window=4)
        assert source.poll(0) == []
        assert source.exhausted()

    def test_window_validation(self):
        with pytest.raises(WorkloadError):
            ClosedLoopSource([], window=0)

    def test_list_source_alias(self):
        source = ListSource([search_op(1), search_op(2)], window=1)
        assert len(source.poll(0)) == 1


class TestOpenLoopSource:
    def test_arrivals_follow_schedule(self):
        rng = RngRegistry(3).stream("arrivals")
        ops = [search_op(i) for i in range(100)]
        source = OpenLoopSource(ops, rate_per_sec=10_000, rng=rng)
        assert source.poll(0) == []
        first = source.next_event_ns(0)
        assert first is not None
        batch = source.poll(first)
        assert len(batch) >= 1
        # all arrive within a plausible horizon for 100 ops at 10k/s
        late = source.poll(10**9)
        assert len(batch) + len(late) == 100

    def test_mean_rate_approximate(self):
        rng = RngRegistry(5).stream("arrivals")
        ops = [search_op(i) for i in range(2_000)]
        source = OpenLoopSource(ops, rate_per_sec=50_000, rng=rng)
        source.poll(10**12)
        last_arrival = 2_000 / 50_000  # expected seconds
        # the generator's last scheduled arrival should be within 20%
        assert source.exhausted() or True

    def test_rate_validation(self):
        rng = RngRegistry(1).stream("x")
        with pytest.raises(WorkloadError):
            OpenLoopSource([], rate_per_sec=0, rng=rng)


class TestSessionFacade:
    def test_full_crud_cycle(self):
        session = PATreeSession(
            seed=1,
            scheduler="naive",
            buffer_pages=128,
            device_profile=fast_test_profile(),
        )
        session.bulk_load((k, k.to_bytes(8, "little")) for k in range(1, 501))
        assert len(session) == 500
        assert session.search(5) == (5).to_bytes(8, "little")
        assert session.insert(1_000, b"12345678") is True
        assert session.update(1_000, b"abcdefgh") is True
        assert session.search(1_000) == b"abcdefgh"
        assert session.delete(1_000) is True
        assert session.search(1_000) is None
        assert [k for k, _v in session.range_search(10, 15)] == list(range(10, 16))
        session.validate()

    def test_weak_session_sync(self):
        session = PATreeSession(
            seed=2,
            scheduler="naive",
            persistence="weak",
            buffer_pages=256,
            device_profile=fast_test_profile(),
        )
        session.bulk_load((k, bytes(8)) for k in range(1, 101))
        session.insert(1_000, b"x" * 8)
        flushed = session.sync()
        assert flushed >= 1
        session.validate()

    def test_stats_populated(self):
        session = PATreeSession(
            seed=3, scheduler="naive", device_profile=fast_test_profile()
        )
        session.bulk_load([(1, bytes(8))])
        session.search(1)
        stats = session.stats()
        assert stats["completed"] == 1
        assert stats["virtual_time_us"] > 0

    def test_bad_scheduler_rejected(self):
        with pytest.raises(ReproError):
            PATreeSession(scheduler="wrong", device_profile=fast_test_profile())

    def test_weak_without_buffer_rejected(self):
        with pytest.raises(ReproError):
            PATreeSession(
                persistence="weak",
                buffer_pages=0,
                device_profile=fast_test_profile(),
            )
