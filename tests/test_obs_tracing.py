"""Tests for the observability pipeline (repro.obs).

Covers the tracer primitives, exporters, the time-series sampler, and
the two end-to-end guarantees the pipeline makes: traced output is
byte-identical across same-seed runs, and leaving tracing disabled
does not perturb the simulation at all.
"""

import json

import pytest

from repro.bench.runner import WorkloadSpec, run_pa
from repro.obs import (
    NULL_TRACER,
    Histogram,
    TimeSeriesSampler,
    Tracer,
    chrome_trace_events,
    latency_histogram,
    trace_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.sim.clock import Clock
from repro.sim.engine import Engine


def _small_spec():
    return WorkloadSpec(kind="ycsb", n_keys=2_000, n_ops=300, mix="default")


# ----------------------------------------------------------------------
# tracer primitives
# ----------------------------------------------------------------------


def test_tracer_slice_records_duration():
    clock = Clock()
    tracer = Tracer(clock)
    span = tracer.begin("worker", "probe", cat="w", args={"n": 1})
    clock.advance_to(5_000)
    tracer.end(span, args={"done": True})
    assert len(tracer.events) == 1
    kind, track, name, cat, start_ns, end_ns, args = tracer.events[0]
    assert (track, name, cat) == ("worker", "probe", "w")
    assert (start_ns, end_ns) == (0, 5_000)
    assert args == {"n": 1, "done": True}


def test_tracer_track_ids_follow_registration_order():
    tracer = Tracer(Clock())
    assert tracer.track_id("b") == 0
    assert tracer.track_id("a") == 1
    assert tracer.track_id("b") == 0  # stable on re-lookup


def test_tracer_drops_beyond_max_events():
    clock = Clock()
    tracer = Tracer(clock, max_events=2)
    for i in range(5):
        tracer.instant("t", "e%d" % i)
    assert len(tracer.events) == 2
    assert tracer.dropped == 3


def test_null_tracer_is_inert():
    span = NULL_TRACER.begin("t", "x")
    NULL_TRACER.end(span)
    NULL_TRACER.instant("t", "x")
    NULL_TRACER.async_begin("c", 1, "x")
    NULL_TRACER.async_end("c", 1, "x")
    NULL_TRACER.counter("t", "q", {"v": 1})
    assert NULL_TRACER.enabled is False
    assert not NULL_TRACER.events


# ----------------------------------------------------------------------
# histograms and sampler
# ----------------------------------------------------------------------


def test_histogram_snapshot_quantiles():
    histogram = latency_histogram()
    for us in (1, 2, 5, 10, 100):
        histogram.record(us * 1_000)
    snap = histogram.snapshot()
    assert snap["count"] == 5
    assert snap["min_us"] == pytest.approx(1.0)
    assert snap["max_us"] == pytest.approx(100.0)
    assert snap["p50_us"] >= snap["min_us"]
    assert snap["p999_us"] <= 200.0  # within the bucket above 100us


def test_histogram_overflow_bucket():
    histogram = Histogram([10, 20])
    histogram.record(5)
    histogram.record(1_000_000)
    snap = histogram.snapshot()
    overflow = [b for b in snap["buckets"] if b["le_us"] == "inf"]
    assert overflow and overflow[0]["count"] == 1


def test_sampler_collects_rows_in_virtual_time():
    engine = Engine(seed=7)
    sampler = TimeSeriesSampler(engine, interval_ns=1_000)
    values = iter(range(100))
    sampler.add_probe("depth", lambda: next(values))
    sampler.start()
    engine.schedule(5_500, lambda: sampler.stop())
    engine.run()
    times = [t for t, _row in sampler.samples]
    assert times == [1_000, 2_000, 3_000, 4_000, 5_000]
    summary = sampler.summary()["depth"]
    assert summary["min"] == 0 and summary["max"] == 4


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------


def _toy_tracer():
    clock = Clock()
    tracer = Tracer(clock)
    span = tracer.begin("worker", "step", cat="w")
    tracer.async_begin("op", 1, "search", args={"key": 3})
    clock.advance_to(2_000)
    tracer.async_instant("op", 1, "io_wait")
    tracer.counter("metrics", "queue", {"depth": 4})
    clock.advance_to(4_000)
    tracer.async_end("op", 1, "search")
    tracer.end(span)
    tracer.instant("worker", "shutdown")
    return tracer


def test_chrome_export_shapes_and_metadata_first():
    tracer = _toy_tracer()
    events = chrome_trace_events(tracer)
    phases = [e["ph"] for e in events]
    # thread_name metadata precedes everything referencing the tids
    meta_count = phases.count("M")
    assert meta_count >= 2
    assert all(ph == "M" for ph in phases[:meta_count])
    assert {"X", "i", "b", "n", "e", "C"} <= set(phases)
    slice_event = next(e for e in events if e["ph"] == "X")
    assert slice_event["ts"] == 0 and slice_event["dur"] == pytest.approx(4.0)


def test_chrome_trace_round_trips_through_json(tmp_path):
    tracer = _toy_tracer()
    path = write_chrome_trace(tracer, str(tmp_path / "t.trace.json"))
    with open(path) as handle:
        doc = json.loads(handle.read())
    assert doc["otherData"]["clock"] == "virtual"
    assert doc["traceEvents"] == chrome_trace_events(tracer)


def test_jsonl_round_trips_line_by_line(tmp_path):
    tracer = _toy_tracer()
    path = write_jsonl(tracer, str(tmp_path / "t.trace.jsonl"))
    with open(path) as handle:
        rows = [json.loads(line) for line in handle]
    assert len(rows) == len(tracer.events)
    assert all("ev" in row for row in rows)


def test_trace_summary_mentions_top_spans():
    text = trace_summary(_toy_tracer())
    assert "Top spans" in text
    assert "worker/step" in text
    assert "op/search" in text


# ----------------------------------------------------------------------
# end-to-end guarantees
# ----------------------------------------------------------------------


def test_traced_artifacts_identical_across_same_seed_runs(tmp_path):
    spec = _small_spec()
    paths = []
    for run in ("a", "b"):
        result = run_pa(spec, seed=11, trace=True)
        session = result["trace_session"]
        paths.append(session.write_artifacts(str(tmp_path / run)))
    for first, second in zip(*paths):
        with open(first, "rb") as fh, open(second, "rb") as sh:
            assert fh.read() == sh.read()


def test_span_ordering_deterministic_across_same_seed_runs():
    spec = _small_spec()
    first = run_pa(spec, seed=3, trace=True)["trace_session"]
    second = run_pa(spec, seed=3, trace=True)["trace_session"]
    assert first.tracer.events == second.tracer.events
    assert first.dispatches == second.dispatches
    assert first.bench_summary() == second.bench_summary()


def test_disabled_tracing_leaves_run_untouched():
    spec = _small_spec()
    traced = run_pa(spec, seed=5, trace=True)
    untraced = run_pa(spec, seed=5)
    session = traced.pop("trace_session")
    # every reported quantity — throughput, latencies, device and engine
    # event counts — must match the untraced run exactly
    assert traced == untraced
    assert "trace_session" not in untraced
    assert 0 < session.dispatches <= session.engine.dispatched


def test_dispatch_hook_does_not_change_event_counts():
    def drive(engine):
        def ping(depth):
            if depth:
                engine.schedule(10, lambda: ping(depth - 1))

        engine.schedule(0, lambda: ping(20))
        engine.schedule(5, lambda: None)
        engine.run()

    hooked = Engine(seed=9)
    seen = []
    hooked.on_dispatch = seen.append
    drive(hooked)
    bare = Engine(seed=9)
    drive(bare)
    assert hooked.dispatched == bare.dispatched
    assert len(seen) == hooked.dispatched
    assert hooked.now == bare.now


def test_hooks_detached_after_finish():
    result = run_pa(_small_spec(), seed=5, trace=True)
    session = result["trace_session"]
    assert session.engine.on_dispatch is None
    assert session._devices
    for device in session._devices:
        assert device.on_submit is None
        assert device.on_complete is None
    assert session._simos.on_thread_state is None


def test_traced_session_populates_histograms_and_probes():
    result = run_pa(_small_spec(), seed=5, trace=True)
    session = result["trace_session"]
    summary = session.bench_summary()
    assert summary["io_latency"]["read"]["count"] > 0
    assert summary["op_latency"]  # at least one op kind recorded
    assert "device_outstanding" in summary["timeseries"]["probes"]
    assert summary["trace_events"] > 0
    assert summary["trace_events_dropped"] == 0
