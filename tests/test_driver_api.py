"""Unit tests for the SPDK-style driver facade and command lifecycle."""

import pytest

from repro.errors import QueueFullError
from repro.nvme.command import OP_READ, OP_WRITE, IoStatus
from repro.nvme.device import NvmeDevice, fast_test_profile
from repro.nvme.driver import NvmeDriver
from repro.sim.engine import Engine


def make(seed=1, **overrides):
    engine = Engine(seed=seed)
    device = NvmeDevice(engine, fast_test_profile(**overrides))
    return engine, device, NvmeDriver(device)


class TestDriverApi:
    def test_io_submit_returns_immediately(self):
        engine, device, driver = make()
        qpair = driver.alloc_qpair()
        command = driver.read(qpair, 1)
        # polled-mode contract: submit is non-blocking, clock unmoved
        assert engine.now == 0
        assert command.status is IoStatus.SUBMITTED
        assert str(command.status) == "submitted"
        assert qpair.outstanding == 1

    def test_probe_fires_callbacks_in_completion_order(self):
        engine, device, driver = make()
        qpair = driver.alloc_qpair()
        order = []
        for lba in range(1, 5):
            driver.read(qpair, lba, callback=lambda c: order.append(c.lba))
        engine.run()
        completed = driver.probe(qpair)
        assert [c.lba for c in completed] == order
        assert len(order) == 4

    def test_probe_max_completions_limits_drain(self):
        engine, device, driver = make()
        qpair = driver.alloc_qpair()
        for lba in range(1, 7):
            driver.read(qpair, lba)
        engine.run()
        first = driver.probe(qpair, max_completions=2)
        assert len(first) == 2
        rest = driver.probe(qpair)
        assert len(rest) == 4

    def test_context_round_trips(self):
        engine, device, driver = make()
        qpair = driver.alloc_qpair()
        token = object()
        seen = []
        driver.read(qpair, 1, callback=lambda c: seen.append(c.context), context=token)
        engine.run()
        driver.probe(qpair)
        assert seen == [token]

    def test_submission_queue_capacity_enforced(self):
        engine, device, driver = make()
        qpair = driver.alloc_qpair(sq_size=4)
        # the device drains the SQ into channels immediately, so fill
        # the channels (4) plus the ring (4) before overflow
        for lba in range(1, 9):
            driver.read(qpair, lba)
        with pytest.raises(QueueFullError):
            driver.read(qpair, 99)

    def test_command_latency_matches_clock(self):
        engine, device, driver = make()
        qpair = driver.alloc_qpair()
        command = driver.read(qpair, 1)
        engine.run()
        driver.probe(qpair)
        assert command.latency_ns == command.visible_ns - command.submit_ns
        assert command.latency_ns > 0

    def test_write_then_read_same_qpair(self):
        engine, device, driver = make()
        qpair = driver.alloc_qpair()
        driver.write(qpair, 3, b"\x77" * 512)
        engine.run()
        driver.probe(qpair)
        got = []
        driver.read(qpair, 3, callback=lambda c: got.append(c.data))
        engine.run()
        driver.probe(qpair)
        assert got == [b"\x77" * 512]

    def test_opcodes_exposed(self):
        engine, device, driver = make()
        qpair = driver.alloc_qpair()
        read = driver.io_submit(qpair, OP_READ, 1)
        write = driver.io_submit(qpair, OP_WRITE, 2, data=bytes(512))
        assert not read.is_write
        assert write.is_write
