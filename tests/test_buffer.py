"""Unit tests for LRU cache and the two buffer managers."""

import pytest

from repro.buffer.lru import LruCache
from repro.buffer.read_only import ReadOnlyBuffer
from repro.buffer.read_write import ReadWriteBuffer


class TestLru:
    def test_put_get(self):
        lru = LruCache(2)
        assert lru.put("a", 1) is None
        assert lru.get("a") == 1
        assert lru.get("b") is None

    def test_eviction_order(self):
        lru = LruCache(2)
        lru.put("a", 1)
        lru.put("b", 2)
        evicted = lru.put("c", 3)
        assert evicted == ("a", 1)

    def test_get_refreshes_recency(self):
        lru = LruCache(2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get("a")
        evicted = lru.put("c", 3)
        assert evicted == ("b", 2)

    def test_peek_does_not_refresh(self):
        lru = LruCache(2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.peek("a")
        evicted = lru.put("c", 3)
        assert evicted == ("a", 1)

    def test_replace_no_eviction(self):
        lru = LruCache(2)
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.put("a", 10) is None
        assert lru.get("a") == 10

    def test_pop(self):
        lru = LruCache(2)
        lru.put("a", 1)
        assert lru.pop("a") == 1
        assert lru.pop("a") is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LruCache(0)


class TestReadOnlyBuffer:
    def test_miss_then_hit(self):
        buffer = ReadOnlyBuffer(4)
        assert buffer.lookup(1) is None
        buffer.install(1, b"data")
        assert buffer.lookup(1) == b"data"
        assert buffer.hits == 1
        assert buffer.misses == 1
        assert buffer.hit_rate() == 0.5

    def test_install_returns_no_flushes(self):
        buffer = ReadOnlyBuffer(1)
        assert buffer.install(1, b"a") == []
        assert buffer.install(2, b"b") == []  # clean eviction of 1
        assert buffer.lookup(1) is None

    def test_write_never_absorbs(self):
        buffer = ReadOnlyBuffer(4)
        assert buffer.write(1, b"x") == []
        assert buffer.lookup(1) is None  # not installed until I/O completes

    def test_invalidate(self):
        buffer = ReadOnlyBuffer(4)
        buffer.install(1, b"a")
        buffer.invalidate(1)
        assert buffer.lookup(1) is None

    def test_dirty_count_always_zero(self):
        buffer = ReadOnlyBuffer(4)
        buffer.install(1, b"a")
        assert buffer.dirty_count == 0


class TestReadWriteBuffer:
    def test_write_absorbed_and_readable(self):
        buffer = ReadWriteBuffer(4)
        assert buffer.write(1, b"v1") == []
        assert buffer.lookup(1) == b"v1"
        assert buffer.dirty_count == 1

    def test_clean_eviction_needs_no_flush(self):
        buffer = ReadWriteBuffer(1)
        buffer.install(1, b"a")
        assert buffer.install(2, b"b") == []

    def test_dirty_eviction_returns_flush(self):
        buffer = ReadWriteBuffer(1)
        buffer.write(1, b"v1")
        flushes = buffer.write(2, b"v2")
        assert flushes == [(1, b"v1")]

    def test_in_flight_page_still_readable(self):
        buffer = ReadWriteBuffer(1)
        buffer.write(1, b"v1")
        buffer.write(2, b"v2")  # evicts 1 into in-flight
        assert buffer.lookup(1) == b"v1"
        buffer.flush_done(1)
        assert buffer.lookup(1) is None

    def test_take_dirty_marks_clean(self):
        buffer = ReadWriteBuffer(4)
        buffer.write(1, b"a")
        buffer.write(2, b"b")
        flushing = buffer.take_dirty()
        assert sorted(flushing) == [(1, b"a"), (2, b"b")]
        assert buffer.dirty_count == 0
        # still readable while the flush is in flight
        assert buffer.lookup(1) == b"a"
        buffer.flush_done(1)
        buffer.flush_done(2)
        assert buffer.lookup(1) == b"a"  # still resident in LRU (clean)

    def test_rewrite_during_in_flight_keeps_latest(self):
        buffer = ReadWriteBuffer(1)
        buffer.write(1, b"v1")
        buffer.write(2, b"x")        # v1 now in flight
        buffer.write(1, b"v2")       # rewrite while flush pending
        assert buffer.lookup(1) == b"v2"
        buffer.flush_done(1)
        assert buffer.lookup(1) == b"v2"

    def test_write_merging_counts(self):
        buffer = ReadWriteBuffer(4)
        for _ in range(10):
            buffer.write(1, b"v")
        assert buffer.write_absorbs == 10
        assert buffer.dirty_count == 1
        assert len(buffer.take_dirty()) == 1

    def test_invalidate_clears_in_flight(self):
        buffer = ReadWriteBuffer(1)
        buffer.write(1, b"v1")
        buffer.write(2, b"x")
        buffer.invalidate(1)
        assert buffer.lookup(1) is None
