"""Tests for patlint v2's whole-program phase (PA5xx) and satellites.

The graph rules see a project-shaped fixture tree (``src/repro/...``
under a tmp dir, matching the real package prefixes so the committed
``layers.toml`` applies), so each rule family gets seeded positive,
negative and suppressed cases; the satellites cover repo-relative
finding paths, the SARIF reporter, ``--changed-only``, the phase-1
cache, Python-3.12-only syntax degradation and the lint shim's
``--json`` forwarding.
"""

import json
import os
import subprocess
import sys
import textwrap

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if REPO_ROOT not in sys.path:
    sys.path.insert(0, REPO_ROOT)

from tools.analysis import analyze
from tools.analysis.cli import main as patlint_main
from tools.analysis.framework import canonical_path


def write_tree(tmp_path, files):
    paths = []
    for relative, code in files.items():
        target = tmp_path / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(code))
        paths.append(str(target))
    return paths


def graph_findings(tmp_path, files):
    return analyze(write_tree(tmp_path, files), graph=True).findings


def codes(findings):
    return [finding.code for finding in findings]


def _subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_ROOT + os.pathsep + env.get("PYTHONPATH", "")
    return env


# ---------------------------------------------------------------------------
# PA501 layering
# ---------------------------------------------------------------------------


def test_pa501_engine_importing_observability(tmp_path):
    findings = graph_findings(
        tmp_path,
        {
            "src/repro/obs/tracer.py": "TRACER = object()\n",
            "src/repro/core/engine.py": (
                """
                from repro.obs.tracer import TRACER

                def run():
                    return TRACER
                """
            ),
        },
    )
    assert codes(findings) == ["PA501"]
    assert "layer 'engine'" in findings[0].message
    assert "layer 'observability'" in findings[0].message
    assert findings[0].path.endswith("src/repro/core/engine.py")


def test_pa501_downward_and_same_layer_imports_are_clean(tmp_path):
    findings = graph_findings(
        tmp_path,
        {
            "src/repro/sim/clock.py": "NOW = 0\n",
            "src/repro/core/engine.py": (
                """
                from repro.sim.clock import NOW
                from repro.core.latch import TABLE

                def run():
                    return NOW, TABLE
                """
            ),
            "src/repro/core/latch.py": "TABLE = {}\n",
            "src/repro/obs/export.py": (
                """
                from repro.core.engine import run

                def export():
                    return run()
                """
            ),
        },
    )
    assert findings == []


def test_pa501_unmapped_module_is_drift(tmp_path):
    findings = graph_findings(
        tmp_path,
        {"src/repro/brandnew/widget.py": "X = 1\n"},
    )
    assert codes(findings) == ["PA501"]
    assert "not assigned to any layer" in findings[0].message


def test_pa501_suppressible_at_import_line(tmp_path):
    findings = graph_findings(
        tmp_path,
        {
            "src/repro/obs/tracer.py": "TRACER = object()\n",
            "src/repro/core/engine.py": (
                """
                from repro.obs.tracer import TRACER  # patlint: ignore[PA501]

                def run():
                    return TRACER
                """
            ),
        },
    )
    assert findings == []


# ---------------------------------------------------------------------------
# PA502 nvme boundary
# ---------------------------------------------------------------------------


def test_pa502_nvme_internals_outside_backend(tmp_path):
    findings = graph_findings(
        tmp_path,
        {
            "src/repro/sched/probe.py": (
                """
                from repro.nvme.device import i3_nvme_profile

                def profile():
                    return i3_nvme_profile()
                """
            ),
        },
    )
    assert codes(findings) == ["PA502"]
    assert "repro.backend" in findings[0].message


def test_pa502_backend_and_public_contract_are_exempt(tmp_path):
    findings = graph_findings(
        tmp_path,
        {
            "src/repro/backend/base.py": (
                """
                from repro.nvme.device import NvmeDevice

                def make():
                    return NvmeDevice
                """
            ),
            "src/repro/core/engine.py": (
                """
                from repro.nvme.command import IoStatus

                def ok(c):
                    return c is IoStatus
                """
            ),
        },
    )
    assert findings == []


# ---------------------------------------------------------------------------
# PA503 import cycles
# ---------------------------------------------------------------------------


def test_pa503_module_level_cycle(tmp_path):
    findings = graph_findings(
        tmp_path,
        {
            "src/repro/core/a.py": (
                """
                from repro.core import b

                X = b
                """
            ),
            "src/repro/core/b.py": (
                """
                from repro.core import a

                Y = a
                """
            ),
            "src/repro/core/__init__.py": "",
        },
    )
    assert codes(findings) == ["PA503"]
    assert "repro.core.a -> repro.core.b" in findings[0].message


def test_pa503_function_level_import_breaks_cycle(tmp_path):
    findings = graph_findings(
        tmp_path,
        {
            "src/repro/core/a.py": (
                """
                from repro.core import b

                X = b
                """
            ),
            "src/repro/core/b.py": (
                """
                def late():
                    from repro.core import a

                    return a
                """
            ),
            "src/repro/core/__init__.py": "",
        },
    )
    assert findings == []


# ---------------------------------------------------------------------------
# PA510-PA512 wall-clock taint
# ---------------------------------------------------------------------------


def test_pa510_raw_io_source_outside_blessed_module(tmp_path):
    findings = graph_findings(
        tmp_path,
        {
            "src/repro/core/reader.py": (
                """
                import os

                def read(fd, n, off):
                    return os.pread(fd, n, off)
                """
            ),
        },
    )
    assert codes(findings) == ["PA510"]
    assert "os.pread" in findings[0].message


def test_pa511_interprocedural_taint_reaches_sink(tmp_path):
    findings = graph_findings(
        tmp_path,
        {
            "src/repro/core/probe.py": (
                """
                import time

                def measure():
                    return time.perf_counter()  # patlint: ignore[PA101, PA510]
                """
            ),
            "src/repro/core/feed.py": (
                """
                from repro.core.probe import measure

                def go(engine):
                    engine.schedule(measure(), None)
                """
            ),
        },
    )
    assert codes(findings) == ["PA511"]
    assert "measure" in findings[0].message
    assert findings[0].path.endswith("feed.py")


def test_pa511_blessed_module_sanitizes(tmp_path):
    findings = graph_findings(
        tmp_path,
        {
            "src/repro/backend/file.py": (
                """
                import time

                wall_clock_variant = True

                def measure():
                    return time.perf_counter()  # patlint: ignore[PA101]
                """
            ),
            "src/repro/core/feed.py": (
                """
                from repro.backend.file import measure

                def go(engine):
                    engine.schedule(measure(), None)
                """
            ),
        },
    )
    assert findings == []


def test_pa512_declaration_blessing_drift(tmp_path):
    findings = graph_findings(
        tmp_path,
        {
            "src/repro/core/rogue.py": (
                """
                wall_clock_variant = True

                def f():
                    return 1
                """
            ),
        },
    )
    assert codes(findings) == ["PA512"]
    assert "not" in findings[0].message and "blessed" in findings[0].message


# ---------------------------------------------------------------------------
# PA520-PA521 latch discipline
# ---------------------------------------------------------------------------

_OPS_STUB = "src/repro/core/ops.py", (
    """
    class LatchEff:
        def __init__(self, page_id, mode):
            self.page_id = page_id
            self.mode = mode

    class UnlatchEff:
        def __init__(self, page_id):
            self.page_id = page_id

    class UnlatchManyEff:
        def __init__(self, page_ids):
            self.page_ids = page_ids

    class ReadEff:
        def __init__(self, page_id):
            self.page_id = page_id
    """
)


def test_pa520_branch_leaks_latch(tmp_path):
    findings = graph_findings(
        tmp_path,
        {
            _OPS_STUB[0]: _OPS_STUB[1],
            "src/repro/core/plans.py": (
                """
                from repro.core.ops import LatchEff, UnlatchEff

                def plan(op, tree):
                    meta = tree.meta_page
                    yield LatchEff(meta, 1)
                    if op.key:
                        yield UnlatchEff(meta)
                        return
                    op.result = None
                """
            ),
        },
    )
    assert codes(findings) == ["PA520"]
    assert "meta" in findings[0].message


def test_pa520_crabbing_descent_is_clean(tmp_path):
    findings = graph_findings(
        tmp_path,
        {
            _OPS_STUB[0]: _OPS_STUB[1],
            "src/repro/core/plans.py": (
                """
                from repro.core.ops import LatchEff, ReadEff, UnlatchEff

                def plan(op, tree):
                    meta = tree.meta_page
                    yield LatchEff(meta, 0)
                    prev = meta
                    page = tree.root
                    while True:
                        yield LatchEff(page, 0)
                        yield UnlatchEff(prev)
                        node = yield ReadEff(page)
                        if node.is_leaf:
                            yield UnlatchEff(node.page_id)
                            return
                        prev = page
                        page = node.child
                """
            ),
        },
    )
    assert findings == []


def test_pa520_ownership_transferring_return_is_clean(tmp_path):
    findings = graph_findings(
        tmp_path,
        {
            _OPS_STUB[0]: _OPS_STUB[1],
            "src/repro/core/plans.py": (
                """
                from repro.core.ops import LatchEff, UnlatchEff

                def descend(op, tree):
                    meta = tree.meta_page
                    yield LatchEff(meta, 1)
                    path = [meta]
                    if op.safe:
                        for held in path:
                            yield UnlatchEff(held)
                        path = [op.page]
                    return path
                """
            ),
        },
    )
    assert findings == []


def test_pa520_unlatch_many_releases_everything(tmp_path):
    findings = graph_findings(
        tmp_path,
        {
            _OPS_STUB[0]: _OPS_STUB[1],
            "src/repro/core/plans.py": (
                """
                from repro.core.ops import LatchEff, UnlatchManyEff

                def plan(op, tree):
                    yield LatchEff(tree.meta_page, 1)
                    yield LatchEff(op.page, 1)
                    yield UnlatchManyEff([tree.meta_page, op.page])
                """
            ),
        },
    )
    assert findings == []


def test_pa521_swallowing_handler_while_latched(tmp_path):
    findings = graph_findings(
        tmp_path,
        {
            "src/repro/core/driver.py": (
                """
                class Driver:
                    def drive(self, op):
                        self.latches.request(op, op.page, 1)
                        try:
                            self.step(op)
                        except ValueError:
                            return None
                        self.latches.release(op, op.page)
                        return op
                """
            ),
        },
    )
    assert codes(findings) == ["PA521"]
    assert "swallow" in findings[0].message


def test_pa521_abort_delegation_and_protocol_handlers_are_clean(tmp_path):
    findings = graph_findings(
        tmp_path,
        {
            "src/repro/core/driver.py": (
                """
                class Driver:
                    def drive(self, op):
                        self.latches.request(op, op.page, 1)
                        try:
                            self.step(op)
                        except ValueError:
                            self._abort_op(op)
                            return None
                        self.latches.release(op, op.page)
                        return op

                    def pump(self, op):
                        self.latches.request(op, op.page, 1)
                        try:
                            op.gen.send(None)
                        except StopIteration:
                            return self._finish(op)
                        self.latches.release(op, op.page)
                        return None
                """
            ),
        },
    )
    assert findings == []


# ---------------------------------------------------------------------------
# PA530 hook contract
# ---------------------------------------------------------------------------


def test_pa530_unguarded_hook_consult(tmp_path):
    findings = graph_findings(
        tmp_path,
        {
            "src/repro/core/engine.py": (
                """
                class Engine:
                    def __init__(self):
                        self.on_dispatch = None

                    def dispatch(self, op):
                        self.on_dispatch(op)
                """
            ),
        },
    )
    assert codes(findings) == ["PA530"]
    assert "on_dispatch" in findings[0].message


def test_pa530_guard_shapes_are_clean(tmp_path):
    findings = graph_findings(
        tmp_path,
        {
            "src/repro/core/engine.py": (
                """
                class Engine:
                    def __init__(self):
                        self.on_dispatch = None
                        self.pick_runnable = None
                        self.wakeup_pick = None

                    def direct(self, op):
                        if self.on_dispatch is not None:
                            self.on_dispatch(op)

                    def early_return(self, op):
                        if self.on_dispatch is None:
                            return
                        self.on_dispatch(op)

                    def else_branch(self, queue):
                        if self.pick_runnable is None or len(queue) == 1:
                            return queue[0]
                        return queue[self.pick_runnable(queue)]

                    def bound_collaborator(self, op):
                        self.io_history.on_submit(op)
                """
            ),
        },
    )
    assert findings == []


def test_pa530_unregistered_null_default_hook_is_drift(tmp_path):
    findings = graph_findings(
        tmp_path,
        {
            "src/repro/core/engine.py": (
                """
                class Engine:
                    def __init__(self):
                        self.on_custom_thing = None

                    def fire(self, op):
                        if self.on_custom_thing is not None:
                            self.on_custom_thing(op)
                """
            ),
        },
    )
    assert codes(findings) == ["PA530"]
    assert "not registered" in findings[0].message


# ---------------------------------------------------------------------------
# phase-1 graph cache
# ---------------------------------------------------------------------------


def test_graph_cache_hits_on_unchanged_files(tmp_path):
    paths = write_tree(
        tmp_path,
        {
            "src/repro/core/a.py": "X = 1\n",
            "src/repro/core/b.py": "Y = 2\n",
        },
    )
    cache = str(tmp_path / "cache" / "graph.json")
    first = analyze(paths, graph=True, graph_cache=cache)
    assert first.graph.cache_misses == 2
    assert first.graph.cache_hits == 0
    second = analyze(paths, graph=True, graph_cache=cache)
    assert second.graph.cache_hits == 2
    assert second.graph.cache_misses == 0
    # editing one file invalidates exactly that entry
    (tmp_path / "src/repro/core/a.py").write_text("X = 3\n")
    third = analyze(paths, graph=True, graph_cache=cache)
    assert third.graph.cache_hits == 1
    assert third.graph.cache_misses == 1


# ---------------------------------------------------------------------------
# satellite: repo-relative finding paths
# ---------------------------------------------------------------------------


def test_canonical_path_is_repo_relative_posix():
    absolute = os.path.join(REPO_ROOT, "src", "repro", "api.py")
    assert canonical_path(absolute) == "src/repro/api.py"
    # and independent of a relative spelling
    relative = os.path.relpath(absolute)
    assert canonical_path(relative) == "src/repro/api.py"


def test_findings_in_repo_use_relative_paths(tmp_path):
    # a tmp tree has no repo markers, so paths stay absolute POSIX —
    # but inside a git checkout the same finding keys repo-relative
    target = tmp_path / "checkout" / "src" / "mod.py"
    target.parent.mkdir(parents=True)
    target.write_text("import time\n\n\ndef f():\n    return time.time()\n")
    subprocess.run(
        ["git", "init", "-q", str(tmp_path / "checkout")],
        check=True,
        capture_output=True,
    )
    findings = analyze([str(target)]).findings
    assert codes(findings) == ["PA101"]
    assert findings[0].path == "src/mod.py"


# ---------------------------------------------------------------------------
# satellite: SARIF reporter
# ---------------------------------------------------------------------------


def test_cli_sarif_reporter_schema(tmp_path, capsys):
    target = tmp_path / "src" / "seeded.py"
    target.parent.mkdir()
    target.write_text("import time\n\n\ndef f():\n    return time.time()\n")
    exit_code = patlint_main(
        [str(target), "--no-baseline", "--no-compile", "--format", "sarif"]
    )
    out = capsys.readouterr().out
    assert exit_code == 1
    document = json.loads(out)
    assert document["version"] == "2.1.0"
    run = document["runs"][0]
    assert run["tool"]["driver"]["name"] == "patlint"
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    for code in ("PA101", "PA501", "PA502", "PA510", "PA520", "PA530", "PA902"):
        assert code in rule_ids
    result = run["results"][0]
    assert result["ruleId"] == "PA101"
    assert result["baselineState"] == "new"
    assert result["level"] == "error"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith("src/seeded.py")
    assert location["region"]["startLine"] == 5


def test_cli_sarif_output_file(tmp_path):
    target = tmp_path / "src" / "clean.py"
    target.parent.mkdir()
    target.write_text("def f(x):\n    return x\n")
    report = tmp_path / "report.sarif"
    exit_code = patlint_main(
        [
            str(target),
            "--no-baseline",
            "--no-compile",
            "--format",
            "sarif",
            "--output",
            str(report),
        ]
    )
    assert exit_code == 0
    document = json.loads(report.read_text())
    assert document["runs"][0]["results"] == []


# ---------------------------------------------------------------------------
# satellite: --changed-only
# ---------------------------------------------------------------------------


def _git(cwd, *args):
    subprocess.run(
        ["git", "-C", str(cwd)] + list(args), check=True, capture_output=True
    )


def test_changed_only_narrows_to_diffed_files(tmp_path):
    repo = tmp_path / "checkout"
    (repo / "src").mkdir(parents=True)
    (repo / "src" / "stable.py").write_text(
        "import time\n\n\ndef f():\n    return time.time()\n"
    )
    (repo / "src" / "touched.py").write_text("def g(x):\n    return x\n")
    _git(tmp_path, "init", "-q", str(repo))
    _git(repo, "add", "-A")
    _git(
        repo,
        "-c", "user.email=t@t", "-c", "user.name=t",
        "commit", "-q", "-m", "seed",
    )
    # stable.py's violation is committed; only touched.py changes
    (repo / "src" / "touched.py").write_text(
        "import time\n\n\ndef g():\n    return time.monotonic()\n"
    )
    proc = subprocess.run(
        [
            sys.executable, "-m", "tools.analysis",
            "--changed-only", "--no-baseline", "--no-compile", "src",
        ],
        cwd=repo,
        env=_subprocess_env(),
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "touched.py" in proc.stdout
    assert "stable.py" not in proc.stdout

    # with a clean worktree the narrowed run analyzes nothing
    _git(repo, "add", "-A")
    _git(
        repo,
        "-c", "user.email=t@t", "-c", "user.name=t",
        "commit", "-q", "-m", "fix",
    )
    proc = subprocess.run(
        [
            sys.executable, "-m", "tools.analysis",
            "--changed-only", "--no-baseline", "--no-compile", "src",
        ],
        cwd=repo,
        env=_subprocess_env(),
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 file(s)" in proc.stdout


def test_changed_only_skips_graph_phase(tmp_path, capsys):
    target = tmp_path / "src" / "clean.py"
    target.parent.mkdir()
    target.write_text("def f(x):\n    return x\n")
    exit_code = patlint_main(
        [str(target), "--no-compile", "--no-baseline", "--graph", "--changed-only"]
    )
    err = capsys.readouterr().err
    assert exit_code == 0
    assert "skipping the PA5xx phase" in err


# ---------------------------------------------------------------------------
# satellite: 3.12-only syntax degrades to PA902, never a crash
# ---------------------------------------------------------------------------

_PEP695 = """\
type Pages = list[int]


def first[T](items: list[T]) -> T:
    return items[0]
"""


def test_pep695_syntax_degrades_gracefully(tmp_path):
    paths = write_tree(
        tmp_path,
        {
            "src/repro/core/modern.py": _PEP695,
            "src/repro/core/plain.py": "X = 1\n",
        },
    )
    result = analyze(paths, graph=True)
    if sys.version_info >= (3, 12):
        assert result.findings == []
        assert "repro.core.modern" in result.graph.modules
    else:
        assert codes(result.findings) == ["PA902"]
        assert "repro.core.modern" not in result.graph.modules
        # the parseable file is still fully analyzed
        assert "repro.core.plain" in result.graph.modules


# ---------------------------------------------------------------------------
# satellite: shim forwards --json and keeps exit codes
# ---------------------------------------------------------------------------


def test_lint_shim_forwards_json(tmp_path):
    bad = tmp_path / "src" / "bad.py"
    bad.parent.mkdir()
    bad.write_text("def f(x):\n    return x.status == 'completed'\n")
    proc = subprocess.run(
        [sys.executable, "tools/lint.py", "--json", str(bad)],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1
    document = json.loads(proc.stdout)
    assert document["tool"] == "patlint"
    assert document["schema_version"] == 1
    assert [f["code"] for f in document["findings"]] == ["PA302"]
    assert "deprecated" in proc.stderr


# ---------------------------------------------------------------------------
# baseline workflow covers graph findings
# ---------------------------------------------------------------------------


def test_graph_findings_are_baselinable(tmp_path, capsys):
    target = tmp_path / "src" / "repro" / "sched" / "probe.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        "from repro.nvme.device import i3_nvme_profile\n\n\n"
        "def profile():\n    return i3_nvme_profile()\n"
    )
    baseline = str(tmp_path / "baseline.json")
    args = [str(target), "--no-compile", "--graph", "--no-graph-cache",
            "--baseline", baseline]
    assert patlint_main(args) == 1
    assert patlint_main(args + ["--write-baseline"]) == 0
    capsys.readouterr()
    assert patlint_main(args) == 0
    out = capsys.readouterr().out
    assert "baselined" in out


# ---------------------------------------------------------------------------
# acceptance pins
# ---------------------------------------------------------------------------


def test_repository_graph_self_run_is_clean():
    """The v2 acceptance invariant: zero unbaselined PA5xx over src."""
    paths = [
        os.path.join(REPO_ROOT, name) for name in ("src", "tests", "benchmarks")
    ]
    result = analyze(paths, graph=True)
    assert result.findings == []
    assert result.graph is not None
    assert "repro.core.engine" in result.graph.modules


def test_analyzer_package_self_run_with_graph_is_clean():
    result = analyze([os.path.join(REPO_ROOT, "tools")], graph=True)
    assert result.findings == []


def test_list_rules_includes_graph_catalog(capsys):
    assert patlint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in (
        "PA501", "PA502", "PA503",
        "PA510", "PA511", "PA512",
        "PA520", "PA521", "PA530",
    ):
        assert code in out
    assert "[graph]" in out
