"""Unit tests for the event queue and engine dispatch."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.events import EventQueue


def test_events_fire_in_time_order():
    queue = EventQueue()
    order = []
    queue.push(300, lambda: order.append("c"))
    queue.push(100, lambda: order.append("a"))
    queue.push(200, lambda: order.append("b"))
    while queue:
        queue.pop().fn()
    assert order == ["a", "b", "c"]


def test_same_time_fires_in_push_order():
    queue = EventQueue()
    order = []
    for name in "abcde":
        queue.push(50, lambda n=name: order.append(n))
    while queue:
        queue.pop().fn()
    assert order == list("abcde")


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    fired = []
    event = queue.push(10, lambda: fired.append("x"))
    queue.push(20, lambda: fired.append("y"))
    queue.cancel(event)
    assert len(queue) == 1
    while queue:
        queue.pop().fn()
    assert fired == ["y"]


def test_cancel_is_idempotent():
    queue = EventQueue()
    event = queue.push(10, lambda: None)
    queue.cancel(event)
    queue.cancel(event)
    assert len(queue) == 0


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    first = queue.push(10, lambda: None)
    queue.push(30, lambda: None)
    queue.cancel(first)
    assert queue.peek_time() == 30


def test_engine_schedule_advances_clock():
    engine = Engine()
    seen = []
    engine.schedule(1_000, lambda: seen.append(engine.now))
    engine.schedule(2_000, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [1_000, 2_000]
    assert engine.now == 2_000


def test_engine_run_until_ns_stops_and_advances():
    engine = Engine()
    seen = []
    engine.schedule(1_000, lambda: seen.append(1))
    engine.schedule(5_000, lambda: seen.append(2))
    engine.run(until_ns=3_000)
    assert seen == [1]
    assert engine.now == 3_000
    engine.run()
    assert seen == [1, 2]


def test_engine_run_until_predicate():
    engine = Engine()
    counter = {"n": 0}

    def tick():
        counter["n"] += 1
        engine.schedule(100, tick)

    engine.schedule(100, tick)
    engine.run(until=lambda: counter["n"] >= 5)
    assert counter["n"] == 5


def test_engine_rejects_negative_delay():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.schedule(-5, lambda: None)


def test_engine_rejects_past_schedule_at():
    engine = Engine()
    engine.schedule(100, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(50, lambda: None)


def test_engine_event_budget_guard():
    engine = Engine(max_events=100)

    def loop():
        engine.schedule(1, loop)

    engine.schedule(1, loop)
    with pytest.raises(SimulationError):
        engine.run()


def test_nested_events_scheduled_from_callbacks():
    engine = Engine()
    seen = []

    def outer():
        seen.append(("outer", engine.now))
        engine.schedule(10, inner)

    def inner():
        seen.append(("inner", engine.now))

    engine.schedule(5, outer)
    engine.run()
    assert seen == [("outer", 5), ("inner", 15)]


def test_rng_streams_are_stable_and_independent():
    a = Engine(seed=1).rng
    b = Engine(seed=1).rng
    assert a.stream("x").random() == b.stream("x").random()
    c = Engine(seed=1).rng
    # requesting streams in a different order must not change values
    c.stream("y")
    first_via_c = c.stream("x").random()
    assert first_via_c == Engine(seed=1).rng.stream("x").random()


def test_rng_different_seeds_differ():
    a = Engine(seed=1).rng.stream("x").random()
    b = Engine(seed=2).rng.stream("x").random()
    assert a != b
