"""Unit tests for the NVMe device model, rings, qpairs and driver."""

import pytest

from repro.errors import DeviceError, PageBoundsError, QueueFullError
from repro.nvme.command import NvmeCommand, OP_READ
from repro.nvme.device import NvmeDevice, fast_test_profile
from repro.nvme.driver import NvmeDriver
from repro.nvme.latency import ServiceTimeModel
from repro.nvme.queue import Ring
from repro.sim.clock import usec
from repro.sim.engine import Engine


class TestRing:
    def test_fifo_order(self):
        ring = Ring(4)
        for i in range(3):
            ring.push(i)
        assert [ring.pop() for _ in range(3)] == [0, 1, 2]
        assert ring.pop() is None

    def test_full_raises(self):
        ring = Ring(2)
        ring.push(1)
        ring.push(2)
        assert ring.is_full
        with pytest.raises(QueueFullError):
            ring.push(3)

    def test_wraparound(self):
        ring = Ring(2)
        for i in range(10):
            ring.push(i)
            assert ring.pop() == i
        assert ring.is_empty

    def test_peek(self):
        ring = Ring(4)
        assert ring.peek() is None
        ring.push("a")
        assert ring.peek() == "a"
        assert len(ring) == 1


class TestCommand:
    def test_validation(self):
        with pytest.raises(ValueError):
            NvmeCommand("erase", 0)
        with pytest.raises(ValueError):
            NvmeCommand(OP_READ, -1)

    def test_latency_none_until_complete(self):
        command = NvmeCommand(OP_READ, 1)
        assert command.latency_ns is None


class TestServiceTime:
    def test_deterministic_with_zero_sigma(self):
        model = ServiceTimeModel(1000, 3000, sigma=0.0)
        assert model.sample(False, None) == 1000
        assert model.sample(True, None) == 3000

    def test_mean_calibration(self):
        engine = Engine(seed=9)
        rng = engine.rng.stream("svc")
        model = ServiceTimeModel(usec(80), usec(240), sigma=0.25)
        samples = [model.sample(False, rng) for _ in range(4000)]
        mean = sum(samples) / len(samples)
        assert abs(mean - usec(80)) / usec(80) < 0.05

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ServiceTimeModel(0, 10)
        with pytest.raises(ValueError):
            ServiceTimeModel(10, 10, sigma=-1)


def make_device(seed=1, **overrides):
    engine = Engine(seed=seed)
    device = NvmeDevice(engine, fast_test_profile(**overrides))
    return engine, device, NvmeDriver(device)


class TestDevice:
    def test_read_returns_written_data(self):
        engine, device, driver = make_device()
        qpair = driver.alloc_qpair()
        payload = bytes(range(256)) * 2
        done = []
        driver.write(qpair, 5, payload, callback=done.append)
        engine.run()
        driver.probe(qpair)
        assert len(done) == 1
        done2 = []
        driver.read(qpair, 5, callback=done2.append)
        engine.run()
        driver.probe(qpair)
        assert done2[0].data == payload

    def test_unwritten_page_reads_zeroes(self):
        engine, device, driver = make_device()
        qpair = driver.alloc_qpair()
        done = []
        driver.read(qpair, 9, callback=done.append)
        engine.run()
        driver.probe(qpair)
        assert done[0].data == bytes(512)

    def test_write_wrong_size_rejected(self):
        engine, device, driver = make_device()
        qpair = driver.alloc_qpair()
        with pytest.raises(DeviceError):
            driver.write(qpair, 1, b"short")

    def test_capacity_bounds(self):
        engine, device, driver = make_device()
        qpair = driver.alloc_qpair()
        with pytest.raises(PageBoundsError):
            driver.read(qpair, device.profile.capacity_pages)
        with pytest.raises(PageBoundsError):
            device.raw_read(device.profile.capacity_pages + 5)

    def test_completion_requires_probe(self):
        engine, device, driver = make_device()
        qpair = driver.alloc_qpair()
        done = []
        driver.read(qpair, 1, callback=done.append)
        engine.run()
        # device has completed the I/O but the callback only fires on probe
        assert done == []
        assert qpair.has_visible_completions
        driver.probe(qpair)
        assert len(done) == 1

    def test_parallelism_speedup(self):
        # 8 reads on 4 channels take ~2 service times, not 8
        engine, device, driver = make_device()
        qpair = driver.alloc_qpair()
        for lba in range(1, 9):
            driver.read(qpair, lba)
        engine.run()
        assert engine.now < usec(10) * 3
        assert device.reads_completed.value == 8

    def test_out_of_order_completion(self):
        engine, device, driver = make_device(seed=7)
        device.service.sigma = 0.5  # force service-time variance
        device.service.__init__(usec(10), usec(30), 0.5)
        qpair = driver.alloc_qpair()
        order = []
        for lba in range(1, 17):
            driver.read(qpair, lba, callback=lambda c: order.append(c.lba))
        engine.run()
        driver.probe(qpair)
        assert sorted(order) == list(range(1, 17))
        assert order != list(range(1, 17))

    def test_outstanding_gauge(self):
        engine, device, driver = make_device()
        qpair = driver.alloc_qpair()
        for lba in range(1, 5):
            driver.read(qpair, lba)
        assert device.outstanding.value == 4
        engine.run()
        driver.probe(qpair)
        assert device.outstanding.value == 0

    def test_round_robin_across_qpairs(self):
        engine, device, driver = make_device(channels=1)
        q1 = driver.alloc_qpair()
        q2 = driver.alloc_qpair()
        for _ in range(3):
            driver.read(q1, 1)
            driver.read(q2, 2)
        engine.run()
        # both queues served despite one channel
        assert len(q1.cq) == 3
        assert len(q2.cq) == 3

    def test_probe_interface_backlog_capped(self):
        engine, device, driver = make_device()
        qpair = driver.alloc_qpair()
        for _ in range(1000):
            device.probe(qpair)
        cap = device.profile.iface_backlog_cap_ns
        assert device._iface_free_ns - engine.now <= cap + device.profile.probe_iface_ns

    def test_latency_accounting(self):
        engine, device, driver = make_device()
        qpair = driver.alloc_qpair()
        driver.read(qpair, 1)
        driver.write(qpair, 2, bytes(512))
        engine.run()
        driver.probe(qpair)
        assert device.mean_read_latency_ns() > 0
        assert device.mean_write_latency_ns() > device.mean_read_latency_ns()


class TestDriverCosts:
    def test_probe_cost_scales_with_completions(self):
        engine, device, driver = make_device()
        assert driver.probe_cpu_ns(4) > driver.probe_cpu_ns(0)

    def test_submit_cost_positive(self):
        engine, device, driver = make_device()
        assert driver.submit_cpu_ns > 0
