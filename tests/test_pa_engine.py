"""Integration tests for the PA-Tree engine: full operations through
the polled-mode asynchronous working thread on the simulated stack."""

import pytest

from repro.buffer import ReadOnlyBuffer, ReadWriteBuffer
from repro.core.engine import PaTreeEngine, POLLER_CONTINUOUS
from repro.core.ops import (
    delete_op,
    insert_op,
    range_op,
    search_op,
    sync_op,
    update_op,
)
from repro.core.source import ClosedLoopSource
from repro.core.tree import PaTree
from repro.errors import SchedulerError
from repro.nvme.device import NvmeDevice, fast_test_profile
from repro.nvme.driver import NvmeDriver
from repro.sched.naive import NaiveScheduling
from repro.sim.engine import Engine
from repro.simos.scheduler import OsProfile, SimOS


def payload(key):
    return (key & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")


def build(seed=1, buffer=None, persistence="strong", preload=2_000, **engine_kwargs):
    engine = Engine(seed=seed)
    simos = SimOS(engine, OsProfile(cores=8))
    device = NvmeDevice(engine, fast_test_profile())
    driver = NvmeDriver(device)
    tree = PaTree.create(device)
    if preload:
        tree.bulk_load([(k * 100, payload(k * 100)) for k in range(1, preload + 1)])
    pa = PaTreeEngine(
        simos,
        driver,
        tree,
        NaiveScheduling(),
        source=ClosedLoopSource([], window=32),
        buffer=buffer,
        persistence=persistence,
        **engine_kwargs,
    )
    return pa


def run_ops(pa, operations, window=32):
    pa.source = ClosedLoopSource(operations, window=window)
    pa._shutdown = False
    pa.run_to_completion()
    return operations


class TestBasicOperations:
    def test_search_hit_and_miss(self):
        pa = build()
        hit, miss = run_ops(pa, [search_op(100), search_op(101)])
        assert hit.result == payload(100)
        assert miss.result is None

    def test_insert_then_search(self):
        pa = build()
        ops = run_ops(pa, [insert_op(55, payload(55))])
        assert ops[0].result is True
        (found,) = run_ops(pa, [search_op(55)])
        assert found.result == payload(55)
        assert pa.tree.validate()["keys"] == 2_001

    def test_insert_existing_overwrites(self):
        pa = build()
        (op,) = run_ops(pa, [insert_op(100, payload(9))])
        assert op.result is False
        assert pa.tree.meta.key_count == 2_000

    def test_update_existing_and_missing(self):
        pa = build()
        hit, miss = run_ops(pa, [update_op(100, payload(1)), update_op(101, payload(1))])
        assert hit.result is True
        assert miss.result is False

    def test_delete(self):
        pa = build()
        hit, miss = run_ops(pa, [delete_op(100), delete_op(100_000_001)])
        assert hit.result is True
        assert miss.result is False
        (gone,) = run_ops(pa, [search_op(100)])
        assert gone.result is None
        assert pa.tree.validate()["keys"] == 1_999

    def test_range_search(self):
        pa = build()
        (op,) = run_ops(pa, [range_op(100, 1000)])
        assert [k for k, _v in op.result] == list(range(100, 1001, 100))

    def test_range_with_limit(self):
        pa = build()
        (op,) = run_ops(pa, [range_op(100, 100_000, limit=7)])
        assert len(op.result) == 7

    def test_range_empty(self):
        pa = build()
        (op,) = run_ops(pa, [range_op(101, 102)])
        assert op.result == []

    def test_latency_recorded(self):
        pa = build()
        (op,) = run_ops(pa, [search_op(100)])
        assert op.latency_ns > 0
        assert len(pa.latencies) == 1


class TestSplitsAndMerges:
    def test_many_inserts_cause_splits(self):
        pa = build(preload=0)
        n = 600
        ops = [insert_op(k, payload(k)) for k in range(1, n + 1)]
        run_ops(pa, ops)
        stats = pa.tree.validate()
        assert stats["keys"] == n
        assert stats["levels"] >= 2

    def test_many_deletes_cause_merges(self):
        pa = build(preload=2_000)
        ops = [delete_op(k * 100) for k in range(1, 1_901)]
        run_ops(pa, ops)
        stats = pa.tree.validate()
        assert stats["keys"] == 100
        remaining = [k for k, _v in pa.tree.iterate_items_raw()]
        assert remaining == [k * 100 for k in range(1_901, 2_001)]

    def test_delete_everything_leaves_empty_tree(self):
        pa = build(preload=300)
        run_ops(pa, [delete_op(k * 100) for k in range(1, 301)])
        assert pa.tree.meta.key_count == 0
        assert list(pa.tree.iterate_items_raw()) == []

    def test_interleaved_mixed_workload(self):
        pa = build(preload=1_000)
        import random

        rng = random.Random(5)
        model = {k * 100: payload(k * 100) for k in range(1, 1_001)}
        ops = []
        for _ in range(800):
            roll = rng.random()
            key = rng.choice(sorted(model)) if model and roll < 0.7 else rng.randrange(1, 10**7)
            if roll < 0.35:
                ops.append(search_op(key))
            elif roll < 0.6:
                ops.append(insert_op(key, payload(key)))
                model[key] = payload(key)
            elif roll < 0.8:
                ops.append(delete_op(key))
                model.pop(key, None)
            else:
                ops.append(update_op(key, payload(key ^ 7)))
                if key in model:
                    model[key] = payload(key ^ 7)
        run_ops(pa, ops)
        assert dict(pa.tree.iterate_items_raw()) == model
        pa.tree.validate()


class TestBuffering:
    def test_strong_buffer_reduces_reads(self):
        no_buffer = build(seed=3)
        run_ops(no_buffer, [search_op(100) for _ in range(50)])
        reads_without = no_buffer.driver.device.reads_completed.value

        buffered = build(seed=3, buffer=ReadOnlyBuffer(512))
        run_ops(buffered, [search_op(100) for _ in range(50)])
        reads_with = buffered.driver.device.reads_completed.value
        assert reads_with < reads_without / 3

    def test_weak_buffer_absorbs_writes(self):
        pa = build(buffer=ReadWriteBuffer(4_096), persistence="weak")
        ops = [update_op(100, payload(i)) for i in range(50)]
        run_ops(pa, ops)
        writes_before_sync = pa.driver.device.writes_completed.value
        assert writes_before_sync < 5
        (sync,) = run_ops(pa, [sync_op()])
        assert sync.result >= 1
        # after sync the update is durable on media
        leaf_value = dict(pa.tree.iterate_items_raw())[100]
        assert leaf_value == payload(49)

    def test_strong_persistence_durable_per_op(self):
        pa = build(buffer=ReadOnlyBuffer(512))
        run_ops(pa, [update_op(100, payload(77))])
        assert dict(pa.tree.iterate_items_raw())[100] == payload(77)

    def test_weak_requires_rw_buffer(self):
        with pytest.raises(SchedulerError):
            build(persistence="weak")
        with pytest.raises(SchedulerError):
            build(persistence="weak", buffer=ReadOnlyBuffer(16))

    def test_strong_rejects_rw_buffer(self):
        with pytest.raises(SchedulerError):
            build(persistence="strong", buffer=ReadWriteBuffer(16))

    def test_sync_on_strong_is_noop(self):
        pa = build(buffer=ReadOnlyBuffer(128))
        (op,) = run_ops(pa, [sync_op()])
        assert op.result == 0

    def test_tiny_weak_buffer_evictions_flush(self):
        pa = build(buffer=ReadWriteBuffer(8), persistence="weak")
        ops = [insert_op(k, payload(k)) for k in range(1, 301)]
        run_ops(pa, ops)
        run_ops(pa, [sync_op()])
        assert pa.tree.validate()["keys"] == 2_297  # 3 keys overlap the preload


class TestPollerVariants:
    def test_dedicated_poller_produces_same_results(self):
        pa = build(dedicated_poller=POLLER_CONTINUOUS)
        ops = run_ops(pa, [search_op(100), insert_op(7, payload(7))])
        assert ops[0].result == payload(100)
        assert ops[1].result is True
        assert pa.poller_thread is not None


class TestAccounting:
    def test_no_context_switches_single_worker(self):
        pa = build()
        run_ops(pa, [search_op(k * 100) for k in range(1, 100)])
        assert pa.simos.context_switches.value == 0

    def test_stats_shape(self):
        pa = build()
        run_ops(pa, [search_op(100)])
        stats = pa.stats()
        assert stats["completed"] == 1
        assert stats["completed_by_kind"] == {"search": 1}
        assert stats["probes"] >= 1
