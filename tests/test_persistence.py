"""Persistence-semantics tests.

The paper's strong persistence contract: when an update operation
completes, its modification is on the NVM and survives a crash that
happens afterwards.  We "crash" by discarding every volatile structure
(buffers, caches, in-memory meta) and reopening the tree from the
device alone.
"""


from repro.buffer import ReadOnlyBuffer, ReadWriteBuffer
from repro.core.engine import PaTreeEngine
from repro.core.ops import delete_op, insert_op, sync_op, update_op
from repro.core.source import ClosedLoopSource
from repro.core.tree import PaTree
from repro.nvme.device import NvmeDevice, fast_test_profile
from repro.nvme.driver import NvmeDriver
from repro.sched.naive import NaiveScheduling
from repro.sim.engine import Engine
from repro.simos.scheduler import OsProfile, SimOS


def payload(key):
    return (key % 2**64).to_bytes(8, "little")


def build(buffer=None, persistence="strong", preload=500):
    engine = Engine(seed=1)
    simos = SimOS(engine, OsProfile(cores=4))
    device = NvmeDevice(engine, fast_test_profile())
    driver = NvmeDriver(device)
    tree = PaTree.create(device)
    tree.bulk_load([(k * 10, payload(k * 10)) for k in range(1, preload + 1)])
    pa = PaTreeEngine(
        simos,
        driver,
        tree,
        NaiveScheduling(),
        source=ClosedLoopSource([], window=16),
        buffer=buffer,
        persistence=persistence,
    )
    return device, tree, pa


def run_ops(pa, operations):
    pa.source = ClosedLoopSource(operations, window=16)
    pa._shutdown = False
    pa.run_to_completion()
    return operations


def crash_and_reopen(device):
    """Reopen from media only: every volatile structure is gone."""
    return PaTree.open(device, recover=True)


class TestStrongPersistence:
    def test_completed_updates_survive_crash(self):
        device, _tree, pa = build(buffer=ReadOnlyBuffer(64))
        run_ops(pa, [update_op(10, payload(99)), insert_op(5, payload(5))])
        recovered = crash_and_reopen(device)
        data = dict(recovered.iterate_items_raw())
        assert data[10] == payload(99)
        assert data[5] == payload(5)
        recovered.validate()

    def test_completed_deletes_survive_crash(self):
        device, _tree, pa = build()
        run_ops(pa, [delete_op(10)])
        recovered = crash_and_reopen(device)
        assert 10 not in dict(recovered.iterate_items_raw())

    def test_split_survives_crash(self):
        device, _tree, pa = build(preload=500)
        fresh = [insert_op(k * 10 + 1, payload(k)) for k in range(1, 400)]
        run_ops(pa, fresh)
        recovered = crash_and_reopen(device)
        data = dict(recovered.iterate_items_raw())
        for op in fresh:
            assert data[op.key] == op.payload
        recovered.validate()

    def test_root_split_survives_crash(self):
        device, tree, pa = build(preload=0)
        height_before = tree.meta.height
        run_ops(pa, [insert_op(k, payload(k)) for k in range(1, 200)])
        assert tree.meta.height > height_before
        recovered = crash_and_reopen(device)
        assert recovered.meta.height == tree.meta.height
        assert len(dict(recovered.iterate_items_raw())) == 199
        recovered.validate()


class TestWeakPersistence:
    def test_unsynced_updates_may_be_stale_after_crash(self):
        device, _tree, pa = build(
            buffer=ReadWriteBuffer(1_024), persistence="weak"
        )
        run_ops(pa, [update_op(10, payload(777))])
        recovered = crash_and_reopen(device)
        # without a sync the media legitimately holds the old value
        assert dict(recovered.iterate_items_raw())[10] == payload(10)

    def test_synced_updates_survive_crash(self):
        device, _tree, pa = build(
            buffer=ReadWriteBuffer(1_024), persistence="weak"
        )
        run_ops(pa, [update_op(10, payload(777)), insert_op(3, payload(3))])
        run_ops(pa, [sync_op()])
        recovered = crash_and_reopen(device)
        data = dict(recovered.iterate_items_raw())
        assert data[10] == payload(777)
        assert data[3] == payload(3)
        recovered.validate()

    def test_evicted_dirty_pages_already_durable(self):
        # a tiny buffer forces evictions: those flushes land on media
        # even without sync
        device, _tree, pa = build(buffer=ReadWriteBuffer(4), persistence="weak")
        ops = [update_op(k * 10, payload(k + 1)) for k in range(1, 200)]
        run_ops(pa, ops)
        recovered = crash_and_reopen(device)
        data = dict(recovered.iterate_items_raw())
        updated_on_media = sum(
            1 for k in range(1, 200) if data[k * 10] == payload(k + 1)
        )
        assert updated_on_media > 100  # most evictions flushed


class TestReopenedTreeIsUsable:
    def test_operations_continue_after_reopen(self):
        device, _tree, pa = build()
        run_ops(pa, [insert_op(7, payload(7))])
        recovered = crash_and_reopen(device)

        engine = Engine(seed=9)
        simos = SimOS(engine, OsProfile(cores=4))
        # note: same device object; a new engine only re-times events
        device.engine = engine
        device._rng = engine.rng.stream("nvme2")
        device.outstanding._clock = engine.clock
        pa2 = PaTreeEngine(
            simos,
            NvmeDriver(device),
            recovered,
            NaiveScheduling(),
            source=ClosedLoopSource([], window=8),
        )
        pa2.source = ClosedLoopSource(
            [insert_op(8, payload(8)), delete_op(7)], window=8
        )
        pa2.run_to_completion()
        data = dict(recovered.iterate_items_raw())
        assert 8 in data and 7 not in data
        recovered.validate()
