"""Unit tests for layout helpers, allocator and WAL."""

import pytest

from repro.errors import AllocationError, StorageError
from repro.storage.allocator import PageAllocator
from repro.storage.layout import PageReader, PageWriter
from repro.storage.wal import WriteAheadLog, decode_wal_page


class TestLayout:
    def test_roundtrip_all_widths(self):
        writer = PageWriter(64)
        writer.u8(0xAB)
        writer.u16(0xBEEF)
        writer.u32(0xDEADBEEF)
        writer.u64(0x0123456789ABCDEF)
        writer.i64(-42)
        writer.raw(b"hello")
        image = writer.finish()
        assert len(image) == 64

        reader = PageReader(image)
        assert reader.u8() == 0xAB
        assert reader.u16() == 0xBEEF
        assert reader.u32() == 0xDEADBEEF
        assert reader.u64() == 0x0123456789ABCDEF
        assert reader.i64() == -42
        assert reader.raw(5) == b"hello"

    def test_writer_overflow_raises(self):
        writer = PageWriter(8)
        writer.u64(1)
        with pytest.raises(Exception):
            writer.u8(1)

    def test_raw_overflow_raises(self):
        writer = PageWriter(4)
        with pytest.raises(ValueError):
            writer.raw(b"12345")

    def test_seek(self):
        writer = PageWriter(16)
        writer.u64(7)
        writer.seek(0)
        writer.u64(9)
        reader = PageReader(writer.finish())
        assert reader.u64() == 9


class TestAllocator:
    def test_sequential_allocation(self):
        alloc = PageAllocator(base=10, capacity=5)
        assert [alloc.allocate() for _ in range(3)] == [10, 11, 12]
        assert alloc.allocated_count == 3
        assert alloc.free_count == 2

    def test_free_and_reuse(self):
        alloc = PageAllocator(base=0, capacity=4)
        a = alloc.allocate()
        b = alloc.allocate()
        alloc.free(a)
        assert alloc.allocate() == a
        assert alloc.allocated_count == 2
        assert b == 1

    def test_exhaustion(self):
        alloc = PageAllocator(base=0, capacity=2)
        alloc.allocate()
        alloc.allocate()
        with pytest.raises(AllocationError):
            alloc.allocate()

    def test_free_unallocated_rejected(self):
        alloc = PageAllocator(base=0, capacity=10)
        with pytest.raises(AllocationError):
            alloc.free(5)

    def test_watermark_restore(self):
        alloc = PageAllocator(base=1, capacity=100, next_page=50)
        assert alloc.allocate() == 50

    def test_bad_watermark_rejected(self):
        with pytest.raises(ValueError):
            PageAllocator(base=1, capacity=10, next_page=500)


class TestWal:
    def test_append_and_flush_roundtrip(self):
        wal = WriteAheadLog(page_size=256, base_lba=100, num_pages=16)
        lsns = [wal.append(b"record-%d" % i) for i in range(5)]
        assert lsns == [0, 1, 2, 3, 4]
        writes, flush_lsn = wal.take_flushable(include_partial=True)
        assert flush_lsn == 4
        assert len(writes) == 1
        lba, image = writes[0]
        assert lba == 100
        first_lsn, records = decode_wal_page(image)
        assert first_lsn == 0
        assert records == [b"record-%d" % i for i in range(5)]

    def test_group_commit_skips_partial(self):
        wal = WriteAheadLog(page_size=64, base_lba=0, num_pages=8)
        wal.append(b"x" * 10)
        writes, _lsn = wal.take_flushable(include_partial=False)
        assert writes == []
        assert wal.pending_records() == 1

    def test_page_fills_and_seals(self):
        wal = WriteAheadLog(page_size=64, base_lba=0, num_pages=8)
        # page capacity = 64 - 16 header = 48 bytes; records of 20+2
        for _ in range(4):
            wal.append(b"y" * 20)
        writes, flush_lsn = wal.take_flushable(include_partial=False)
        assert len(writes) >= 1
        assert flush_lsn >= 1

    def test_record_too_large(self):
        wal = WriteAheadLog(page_size=64, base_lba=0, num_pages=8)
        with pytest.raises(StorageError):
            wal.append(b"z" * 60)

    def test_wraparound_lbas(self):
        wal = WriteAheadLog(page_size=64, base_lba=10, num_pages=2)
        assert wal.lba_for_seq(0) == 10
        assert wal.lba_for_seq(1) == 11
        assert wal.lba_for_seq(2) == 10

    def test_durable_lsn_tracking(self):
        wal = WriteAheadLog(page_size=256, base_lba=0, num_pages=4)
        wal.append(b"a")
        wal.append(b"b")
        assert wal.durable_lsn == -1
        _writes, flush_lsn = wal.take_flushable(True)
        wal.mark_durable(flush_lsn)
        assert wal.durable_lsn == 1
        assert wal.pending_records() == 0
