"""Shared fixtures for the test suite."""

import pytest

from repro.nvme.device import NvmeDevice, fast_test_profile
from repro.nvme.driver import NvmeDriver
from repro.sim.engine import Engine
from repro.simos.scheduler import OsProfile, SimOS


@pytest.fixture
def engine():
    return Engine(seed=42)


@pytest.fixture
def simos(engine):
    return SimOS(engine, OsProfile(cores=8))


@pytest.fixture
def device(engine):
    return NvmeDevice(engine, fast_test_profile())


@pytest.fixture
def driver(device):
    return NvmeDriver(device)


def make_env(seed=42, cores=8, profile=None):
    """Build a full (engine, simos, device, driver) quadruple."""
    eng = Engine(seed=seed)
    osim = SimOS(eng, OsProfile(cores=cores))
    dev = NvmeDevice(eng, profile or fast_test_profile())
    drv = NvmeDriver(dev)
    return eng, osim, dev, drv
