"""Tests for the AsyncLsmSession public facade."""

import pytest

from repro import AsyncLsmSession, ReproError
from repro.nvme.device import fast_test_profile


def payload(key):
    return (key % 2**64).to_bytes(8, "little")


def make_session(**kwargs):
    defaults = dict(seed=2, device_profile=fast_test_profile(), memtable_entries=50)
    defaults.update(kwargs)
    return AsyncLsmSession(**defaults)


class TestAsyncLsmSession:
    def test_crud_cycle(self):
        session = make_session()
        session.bulk_load([(k, payload(k)) for k in range(500)])
        assert session.get(100) == payload(100)
        assert session.get(100_000) is None
        assert session.put(100_000, payload(7)) is True
        assert session.get(100_000) == payload(7)
        assert session.delete(100_000) is True
        assert session.get(100_000) is None

    def test_range(self):
        session = make_session()
        session.bulk_load([(k * 2, payload(k)) for k in range(200)])
        results = session.range_search(10, 30)
        assert [k for k, _v in results] == list(range(10, 31, 2))
        limited = session.range_search(0, 10**9, limit=5)
        assert len(limited) == 5

    def test_flushes_happen_under_writes(self):
        session = make_session(memtable_entries=25)
        for key in range(150):
            session.put(key, payload(key))
        assert session.stats()["flushes"] >= 4
        assert session.get(3) == payload(3)

    def test_weak_sync(self):
        session = make_session(persistence="weak")
        session.put(1, payload(1))
        assert session.sync() >= 0
        assert session.store.wal.pending_records() == 0

    def test_batch_execute(self):
        from repro.core.ops import insert_op, search_op

        session = make_session()
        batch = [insert_op(k, payload(k)) for k in range(50)]
        batch += [search_op(k) for k in range(50)]
        done = session.execute(batch)
        hits = [op for op in done if op.kind == "search"]
        assert all(op.result == payload(op.key) for op in hits)

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ReproError):
            make_session(scheduler="wat")
