"""Unit tests for the virtual clock and time conversions."""

import pytest

from repro.sim.clock import (
    Clock,
    NS_PER_MS,
    NS_PER_SEC,
    NS_PER_US,
    msec,
    sec,
    to_msec,
    to_sec,
    to_usec,
    usec,
)


def test_conversion_constants():
    assert NS_PER_US == 1_000
    assert NS_PER_MS == 1_000_000
    assert NS_PER_SEC == 1_000_000_000


def test_usec_roundtrip():
    assert usec(1) == 1_000
    assert usec(1.5) == 1_500
    assert to_usec(usec(123.25)) == pytest.approx(123.25)


def test_msec_and_sec():
    assert msec(2) == 2_000_000
    assert sec(1.5) == 1_500_000_000
    assert to_msec(msec(7)) == 7.0
    assert to_sec(sec(3)) == 3.0


def test_usec_rounds_to_nearest_ns():
    assert usec(0.0004) == 0
    assert usec(0.0006) == 1


def test_clock_starts_at_zero():
    clock = Clock()
    assert clock.now == 0
    assert clock.now_usec == 0.0


def test_clock_advances():
    clock = Clock()
    clock.advance_to(500)
    assert clock.now == 500
    clock.advance_to(500)  # same instant is allowed
    assert clock.now == 500


def test_clock_rejects_backwards():
    clock = Clock(start_ns=100)
    with pytest.raises(ValueError):
        clock.advance_to(99)


def test_clock_custom_start():
    clock = Clock(start_ns=1_000)
    assert clock.now == 1_000
    assert clock.now_usec == 1.0
