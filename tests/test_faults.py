"""Tests for the status-carrying completion path and fault injection.

Covers the stack bottom-up: IoStatus / Completion objects, the
FaultInjector's decision points, driver-transparent retry with
exponential backoff, and the typed-error surface of the session
facades (PA-Tree, PA-LSM, sharded) including the structural oracle
after faulty runs.
"""

import pytest

from repro import AsyncLsmSession, PATreeSession, SessionConfig, ShardedSession
from repro.errors import IoError, RetryExhaustedError, SimulationError
from repro.faults import FaultConfig, FaultInjector, make_injector
from repro.nvme.command import Completion, IoStatus, NvmeCommand, OP_WRITE
from repro.nvme.device import NvmeDevice, fast_test_profile
from repro.nvme.driver import NvmeDriver, RetryPolicy
from repro.sim.clock import usec
from repro.sim.engine import Engine


def payload(key):
    return (key % 2**64).to_bytes(8, "little")


def items(n):
    return [(key, payload(key)) for key in range(1, n + 1)]


def fast(**overrides):
    base = dict(seed=5, scheduler="naive", device_profile=fast_test_profile())
    base.update(overrides)
    return SessionConfig(**base)


def make_device(seed=1, faults=None, retry=None, **profile_overrides):
    engine = Engine(seed=seed)
    device = NvmeDevice(
        engine, fast_test_profile(**profile_overrides), faults=faults
    )
    return engine, device, NvmeDriver(device, retry=retry)


def drain(engine, driver, qpair):
    """Run the sim to quiescence, probing after every event burst."""
    done = []
    for _ in range(10_000):
        engine.run()
        done.extend(driver.probe(qpair))
        if engine.events.peek_time() is None:
            break
    return done


# ----------------------------------------------------------------------
# enum / record plumbing
# ----------------------------------------------------------------------


class TestStatusObjects:
    def test_enum_renders_historical_strings(self):
        assert str(IoStatus.PENDING) == "pending"
        assert str(IoStatus.SUBMITTED) == "submitted"
        assert str(IoStatus.SUCCESS) == "completed"
        assert str(IoStatus.MEDIA_ERROR) == "media_error"
        assert str(IoStatus.UNRECOVERED_READ) == "unrecovered_read"

    def test_command_repr_is_stable_across_the_migration(self):
        command = NvmeCommand("read", 7)
        assert repr(command) == "NvmeCommand(read lba=7 pending)"

    def test_status_predicates(self):
        assert IoStatus.SUCCESS.ok
        assert not IoStatus.MEDIA_ERROR.ok
        assert IoStatus.MEDIA_ERROR.is_failure
        assert IoStatus.MEDIA_ERROR.retriable
        assert IoStatus.UNRECOVERED_READ.is_failure
        assert not IoStatus.UNRECOVERED_READ.retriable
        assert not IoStatus.SUCCESS.is_failure

    def test_completion_passes_command_fields_through(self):
        command = NvmeCommand(OP_WRITE, 42, data=b"x", context="ctx")
        completion = Completion(command, IoStatus.SUCCESS, 1234, attempt=2)
        assert completion.ok
        assert completion.command is command
        assert completion.lba == 42
        assert completion.opcode == OP_WRITE
        assert completion.data == b"x"
        assert completion.context == "ctx"
        assert completion.is_write
        assert completion.attempt == 2
        assert repr(completion) == "Completion(write lba=42 completed attempt=2)"


# ----------------------------------------------------------------------
# config validation / injector construction
# ----------------------------------------------------------------------


class TestFaultConfig:
    def test_rates_validated(self):
        with pytest.raises(SimulationError):
            FaultConfig(read_error_rate=1.5)
        with pytest.raises(SimulationError):
            FaultConfig(spike_factor=0.5)
        with pytest.raises(SimulationError):
            FaultConfig(poison_ranges=((9, 3),))

    def test_injects_anything(self):
        assert not FaultConfig().injects_anything
        assert FaultConfig(read_error_rate=0.1).injects_anything
        assert FaultConfig(poison_lbas=(3,)).injects_anything

    def test_make_injector_normalizes(self):
        engine = Engine(seed=1)
        rng = engine.rng.stream("t")
        assert make_injector(None, rng) is None
        injector = make_injector({"read_error_rate": 0.5}, rng)
        assert isinstance(injector, FaultInjector)
        assert make_injector(injector, rng) is injector
        with pytest.raises(SimulationError):
            make_injector("chaos", rng)


# ----------------------------------------------------------------------
# device + driver level
# ----------------------------------------------------------------------


class TestDeviceFaults:
    def test_zero_rate_config_equals_no_injector(self):
        timelines = []
        for faults in (None, FaultConfig()):
            engine, device, driver = make_device(seed=3, faults=faults)
            qpair = driver.alloc_qpair()
            for lba in range(1, 30):
                driver.write(qpair, lba, bytes(device.profile.page_size))
                driver.read(qpair, lba)
            done = drain(engine, driver, qpair)
            timelines.append([(c.lba, c.opcode, c.visible_ns) for c in done])
            assert all(c.ok for c in done)
        assert timelines[0] == timelines[1]

    def test_nonzero_rate_is_deterministic(self):
        counts = []
        for _ in range(2):
            engine, device, driver = make_device(
                seed=3, faults=FaultConfig(read_error_rate=0.2)
            )
            qpair = driver.alloc_qpair()
            for lba in range(1, 60):
                driver.read(qpair, lba)
            done = drain(engine, driver, qpair)
            counts.append(
                (
                    device.fault_injector.media_errors_injected,
                    driver.retries_scheduled.value,
                    sorted(c.visible_ns for c in done),
                )
            )
        assert counts[0] == counts[1]
        assert counts[0][0] > 0

    def test_transient_errors_absorbed_by_default_retry(self):
        engine, device, driver = make_device(
            seed=3, faults=FaultConfig(read_error_rate=0.25)
        )
        qpair = driver.alloc_qpair()
        for lba in range(1, 40):
            driver.read(qpair, lba)
        done = drain(engine, driver, qpair)
        assert len(done) == 39
        assert all(c.ok for c in done)
        assert device.fault_injector.media_errors_injected > 0
        assert driver.retries_scheduled.value == (
            device.fault_injector.media_errors_injected
        )
        assert driver.failures_delivered.value == 0

    def test_retry_budget_exhaustion_delivers_the_failure(self):
        engine, device, driver = make_device(
            seed=1, faults=FaultConfig(read_error_rate=1.0)
        )
        qpair = driver.alloc_qpair()
        command = driver.read(qpair, 5)
        done = drain(engine, driver, qpair)
        assert len(done) == 1
        completion = done[0]
        assert completion.status is IoStatus.MEDIA_ERROR
        assert completion.command is command
        assert command.retries == 3  # default budget spent
        assert driver.retries_scheduled.value == 3
        assert driver.failures_delivered.value == 1
        # every attempt (1 initial + 3 retries) drew an injection
        assert device.fault_injector.media_errors_injected == 4

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy()
        assert policy.delay_ns(0) == usec(20)
        assert policy.delay_ns(1) == usec(80)
        assert policy.delay_ns(2) == usec(320)
        assert policy.delay_ns(10) == usec(2_000)  # capped

    def test_zero_budget_policy_delivers_immediately(self):
        engine, device, driver = make_device(
            seed=1,
            faults=FaultConfig(read_error_rate=1.0),
            retry=RetryPolicy(max_retries=0),
        )
        qpair = driver.alloc_qpair()
        driver.read(qpair, 5)
        done = drain(engine, driver, qpair)
        assert len(done) == 1
        assert done[0].status is IoStatus.MEDIA_ERROR
        assert driver.retries_scheduled.value == 0

    def test_retry_backoff_spreads_attempts_in_virtual_time(self):
        engine, device, driver = make_device(
            seed=1, faults=FaultConfig(read_error_rate=1.0)
        )
        retry_times = []
        driver.on_retry = lambda completion: retry_times.append(engine.now)
        qpair = driver.alloc_qpair()
        driver.read(qpair, 5)
        drain(engine, driver, qpair)
        assert len(retry_times) == 3
        gaps = [b - a for a, b in zip(retry_times, retry_times[1:])]
        # each gap includes the next (4x larger) backoff, so gaps grow
        assert gaps == sorted(gaps)
        assert gaps[0] > usec(20)

    def test_poisoned_read_fails_until_a_write_cures_it(self):
        engine, device, driver = make_device(
            seed=1, faults=FaultConfig(poison_lbas=(7,))
        )
        qpair = driver.alloc_qpair()
        driver.read(qpair, 7)
        (failed,) = drain(engine, driver, qpair)
        assert failed.status is IoStatus.UNRECOVERED_READ
        # non-retriable: delivered on the first attempt
        assert driver.retries_scheduled.value == 0

        image = b"\x55" * device.profile.page_size
        driver.write(qpair, 7, image)
        (wrote,) = drain(engine, driver, qpair)
        assert wrote.ok
        assert not device.fault_injector.is_poisoned(7)

        got = []
        driver.read(qpair, 7, callback=lambda c: got.append(c.data))
        (reread,) = drain(engine, driver, qpair)
        assert reread.ok and got == [image]
        assert device.fault_injector.poison_cured == 1

    def test_poison_ranges_cover_lbas(self):
        engine, device, driver = make_device(
            seed=1, faults=FaultConfig(poison_ranges=((10, 12),))
        )
        injector = device.fault_injector
        assert injector.is_poisoned(10)
        assert injector.is_poisoned(12)
        assert not injector.is_poisoned(13)

    def test_latency_spikes_inflate_service_time(self):
        baseline = None
        for spike_rate in (0.0, 1.0):
            engine, device, driver = make_device(
                seed=2,
                faults=FaultConfig(spike_rate=spike_rate, spike_factor=10.0),
            )
            qpair = driver.alloc_qpair()
            command = driver.read(qpair, 3)
            drain(engine, driver, qpair)
            if spike_rate == 0.0:
                baseline = command.latency_ns
            else:
                assert command.latency_ns > 5 * baseline
                assert device.fault_injector.spikes_injected == 1

    def test_failed_write_leaves_media_unchanged(self):
        engine, device, driver = make_device(
            seed=1,
            faults=FaultConfig(write_error_rate=1.0),
            retry=RetryPolicy(max_retries=0),
        )
        qpair = driver.alloc_qpair()
        before = device.raw_read(9)
        driver.write(qpair, 9, b"\xaa" * device.profile.page_size)
        (completion,) = drain(engine, driver, qpair)
        assert completion.status is IoStatus.MEDIA_ERROR
        assert device.raw_read(9) == before


# ----------------------------------------------------------------------
# session level (engine / LSM / sharded)
# ----------------------------------------------------------------------


class TestSessionFaults:
    def test_transient_faults_invisible_to_callers(self):
        config = fast(
            faults=FaultConfig(read_error_rate=0.05, write_error_rate=0.05)
        )
        with PATreeSession(config) as session:
            session.bulk_load(items(500))
            for key in range(1, 200):
                assert session.search(key) == payload(key)
            for key in range(1, 50):
                assert session.update(key, b"new-" + payload(key)[:4])
            stats = session.stats()
            assert stats["io_retries"] > 0
            assert stats["io_errors"] == 0
            assert stats["failed_ops"] == 0
            assert stats["faults"]["media_errors_injected"] == stats["io_retries"]
            session.validate()

    def test_accounting_identity_injected_equals_retried_plus_surfaced(self):
        config = fast(
            faults=FaultConfig(read_error_rate=0.3),
            retry={"max_retries": 1},
        )
        with PATreeSession(config) as session:
            session.bulk_load(items(300))
            for key in range(1, 200):
                try:
                    session.search(key)
                except IoError:
                    pass
            stats = session.stats()
            injected = stats["faults"]["media_errors_injected"]
            assert injected > 0
            # every failed completion was either transparently retried
            # or delivered to the engine as a typed error
            assert stats["device_errors"] == injected
            assert injected == stats["io_retries"] + stats["io_errors"]

    def test_exhausted_retries_raise_typed_error_and_session_survives(self):
        config = fast(faults=FaultConfig(read_error_rate=1.0))
        with PATreeSession(config) as session:
            session.bulk_load(items(100))
            with pytest.raises(RetryExhaustedError) as excinfo:
                session.search(5)
            assert isinstance(excinfo.value, IoError)
            assert excinfo.value.status is IoStatus.MEDIA_ERROR
            stats = session.stats()
            assert stats["failed_ops"] == 1
            assert stats["io_errors"] >= 1
            # the tree structure is untouched by aborted reads
            session.validate()
            # and the session keeps accepting work
            with pytest.raises(RetryExhaustedError):
                session.search(6)

    def test_batch_execute_marks_failed_ops_instead_of_raising(self):
        from repro.core.ops import search_op

        config = fast(faults=FaultConfig(read_error_rate=1.0))
        with PATreeSession(config) as session:
            session.bulk_load(items(50))
            ops = session.execute([search_op(1), search_op(2)])
            for op in ops:
                assert isinstance(op.error, IoError)
                assert op.result is None

    def test_poisoned_pages_surface_unrecovered_reads(self):
        profile = fast_test_profile()
        config = fast(
            faults=FaultConfig(
                poison_ranges=((0, profile.capacity_pages - 1),)
            )
        )
        with PATreeSession(config) as session:
            session.bulk_load(items(100))
            with pytest.raises(IoError) as excinfo:
                session.search(5)
            assert not isinstance(excinfo.value, RetryExhaustedError)
            assert excinfo.value.status is IoStatus.UNRECOVERED_READ
            assert session.stats()["faults"]["poison_read_failures"] >= 1
            session.validate()  # the oracle reads media fault-free

    def test_zero_rate_session_matches_unfaulted_session(self):
        results = []
        for faults in (None, FaultConfig()):
            with PATreeSession(fast(faults=faults)) as session:
                session.bulk_load(items(200))
                for key in range(1, 100):
                    session.search(key)
                session.insert(1_000_000, b"tail-val")
                stats = session.stats()
                stats.pop("faults", None)
                results.append(stats)
        assert results[0] == results[1]

    def test_lsm_session_surfaces_typed_errors(self):
        config = SessionConfig(
            seed=5,
            device_profile=fast_test_profile(),
            faults=FaultConfig(read_error_rate=1.0),
            retry={"max_retries": 0},
        )
        with AsyncLsmSession(config) as session:
            session.bulk_load(items(200))
            with pytest.raises(IoError):
                session.get(5)
            stats = session.stats()
            assert stats["failed_ops"] == 1
            assert stats["faults"]["media_errors_injected"] >= 1

    def test_lsm_session_recovers_with_retry(self):
        config = SessionConfig(
            seed=5,
            device_profile=fast_test_profile(),
            faults=FaultConfig(read_error_rate=0.1, write_error_rate=0.1),
        )
        with AsyncLsmSession(config) as session:
            session.bulk_load(items(200))
            for key in range(1, 80):
                assert session.get(key) == payload(key)
            stats = session.stats()
            assert stats["io_retries"] > 0
            assert stats["failed_ops"] == 0

    def test_sharded_session_with_faults(self):
        config = SessionConfig(
            seed=5,
            shards=2,
            buffer_pages=0,
            device_profile=fast_test_profile(),
            faults=FaultConfig(read_error_rate=0.05, write_error_rate=0.05),
        )
        with ShardedSession(config) as session:
            session.bulk_load(items(400))
            for key in range(1, 150):
                assert session.search(key) == payload(key)
            stats = session.stats()
            assert stats["user_failed"] == 0
            assert stats["faults"]["media_errors_injected"] > 0
            assert stats["io_retries"] > 0
            session.validate()

    def test_write_faults_never_lose_acknowledged_updates(self):
        config = fast(
            faults=FaultConfig(write_error_rate=0.3), buffer_pages=0
        )
        with PATreeSession(config) as session:
            session.bulk_load(items(100))
            for key in range(200, 260):
                assert session.insert(key, payload(key))
            stats = session.stats()
            assert stats["lost_writes"] == 0
            session.validate()
            for key in range(200, 260):
                assert session.search(key) == payload(key)
