"""Tests for the sharded multi-device PA-Tree (repro.shard)."""


import pytest

from repro.core.engine import PERSISTENCE_WEAK
from repro.core.ops import (
    delete_op,
    insert_op,
    range_op,
    search_op,
    sync_op,
    update_op,
)
from repro.errors import SchedulerError
from repro.nvme.device import fast_test_profile
from repro.nvme.driver import RetryPolicy
from repro.obs import TraceSession
from repro.shard import (
    HASH_PARTITIONING,
    RANGE_PARTITIONING,
    ShardedPaTree,
    shard_mix64,
)
from repro.sim.clock import usec
from repro.sim.engine import Engine
from repro.simos.scheduler import OsProfile, SimOS

BOTH = (HASH_PARTITIONING, RANGE_PARTITIONING)


def payload(key):
    return (key % 2**64).to_bytes(8, "little")


def preload_items(n):
    return [(k * 10, payload(k * 10)) for k in range(1, n + 1)]


def build(n_shards=4, partitioning=HASH_PARTITIONING, preload=2_000, seed=6,
          **kwargs):
    engine = Engine(seed=seed)
    simos = SimOS(engine, OsProfile(cores=8))
    sharded = ShardedPaTree(
        simos,
        n_shards,
        partitioning=partitioning,
        device_profile=fast_test_profile(),
        **kwargs,
    )
    if preload:
        sharded.bulk_load(preload_items(preload))
    return sharded


class TestConstruction:
    def test_shard_count_validated(self):
        with pytest.raises(SchedulerError):
            build(n_shards=0, preload=0)

    def test_partitioning_validated(self):
        with pytest.raises(SchedulerError):
            build(partitioning="mod", preload=0)

    def test_every_shard_owns_its_own_stack(self):
        sharded = build(n_shards=3, preload=0)
        assert len(set(map(id, sharded.devices))) == 3
        assert len(set(map(id, sharded.trees))) == 3
        assert len(set(map(id, sharded.engines))) == 3

    def test_mix_spreads_strided_keys(self):
        # the YCSB preload keys sit on a 2^20 stride; key % n would put
        # them all on one shard, the mix must not
        counts = [0, 0, 0, 0]
        for k in range(1, 2_001):
            counts[shard_mix64(k << 20) % 4] += 1
        assert min(counts) > 300

    @pytest.mark.parametrize("partitioning", BOTH)
    def test_bulk_load_balances(self, partitioning):
        sharded = build(partitioning=partitioning, preload=4_000)
        counts = [t.meta.key_count for t in sharded.trees]
        assert sum(counts) == 4_000
        assert min(counts) >= 700
        assert sharded.key_count == 4_000


class TestRouting:
    @pytest.mark.parametrize("partitioning", BOTH)
    def test_search_routes_to_owning_shard(self, partitioning):
        sharded = build(partitioning=partitioning)
        ops = sharded.run_operations(
            [search_op(10), search_op(19_990), search_op(5)]
        )
        assert ops[0].result == payload(10)
        assert ops[1].result == payload(19_990)
        assert ops[2].result is None

    @pytest.mark.parametrize("partitioning", BOTH)
    def test_mutations_across_shards(self, partitioning):
        sharded = build(partitioning=partitioning, n_shards=3, preload=1_500)
        ops = sharded.run_operations(
            [
                insert_op(5, payload(5)),
                insert_op(14_999, payload(14_999)),
                update_op(10, payload(1)),
                delete_op(20),
            ]
        )
        assert [op.result for op in ops] == [True, True, True, True]
        assert sharded.validate()["keys"] == 1_501
        data = dict(sharded.iterate_items_raw())
        assert data[5] == payload(5)
        assert data[10] == payload(1)
        assert 20 not in data

    def test_sync_broadcasts_to_every_shard(self):
        sharded = build(
            n_shards=2,
            preload=500,
            persistence=PERSISTENCE_WEAK,
            buffer_pages_per_shard=512,
        )
        sharded.run_operations(
            [update_op(10, payload(1)), update_op(4_990, payload(2))]
        )
        (sync,) = sharded.run_operations([sync_op()])
        assert sync.result >= 2  # both shards flushed something
        sharded.validate()

    def test_multiple_batches_reuse_the_workers(self):
        sharded = build(n_shards=2, preload=200)
        sharded.run_operations([insert_op(3, payload(3))])
        sharded.run_operations([insert_op(7, payload(7))])
        (found,) = sharded.run_operations([search_op(3)])
        assert found.result == payload(3)
        assert sharded.key_count == 202


class TestCrossShardRanges:
    """Cross-shard range scans must equal a single-tree oracle."""

    @pytest.mark.parametrize("partitioning", BOTH)
    def test_full_span_matches_single_tree_oracle(self, partitioning):
        sharded = build(partitioning=partitioning, n_shards=4)
        oracle = build(partitioning=partitioning, n_shards=1)
        for low, high in ((10, 20_000), (95, 4_321), (1, 9)):
            (got,) = sharded.run_operations([range_op(low, high)])
            (want,) = oracle.run_operations([range_op(low, high)])
            assert got.result == want.result
            keys = [k for k, _v in got.result]
            assert keys == sorted(keys)

    @pytest.mark.parametrize("partitioning", BOTH)
    def test_limit_truncates_in_global_key_order(self, partitioning):
        sharded = build(partitioning=partitioning, n_shards=4)
        (op,) = sharded.run_operations([range_op(10, 20_000, limit=25)])
        assert [k for k, _v in op.result] == [k * 10 for k in range(1, 26)]

    def test_range_within_one_range_shard_is_not_scattered(self):
        sharded = build(partitioning=RANGE_PARTITIONING, n_shards=4)
        low_shard = sharded.shard_for(100)
        assert sharded.shard_for(200) == low_shard
        (op,) = sharded.run_operations([range_op(100, 200)])
        assert [k for k, _v in op.result] == list(range(100, 201, 10))


class TestDeterminismAndStats:
    def _ops(self):
        return [
            search_op(10),
            insert_op(7, payload(7)),
            range_op(50, 5_000),
            update_op(500, payload(1)),
            delete_op(660),
            search_op(19_990),
        ]

    @pytest.mark.parametrize("partitioning", BOTH)
    def test_same_seed_runs_are_identical(self, partitioning):
        first = build(partitioning=partitioning, seed=11)
        second = build(partitioning=partitioning, seed=11)
        ops_a = first.run_operations(self._ops(), window=4)
        ops_b = second.run_operations(self._ops(), window=4)
        assert [op.result for op in ops_a] == [op.result for op in ops_b]
        assert [op.done_ns for op in ops_a] == [op.done_ns for op in ops_b]
        assert first.engine.now == second.engine.now
        assert first.stats() == second.stats()

    def test_per_shard_stats_sum_to_router_totals(self):
        sharded = build(n_shards=4)
        sharded.run_operations(
            [search_op(k * 10) for k in range(1, 101)]
            + [range_op(100, 2_000), sync_op()]
        )
        stats = sharded.stats()
        assert len(stats["per_shard"]) == 4
        for key in (
            "completed",
            "probes",
            "latch_waits",
            "device_reads",
            "device_writes",
        ):
            assert stats[key] == sum(s[key] for s in stats["per_shard"])
        # device counters come straight from the per-shard devices
        assert stats["device_reads"] == sum(
            d.reads_completed.value for d in sharded.devices
        )
        # scattered parts count per shard; user ops count once
        assert stats["user_completed"] == 101
        assert stats["completed"] >= stats["user_completed"]

    def test_total_rollups_sum_per_shard_error_family(self):
        sharded = build(n_shards=4)
        sharded.run_operations(
            [search_op(k * 10) for k in range(1, 101)]
        )
        stats = sharded.stats()
        for key in (
            "device_errors",
            "io_errors",
            "failed_ops",
            "io_retries",
            "io_escalations",
            "lost_writes",
        ):
            rollup = stats["%s_total" % key]
            assert rollup == sum(s[key] for s in stats["per_shard"])
        # fault-free build: no injectors, so no faults rollup key
        assert "faults" not in stats

    def test_faults_rollup_sums_across_armed_shards(self):
        sharded = build(
            n_shards=2,
            preload=400,
            faults={"read_error_rate": 0.2},
            retry=RetryPolicy(max_retries=2),
        )
        sharded.run_operations(
            [search_op(k * 10) for k in range(1, 201)]
        )
        stats = sharded.stats()
        assert stats["faults"]["media_errors_injected"] > 0
        for key, total in stats["faults"].items():
            assert total == sum(
                s["faults"][key] for s in stats["per_shard"]
            )
        assert stats["io_retries_total"] > 0

    def test_stats_returns_a_fresh_dict_every_call(self):
        sharded = build(n_shards=2, preload=100)
        first = sharded.stats()
        second = sharded.stats()
        assert first is not second
        assert first == second
        first["completed"] = -1
        first["per_shard"][0]["completed"] = -1
        assert sharded.stats()["completed"] != -1


class TestObservability:
    def test_one_trace_session_records_all_shards(self):
        sharded = build(n_shards=2, preload=400)
        session = TraceSession(sharded.engine, sample_interval_ns=usec(5))
        sharded.attach_trace(session)
        session.start()
        sharded.run_operations(
            [search_op(k * 10) for k in range(1, 201)], window=16
        )
        session.finish()
        summary = session.sampler.summary()
        for index in range(2):
            assert "shard%d_outstanding" % index in summary
            assert "shard%d_ready_ops" % index in summary
        assert session.tracer.events
        assert session.op_latency  # per-op histograms recorded
        for device in sharded.devices:
            assert device.on_submit is None  # hooks detached
