"""Backend conformance suite: one contract, three substrates.

Every test in this module is parametrized over the three
:class:`repro.backend.IoBackend` implementations (sim / file / replay)
and pins the behavior the layers above the boundary rely on:
submit/poll ordering, :class:`~repro.nvme.command.IoStatus`
exhaustiveness, queue-full rejection, completion accounting, hook
points, metric registration and the raw media plane.  A backend that
passes this suite can carry the PA-Tree engine, the PA-LSM worker and
the sharded router without further changes.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.backend import (
    BACKEND_KINDS,
    FileBackend,
    SimNvmeBackend,
    TraceReplayBackend,
    make_backend,
)
from repro.backend.trace_io import TraceWriter, read_trace
from repro.errors import DeviceError, PageBoundsError, QueueFullError
from repro.nvme.command import OP_READ, OP_WRITE, IoStatus
from repro.nvme.device import DeviceProfile
from repro.obs.metrics import MetricRegistry
from repro.sim.engine import Engine

PAGE = 512


def small_profile():
    return DeviceProfile(
        name="conformance",
        channels=4,
        read_service_ns=2_000,
        write_service_ns=3_000,
        service_sigma=0.0,
        page_size=PAGE,
        capacity_pages=4_096,
    )


def make_trace(path, n=64):
    writer = TraceWriter(path, backend="file", page_size=PAGE, channels=4)
    for index in range(n):
        writer.record(OP_READ, index + 1, 2_000 + 256 * (index % 3), qd=1)
        writer.record(OP_WRITE, index + 1, 3_000 + 256 * (index % 5), qd=1)
    writer.close()
    return path


def build_backend(kind, engine, tmp_path, faults=None):
    if kind == "sim":
        return SimNvmeBackend(engine, small_profile(), faults=faults)
    if kind == "file":
        return FileBackend(
            engine,
            profile=small_profile(),
            path=str(tmp_path / "scratch.dat"),
            faults=faults,
        )
    trace = make_trace(str(tmp_path / "trace.jsonl"))
    return TraceReplayBackend(
        engine, trace, profile=small_profile(), faults=faults
    )


@pytest.fixture(params=BACKEND_KINDS)
def backend(request, tmp_path):
    engine = Engine(seed=11)
    instance = build_backend(request.param, engine, tmp_path)
    yield instance
    instance.close()


def drain(backend, qpair, want):
    """Advance virtual time until ``want`` completions are delivered."""
    engine = backend.engine
    delivered = []
    while len(delivered) < want:
        delivered.extend(backend.probe(qpair))
        if len(delivered) >= want:
            break
        next_time = engine.events.peek_time()
        if next_time is None:
            raise AssertionError(
                "engine drained with %d/%d completions"
                % (len(delivered), want)
            )
        engine.run(until_ns=next_time)
    return delivered


# ---------------------------------------------------------------------------
# submit/poll ordering
# ---------------------------------------------------------------------------


def test_completions_only_visible_through_probe(backend):
    qpair = backend.alloc_qpair()
    command = backend.write(qpair, 7, bytes(PAGE))
    assert command.status is IoStatus.SUBMITTED
    # nothing is visible before virtual time advances past the service
    assert backend.probe(qpair) == []
    delivered = drain(backend, qpair, 1)
    assert len(delivered) == 1
    assert delivered[0].command is command
    assert command.status is IoStatus.SUCCESS


def test_submit_does_not_block_and_probe_orders_by_completion(backend):
    qpair = backend.alloc_qpair()
    write = backend.write(qpair, 1, bytes(PAGE))
    read = backend.read(qpair, 1)
    assert backend.outstanding.value == 2
    delivered = drain(backend, qpair, 2)
    # both start concurrently (channels > 1); the shorter read service
    # completes first, so delivery is completion order, not submit order
    assert [completion.command for completion in delivered] == [read, write]
    assert backend.outstanding.value == 0


def test_submit_many_is_all_or_nothing(backend):
    qpair = backend.alloc_qpair(sq_size=4, cq_size=16)
    entries = [(OP_WRITE, lba, bytes(PAGE)) for lba in range(1, 9)]
    with pytest.raises(QueueFullError):
        backend.io_submit_many(qpair, entries)
    # the failed vector left nothing behind: the ring still takes 4
    commands = backend.io_submit_many(qpair, entries[:4])
    assert len(commands) == 4
    drain(backend, qpair, 4)


# ---------------------------------------------------------------------------
# queue accounting
# ---------------------------------------------------------------------------


def test_queue_full_raises_typed_error(backend):
    qpair = backend.alloc_qpair(sq_size=2, cq_size=16)
    submitted = 0
    with pytest.raises(QueueFullError):
        # the device fetches into channels as commands arrive, so the
        # ring frees slots concurrently; keep pushing without letting
        # time advance and the bounded ring must eventually reject
        for lba in range(1, 2_000):
            backend.read(qpair, lba)
            submitted += 1
    assert submitted >= 2
    drain(backend, qpair, submitted)


def test_qpair_counters_track_submissions(backend):
    qpair = backend.alloc_qpair()
    backend.write(qpair, 3, bytes(PAGE))
    backend.read(qpair, 3)
    assert qpair.submitted == 2
    assert qpair.outstanding == 2
    drain(backend, qpair, 2)
    assert qpair.completed == 2
    assert qpair.outstanding == 0


# ---------------------------------------------------------------------------
# IoStatus + validation
# ---------------------------------------------------------------------------


def test_every_completion_status_is_an_iostatus(backend):
    qpair = backend.alloc_qpair()
    backend.write(qpair, 2, bytes(PAGE))
    backend.read(qpair, 2)
    for completion in drain(backend, qpair, 2):
        assert isinstance(completion.status, IoStatus)
        assert completion.ok is completion.status.ok
        assert completion.status.ok or completion.status.is_failure


def test_bounds_and_payload_validation(backend):
    qpair = backend.alloc_qpair()
    capacity = backend.capacity_pages
    with pytest.raises(PageBoundsError):
        backend.read(qpair, capacity)
    with pytest.raises(DeviceError):
        backend.write(qpair, 1, b"short")
    with pytest.raises(DeviceError):
        backend.io_submit(qpair, OP_WRITE, 1, data=None)


def test_injected_write_failure_leaves_media_untouched(tmp_path):
    for kind in BACKEND_KINDS:
        engine = Engine(seed=5)
        scratch = tmp_path / kind
        scratch.mkdir()
        backend = build_backend(
            kind, engine, scratch,
            faults={"write_error_rate": 1.0},
        )
        qpair = backend.alloc_qpair()
        backend.raw_write(9, b"\x07" * PAGE)
        backend.io_submit(qpair, OP_WRITE, 9, data=b"\x42" * PAGE)
        (completion,) = drain(backend, qpair, 1)
        assert completion.status is IoStatus.MEDIA_ERROR
        assert backend.raw_read(9) == b"\x07" * PAGE
        # the driver's default retry policy resubmits transient media
        # errors, so the device sees one error per attempt; exactly one
        # *failure* is delivered to the caller once the budget is spent
        assert backend.errors_completed.value >= 1
        assert backend.failures_delivered.value == 1
        backend.close()


# ---------------------------------------------------------------------------
# completion accounting
# ---------------------------------------------------------------------------


def test_completion_counters_and_latency_accounting(backend):
    qpair = backend.alloc_qpair()
    for lba in range(1, 5):
        backend.write(qpair, lba, bytes([lba]) * PAGE)
    for lba in range(1, 4):
        backend.read(qpair, lba)
    drain(backend, qpair, 7)
    assert backend.writes_completed.value == 4
    assert backend.reads_completed.value == 3
    assert backend.errors_completed.value == 0
    assert backend.total_completed == 7
    assert backend.mean_read_latency_ns() > 0
    assert backend.mean_write_latency_ns() > 0
    assert backend.probe_calls.value >= 1


def test_read_returns_written_data(backend):
    qpair = backend.alloc_qpair()
    payload = bytes(range(256)) * (PAGE // 256)
    backend.write(qpair, 21, payload)
    drain(backend, qpair, 1)
    command = backend.read(qpair, 21)
    drain(backend, qpair, 1)
    assert command.data == payload


def test_raw_media_plane_round_trip(backend):
    payload = b"\x5a" * PAGE
    backend.raw_write(33, payload)
    assert backend.raw_read(33) == payload
    assert backend.raw_read(34) == bytes(PAGE)
    with pytest.raises(PageBoundsError):
        backend.raw_read(backend.capacity_pages)


# ---------------------------------------------------------------------------
# hook points
# ---------------------------------------------------------------------------


def test_hooks_default_null_and_fire_when_set(backend):
    assert backend.on_submit is None
    assert backend.on_complete is None
    assert backend.on_retry is None
    assert backend.perturb_service is None
    assert backend.fault_injector is None

    seen = {"submit": 0, "complete": 0, "perturb": 0}

    def on_submit(command):
        seen["submit"] += 1

    def on_complete(completion):
        seen["complete"] += 1

    def perturb(command, service_ns):
        seen["perturb"] += 1
        return service_ns

    backend.on_submit = on_submit
    backend.on_complete = on_complete
    backend.perturb_service = perturb
    qpair = backend.alloc_qpair()
    backend.read(qpair, 1)
    drain(backend, qpair, 1)
    assert seen == {"submit": 1, "complete": 1, "perturb": 1}


# ---------------------------------------------------------------------------
# metrics + identity
# ---------------------------------------------------------------------------


def test_register_metrics_exports_device_and_driver_families(backend):
    registry = backend.register_metrics(MetricRegistry())
    names = {metric.name for metric in registry}
    for expected in (
        "device_reads_total",
        "device_writes_total",
        "device_errors_total",
        "device_probe_calls_total",
        "device_outstanding_ops",
        "driver_retries_total",
        "driver_failures_delivered_total",
    ):
        assert expected in names, expected


def test_describe_identifies_backend(backend):
    info = backend.describe()
    assert info["kind"] == backend.kind
    assert info["kind"] in BACKEND_KINDS
    assert info["wall_clock_variant"] is (backend.kind == "file")
    assert info["profile"] == "conformance"


def test_close_is_idempotent(backend):
    backend.close()
    backend.close()
    assert backend.closed


# ---------------------------------------------------------------------------
# backend-specific contract corners
# ---------------------------------------------------------------------------


def test_file_backend_quantizes_service_times(tmp_path):
    engine = Engine(seed=3)
    backend = FileBackend(
        engine, profile=small_profile(),
        path=str(tmp_path / "q.dat"), quantum_ns=512,
    )
    trace_path = str(tmp_path / "q.jsonl")
    backend.record_to(trace_path)
    qpair = backend.alloc_qpair()
    for lba in range(1, 9):
        backend.write(qpair, lba, bytes(PAGE))
    drain(backend, qpair, 8)
    backend.close()
    trace = read_trace(trace_path)
    assert len(trace) == 8
    assert all(
        record["service_ns"] % 512 == 0 and record["service_ns"] >= 512
        for record in trace.records
    )


def test_replay_consumes_recorded_times_in_order(tmp_path):
    trace_path = make_trace(str(tmp_path / "t.jsonl"), n=4)
    engine = Engine(seed=1)
    backend = TraceReplayBackend(
        engine, trace_path, profile=small_profile()
    )
    qpair = backend.alloc_qpair()
    latencies = []
    for _ in range(6):  # more reads than recorded: wraps deterministically
        command = backend.read(qpair, 1)
        (completion,) = drain(backend, qpair, 1)
        latencies.append(completion.visible_ns - command.submit_ns)
    trace = read_trace(trace_path)
    recorded = trace.service_times(OP_READ)
    assert latencies[: len(recorded)] == recorded
    assert latencies[len(recorded):] == recorded[: 6 - len(recorded)]
    assert backend.device.wraps == 1
    backend.close()


def test_factory_builds_each_kind(tmp_path):
    engine = Engine(seed=2)
    sim = make_backend("sim", engine=engine, profile=small_profile())
    assert sim.kind == "sim" and not sim.wall_clock_variant

    engine = Engine(seed=2)
    scratch = str(tmp_path / "f.dat")
    file_backend = make_backend("file:" + scratch, engine=engine)
    assert file_backend.kind == "file" and file_backend.wall_clock_variant
    assert file_backend.path == scratch
    file_backend.close()

    engine = Engine(seed=2)
    trace_path = make_trace(str(tmp_path / "r.jsonl"))
    replay = make_backend("replay:" + trace_path, engine=engine)
    assert replay.kind == "replay" and not replay.wall_clock_variant
    assert len(replay.trace) > 0
