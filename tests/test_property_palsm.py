"""Property-based tests for the PA-LSM extension: any interleaved
sequence of operations is observationally equivalent to a dict, across
memtable rotations, flushes and compactions."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.ops import delete_op, insert_op, range_op, search_op
from repro.core.source import ClosedLoopSource
from repro.nvme.device import NvmeDevice, fast_test_profile
from repro.nvme.driver import NvmeDriver
from repro.palsm import AsyncLsmStore, PolledLsmWorker
from repro.sched.naive import NaiveScheduling
from repro.sim.engine import Engine
from repro.simos.scheduler import OsProfile, SimOS


def payload(key):
    return (key % 2**64).to_bytes(8, "little")


KEYS = st.integers(min_value=0, max_value=300)

OPERATION = st.one_of(
    st.tuples(st.just("put"), KEYS),
    st.tuples(st.just("delete"), KEYS),
    st.tuples(st.just("get"), KEYS),
    st.tuples(st.just("range"), KEYS),
)


def build_worker(seed, memtable_entries=25, level0_limit=2):
    engine = Engine(seed=seed)
    simos = SimOS(engine, OsProfile(cores=4))
    device = NvmeDevice(engine, fast_test_profile())
    driver = NvmeDriver(device)
    store = AsyncLsmStore(
        device,
        memtable_entries=memtable_entries,
        level0_limit=level0_limit,
        wal_pages=4_096,
        block_cache_pages=32,
    )
    worker = PolledLsmWorker(
        simos, driver, store, NaiveScheduling(), ClosedLoopSource([], window=8)
    )
    return store, worker


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(script=st.lists(OPERATION, min_size=1, max_size=150), seed=st.integers(0, 50))
def test_palsm_equivalent_to_dict(script, seed):
    store, worker = build_worker(seed)
    model = {}
    operations = []
    expected = []
    for kind, key in script:
        if kind == "put":
            operations.append(insert_op(key, payload(key)))
            expected.append(True)
            model[key] = payload(key)
        elif kind == "delete":
            operations.append(delete_op(key))
            expected.append(True)
            model.pop(key, None)
        elif kind == "get":
            operations.append(search_op(key))
            expected.append(model.get(key))
        else:
            operations.append(range_op(key, key + 60))
            expected.append(
                sorted((k, v) for k, v in model.items() if key <= k <= key + 60)
            )
    worker.run_operations(operations, window=1)
    for op, want in zip(operations, expected):
        assert op.result == want, (op.kind, op.key)
    # final full scan equals the model regardless of flush/compact state
    (full,) = worker.run_operations([range_op(0, 10**9)])
    assert dict(full.result) == model


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    script=st.lists(OPERATION, min_size=10, max_size=200),
    seed=st.integers(0, 50),
    window=st.integers(2, 16),
)
def test_palsm_interleaved_no_lost_updates(script, seed, window):
    """With interleaving, puts/deletes on distinct keys must all land;
    we apply each key at most once so the final state is order-free."""
    store, worker = build_worker(seed)
    model = {}
    operations = []
    used = set()
    for kind, key in script:
        if key in used:
            continue
        used.add(key)
        if kind in ("put", "get", "range"):
            operations.append(insert_op(key, payload(key)))
            model[key] = payload(key)
        else:
            operations.append(delete_op(key))
    if not operations:
        return
    worker.run_operations(operations, window=window)
    (full,) = worker.run_operations([range_op(0, 10**9)])
    assert dict(full.result) == model
