"""Tests for the unified session facade (repro.api).

Covers the shared session shape: SessionConfig merging, legacy
keyword/positional compatibility, context-manager lifecycle, the
dict-style sugar, and the stats() snapshot contract (fresh dict per
call, cumulative counters).
"""

import inspect

import pytest

import repro.api
from repro import (
    AsyncLsmSession,
    PATreeSession,
    SessionConfig,
    ShardedSession,
)
from repro.errors import ReproError
from repro.nvme.device import fast_test_profile


def payload(key):
    return (key % 2**64).to_bytes(8, "little")


def fast(**overrides):
    base = dict(seed=5, scheduler="naive", device_profile=fast_test_profile())
    base.update(overrides)
    return SessionConfig(**base)


class TestSessionConfig:
    def test_defaults_match_the_paper_setup(self):
        config = SessionConfig()
        assert config.seed == 0
        assert config.payload_size == 8
        assert config.persistence == "strong"
        assert config.scheduler == "workload_aware"
        assert config.window == 64

    def test_merged_overrides_and_is_a_copy(self):
        config = SessionConfig(seed=1)
        merged = config.merged(seed=9, shards=2)
        assert (merged.seed, merged.shards) == (9, 2)
        assert config.seed == 1  # frozen original untouched

    def test_merged_rejects_unknown_fields(self):
        with pytest.raises(TypeError):
            SessionConfig().merged(qpair_depth=3)

    def test_config_is_immutable(self):
        with pytest.raises(Exception):
            SessionConfig().seed = 3


class TestConstruction:
    def test_config_object(self):
        with PATreeSession(fast(buffer_pages=64)) as session:
            assert session.config.scheduler == "naive"
            assert session.config.buffer_pages == 64

    def test_legacy_keyword_arguments_still_work(self):
        with PATreeSession(
            seed=3,
            scheduler="naive",
            buffer_pages=32,
            device_profile=fast_test_profile(),
        ) as session:
            assert session.config.seed == 3
            assert session.config.buffer_pages == 32

    def test_legacy_positional_int_is_a_seed(self):
        with PATreeSession(7, scheduler="naive",
                           device_profile=fast_test_profile()) as session:
            assert session.config.seed == 7

    def test_keywords_override_config_fields(self):
        with PATreeSession(fast(seed=1), seed=9) as session:
            assert session.config.seed == 9

    def test_unknown_keyword_raises_repro_error(self):
        with pytest.raises(ReproError):
            PATreeSession(fast(), qpair_depth=3)

    def test_bogus_config_object_raises_repro_error(self):
        with pytest.raises(ReproError):
            PATreeSession("strong")

    def test_per_session_defaults(self):
        assert PATreeSession.default_config.scheduler == "workload_aware"
        assert AsyncLsmSession.default_config.scheduler == "naive"
        assert ShardedSession.default_config.buffer_pages == 0


class TestLifecycle:
    def test_context_manager_closes(self):
        with PATreeSession(fast()) as session:
            session.insert(1, payload(1))
        assert session.closed
        with pytest.raises(ReproError):
            session.search(1)

    def test_close_is_idempotent(self):
        session = PATreeSession(fast())
        session.close()
        session.close()
        assert session.closed

    def test_weak_close_flushes_the_dirty_tail(self):
        session = PATreeSession(
            fast(persistence="weak", buffer_pages=256, window=8)
        )
        session.bulk_load(
            (k, payload(k)) for k in range(1, 501)
        )
        session.update(5, payload(1))
        session.close()
        assert session.validate()["keys"] == 500

    def test_no_session_code_touches_private_engine_state(self):
        # the facade goes through reset_source(); poking engine
        # internals is exactly what the public API redesign removed
        assert "._shutdown" not in inspect.getsource(repro.api)


class TestDictSugar:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: PATreeSession(fast()),
            lambda: ShardedSession(fast(shards=2)),
            lambda: AsyncLsmSession(fast()),
        ],
        ids=["patree", "sharded", "lsm"],
    )
    def test_mapping_protocol(self, factory):
        with factory() as session:
            session[42] = payload(42)
            assert 42 in session
            assert session[42] == payload(42)
            assert 43 not in session
            with pytest.raises(KeyError):
                session[43]


class TestStatsContract:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: PATreeSession(fast()),
            lambda: ShardedSession(fast(shards=2)),
            lambda: AsyncLsmSession(fast()),
        ],
        ids=["patree", "sharded", "lsm"],
    )
    def test_fresh_dict_and_cumulative_counters(self, factory):
        with factory() as session:
            session[1] = payload(1)
            first = session.stats()
            second = session.stats()
            # fresh dict per call: distinct objects, equal content
            assert first is not second
            assert first == second
            # mutating a snapshot never leaks into later calls
            first["completed"] = -1
            assert session.stats()["completed"] != -1
            # counters are cumulative across batches, not per batch
            session[2] = payload(2)
            third = session.stats()
            assert third["completed"] > second["completed"]


class TestSharedVerbs:
    def test_patree_session_end_to_end(self):
        with PATreeSession(fast(window=16)) as session:
            session.bulk_load((k, payload(k)) for k in range(1, 1_001))
            assert len(session) == 1_000
            assert session.search(7) == payload(7)
            assert session.search(5_000) is None
            assert session.insert(5_000, payload(5_000)) is True
            assert session.update(5_000, payload(1)) is True
            assert session.delete(5_000) is True
            got = session.range_search(10, 50)
            assert got == [(k, payload(k)) for k in range(10, 51)]
            session.validate()

    def test_sharded_session_end_to_end(self):
        config = fast(shards=4, window=16)
        with ShardedSession(config) as fleet:
            fleet.bulk_load((k, payload(k)) for k in range(1, 2_001))
            assert len(fleet) == 2_000
            assert fleet.search(9) == payload(9)
            fleet[9_999] = payload(9_999)
            assert fleet.delete(9_999) is True
            got = fleet.range_search(100, 300)
            assert got == [(k, payload(k)) for k in range(100, 301)]
            stats = fleet.stats()
            assert stats["shards"] == 4
            assert stats["completed"] == sum(
                s["completed"] for s in stats["per_shard"]
            )
            fleet.validate()

    def test_sharded_session_range_partitioning(self):
        config = fast(shards=3, partitioning="range")
        with ShardedSession(config) as fleet:
            fleet.bulk_load((k, payload(k)) for k in range(1, 1_501))
            assert fleet.range_search(1, 1_500) == [
                (k, payload(k)) for k in range(1, 1_501)
            ]

    def test_lsm_session_round_trip(self):
        with AsyncLsmSession(fast(memtable_entries=100)) as lsm:
            lsm.bulk_load([(k, payload(k)) for k in range(1, 201)])
            assert lsm.get(7) == payload(7)
            lsm.put(900, payload(900))
            assert lsm.get(900) == payload(900)

    def test_execute_accepts_iterators(self):
        from repro.core.ops import search_op

        with PATreeSession(fast()) as session:
            session.bulk_load((k, payload(k)) for k in range(1, 101))
            ops = session.execute(search_op(k) for k in (1, 2, 3))
            assert [op.result for op in ops] == [
                payload(1),
                payload(2),
                payload(3),
            ]
