"""NVMe model: commands, ring queues, queue pairs, an event-driven
device with internal parallelism and interface contention, and an
SPDK-style polled-mode driver facade."""

from repro.nvme.command import NvmeCommand, OP_READ, OP_WRITE
from repro.nvme.device import (
    DeviceProfile,
    NvmeDevice,
    fast_test_profile,
    i3_nvme_profile,
    optane_profile,
)
from repro.nvme.driver import NvmeDriver
from repro.nvme.latency import ServiceTimeModel
from repro.nvme.qpair import QueuePair
from repro.nvme.queue import Ring

__all__ = [
    "NvmeCommand",
    "OP_READ",
    "OP_WRITE",
    "NvmeDevice",
    "NvmeDriver",
    "DeviceProfile",
    "ServiceTimeModel",
    "QueuePair",
    "Ring",
    "i3_nvme_profile",
    "fast_test_profile",
    "optane_profile",
]
