"""NVMe command, status and completion objects.

A command carries the opcode, target LBA (page id), an optional data
payload (for writes), a completion callback and the context pointer the
application attached — exactly the fields an SPDK submission carries.
Timestamps are filled in by the device model so experiments can compute
per-I/O latency.

Completion status is a first-class :class:`IoStatus` code, not an
assumption: the device mints a :class:`Completion` record per command
when its result becomes visible on the completion ring, and every layer
above (driver retry policy, working-thread engines, session facades)
branches on that status instead of assuming success.
"""

import enum

OP_READ = "read"
OP_WRITE = "write"

_OPCODES = (OP_READ, OP_WRITE)


class IoStatus(enum.Enum):
    """Per-command status code, modelled on the NVMe status field.

    ``SUCCESS`` renders as ``"completed"`` (and the two pre-completion
    states keep their historical spellings) so command ``repr`` strings
    in traces and logs are stable across the string->enum migration.
    """

    #: constructed, not yet on a submission queue
    PENDING = "pending"
    #: on the submission queue or in service at the device
    SUBMITTED = "submitted"
    #: completed successfully; data (reads) / durability (writes) valid
    SUCCESS = "completed"
    #: transient media error — the command may succeed if retried
    MEDIA_ERROR = "media_error"
    #: unrecoverable read of a poisoned LBA — permanent until rewritten
    UNRECOVERED_READ = "unrecovered_read"

    @property
    def ok(self):
        return self is IoStatus.SUCCESS

    @property
    def is_failure(self):
        return self in _FAILURES

    @property
    def retriable(self):
        """Whether a retry of the same command can plausibly succeed."""
        return self is IoStatus.MEDIA_ERROR

    def __str__(self):
        return self.value


_FAILURES = frozenset((IoStatus.MEDIA_ERROR, IoStatus.UNRECOVERED_READ))


class NvmeCommand:
    """One I/O command travelling through a queue pair."""

    __slots__ = (
        "opcode",
        "lba",
        "data",
        "callback",
        "context",
        "qpair",
        "submit_ns",
        "fetch_ns",
        "complete_ns",
        "visible_ns",
        "status",
        "retries",
        "escalations",
    )

    def __init__(self, opcode, lba, data=None, callback=None, context=None):
        if opcode not in _OPCODES:
            raise ValueError("unknown opcode %r" % (opcode,))
        if lba < 0:
            raise ValueError("negative lba %r" % (lba,))
        self.opcode = opcode
        self.lba = lba
        self.data = data
        self.callback = callback
        self.context = context
        self.qpair = None
        self.submit_ns = None
        self.fetch_ns = None
        self.complete_ns = None
        self.visible_ns = None
        self.status = IoStatus.PENDING
        # driver-level transparent retries of this command object
        self.retries = 0
        # engine-level escalations along this write chain (each
        # escalation is a fresh command; the count is carried forward)
        self.escalations = 0

    @property
    def is_write(self):
        return self.opcode == OP_WRITE

    @property
    def ok(self):
        return self.status is IoStatus.SUCCESS

    @property
    def latency_ns(self):
        """Submit-to-completion-visible latency, once completed."""
        if self.visible_ns is None or self.submit_ns is None:
            return None
        return self.visible_ns - self.submit_ns

    def __repr__(self):
        return "NvmeCommand(%s lba=%d %s)" % (self.opcode, self.lba, self.status)


class Completion:
    """One completion-queue entry, minted by the device.

    Carries the final :class:`IoStatus` alongside the command; this is
    what ``probe`` returns and what completion callbacks receive, so
    consumers branch on ``completion.ok`` instead of assuming success.
    Field access for the common command attributes passes through.
    """

    __slots__ = ("command", "status", "visible_ns", "attempt")

    def __init__(self, command, status, visible_ns, attempt=0):
        self.command = command
        self.status = status
        self.visible_ns = visible_ns
        #: zero-based attempt index (== driver retries spent so far)
        self.attempt = attempt

    @property
    def ok(self):
        return self.status is IoStatus.SUCCESS

    # -- command passthroughs ------------------------------------------

    @property
    def opcode(self):
        return self.command.opcode

    @property
    def lba(self):
        return self.command.lba

    @property
    def data(self):
        return self.command.data

    @property
    def context(self):
        return self.command.context

    @property
    def is_write(self):
        return self.command.is_write

    @property
    def submit_ns(self):
        return self.command.submit_ns

    @property
    def latency_ns(self):
        return self.command.latency_ns

    def __repr__(self):
        return "Completion(%s lba=%d %s attempt=%d)" % (
            self.opcode,
            self.lba,
            self.status,
            self.attempt,
        )
