"""NVMe command objects.

A command carries the opcode, target LBA (page id), an optional data
payload (for writes), a completion callback and the context pointer the
application attached — exactly the fields an SPDK submission carries.
Timestamps are filled in by the device model so experiments can compute
per-I/O latency.
"""

OP_READ = "read"
OP_WRITE = "write"

_OPCODES = (OP_READ, OP_WRITE)


class NvmeCommand:
    """One I/O command travelling through a queue pair."""

    __slots__ = (
        "opcode",
        "lba",
        "data",
        "callback",
        "context",
        "qpair",
        "submit_ns",
        "fetch_ns",
        "complete_ns",
        "visible_ns",
        "status",
    )

    def __init__(self, opcode, lba, data=None, callback=None, context=None):
        if opcode not in _OPCODES:
            raise ValueError("unknown opcode %r" % (opcode,))
        if lba < 0:
            raise ValueError("negative lba %r" % (lba,))
        self.opcode = opcode
        self.lba = lba
        self.data = data
        self.callback = callback
        self.context = context
        self.qpair = None
        self.submit_ns = None
        self.fetch_ns = None
        self.complete_ns = None
        self.visible_ns = None
        self.status = "pending"

    @property
    def is_write(self):
        return self.opcode == OP_WRITE

    @property
    def latency_ns(self):
        """Submit-to-completion-visible latency, once completed."""
        if self.visible_ns is None or self.submit_ns is None:
            return None
        return self.visible_ns - self.submit_ns

    def __repr__(self):
        return "NvmeCommand(%s lba=%d %s)" % (self.opcode, self.lba, self.status)
