"""The NVMe device model.

Three mechanisms reproduce the NVMe behaviours the paper builds on
(its Figure 3):

* **Internal parallelism** — the device has ``channels`` independent
  service units.  IOPS grows roughly linearly with queue depth until
  the channels saturate, giving the ">10x from queue depth" effect.
* **Asymmetric, load-dependent service** — writes occupy a channel for
  longer than reads, so latency depends on the instantaneous queue
  depth and write rate.
* **Interface contention** — command fetches, completion posts and
  ``probe()`` calls all pass through a single serial *interface*
  resource.  Over-frequent probing steals interface time from command
  fetches, which is the paper's explanation for why the shared and
  dedicated baselines achieve far less IOPS than their outstanding
  I/O count should deliver (Table I) and for the probe-cycle
  sensitivity (Fig 3c).

The device owns the backing page store: a write command's payload
becomes durable at completion time, and read commands return the bytes
currently on media.  This makes persistence semantics (strong vs weak
buffering, WAL group commit) testable, not just timed.
"""

from functools import partial

from repro.errors import DeviceError, PageBoundsError, QueueFullError
from repro.faults import make_injector
from repro.nvme.command import Completion, IoStatus
from repro.nvme.latency import ServiceTimeModel
from repro.nvme.qpair import QueuePair
from repro.sim.clock import usec
from repro.sim.metrics import Counter, TimeWeightedGauge


class DeviceProfile:
    """Calibration constants for one modelled SSD.

    The default profile (see :func:`i3_nvme_profile`) is calibrated so
    that QD1 read latency is ~81 us (=> ~12 K IOPS) and saturated read
    IOPS is ~400 K, matching the scale of the paper's EC2 i3 device.
    """

    __slots__ = (
        "name",
        "channels",
        "read_service_ns",
        "write_service_ns",
        "service_sigma",
        "fetch_ns",
        "post_ns",
        "probe_iface_ns",
        "iface_backlog_cap_ns",
        "submit_cpu_ns",
        "probe_cpu_ns",
        "probe_cpu_per_completion_ns",
        "page_size",
        "capacity_pages",
    )

    def __init__(
        self,
        name="i3_nvme",
        channels=32,
        read_service_ns=usec(80),
        write_service_ns=usec(240),
        service_sigma=0.25,
        fetch_ns=usec(0.6),
        post_ns=usec(0.4),
        probe_iface_ns=usec(2.0),
        iface_backlog_cap_ns=usec(24.0),
        submit_cpu_ns=usec(0.4),
        probe_cpu_ns=usec(0.5),
        probe_cpu_per_completion_ns=usec(0.12),
        page_size=512,
        capacity_pages=16_000_000,
    ):
        self.name = name
        self.channels = channels
        self.read_service_ns = read_service_ns
        self.write_service_ns = write_service_ns
        self.service_sigma = service_sigma
        self.fetch_ns = fetch_ns
        self.post_ns = post_ns
        self.probe_iface_ns = probe_iface_ns
        self.iface_backlog_cap_ns = iface_backlog_cap_ns
        self.submit_cpu_ns = submit_cpu_ns
        self.probe_cpu_ns = probe_cpu_ns
        self.probe_cpu_per_completion_ns = probe_cpu_per_completion_ns
        self.page_size = page_size
        self.capacity_pages = capacity_pages


def i3_nvme_profile(**overrides):
    """The paper-testbed-scale device profile (EC2 i3.2xlarge NVMe)."""
    return DeviceProfile(**overrides)


def optane_profile(**overrides):
    """An Optane-class (3D XPoint) profile: ~10x lower media latency,
    nearly symmetric reads/writes, tighter variance.  Used by the
    media-speed ablation: with faster media the device stops being the
    bottleneck sooner and the paradigm's win shifts from 'more
    outstanding I/Os' to 'less CPU per operation'."""
    defaults = dict(
        name="optane",
        channels=16,
        read_service_ns=usec(9),
        write_service_ns=usec(11),
        service_sigma=0.10,
    )
    defaults.update(overrides)
    return DeviceProfile(**defaults)


def fast_test_profile(**overrides):
    """A small, fast, deterministic profile for unit tests."""
    defaults = dict(
        name="fast_test",
        channels=4,
        read_service_ns=usec(10),
        write_service_ns=usec(30),
        service_sigma=0.0,
        capacity_pages=100_000,
    )
    defaults.update(overrides)
    return DeviceProfile(**defaults)


class NvmeDevice:
    """Event-driven NVMe SSD model bound to a simulation engine."""

    def __init__(self, engine, profile=None, rng_name="nvme", faults=None):
        self.engine = engine
        self.profile = profile or DeviceProfile()
        self.service = ServiceTimeModel(
            self.profile.read_service_ns,
            self.profile.write_service_ns,
            self.profile.service_sigma,
        )
        self._rng = engine.rng.stream(rng_name)
        # the injector draws from its own stream so enabling faults
        # never perturbs service-time draws (A/B runs stay paired)
        self.fault_injector = make_injector(
            faults, engine.rng.stream("faults:" + rng_name)
        )
        self._pages = {}
        self._qpairs = []
        self._rr_index = 0
        self._free_channels = self.profile.channels
        self._iface_free_ns = 0
        # statistics
        self.reads_completed = Counter()
        self.writes_completed = Counter()
        self.errors_completed = Counter()
        self.read_latency_sum_ns = 0
        self.write_latency_sum_ns = 0
        self.outstanding = TimeWeightedGauge(engine.clock)
        self.probe_calls = Counter()
        # observability hooks: called with each command at submission /
        # completion-visible time; must not mutate device or queue state
        self.on_submit = None
        self.on_complete = None
        # Schedule-exploration hook (repro.fuzz): called with
        # (command, service_ns) after fault scaling and returns the
        # service time to use, jittering per-command latency so
        # completion order is explored.  Must stay None outside fuzz
        # runs so ordinary runs are bit-identical.
        self.perturb_service = None

    # ------------------------------------------------------------------
    # host-facing operations (called via the driver)
    # ------------------------------------------------------------------

    def alloc_qpair(self, sq_size=1024, cq_size=1024):
        qpair = QueuePair(len(self._qpairs), sq_size, cq_size)
        self._qpairs.append(qpair)
        return qpair

    def _enqueue(self, qpair, command):
        """Validate and ring-push one command without kicking service."""
        if command.lba >= self.profile.capacity_pages:
            raise PageBoundsError("lba %d beyond device capacity" % command.lba)
        if command.is_write:
            data = command.data
            if data is None:
                raise DeviceError("write command without data")
            if len(data) != self.profile.page_size:
                raise DeviceError(
                    "write payload %d bytes != page size %d"
                    % (len(data), self.profile.page_size)
                )
        command.qpair = qpair
        command.submit_ns = self.engine.now
        command.status = IoStatus.SUBMITTED
        qpair.sq.push(command)
        qpair.outstanding += 1
        qpair.submitted += 1
        self.outstanding.add(1)
        if self.on_submit is not None:
            self.on_submit(command)

    def submit(self, qpair, command):
        """Host pushed a command onto a submission queue."""
        self._enqueue(qpair, command)
        self._try_start()

    def submit_many(self, qpair, commands):
        """Host pushed a command vector with a single doorbell ring.

        All-or-nothing: raises :class:`~repro.errors.QueueFullError`
        before enqueueing anything when the submission ring cannot take
        the whole vector, so a failed vectored submit never leaves a
        partial prefix behind.
        """
        if qpair.sq.free_slots < len(commands):
            raise QueueFullError(
                "submission ring %s cannot take %d commands (%d free)"
                % (qpair.sq.name, len(commands), qpair.sq.free_slots)
            )
        for command in commands:
            self._enqueue(qpair, command)
        if commands:
            qpair.vector_submissions += 1
            qpair.vector_commands += len(commands)
        self._try_start()

    def probe(self, qpair, max_completions=0):
        """Pop visible completions from a completion queue.

        Models the device-side cost of a probe: the call occupies the
        interface, delaying pending command fetches (the Fig 3c
        mechanism).  Returns the list of completed commands; the CPU
        cost on the calling thread is the caller's to charge.
        """
        self.probe_calls.add()
        self._occupy_interface(self.profile.probe_iface_ns, droppable=True)
        completed = []
        while max_completions <= 0 or len(completed) < max_completions:
            command = qpair.cq.pop()
            if command is None:
                break
            completed.append(command)
        return completed

    # ------------------------------------------------------------------
    # direct media access (bulk loading / recovery inspection only)
    # ------------------------------------------------------------------

    def raw_write(self, lba, data):
        """Zero-time backdoor write used by bulk loaders and tests."""
        if len(data) != self.profile.page_size:
            raise DeviceError("raw write payload size mismatch")
        if lba >= self.profile.capacity_pages:
            raise PageBoundsError("lba %d beyond device capacity" % lba)
        self._pages[lba] = bytes(data)

    def raw_read(self, lba):
        """Zero-time backdoor read; returns zeroes for untouched pages."""
        if lba >= self.profile.capacity_pages:
            raise PageBoundsError("lba %d beyond device capacity" % lba)
        page = self._pages.get(lba)
        if page is None:
            return bytes(self.profile.page_size)
        return page

    # ------------------------------------------------------------------
    # statistics helpers
    # ------------------------------------------------------------------

    def register_metrics(self, registry, labels=None):
        """Expose device counters/gauges through a metric registry.

        All registrations are callback-backed reads of the counters the
        device already keeps, so instrumenting a run adds no work to
        the completion path.  Fault-injection counters register only
        when an injector is armed, keeping healthy-run exports free of
        fault-path noise.
        """
        registry.counter(
            "device_reads_total", labels,
            fn=lambda: self.reads_completed.value,
            help="read commands completed successfully",
        )
        registry.counter(
            "device_writes_total", labels,
            fn=lambda: self.writes_completed.value,
            help="write commands completed successfully",
        )
        registry.counter(
            "device_errors_total", labels,
            fn=lambda: self.errors_completed.value,
            help="commands completed with a failure status",
        )
        registry.counter(
            "device_probe_calls_total", labels,
            fn=lambda: self.probe_calls.value,
            help="completion-queue probe calls",
        )
        registry.gauge(
            "device_outstanding_ops", labels,
            fn=lambda: self.outstanding.value,
            help="commands submitted but not yet visible-complete",
        )
        channels = self.profile.channels
        registry.gauge(
            "device_channel_busy_ratio", labels,
            fn=lambda: (channels - self._free_channels) / channels,
            help="fraction of device channels in service",
        )
        injector = self.fault_injector
        if injector is not None:
            registry.counter(
                "fault_media_errors_total", labels,
                fn=lambda: injector.media_errors_injected,
                help="injected transient media errors",
            )
            registry.counter(
                "fault_spikes_total", labels,
                fn=lambda: injector.spikes_injected,
                help="injected latency spikes",
            )
            registry.counter(
                "fault_poison_read_failures_total", labels,
                fn=lambda: injector.poison_read_failures,
                help="reads failed against poisoned LBAs",
            )
            registry.counter(
                "fault_poison_cured_total", labels,
                fn=lambda: injector.poison_cured,
                help="poisoned LBAs cured by successful writes",
            )
        return registry

    @property
    def total_completed(self):
        return self.reads_completed.value + self.writes_completed.value

    def mean_read_latency_ns(self):
        n = self.reads_completed.value
        return self.read_latency_sum_ns / n if n else 0.0

    def mean_write_latency_ns(self):
        n = self.writes_completed.value
        return self.write_latency_sum_ns / n if n else 0.0

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _occupy_interface(self, duration_ns, droppable=False):
        """Serialize through the interface; returns occupation end time.

        Command fetches and completion posts are real work and always
        queue.  Probe overhead is ``droppable``: once the backlog
        reaches ``iface_backlog_cap_ns`` further probe pressure is
        coalesced (as MMIO/doorbell traffic is in hardware) instead of
        growing the backlog without bound — probing still steals up to
        the cap's worth of interface time from command fetches, which
        is the Fig 3c throughput penalty.
        """
        now = self.engine.now
        start = max(now, self._iface_free_ns)
        if droppable and start - now >= self.profile.iface_backlog_cap_ns:
            return start
        end = start + duration_ns
        self._iface_free_ns = end
        return end

    def _next_nonempty_qpair(self):
        n = len(self._qpairs)
        for offset in range(n):
            qpair = self._qpairs[(self._rr_index + offset) % n]
            if not qpair.sq.is_empty:
                self._rr_index = (self._rr_index + offset + 1) % n
                return qpair
        return None

    def _try_start(self):
        """Fetch commands into free channels, round-robin across queues."""
        while self._free_channels > 0:
            qpair = self._next_nonempty_qpair()
            if qpair is None:
                return
            command = qpair.sq.pop()
            self._free_channels -= 1
            fetch_end = self._occupy_interface(self.profile.fetch_ns)
            command.fetch_ns = fetch_end
            service = self.service.sample(command.is_write, self._rng)
            if self.fault_injector is not None:
                service = int(
                    service * self.fault_injector.service_factor(command.is_write)
                )
            if self.perturb_service is not None:
                service = int(self.perturb_service(command, service))
            finish = fetch_end + service
            self.engine.schedule_at(
                finish, partial(self._service_done, command)
            )

    def _service_done(self, command):
        """Media finished; mint the status, apply data, post completion.

        The fault injector (when configured) decides the completion
        status: a failed write leaves the media untouched and a failed
        read carries no data — exactly the contract a real error status
        implies.
        """
        now = self.engine.now
        command.complete_ns = now
        if self.fault_injector is None:
            status = IoStatus.SUCCESS
        else:
            status = self.fault_injector.complete_status(command)
        if status.ok:
            if command.is_write:
                self._pages[command.lba] = bytes(command.data)
            else:
                command.data = self.raw_read(command.lba)
        self._free_channels += 1
        post_end = self._occupy_interface(self.profile.post_ns)
        if post_end <= now:
            self._post_completion(command, status)
        else:
            self.engine.schedule_at(
                post_end, partial(self._post_completion, command, status)
            )
        self._try_start()

    def _post_completion(self, command, status):
        command.status = status
        command.visible_ns = self.engine.now
        qpair = command.qpair
        qpair.outstanding -= 1
        qpair.completed += 1
        self.outstanding.add(-1)
        latency = command.visible_ns - command.submit_ns
        if not status.ok:
            self.errors_completed.add()
        elif command.is_write:
            self.writes_completed.add()
            self.write_latency_sum_ns += latency
        else:
            self.reads_completed.add()
            self.read_latency_sum_ns += latency
        completion = Completion(
            command, status, command.visible_ns, attempt=command.retries
        )
        qpair.cq.push(completion)
        if self.on_complete is not None:
            self.on_complete(completion)
        if qpair.on_complete is not None:
            qpair.on_complete(completion)
