"""SPDK-style user-space NVMe driver facade.

Thin, lock-free API mirroring the SPDK calls the paper uses:
``alloc_qpair`` / ``io_submit`` / ``probe``.  ``io_submit`` returns
immediately after appending the command to the submission queue; the
completion callback fires from ``probe`` on whichever thread probes the
completion queue — the polled-mode contract.

CPU costs: the driver exposes the per-call CPU cost constants
(``submit_cpu_ns``, ``probe_cpu_ns(...)``) and callers charge them to
their simulated thread with a ``Cpu`` instruction, tagged ``CPU_NVME``
so the Fig 9 breakdown sees driver time separately from index work.
"""

from repro.nvme.command import NvmeCommand, OP_READ, OP_WRITE


class NvmeDriver:
    """Host-side driver bound to one :class:`NvmeDevice`."""

    def __init__(self, device):
        self.device = device

    # cost constants -----------------------------------------------------

    @property
    def submit_cpu_ns(self):
        """CPU cost of one ``io_submit`` call on the calling thread."""
        return self.device.profile.submit_cpu_ns

    def probe_cpu_ns(self, completions):
        """CPU cost of one ``probe`` returning ``completions`` entries."""
        profile = self.device.profile
        return (
            profile.probe_cpu_ns
            + completions * profile.probe_cpu_per_completion_ns
        )

    @property
    def page_size(self):
        return self.device.profile.page_size

    # API ----------------------------------------------------------------

    def alloc_qpair(self, sq_size=1024, cq_size=1024):
        return self.device.alloc_qpair(sq_size, cq_size)

    def io_submit(self, qpair, opcode, lba, data=None, callback=None, context=None):
        """Append a command to ``qpair``'s submission queue.

        Non-blocking: returns the command object immediately.  Raises
        :class:`repro.errors.QueueFullError` when the ring is full.
        """
        command = NvmeCommand(opcode, lba, data=data, callback=callback, context=context)
        self.device.submit(qpair, command)
        return command

    def read(self, qpair, lba, callback=None, context=None):
        return self.io_submit(qpair, OP_READ, lba, callback=callback, context=context)

    def write(self, qpair, lba, data, callback=None, context=None):
        return self.io_submit(
            qpair, OP_WRITE, lba, data=data, callback=callback, context=context
        )

    def probe(self, qpair, max_completions=0):
        """Drain visible completions and fire their callbacks.

        Returns the list of completed commands.  Callbacks run
        synchronously (zero virtual time); any modelled cost of the
        post-completion work is the callback owner's to charge.
        """
        completed = self.device.probe(qpair, max_completions)
        for command in completed:
            if command.callback is not None:
                command.callback(command)
        return completed
