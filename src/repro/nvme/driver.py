"""SPDK-style user-space NVMe driver facade.

Thin, lock-free API mirroring the SPDK calls the paper uses:
``alloc_qpair`` / ``io_submit`` / ``probe``.  ``io_submit`` returns
immediately after appending the command to the submission queue; the
completion callback fires from ``probe`` on whichever thread probes the
completion queue — the polled-mode contract.

CPU costs: the driver exposes the per-call CPU cost constants
(``submit_cpu_ns``, ``probe_cpu_ns(...)``) and callers charge them to
their simulated thread with a ``Cpu`` instruction, tagged ``CPU_NVME``
so the Fig 9 breakdown sees driver time separately from index work.

Error handling: ``probe`` returns :class:`Completion` records, not bare
commands.  A :class:`RetryPolicy` (a default bounded one unless the
caller overrides it) swallows retriable failures (transient media
errors) and transparently resubmits the command after a virtual-time
exponential backoff — callers only see the completion once it succeeds
or the retry budget is spent.
Non-retriable failures (poisoned-LBA reads) and budget-exhausted
failures are delivered with their failure status for the layers above
to turn into typed errors.
"""

from functools import partial

from repro.errors import QueueFullError
from repro.nvme.command import NvmeCommand, OP_READ, OP_WRITE
from repro.sim.clock import usec
from repro.sim.metrics import Counter


class RetryPolicy:
    """Bounded retry with virtual-time exponential backoff.

    A command whose completion status is retriable is resubmitted up to
    ``max_retries`` times; the n-th retry waits
    ``backoff_ns * multiplier**n`` (capped at ``max_backoff_ns``) of
    virtual time before resubmission, mirroring how a real driver
    avoids hammering a briefly-unhappy device.
    """

    __slots__ = ("max_retries", "backoff_ns", "multiplier", "max_backoff_ns")

    def __init__(
        self,
        max_retries=3,
        backoff_ns=usec(20),
        multiplier=4.0,
        max_backoff_ns=usec(2_000),
    ):
        self.max_retries = max_retries
        self.backoff_ns = backoff_ns
        self.multiplier = multiplier
        self.max_backoff_ns = max_backoff_ns

    def delay_ns(self, retries_spent):
        """Backoff before the retry following ``retries_spent`` retries."""
        delay = self.backoff_ns * (self.multiplier ** retries_spent)
        return int(min(delay, self.max_backoff_ns))

    def should_retry(self, completion):
        return (
            completion.status.retriable
            and completion.command.retries < self.max_retries
        )


class NvmeDriver:
    """Host-side driver bound to one :class:`NvmeDevice`."""

    def __init__(self, device, retry=None):
        self.device = device
        #: the :class:`RetryPolicy` in force; ``None`` selects the
        #: default bounded policy (a healthy device never consults it).
        #: Pass ``RetryPolicy(max_retries=0)`` to deliver every failure.
        self.retry = RetryPolicy() if retry is None else retry
        self.retries_scheduled = Counter()
        self.failures_delivered = Counter()
        #: observability hook: called with each completion whose command
        #: is about to be retried (before the backoff sleep)
        self.on_retry = None

    # cost constants -----------------------------------------------------

    @property
    def submit_cpu_ns(self):
        """CPU cost of one ``io_submit`` call on the calling thread."""
        return self.device.profile.submit_cpu_ns

    def submit_many_cpu_ns(self, count):
        """CPU cost of one ``io_submit_many`` call carrying ``count``.

        The first command pays the full per-submit price; each further
        command pays a quarter — queueing into the ring is shared work
        and the doorbell is rung once for the whole vector.
        """
        if count <= 0:
            return 0
        base = self.device.profile.submit_cpu_ns
        return base + (count - 1) * (base // 4)

    def probe_cpu_ns(self, completions):
        """CPU cost of one ``probe`` returning ``completions`` entries."""
        profile = self.device.profile
        return (
            profile.probe_cpu_ns
            + completions * profile.probe_cpu_per_completion_ns
        )

    @property
    def page_size(self):
        return self.device.profile.page_size

    # observability -------------------------------------------------------

    def register_metrics(self, registry, labels=None):
        """Expose retry/backoff counters and delegate to the device."""
        registry.counter(
            "driver_retries_total", labels,
            fn=lambda: self.retries_scheduled.value,
            help="commands resubmitted after a retriable failure",
        )
        registry.counter(
            "driver_failures_delivered_total", labels,
            fn=lambda: self.failures_delivered.value,
            help="failures surfaced to the caller (budget spent or "
                 "non-retriable)",
        )
        retry = self.retry
        if retry is not None:
            registry.gauge(
                "driver_retry_budget_count", labels,
                fn=lambda: retry.max_retries,
                help="configured per-command retry budget",
            )
            registry.gauge(
                "driver_retry_backoff_ns", labels,
                fn=lambda: retry.backoff_ns,
                help="configured base retry backoff",
            )
        self.device.register_metrics(registry, labels=labels)
        return registry

    # API ----------------------------------------------------------------

    def alloc_qpair(self, sq_size=1024, cq_size=1024):
        return self.device.alloc_qpair(sq_size, cq_size)

    def io_submit(self, qpair, opcode, lba, data=None, callback=None, context=None):
        """Append a command to ``qpair``'s submission queue.

        Non-blocking: returns the command object immediately.  Raises
        :class:`repro.errors.QueueFullError` when the ring is full.
        """
        command = NvmeCommand(opcode, lba, data=data, callback=callback, context=context)
        self.device.submit(qpair, command)
        return command

    def io_submit_many(self, qpair, entries, callback=None, context=None):
        """Append a command vector with one doorbell ring.

        ``entries`` is a sequence of ``(opcode, lba, data)`` triples.
        All-or-nothing: :class:`repro.errors.QueueFullError` is raised
        before anything is enqueued when the ring lacks the room.
        Returns the list of command objects in entry order.
        """
        commands = [
            NvmeCommand(opcode, lba, data=data, callback=callback, context=context)
            for opcode, lba, data in entries
        ]
        self.device.submit_many(qpair, commands)
        return commands

    def read(self, qpair, lba, callback=None, context=None):
        return self.io_submit(qpair, OP_READ, lba, callback=callback, context=context)

    def write(self, qpair, lba, data, callback=None, context=None):
        return self.io_submit(
            qpair, OP_WRITE, lba, data=data, callback=callback, context=context
        )

    def write_many(self, qpair, pages, callback=None, context=None):
        """Vectored page writes: ``pages`` is (lba, data) pairs."""
        return self.io_submit_many(
            qpair,
            [(OP_WRITE, lba, data) for lba, data in pages],
            callback=callback,
            context=context,
        )

    def probe(self, qpair, max_completions=0):
        """Drain visible completions and fire their callbacks.

        Returns the list of delivered :class:`Completion` records.
        Callbacks run synchronously (zero virtual time); any modelled
        cost of the post-completion work is the callback owner's to
        charge.  Retriable failures within the retry budget are *not*
        delivered: the command is resubmitted after backoff and its
        completion surfaces from a later probe.
        """
        completed = self.device.probe(qpair, max_completions)
        delivered = []
        for completion in completed:
            if not completion.ok:
                if self.retry is not None and self.retry.should_retry(completion):
                    self._schedule_retry(qpair, completion)
                    continue
                self.failures_delivered.add()
            delivered.append(completion)
            callback = completion.command.callback
            if callback is not None:
                callback(completion)
        return delivered

    # retry path ---------------------------------------------------------

    def _schedule_retry(self, qpair, completion):
        command = completion.command
        delay = self.retry.delay_ns(command.retries)
        command.retries += 1
        self.retries_scheduled.add()
        if self.on_retry is not None:
            self.on_retry(completion)
        engine = self.device.engine
        engine.schedule_at(
            engine.now + delay, partial(self._resubmit, qpair, command)
        )

    def _resubmit(self, qpair, command):
        try:
            self.device.submit(qpair, command)
        except QueueFullError:
            # the ring is momentarily full; wait one base backoff and
            # try again — the slot drought clears as probes drain it
            engine = self.device.engine
            engine.schedule_at(
                engine.now + self.retry.backoff_ns,
                partial(self._resubmit, qpair, command),
            )
