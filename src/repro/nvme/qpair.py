"""Queue pairs: one submission ring plus one completion ring.

Applications allocate queue pairs through the driver; the paper's
dedicated baseline gives every working thread its own pair, while
PA-Tree drives a single pair from its working thread.
"""

from repro.nvme.queue import Ring


class QueuePair:
    """A submission/completion queue pair owned by one application actor.

    ``on_complete`` is an observability hook: when set, the device calls
    it with each command as its completion becomes visible on the
    completion ring (before any host-side probe).  It must not mutate
    queue state; the default ``None`` costs one attribute check.
    """

    __slots__ = (
        "qid",
        "sq",
        "cq",
        "outstanding",
        "submitted",
        "completed",
        "vector_submissions",
        "vector_commands",
        "on_complete",
    )

    def __init__(self, qid, sq_size=1024, cq_size=1024):
        self.qid = qid
        self.sq = Ring(sq_size, name="sq-%d" % qid)
        self.cq = Ring(cq_size, name="cq-%d" % qid)
        self.outstanding = 0
        self.submitted = 0
        self.completed = 0
        # vectored (single-doorbell) submission accounting
        self.vector_submissions = 0
        self.vector_commands = 0
        self.on_complete = None

    def register_metrics(self, registry, labels=None):
        """Expose queue-pair occupancy through a metric registry."""
        registry.gauge(
            "qpair_outstanding_ops", labels,
            fn=lambda: self.outstanding,
            help="commands submitted on this pair and not yet complete",
        )
        registry.counter(
            "qpair_submitted_total", labels,
            fn=lambda: self.submitted,
            help="commands pushed onto the submission ring",
        )
        registry.counter(
            "qpair_completed_total", labels,
            fn=lambda: self.completed,
            help="completions posted to the completion ring",
        )
        registry.counter(
            "qpair_vector_submissions_total", labels,
            fn=lambda: self.vector_submissions,
            help="vectored (single-doorbell) submit calls",
        )
        registry.counter(
            "qpair_vector_commands_total", labels,
            fn=lambda: self.vector_commands,
            help="commands carried by vectored submit calls",
        )
        registry.gauge(
            "qpair_sq_occupancy_ratio", labels,
            fn=lambda: len(self.sq) / self.sq.capacity,
            help="submission ring occupancy",
        )
        registry.gauge(
            "qpair_cq_occupancy_ratio", labels,
            fn=lambda: len(self.cq) / self.cq.capacity,
            help="completion ring occupancy",
        )
        return registry

    @property
    def has_pending_submissions(self):
        return not self.sq.is_empty

    @property
    def has_visible_completions(self):
        return not self.cq.is_empty

    def __repr__(self):
        return "QueuePair(qid=%d, sq=%d, cq=%d, outstanding=%d)" % (
            self.qid,
            len(self.sq),
            len(self.cq),
            self.outstanding,
        )
