"""Service-time model for the simulated NVM media.

Each command occupies one of the device's internal channels for a
lognormally distributed service time whose mean depends on the opcode
(writes are slower than reads on the modelled SSD).  Lognormal service
times give the right qualitative behaviour: positive skew, occasional
slow I/Os, and out-of-order completions across channels.
"""

import math


class ServiceTimeModel:
    """Per-opcode lognormal service times with exact configured means."""

    __slots__ = (
        "read_mean_ns",
        "write_mean_ns",
        "sigma",
        "_read_mu",
        "_write_mu",
    )

    def __init__(self, read_mean_ns, write_mean_ns, sigma=0.25):
        if read_mean_ns <= 0 or write_mean_ns <= 0:
            raise ValueError("service means must be positive")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.read_mean_ns = read_mean_ns
        self.write_mean_ns = write_mean_ns
        self.sigma = sigma
        # For lognormal X = exp(N(mu, sigma^2)), E[X] = exp(mu + sigma^2/2);
        # solve for mu so that the sample mean matches the configured mean.
        self._read_mu = math.log(read_mean_ns) - sigma * sigma / 2.0
        self._write_mu = math.log(write_mean_ns) - sigma * sigma / 2.0

    def sample(self, is_write, rng):
        """Draw one service time in nanoseconds."""
        if self.sigma == 0:
            return self.write_mean_ns if is_write else self.read_mean_ns
        mu = self._write_mu if is_write else self._read_mu
        return max(1, int(rng.lognormvariate(mu, self.sigma)))

    def mean_ns(self, is_write):
        return self.write_mean_ns if is_write else self.read_mean_ns
