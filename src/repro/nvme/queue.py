"""Fixed-capacity ring buffers for submission and completion queues.

NVMe queues are rings in host memory; we model the capacity limit (a
full submission queue rejects new commands, as the real driver would)
while keeping the implementation a simple circular list.
"""

from repro.errors import QueueFullError


class Ring:
    """Bounded FIFO ring buffer."""

    __slots__ = ("capacity", "_slots", "_head", "_count", "name")

    def __init__(self, capacity, name="ring"):
        if capacity < 1:
            raise ValueError("ring capacity must be positive")
        self.capacity = capacity
        self._slots = [None] * capacity
        self._head = 0
        self._count = 0
        self.name = name

    def __len__(self):
        return self._count

    @property
    def is_full(self):
        return self._count == self.capacity

    @property
    def is_empty(self):
        return self._count == 0

    @property
    def free_slots(self):
        return self.capacity - self._count

    def push(self, item):
        """Append an item; raises :class:`QueueFullError` when full."""
        if self.is_full:
            raise QueueFullError("%s is full (capacity %d)" % (self.name, self.capacity))
        tail = (self._head + self._count) % self.capacity
        self._slots[tail] = item
        self._count += 1

    def pop(self):
        """Remove and return the oldest item, or ``None`` when empty."""
        if self._count == 0:
            return None
        item = self._slots[self._head]
        self._slots[self._head] = None
        self._head = (self._head + 1) % self.capacity
        self._count -= 1
        return item

    def peek(self):
        if self._count == 0:
            return None
        return self._slots[self._head]

    def __repr__(self):
        return "Ring(%r, %d/%d)" % (self.name, self._count, self.capacity)
