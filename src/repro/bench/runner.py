"""Experiment harness.

Builds a fresh simulated machine per run (engine + OS + device +
tree), preloads the workload, drives it through either the PA-Tree
engine or a synchronous baseline, and reports one flat dict of the
quantities the paper's tables and figures use: throughput, latency
percentiles, achieved IOPS, time-averaged outstanding I/Os, CPU cores
consumed, CPU per operation, context switches, and the CPU breakdown
by category.

Every run is deterministic in (spec, seed); sweeps fork the seed so
arms are paired.
"""

from repro.backend import make_backend
from repro.baselines.io_service import DedicatedIoService, SharedIoService
from repro.baselines.latching import BlockingLatchTable
from repro.baselines.runner import BaselineRunner
from repro.baselines.sync_tree import SyncTreeAccessor
from repro.buffer import make_buffer
from repro.core.engine import PaTreeEngine
from repro.core.ops import sync_op
from repro.core.source import ClosedLoopSource, OpenLoopSource
from repro.core.tree import PaTree
from repro.errors import BenchmarkError
from repro.backend import i3_nvme_profile
from repro.sched import SCHEDULERS, make_scheduler
from repro.sim.clock import NS_PER_SEC
from repro.sim.engine import Engine
from repro.sim.metrics import CPU_CATEGORIES
from repro.sim.rng import RngRegistry
from repro.simos.scheduler import SimOS, paper_testbed_profile
from repro.workloads import SseWorkload, TDriveWorkload, YcsbWorkload


class WorkloadSpec:
    """Declarative description of one workload instance."""

    def __init__(
        self,
        kind="ycsb",
        n_keys=20_000,
        n_ops=4_000,
        mix="default",
        alpha=0.3,
        payload_size=8,
        insert_ratio=0.0,
        sync_every=0,
        n_actors=200,
    ):
        self.kind = kind
        self.n_keys = n_keys
        self.n_ops = n_ops
        self.mix = mix
        self.alpha = alpha
        self.payload_size = payload_size
        self.insert_ratio = insert_ratio
        self.sync_every = sync_every
        self.n_actors = n_actors

    def build(self, rng):
        if self.kind == "ycsb":
            return YcsbWorkload(
                self.n_keys,
                self.n_ops,
                mix=self.mix,
                alpha=self.alpha,
                rng=rng,
                payload_size=self.payload_size,
                insert_ratio=self.insert_ratio,
            )
        if self.kind == "tdrive":
            return TDriveWorkload(
                self.n_actors,
                self.n_keys,
                self.n_ops,
                rng,
                payload_size=self.payload_size,
            )
        if self.kind == "sse":
            return SseWorkload(
                self.n_actors,
                self.n_keys,
                self.n_ops,
                rng,
                payload_size=self.payload_size,
            )
        raise BenchmarkError("unknown workload kind %r" % (self.kind,))


def _interleave_syncs(operations, sync_every):
    """Insert a sync() after every ``sync_every`` update operations."""
    since = 0
    for op in operations:
        yield op
        if op.is_update:
            since += 1
            if since >= sync_every:
                since = 0
                yield sync_op()


class _Machine:
    """One simulated machine with a freshly formatted tree.

    ``backend`` is a spec (see :mod:`repro.backend`); ``None`` takes
    the process default, so ``repro.bench --backend file`` retargets
    every exhibit built on this harness.
    """

    def __init__(self, seed, device_profile=None, payload_size=8,
                 faults=None, retry=None, backend=None):
        self.engine = Engine(seed=seed)
        self.simos = SimOS(self.engine, paper_testbed_profile())
        self.device_profile = device_profile or i3_nvme_profile()
        self.backend = make_backend(
            backend,
            engine=self.engine,
            profile=device_profile,
            faults=faults,
            retry=retry,
        )
        self.device = self.backend.device
        self.driver = self.backend.driver
        self.tree = PaTree.create(self.device, payload_size=payload_size)

    def close(self):
        self.backend.close()


def _finish_stats(result, machine, completed, latencies, group, end_ns=None):
    # Throughput windows end at the last user-operation completion, so
    # a trailing group-commit flush does not distort short runs.
    elapsed_ns = end_ns if end_ns else machine.engine.now
    elapsed_s = elapsed_ns / NS_PER_SEC if elapsed_ns else 1.0
    device = machine.device
    account = machine.simos.cpu_account(group)
    result.update(
        {
            "elapsed_s": elapsed_s,
            "throughput_ops": completed / elapsed_s,
            "mean_latency_us": latencies.mean_usec(),
            "p50_latency_us": latencies.p50_usec(),
            "p99_latency_us": latencies.p99_usec(),
            "iops": device.total_completed / elapsed_s,
            "device_reads": device.reads_completed.value,
            "device_writes": device.writes_completed.value,
            "outstanding_avg": device.outstanding.average(),
            "cores_used": machine.simos.total_busy_ns() / elapsed_ns
            if elapsed_ns
            else 0.0,
            "context_switches": machine.simos.context_switches.value,
            "cpu_us_per_op": (account.total_ns / 1000.0 / completed)
            if completed
            else 0.0,
            "cpu_breakdown": {
                name: account.fraction(name) for name in CPU_CATEGORIES
            },
            "completed": completed,
        }
    )
    return result


def run_pa(
    spec,
    seed=1,
    scheduler="workload_aware",
    policy=None,
    persistence="strong",
    buffer_pages=0,
    window=64,
    dedicated_poller=None,
    device_profile=None,
    open_loop_rate=None,
    fill_factor=0.7,
    trace=False,
    faults=None,
    retry=None,
    backend=None,
):
    """Run one PA-Tree experiment; returns the flat stats dict.

    With ``trace=True`` a :class:`repro.obs.TraceSession` records the
    whole run (spans, time series, histograms) and is returned under
    the ``"trace_session"`` key.  Tracing observes through hook points
    that charge no virtual time, so every reported quantity matches the
    untraced run exactly.

    ``faults`` (a :class:`repro.faults.FaultConfig` or kwargs dict) arms
    the device's fault injector and ``retry`` overrides the driver's
    :class:`~repro.nvme.driver.RetryPolicy`; both default to off, which
    reproduces the fault-free numbers bit for bit.
    """
    machine = _Machine(seed, device_profile, spec.payload_size,
                       faults=faults, retry=retry, backend=backend)
    rng = RngRegistry(seed).stream("workload")
    workload = spec.build(rng)
    machine.tree.bulk_load(workload.preload_items(), fill_factor)

    session = None
    if trace:
        from repro.obs import TraceSession

        session = TraceSession(machine.engine)

    if policy is None:
        if scheduler not in SCHEDULERS:
            raise BenchmarkError("unknown scheduler %r" % (scheduler,))
        policy = make_scheduler(scheduler, machine.device_profile)

    operations = workload.operations()
    if spec.sync_every:
        operations = _interleave_syncs(operations, spec.sync_every)

    if open_loop_rate is not None:
        arrival_rng = RngRegistry(seed).stream("arrival")
        source = OpenLoopSource(operations, open_loop_rate, arrival_rng)
    else:
        source = ClosedLoopSource(operations, window=window)

    buffer = make_buffer(persistence, buffer_pages)
    pa = PaTreeEngine(
        machine.simos,
        machine.backend,
        machine.tree,
        policy,
        source=source,
        buffer=buffer,
        persistence=persistence,
        dedicated_poller=dedicated_poller,
        tracer=session.tracer if session is not None else None,
    )
    if session is not None:
        session.attach_machine(machine, worker=pa, buffer=buffer)
        session.start()
    pa.run_to_completion()
    if persistence == "weak":
        # Flush the dirty tail so media-level validation sees every
        # update (the measured run above is untouched).
        pa.reset_source(ClosedLoopSource([sync_op()], window=1))
        pa.run_to_completion()
    if session is not None:
        session.finish()
    machine.tree.validate()

    result = {
        "approach": "pa-tree",
        "threads": 1,
        "scheduler": getattr(policy, "name", "custom"),
        "probes": pa.probes.value,
        "latch_waits": pa.latch_wait_events.value,
    }
    if machine.device.fault_injector is not None:
        # fault-path keys appear only on armed runs so fault-free rows
        # keep their historical shape
        result["faults"] = machine.device.fault_injector.stats()
        result["io_errors"] = pa.io_errors.value
        result["failed_ops"] = pa.failed_ops.value
        result["io_retries"] = machine.driver.retries_scheduled.value
        result["io_escalations"] = pa.io_escalations.value
        result["lost_writes"] = pa.lost_writes.value
    if machine.backend.kind != "sim":
        result["backend"] = machine.backend.describe()
    if session is not None:
        result["trace_session"] = session
    stats = _finish_stats(
        result,
        machine,
        pa.user_completed,
        pa.latencies,
        "pa-tree",
        end_ns=pa.last_user_done_ns,
    )
    machine.close()
    return stats


def run_sync_baseline(
    spec,
    io_mode,
    n_threads,
    seed=1,
    persistence="strong",
    buffer_pages=0,
    device_profile=None,
    fill_factor=0.7,
    pause_mode="spin",
    poll_pause_us=20,
):
    """Run one shared/dedicated synchronous-paradigm experiment."""
    machine = _Machine(seed, device_profile, spec.payload_size)
    rng = RngRegistry(seed).stream("workload")
    workload = spec.build(rng)
    machine.tree.bulk_load(workload.preload_items(), fill_factor)

    if io_mode == "dedicated":
        io_service = DedicatedIoService(
            machine.driver, poll_pause_us=poll_pause_us, pause_mode=pause_mode
        )
    elif io_mode == "shared":
        io_service = SharedIoService(machine.driver)
    else:
        raise BenchmarkError("unknown io mode %r" % (io_mode,))

    operations = workload.operations()
    if spec.sync_every:
        operations = _interleave_syncs(operations, spec.sync_every)

    accessor = SyncTreeAccessor(
        machine.tree,
        io_service,
        BlockingLatchTable(),
        buffer=make_buffer(persistence, buffer_pages),
        persistence=persistence,
    )
    runner = BaselineRunner(
        machine.simos, accessor, operations, n_threads, name=io_mode
    )
    runner.run_to_completion()
    machine.tree.validate()

    result = {
        "approach": io_mode,
        "threads": n_threads,
        "scheduler": "synchronous",
    }
    machine.close()
    return _finish_stats(
        result,
        machine,
        runner.user_completed,
        runner.latencies,
        io_mode,
        end_ns=runner.last_user_done_ns,
    )
