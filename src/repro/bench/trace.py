"""``python -m repro.bench trace <target>`` — record a run end to end.

Runs a representative arm of one of the paper's experiments with the
:mod:`repro.obs` stack attached and writes three artefacts into the
output directory (default ``traces/``):

* ``<target>.trace.json``  — Chrome ``trace_event`` JSON; open it at
  https://ui.perfetto.dev or ``chrome://tracing``,
* ``<target>.trace.jsonl`` — raw events, one JSON object per line,
* ``BENCH_<target>.json``  — machine-readable run summary: throughput /
  latency aggregates plus the histogram and time-series summaries.

It also prints the "top spans / CPU flame" text summary.  Everything is
recorded in virtual time from the deterministic engine, so the same
target and seed always produce byte-identical artefacts.
"""

import os

from repro.bench.report import write_bench_json
from repro.bench.runner import WorkloadSpec, run_pa


def _pa_target(description, mix="default", persistence="strong",
               buffer_pages=0, sync_every=0, default_ops=2_500):
    def run(ops, seed):
        spec = WorkloadSpec(
            kind="ycsb",
            n_keys=20_000,
            n_ops=ops or default_ops,
            mix=mix,
            sync_every=sync_every,
        )
        return run_pa(
            spec,
            seed=seed,
            persistence=persistence,
            buffer_pages=buffer_pages,
            trace=True,
        )

    return description, run


def _run_palsm(ops, seed):
    """Traced PA-LSM run (the paper's future-work extension)."""
    from repro.backend import i3_nvme_profile, make_backend
    from repro.core.source import ClosedLoopSource
    from repro.obs import TraceSession
    from repro.palsm import AsyncLsmStore, PolledLsmWorker
    from repro.sched.naive import NaiveScheduling
    from repro.sim.clock import NS_PER_SEC
    from repro.sim.engine import Engine
    from repro.sim.rng import RngRegistry
    from repro.simos.scheduler import SimOS, paper_testbed_profile

    engine = Engine(seed=seed)
    simos = SimOS(engine, paper_testbed_profile())
    backend = make_backend("sim", engine=engine, profile=i3_nvme_profile())
    device = backend.device
    store = AsyncLsmStore(device, persistence="strong")
    spec = WorkloadSpec(kind="ycsb", n_keys=20_000, n_ops=ops or 2_000)
    workload = spec.build(RngRegistry(seed).stream("workload"))
    store.bulk_load(workload.preload_items())
    store.resize_block_cache(max(store.data_pages() // 10, 1))

    session = TraceSession(engine)
    worker = PolledLsmWorker(
        simos,
        backend,
        store,
        NaiveScheduling(),
        ClosedLoopSource([], window=1),
        tracer=session.tracer,
    )
    session.attach_device(device)
    session.attach_simos(simos)
    session.attach_worker(worker)
    session.start()
    worker.run_operations(list(workload.operations()), window=32)
    session.finish()

    end_ns = worker.last_user_done_ns or engine.now
    elapsed_s = end_ns / NS_PER_SEC if end_ns else 1.0
    return {
        "approach": "pa-lsm",
        "completed": worker.user_completed,
        "throughput_ops": worker.user_completed / elapsed_s,
        "mean_latency_us": worker.latencies.mean_usec(),
        "p99_latency_us": worker.latencies.p99_usec(),
        "probes": worker.probes.value,
        "trace_session": session,
    }


TARGETS = {
    "fig7": _pa_target(
        "PA-Tree on the default YCSB mix (Fig 7 headline arm)"
    ),
    "fig8": _pa_target(
        "PA-Tree latency view, default YCSB mix (Fig 8 arm)"
    ),
    "fig9": _pa_target(
        "PA-Tree CPU-breakdown run (Fig 9 / Table II arm)"
    ),
    "update_heavy": _pa_target(
        "PA-Tree on the 50% update YCSB mix", mix="update_heavy"
    ),
    "fig14": _pa_target(
        "PA-Tree with weak-persistent buffering (Fig 14 arm)",
        persistence="weak",
        buffer_pages=2_000,
        sync_every=200,
    ),
    "palsm": (
        "PA-LSM extension run (get/put with flushes and compactions)",
        _run_palsm,
    ),
}


def list_targets(out=print):
    for name, (description, _run) in sorted(TARGETS.items()):
        out("%-14s %s" % (name, description))


def run_trace(target, ops=None, seed=1, out_dir="traces", out=print):
    """Run one traced target and write its artefacts; returns paths."""
    description, run = TARGETS[target]
    out("tracing: %s" % description)
    result = run(ops, seed)
    session = result.pop("trace_session")

    os.makedirs(out_dir, exist_ok=True)
    prefix = os.path.join(out_dir, target)
    trace_path, jsonl_path = session.write_artifacts(prefix)

    payload = {
        "target": target,
        "seed": seed,
        "result": {
            key: value
            for key, value in sorted(result.items())
            if isinstance(value, (int, float, str, dict))
        },
        "observability": session.bench_summary(),
    }
    bench_path = write_bench_json(target, payload, out_dir)

    session.summary_text(out=out)
    out("wrote %s" % trace_path)
    out("wrote %s" % jsonl_path)
    out("wrote %s" % bench_path)
    return trace_path, jsonl_path, bench_path


def main(args, out=print):
    target = args.target
    if target in (None, "list"):
        list_targets(out=out)
        return 0
    if target not in TARGETS:
        out("unknown trace target %r; available:" % target)
        list_targets(out=out)
        return 2
    run_trace(
        target,
        ops=args.ops,
        seed=args.seed,
        out_dir=args.out or "traces",
        out=out,
    )
    return 0
