"""Benchmark harness: experiment runner, reporting, per-figure modules."""
