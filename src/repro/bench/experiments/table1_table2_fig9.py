"""Table I (runtime statistics), Table II (CPU cycles per operation)
and Fig 9 (CPU consumption breakdown).

One run each of PA-Tree, shared@32 and dedicated@32 threads on the
default workload supplies all three exhibits — the same measurement
protocol as the paper (baselines measured at their best thread count,
32).
"""

from repro.bench.report import print_table
from repro.bench.runner import WorkloadSpec, run_pa, run_sync_baseline
from repro.sim.metrics import CPU_CATEGORIES

BASELINE_THREADS = 32

_CACHE = {}


def run_trio(n_keys=20_000, n_ops=3_000, seed=1, baseline_threads=BASELINE_THREADS):
    key = (n_keys, n_ops, seed, baseline_threads)
    if key in _CACHE:
        return _CACHE[key]
    spec = WorkloadSpec(kind="ycsb", n_keys=n_keys, n_ops=n_ops, mix="default")
    rows = [
        run_sync_baseline(spec, "shared", baseline_threads, seed=seed),
        run_sync_baseline(spec, "dedicated", baseline_threads, seed=seed),
        run_sync_baseline(
            spec,
            "dedicated",
            baseline_threads,
            seed=seed,
            pause_mode="sleep",
            poll_pause_us=100,  # the paper's stated inter-probe pause
        ),
        run_pa(spec, seed=seed),
    ]
    rows[2]["approach"] = "dedicated(sleep)"
    _CACHE[key] = rows
    return rows


# CPU cycles per op at the paper's 2.3 GHz testbed clock.
CYCLES_PER_US = 2_300


def report_table1(rows=None, out=print):
    rows = rows or run_trio()
    columns = [
        ("method", "approach"),
        ("outstanding I/Os", "outstanding_avg"),
        ("IOPS (10^3)", "kiops"),
        ("CPU consumption", "cores_used"),
        ("context switches", "context_switches"),
    ]
    for row in rows:
        row["kiops"] = row["iops"] / 1000.0
    print_table("Table I: runtime statistics", columns, rows, out=out)


def report_table2(rows=None, out=print):
    rows = rows or run_trio()
    columns = [("method", "approach"), ("CPU cycles (10^3) / op", "kcycles")]
    for row in rows:
        row["kcycles"] = row["cpu_us_per_op"] * CYCLES_PER_US / 1000.0
    print_table("Table II: CPU cycles per operation", columns, rows, out=out)


def report_fig9(rows=None, out=print):
    rows = rows or run_trio()
    columns = [("method", "approach")] + [
        (name, name) for name in CPU_CATEGORIES
    ]
    display = []
    for row in rows:
        entry = {"approach": row["approach"]}
        for name in CPU_CATEGORIES:
            entry[name] = row["cpu_breakdown"][name]
        display.append(entry)
    print_table("Fig 9: CPU breakdown (fraction of CPU cycles)", columns, display, out=out)


def report(out=print):
    rows = run_trio()
    report_table1(rows, out=out)
    report_table2(rows, out=out)
    report_fig9(rows, out=out)
