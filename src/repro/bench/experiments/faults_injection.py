"""Faults — PA-Tree goodput and recovery under injected device errors.

The paper evaluates the polled-mode paradigm on a healthy device; this
exhibit measures how the status-carrying completion path degrades when
the device misbehaves.  Three arms, all on the engine-level PA-Tree
(naive scheduler, default YCSB mix, fixed seed):

* ``errors`` — a sweep of transient media-error rates applied to both
  reads and writes.  The driver's :class:`~repro.nvme.driver.RetryPolicy`
  absorbs retriable failures with virtual-time exponential backoff, so
  goodput should degrade smoothly and almost every injected error should
  be retried rather than surfaced.
* ``spikes`` — latency stragglers only (no errors): p99 inflates while
  goodput and the error counters stay clean.
* ``poison`` — a bad LBA range: reads of poisoned pages fail with the
  non-retriable ``unrecovered_read`` status and abort their operation
  with a typed error; a successful write cures the page (FTL
  remap-on-program), so update traffic slowly heals the region.

Every armed run finishes with the structural oracle
(:meth:`~repro.core.tree.PaTree.validate`, which reads media through the
fault-free backdoor), proving the surviving tree is intact, and the row
records the full accounting chain: injected -> retried -> escalated ->
surfaced -> lost.  Rows are deterministic in (ops, seed).
"""

import os

from repro.bench.report import print_table, write_bench_json
from repro.bench.runner import WorkloadSpec, run_pa
from repro.faults import FaultConfig

ERROR_RATES = (0.0, 0.002, 0.01, 0.05)

_DEFAULT_RESULTS = "benchmarks/results"

# Poison a slice of the leaf region: wide enough that the YCSB key
# space hits it, narrow enough that most operations still succeed.
POISON_RANGE = (40, 79)


def _arm_rows(arm, config, n_ops, seed, **extra):
    spec = WorkloadSpec(kind="ycsb", n_keys=20_000, n_ops=n_ops)
    result = run_pa(spec, seed=seed, scheduler="naive", faults=config)
    injected = result.get("faults", {})
    row = {
        "arm": arm,
        "read_err": config.read_error_rate,
        "write_err": config.write_error_rate,
        "spike_rate": config.spike_rate,
        "ops": n_ops,
        "goodput_ops": result["completed"],
        "failed_ops": result.get("failed_ops", 0),
        "throughput_ops": result["throughput_ops"],
        "mean_latency_us": result["mean_latency_us"],
        "p99_latency_us": result["p99_latency_us"],
        "media_errors_injected": injected.get("media_errors_injected", 0),
        "spikes_injected": injected.get("spikes_injected", 0),
        "poison_read_failures": injected.get("poison_read_failures", 0),
        "poison_cured": injected.get("poison_cured", 0),
        "io_retries": result.get("io_retries", 0),
        "io_errors_surfaced": result.get("io_errors", 0),
        "io_escalations": result.get("io_escalations", 0),
        "lost_writes": result.get("lost_writes", 0),
    }
    row.update(extra)
    return row


def run_experiment(n_ops=1_500, seed=1, error_rates=ERROR_RATES):
    """Run all three arms; returns the list of row dicts."""
    rows = []
    for rate in error_rates:
        config = FaultConfig(read_error_rate=rate, write_error_rate=rate)
        rows.append(_arm_rows("errors", config, n_ops, seed))
    rows.append(
        _arm_rows(
            "spikes",
            FaultConfig(spike_rate=0.02, spike_factor=25.0),
            n_ops,
            seed,
        )
    )
    rows.append(
        _arm_rows(
            "poison",
            FaultConfig(poison_ranges=(POISON_RANGE,)),
            n_ops,
            seed,
        )
    )
    return rows


def report(rows=None, out=print, json_dir=_DEFAULT_RESULTS):
    """Print the fault table; persist ``BENCH_faults.json`` to json_dir."""
    rows = rows or run_experiment()
    columns = [
        ("arm", "arm"),
        ("read err", "read_err"),
        ("write err", "write_err"),
        ("goodput", "goodput_ops"),
        ("failed", "failed_ops"),
        ("ops/s", "throughput_ops"),
        ("p99 lat (us)", "p99_latency_us"),
        ("injected", "media_errors_injected"),
        ("retries", "io_retries"),
        ("surfaced", "io_errors_surfaced"),
        ("escalated", "io_escalations"),
        ("lost", "lost_writes"),
    ]
    print_table(
        "Faults: goodput and recovery under injected device errors",
        columns,
        rows,
        out=out,
    )
    if json_dir:
        os.makedirs(json_dir, exist_ok=True)
        write_bench_json("faults", rows, json_dir)
    return rows
