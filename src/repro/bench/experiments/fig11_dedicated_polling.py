"""Fig 11 — workload-aware vs dedicated polling thread.

PA-Tree (working thread probes inline, model-gated) versus PAD-Tree
(a second thread polls continuously) and PAD+-Tree (a second thread
polls, gated by the workload-aware model).  Reports throughput and CPU
consumption: PAD burns CPU and over-probes the device; PAD+ matches
PA's probing but pays the cross-thread handoff, landing slightly below
PA — the paper's conclusion that the extra thread buys nothing.
"""

from repro.bench.report import print_table
from repro.bench.runner import WorkloadSpec, run_pa
from repro.core.engine import POLLER_CONTINUOUS, POLLER_MODEL
from repro.backend import i3_nvme_profile
from repro.sched.probe_model import cached_probe_model
from repro.sched.workload_aware import WorkloadAwareScheduling


def run_experiment(n_keys=20_000, n_ops=3_000, seed=1):
    spec = WorkloadSpec(kind="ycsb", n_keys=n_keys, n_ops=n_ops, mix="default")
    model = cached_probe_model(i3_nvme_profile())
    rows = []
    for name, poller in (
        ("PA-Tree", None),
        ("PAD-Tree", POLLER_CONTINUOUS),
        ("PAD+-Tree", POLLER_MODEL),
    ):
        row = run_pa(
            spec,
            seed=seed,
            policy=WorkloadAwareScheduling(model),
            dedicated_poller=poller,
        )
        row["variant"] = name
        rows.append(row)
    return rows


def report(rows=None, out=print):
    rows = rows or run_experiment()
    columns = [
        ("variant", "variant"),
        ("ops/s", "throughput_ops"),
        ("mean lat (us)", "mean_latency_us"),
        ("CPU (cores)", "cores_used"),
        ("probes", "probes"),
    ]
    print_table("Fig 11: dedicated polling thread variants", columns, rows, out=out)
