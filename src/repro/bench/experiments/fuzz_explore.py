"""Schedule fuzzing — explored schedules and parity verdicts.

Runs the ``repro.fuzz`` differential harness over a fixed seed list
for each session target and reports one row per explored schedule:
how many decisions the explorer perturbed (run-queue picks, preemption
flips, wakeup reordering, I/O jitter), how much virtual time the
schedule covered and whether every parity and invariant check held.
The committed artifact (``BENCH_fuzz.json``) is the recorded evidence
that the exploration dimensions named by the paper's determinism claim
— OS scheduling and NVMe completion order — hold no surviving
schedule-dependent bugs at this depth.
"""

import os

from repro.bench.report import print_table, write_bench_json
from repro.fuzz.harness import FuzzRunConfig, run_one

TARGETS = ("patree", "lsm", "sharded")

#: Seeds explored per target; small and fixed so the exhibit is a
#: bounded regression gate, not an open-ended hunt (use the CLI for
#: deeper sweeps: ``python -m repro.fuzz --seeds 100``).
SEEDS = (1, 2, 3, 4, 5)

_DEFAULT_RESULTS = "benchmarks/results"


def run_experiment(n_ops=150, seeds=SEEDS, targets=TARGETS):
    rows = []
    for target in targets:
        cfg = FuzzRunConfig(
            target=target, n_ops=n_ops, sync_oracle=target == "patree"
        )
        for seed in seeds:
            result = run_one(seed, cfg)
            failure = result["failure"]
            rows.append(
                {
                    "target": target,
                    "seed": seed,
                    "verdict": "ok" if result["ok"] else failure["kind"],
                    "ops": result["ops"],
                    "steps": result["steps"],
                    "decisions": result["decisions"],
                    "tolerated_faults": result["tolerated_faults"],
                    "virtual_time_us": result["virtual_time_us"],
                }
            )
    return rows


def report(rows=None, out=print, json_dir=_DEFAULT_RESULTS):
    """Print the exploration table; persist ``BENCH_fuzz.json``."""
    rows = rows or run_experiment()
    columns = [
        ("target", "target"),
        ("seed", "seed"),
        ("verdict", "verdict"),
        ("ops", "ops"),
        ("steps", "steps"),
        ("decisions", "decisions"),
        ("vtime (us)", "virtual_time_us"),
    ]
    print_table(
        "Schedule fuzzing: explored schedules and parity verdicts",
        columns,
        rows,
        out=out,
    )
    failures = [row for row in rows if row["verdict"] != "ok"]
    out(
        "explored %d schedule(s): %d failure(s)%s"
        % (
            len(rows),
            len(failures),
            "" if not failures else " -- run python -m repro.fuzz to shrink",
        )
    )
    if json_dir:
        os.makedirs(json_dir, exist_ok=True)
        write_bench_json("fuzz", rows, json_dir)
    return rows
