"""Fig 15 — end-to-end comparison.

PA-Tree versus the state-of-the-art baselines the paper uses —
LevelDB-style LSM store, LCB-Tree (log-based consistent B+ tree) and
Blink-tree — under strong and weak persistence, on the default YCSB
mix and the two real-workload stand-ins (T-Drive trajectories, SSE
order book).  As in the paper: every method gets a memory buffer of
10 % of the index size, weak persistence syncs every 1000 updates, and
the synchronous baselines run multi-threaded (the paper reports their
best thread count; we use 32, their observed best).
"""

from repro.baselines.blink_tree import BlinkTreeAccessor
from repro.baselines.io_service import DedicatedIoService
from repro.baselines.latching import BlockingLatchTable
from repro.baselines.lcb_tree import LcbTreeAccessor
from repro.baselines.lsm import LsmAccessor, LsmConfig, LsmStore
from repro.baselines.runner import BaselineRunner
from repro.bench.report import print_table
from repro.bench.runner import WorkloadSpec, _interleave_syncs, _Machine
from repro.buffer import make_buffer
from repro.bench.runner import run_pa
from repro.errors import BenchmarkError
from repro.sim.clock import NS_PER_SEC
from repro.sim.rng import RngRegistry

SYNC_EVERY = 1000
BASELINE_THREADS = 32

WORKLOADS = {
    "ycsb-default": WorkloadSpec(
        kind="ycsb", n_keys=20_000, n_ops=2_500, mix="default", insert_ratio=0.3
    ),
    "t-drive": WorkloadSpec(kind="tdrive", n_keys=20_000, n_ops=1_500, n_actors=300),
    "sse": WorkloadSpec(
        kind="sse", n_keys=12_000, n_ops=1_500, payload_size=100, n_actors=200
    ),
}


def _buffer_pages_for(tree):
    """10 % of the index size, as in the paper's setup."""
    return max(64, tree.allocator.allocated_count // 10)


def run_tree_baseline(spec, accessor_kind, persistence, n_threads, seed=1):
    """LCB / Blink run over the shared synchronous substrate."""
    machine = _Machine(seed, None, spec.payload_size)
    rng = RngRegistry(seed).stream("workload")
    workload = spec.build(rng)
    machine.tree.bulk_load(workload.preload_items())
    buffer_pages = _buffer_pages_for(machine.tree)

    io_service = DedicatedIoService(machine.driver)
    latches = BlockingLatchTable()
    if accessor_kind == "blink":
        accessor = BlinkTreeAccessor(
            machine.tree,
            io_service,
            latches,
            buffer=make_buffer(persistence, buffer_pages),
            persistence=persistence,
        )
    elif accessor_kind == "lcb":
        accessor = LcbTreeAccessor(
            machine.tree,
            io_service,
            latches,
            buffer=make_buffer("strong", buffer_pages),
            persistence=persistence,
        )
    else:
        raise BenchmarkError("unknown accessor kind %r" % (accessor_kind,))

    operations = workload.operations()
    if persistence == "weak":
        operations = _interleave_syncs(operations, SYNC_EVERY)
    runner = BaselineRunner(
        machine.simos, accessor, operations, n_threads, name=accessor_kind
    )
    runner.run_to_completion()
    return _collect(machine, runner, accessor_kind, n_threads)


def run_lsm_baseline(spec, persistence, n_threads, seed=1):
    machine = _Machine(seed, None, spec.payload_size)
    rng = RngRegistry(seed).stream("workload")
    workload = spec.build(rng)
    io_service = DedicatedIoService(machine.driver)
    store = LsmStore(machine.device, io_service, LsmConfig(), persistence=persistence)
    store.bulk_load(workload.preload_items())
    store.resize_block_cache(store.data_pages() // 10)  # 10 % as in the paper
    accessor = LsmAccessor(store)
    operations = workload.operations()
    if persistence == "weak":
        operations = _interleave_syncs(operations, SYNC_EVERY)
    runner = BaselineRunner(
        machine.simos, accessor, operations, n_threads, name="lsm"
    )
    runner.run_to_completion()
    return _collect(machine, runner, "leveldb-lsm", n_threads)


def _collect(machine, runner, approach, n_threads):
    end_ns = runner.last_user_done_ns or machine.engine.now
    elapsed_s = end_ns / NS_PER_SEC
    return {
        "approach": approach,
        "threads": n_threads,
        "throughput_ops": runner.user_completed / elapsed_s if elapsed_s else 0.0,
        "mean_latency_us": runner.latencies.mean_usec(),
        "p99_latency_us": runner.latencies.p99_usec(),
        "completed": runner.completed.value,
        "cores_used": machine.simos.total_busy_ns() / machine.engine.now
        if machine.engine.now
        else 0.0,
    }


def run_pa_arm(spec, persistence, seed=1):
    # estimate the buffer from the workload's preload footprint
    machine = _Machine(seed, None, spec.payload_size)
    rng = RngRegistry(seed).stream("workload")
    workload = spec.build(rng)
    machine.tree.bulk_load(workload.preload_items())
    buffer_pages = _buffer_pages_for(machine.tree)

    arm_spec = spec
    if persistence == "weak":
        arm_spec = WorkloadSpec(
            kind=spec.kind,
            n_keys=spec.n_keys,
            n_ops=spec.n_ops,
            mix=spec.mix,
            alpha=spec.alpha,
            payload_size=spec.payload_size,
            insert_ratio=spec.insert_ratio,
            sync_every=SYNC_EVERY,
            n_actors=spec.n_actors,
        )
    row = run_pa(
        arm_spec,
        seed=seed,
        persistence=persistence,
        buffer_pages=buffer_pages,
        # matched concurrency: the same number of in-flight operations
        # as the baselines have worker threads, so latency comparisons
        # are apples-to-apples
        window=BASELINE_THREADS,
    )
    row["approach"] = "pa-tree"
    return row


def run_experiment(workloads=None, seed=1, baseline_threads=BASELINE_THREADS):
    workloads = workloads or WORKLOADS
    rows = []
    for workload_name, spec in workloads.items():
        for persistence in ("strong", "weak"):
            arms = [run_pa_arm(spec, persistence, seed=seed)]
            arms.append(
                run_tree_baseline(spec, "blink", persistence, baseline_threads, seed)
            )
            arms.append(
                run_tree_baseline(spec, "lcb", persistence, baseline_threads, seed)
            )
            arms.append(run_lsm_baseline(spec, persistence, baseline_threads, seed))
            for row in arms:
                row["workload"] = workload_name
                row["persistence"] = persistence
                rows.append(row)
    return rows


def report(rows=None, out=print):
    rows = rows or run_experiment()
    columns = [
        ("workload", "workload"),
        ("persistence", "persistence"),
        ("method", "approach"),
        ("ops/s", "throughput_ops"),
        ("mean lat (us)", "mean_latency_us"),
        ("p99 lat (us)", "p99_latency_us"),
    ]
    print_table("Fig 15: end-to-end comparison", columns, rows, out=out)
    return rows
