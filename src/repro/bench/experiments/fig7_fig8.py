"""Fig 7 (throughput) and Fig 8 (latency) — paradigm comparison.

PA-Tree (one working thread) versus the shared and dedicated
synchronous baselines with a sweep of worker-thread counts, on the
read-only, default (10 % update) and update-heavy (50 % update)
YCSB-style workloads.  Buffering is disabled in all approaches, as in
the paper's §V-A.
"""

from repro.bench.report import print_table
from repro.bench.runner import WorkloadSpec, run_pa, run_sync_baseline

THREAD_SWEEP = (1, 8, 32, 128)
MIXES = ("read_only", "default", "update_heavy")

_CACHE = {}


def run_grid(
    mixes=MIXES,
    threads=THREAD_SWEEP,
    n_keys=20_000,
    n_ops=3_000,
    seed=1,
):
    """All (mix, approach, threads) rows.  Memoized per configuration."""
    key = (tuple(mixes), tuple(threads), n_keys, n_ops, seed)
    if key in _CACHE:
        return _CACHE[key]
    rows = []
    for mix in mixes:
        spec = WorkloadSpec(kind="ycsb", n_keys=n_keys, n_ops=n_ops, mix=mix)
        pa = run_pa(spec, seed=seed)
        pa["mix"] = mix
        rows.append(pa)
        for io_mode in ("shared", "dedicated"):
            for n_threads in threads:
                row = run_sync_baseline(spec, io_mode, n_threads, seed=seed)
                row["mix"] = mix
                rows.append(row)
    _CACHE[key] = rows
    return rows


def best_baseline(rows, mix, approach, metric="throughput_ops", maximize=True):
    candidates = [
        row for row in rows if row["mix"] == mix and row["approach"] == approach
    ]
    chooser = max if maximize else min
    return chooser(candidates, key=lambda row: row[metric])


def report(rows=None, out=print):
    rows = rows or run_grid()
    columns = [
        ("mix", "mix"),
        ("approach", "approach"),
        ("threads", "threads"),
        ("ops/s", "throughput_ops"),
        ("mean lat (us)", "mean_latency_us"),
        ("p99 lat (us)", "p99_latency_us"),
    ]
    print_table("Fig 7 + Fig 8: throughput / latency vs threads", columns, rows, out=out)
    for mix in MIXES:
        pa = [r for r in rows if r["mix"] == mix and r["approach"] == "pa-tree"]
        if not pa:
            continue
        best_shared = best_baseline(rows, mix, "shared")
        best_dedicated = best_baseline(rows, mix, "dedicated")
        out(
            "%s: PA %.0f ops/s vs best shared %.0f (x%.1f) vs best dedicated %.0f (x%.1f)"
            % (
                mix,
                pa[0]["throughput_ops"],
                best_shared["throughput_ops"],
                pa[0]["throughput_ops"] / max(best_shared["throughput_ops"], 1),
                best_dedicated["throughput_ops"],
                pa[0]["throughput_ops"] / max(best_dedicated["throughput_ops"], 1),
            )
        )
    return rows
