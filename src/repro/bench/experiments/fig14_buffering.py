"""Fig 14 — data buffering.

PA-Tree throughput and latency as the buffer size is swept, for the
strong-persistent (read-only buffer) and weak-persistent (read-write
buffer with group sync) variants.  Even a very small buffer helps a
lot — the root and upper inner nodes are touched by every operation —
and weak persistence adds write merging on top.
"""

from repro.bench.report import print_table
from repro.bench.runner import WorkloadSpec, run_pa

BUFFER_SWEEP = (0, 16, 64, 256, 1024, 4096)
SYNC_EVERY = 1000


def run_experiment(n_keys=20_000, n_ops=3_000, seed=1, buffers=BUFFER_SWEEP):
    # update-heavy: the strong/weak gap is about write amplification,
    # so the workload must write enough for merging to matter
    rows = []
    for buffer_pages in buffers:
        spec = WorkloadSpec(
            kind="ycsb", n_keys=n_keys, n_ops=n_ops, mix="update_heavy"
        )
        row = run_pa(
            spec, seed=seed, persistence="strong", buffer_pages=buffer_pages
        )
        row["buffer_pages"] = buffer_pages
        row["persistence"] = "strong"
        rows.append(row)
        if buffer_pages > 0:
            spec = WorkloadSpec(
                kind="ycsb",
                n_keys=n_keys,
                n_ops=n_ops,
                mix="update_heavy",
                sync_every=SYNC_EVERY,
            )
            row = run_pa(
                spec, seed=seed, persistence="weak", buffer_pages=buffer_pages
            )
            row["buffer_pages"] = buffer_pages
            row["persistence"] = "weak"
            rows.append(row)
    return rows


def report(rows=None, out=print):
    rows = rows or run_experiment()
    columns = [
        ("buffer (pages)", "buffer_pages"),
        ("persistence", "persistence"),
        ("ops/s", "throughput_ops"),
        ("mean lat (us)", "mean_latency_us"),
        ("device writes", "device_writes"),
        ("device reads", "device_reads"),
    ]
    print_table("Fig 14: buffering (strong vs weak persistence)", columns, rows, out=out)
