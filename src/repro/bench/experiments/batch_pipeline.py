"""Batch pipeline — vectored ops/sec versus batch size.

The batch-first session API plans a whole key vector as one operation:
keys are sorted once, grouped by target leaf during a single shared
descent, each leaf latch is acquired once per group, groups apply as
vectored in-node operations and sibling page writes coalesce into
vectored device commands.  This exhibit sweeps the batch size over the
same deterministic mixed key stream (50% put / 30% get / 20% delete)
and reports aggregate virtual-time throughput: size-1 batches are the
single-op code path, so the curve *is* the amortization — latch
round-trips, descents and doorbells shared across a group instead of
paid per key.

The tree is preloaded sparsely (every eighth key of the keyspace) so
batches of 64+ keys span several leaves: group sizes stay realistic
rather than degenerating into one giant single-leaf group.
"""

import os

from repro.api import PATreeSession
from repro.bench.report import print_table, write_bench_json
from repro.core.ops import OpSpec, batch_op
from repro.sim.clock import NS_PER_SEC
from repro.sim.rng import RngRegistry

BATCH_SIZES = (1, 8, 64, 256)

#: Keyspace and preload stride: 1024 candidate keys, 128 preloaded.
#: Sized so a 64-key batch averages several keys per leaf group (the
#: amortization the exhibit measures) while still spanning many leaves.
KEYSPACE = 1_024
PRELOAD_STRIDE = 8

#: Closed-loop window of in-flight batch operations.
WINDOW = 8

_DEFAULT_RESULTS = "benchmarks/results"


def make_specs(n_specs, seed, payload_size=8):
    """The deterministic mixed spec stream shared by every sweep point."""
    rng = RngRegistry(seed).stream("batch-sweep")
    specs = []
    for _ in range(n_specs):
        key = rng.randrange(1, KEYSPACE)
        roll = rng.random()
        if roll < 0.5:
            specs.append(OpSpec.put(key, key.to_bytes(payload_size, "little")))
        elif roll < 0.8:
            specs.append(OpSpec.get(key))
        else:
            specs.append(OpSpec.delete(key))
    return specs


def run_batch_size(batch_size, n_specs=2_048, seed=1, payload_size=8):
    """One sweep point: the whole spec stream in ``batch_size`` chunks."""
    session = PATreeSession(
        seed=seed, payload_size=payload_size, scheduler="naive", window=WINDOW
    )
    session.bulk_load(
        (key, key.to_bytes(payload_size, "little"))
        for key in range(1, KEYSPACE, PRELOAD_STRIDE)
    )
    specs = make_specs(n_specs, seed, payload_size)
    operations = [
        batch_op(specs[start:start + batch_size])
        for start in range(0, len(specs), batch_size)
    ]
    session.execute(operations)
    session.validate()

    stats = session.stats()
    elapsed_ns = session.pa_engine.last_user_done_ns or session.env.engine.now
    elapsed_s = elapsed_ns / NS_PER_SEC if elapsed_ns else 1.0
    groups = stats["batch_groups"]
    return {
        "batch_size": batch_size,
        "specs": n_specs,
        "batches": len(operations),
        "groups": groups,
        "mean_group_size": stats["batch_keys"] / groups if groups else 0.0,
        "elapsed_s": elapsed_s,
        "throughput_ops": n_specs / elapsed_s,
        "mean_latency_us": stats["mean_latency_us"],
        "device_reads": stats["device_reads"],
        "device_writes": stats["device_writes"],
        "coalesced_writes": stats["coalesced_writes"],
        "latch_waits": stats["latch_waits"],
    }


def run_experiment(n_specs=2_048, seed=1, batch_sizes=BATCH_SIZES):
    rows = []
    base = None
    for batch_size in batch_sizes:
        row = run_batch_size(batch_size, n_specs=n_specs, seed=seed)
        if base is None:
            base = row["throughput_ops"] or 1.0
        row["speedup"] = row["throughput_ops"] / base
        rows.append(row)
    return rows


def report(rows=None, out=print, json_dir=_DEFAULT_RESULTS):
    """Print the sweep table; persist ``BENCH_batch.json`` to json_dir."""
    rows = rows or run_experiment()
    columns = [
        ("batch", "batch_size"),
        ("specs", "specs"),
        ("groups", "groups"),
        ("keys/group", "mean_group_size"),
        ("ops/s", "throughput_ops"),
        ("speedup", "speedup"),
        ("mean lat (us)", "mean_latency_us"),
        ("dev reads", "device_reads"),
        ("dev writes", "device_writes"),
        ("coalesced", "coalesced_writes"),
    ]
    print_table(
        "Batch pipeline: vectored ops/sec vs batch size", columns, rows, out=out
    )
    if json_dir:
        os.makedirs(json_dir, exist_ok=True)
        write_bench_json("batch", rows, json_dir)
    return rows
