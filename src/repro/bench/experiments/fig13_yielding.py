"""Fig 13 — CPU yielding vs input rate.

Open-loop Poisson arrivals at a swept rate; PA-Tree with and without
adaptive CPU yielding.  Without yielding the working thread spins in
its main loop even when idle, so CPU consumption stays high at low
input rates; with yielding it sleeps whenever the ready set is empty
and the model predicts no imminent completion — large CPU savings at
low load with no throughput penalty.
"""

from repro.bench.report import print_table
from repro.bench.runner import WorkloadSpec, run_pa
from repro.backend import i3_nvme_profile
from repro.sched.probe_model import cached_probe_model
from repro.sched.workload_aware import WorkloadAwareScheduling

RATE_SWEEP = (10_000, 25_000, 50_000, 75_000)


def run_experiment(n_keys=20_000, n_ops=1_500, seed=1, rates=RATE_SWEEP):
    model = cached_probe_model(i3_nvme_profile())
    rows = []
    for rate in rates:
        spec = WorkloadSpec(kind="ycsb", n_keys=n_keys, n_ops=n_ops, mix="default")
        for cpu_yield in (True, False):
            row = run_pa(
                spec,
                seed=seed,
                policy=WorkloadAwareScheduling(model, cpu_yield=cpu_yield),
                open_loop_rate=rate,
            )
            row["rate"] = rate
            row["yielding"] = "yes" if cpu_yield else "no"
            rows.append(row)
    return rows


def report(rows=None, out=print):
    rows = rows or run_experiment()
    columns = [
        ("input rate (ops/s)", "rate"),
        ("yielding", "yielding"),
        ("CPU (cores)", "cores_used"),
        ("achieved ops/s", "throughput_ops"),
        ("mean lat (us)", "mean_latency_us"),
    ]
    print_table("Fig 13: CPU yielding vs input rate", columns, rows, out=out)
