"""Fig 10 — probing strategies.

Workload-aware (model-gated) probing versus (i) probing every
``avg(t)`` microseconds where ``avg(t)`` is the rolling mean I/O
completion latency, and (ii) fixed-rate probing with the cycle swept
from 0 to 200 us.  Default workload, no buffer, so every operation
exercises the probe path heavily.
"""

from repro.bench.report import print_table
from repro.bench.runner import WorkloadSpec, run_pa
from repro.backend import i3_nvme_profile
from repro.sched.policies import AvgLatencyProbing, FixedRateProbing
from repro.sched.probe_model import cached_probe_model
from repro.sched.workload_aware import WorkloadAwareScheduling

FIXED_CYCLES_US = (0, 1, 5, 10, 20, 50, 100, 200)


def run_experiment(n_keys=20_000, n_ops=3_000, seed=1, fixed_cycles=FIXED_CYCLES_US):
    spec = WorkloadSpec(kind="ycsb", n_keys=n_keys, n_ops=n_ops, mix="default")
    rows = []

    model = cached_probe_model(i3_nvme_profile())
    row = run_pa(spec, seed=seed, policy=WorkloadAwareScheduling(model))
    row["strategy"] = "workload-aware"
    rows.append(row)

    row = run_pa(spec, seed=seed, policy=AvgLatencyProbing())
    row["strategy"] = "avg(t)"
    rows.append(row)

    for cycle in fixed_cycles:
        row = run_pa(spec, seed=seed, policy=FixedRateProbing(cycle))
        row["strategy"] = "fixed %dus" % cycle
        rows.append(row)
    return rows


def report(rows=None, out=print):
    rows = rows or run_experiment()
    columns = [
        ("strategy", "strategy"),
        ("ops/s", "throughput_ops"),
        ("mean lat (us)", "mean_latency_us"),
        ("p99 lat (us)", "p99_latency_us"),
        ("probes", "probes"),
    ]
    print_table("Fig 10: probing strategy comparison", columns, rows, out=out)
