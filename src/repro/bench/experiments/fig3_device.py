"""Fig 3 — raw NVMe device characterization.

(a) IOPS vs queue depth for several write rates,
(b) mean access latency vs queue depth for several write rates,
(c) IOPS and latency vs probe cycle at fixed queue depth.

Drives the device model directly (no OS threads, no tree): a fixed
number of outstanding commands is maintained open-loop, the completion
queue is probed on a fixed cycle, and each detected completion is
immediately replaced — the standard ``fio``-style device microbench.
"""

from repro.bench.report import print_series
from repro.backend import i3_nvme_profile, make_backend
from repro.sim.clock import NS_PER_SEC, to_usec, usec
from repro.sim.engine import Engine

QD_SWEEP = (1, 2, 4, 8, 16, 32, 64, 128, 256)
WRITE_RATES = (0.0, 0.5, 1.0)
PROBE_CYCLES_US = (0, 1, 5, 10, 20, 50, 100, 200)


def run_fixed_qd(
    queue_depth,
    write_rate,
    probe_cycle_us=5,
    duration_us=60_000,
    seed=3,
    device_profile=None,
):
    """One microbench point; returns {iops, mean_latency_us, ...}."""
    engine = Engine(seed=seed)
    profile = device_profile or i3_nvme_profile()
    backend = make_backend("sim", engine=engine, profile=profile)
    device = backend.device
    driver = backend.driver
    qpair = driver.alloc_qpair(sq_size=4096, cq_size=4096)
    rng = engine.rng.stream("fig3")
    probe_ns = max(usec(probe_cycle_us), usec(0.5))

    state = {"completed": 0, "latency_sum_ns": 0}

    def submit_one():
        lba = rng.randrange(1, profile.capacity_pages)
        if rng.random() < write_rate:
            driver.write(qpair, lba, bytes(profile.page_size))
        else:
            driver.read(qpair, lba)

    def probe_tick():
        completed = driver.probe(qpair)
        for command in completed:
            state["completed"] += 1
            state["latency_sum_ns"] += engine.now - command.submit_ns
            submit_one()
        engine.schedule(probe_ns, probe_tick)

    for _ in range(queue_depth):
        submit_one()
    engine.schedule(probe_ns, probe_tick)
    engine.run(until_ns=usec(duration_us))

    elapsed_s = engine.now / NS_PER_SEC
    completed = state["completed"]
    return {
        "queue_depth": queue_depth,
        "write_rate": write_rate,
        "probe_cycle_us": probe_cycle_us,
        "iops": completed / elapsed_s if elapsed_s else 0.0,
        "mean_latency_us": to_usec(state["latency_sum_ns"] / completed)
        if completed
        else 0.0,
        "completed": completed,
    }


def run_fig3a_b(qd_sweep=QD_SWEEP, write_rates=WRITE_RATES, duration_us=40_000, seed=3):
    """IOPS and latency vs queue depth x write rate."""
    iops_series = {}
    latency_series = {}
    for write_rate in write_rates:
        label = "write=%d%%" % int(write_rate * 100)
        iops = []
        latency = []
        for queue_depth in qd_sweep:
            point = run_fixed_qd(
                queue_depth, write_rate, duration_us=duration_us, seed=seed
            )
            iops.append(point["iops"])
            latency.append(point["mean_latency_us"])
        iops_series[label] = iops
        latency_series[label] = latency
    return list(qd_sweep), iops_series, latency_series


def run_fig3c(probe_cycles_us=PROBE_CYCLES_US, queue_depth=32, duration_us=40_000, seed=3):
    """IOPS and latency vs probe cycle at fixed queue depth."""
    iops = []
    latency = []
    for cycle in probe_cycles_us:
        point = run_fixed_qd(
            queue_depth, 0.0, probe_cycle_us=cycle, duration_us=duration_us, seed=seed
        )
        iops.append(point["iops"])
        latency.append(point["mean_latency_us"])
    return list(probe_cycles_us), {"iops": iops}, {"latency_us": latency}


def report(out=print):
    """Regenerate and print the full figure."""
    qds, iops_series, latency_series = run_fig3a_b()
    print_series("Fig 3(a) IOPS vs queue depth", "qd", qds, iops_series, out=out)
    print_series(
        "Fig 3(b) latency (us) vs queue depth", "qd", qds, latency_series, out=out
    )
    cycles, iops, latency = run_fig3c()
    print_series(
        "Fig 3(c) IOPS vs probe cycle (us)", "cycle", cycles, iops, out=out
    )
    print_series(
        "Fig 3(c) latency vs probe cycle (us)", "cycle", cycles, latency, out=out
    )
