"""Experiment modules, one per paper table/figure."""
