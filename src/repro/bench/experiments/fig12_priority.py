"""Fig 12 — prioritized execution vs key skewness.

With and without the priority queue (write-latch holders first, then
admission order), on an update-heavy workload whose Zipf skew is swept
upwards.  Higher skew concentrates exclusive latches on hot leaves, so
releasing write latches sooner matters more — the performance margin
should grow with skew.
"""

from repro.bench.report import print_table
from repro.bench.runner import WorkloadSpec, run_pa
from repro.backend import i3_nvme_profile
from repro.sched.probe_model import cached_probe_model
from repro.sched.workload_aware import WorkloadAwareScheduling

ALPHA_SWEEP = (0.3, 0.6, 0.9)

# The effect of prioritized execution shows when the ready set is deep
# (buffered, CPU-bound operation mix) and exclusive latches are held
# across write I/O on hot leaves -- the paper's contended regime.
WINDOW = 128
BUFFER_PAGES = 4_096


def run_experiment(n_keys=20_000, n_ops=3_000, seed=1, alphas=ALPHA_SWEEP):
    model = cached_probe_model(i3_nvme_profile())
    rows = []
    for alpha in alphas:
        spec = WorkloadSpec(
            kind="ycsb", n_keys=n_keys, n_ops=n_ops, mix="update_heavy", alpha=alpha
        )
        for prioritized in (True, False):
            row = run_pa(
                spec,
                seed=seed,
                policy=WorkloadAwareScheduling(model, prioritized=prioritized),
                window=WINDOW,
                buffer_pages=BUFFER_PAGES,
            )
            row["alpha"] = alpha
            row["prioritized"] = "yes" if prioritized else "no"
            rows.append(row)
    return rows


def report(rows=None, out=print):
    rows = rows or run_experiment()
    columns = [
        ("alpha", "alpha"),
        ("prioritized", "prioritized"),
        ("ops/s", "throughput_ops"),
        ("mean lat (us)", "mean_latency_us"),
        ("p99 lat (us)", "p99_latency_us"),
        ("latch waits", "latch_waits"),
    ]
    print_table("Fig 12: prioritized execution vs skew", columns, rows, out=out)
