"""Scale-out — sharded multi-device PA-Tree throughput scaling.

The paper saturates one NVMe SSD with one polled working thread; this
exhibit scales the paradigm out with :class:`repro.shard.ShardedPaTree`:
hash-partitioned shards, each an independent (device, driver, tree,
worker) stack on the shared simulated OS.  A weak-scaling sweep holds
the per-shard load constant (operations and the closed-loop admission
window both grow with the shard count), so with shared-nothing shards
aggregate virtual-time throughput should grow near-linearly until the
8-core testbed runs out of cores for polled workers.

Two YCSB arms: ``read_only`` (pure device-bound scaling) and the
``default`` mixed workload (adds latching and write traffic).
"""

import os

from repro.bench.report import print_table, write_bench_json
from repro.shard import ShardedPaTree
from repro.sim.clock import NS_PER_SEC
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.simos.scheduler import SimOS, paper_testbed_profile
from repro.workloads import YcsbWorkload

SHARD_SWEEP = (1, 2, 4, 8)
MIXES = ("read_only", "default")

# Per-shard closed-loop window: deep enough to keep one device's
# channels busy, scaled with the shard count so per-shard load is
# constant across the sweep (weak scaling).
WINDOW_PER_SHARD = 32

_DEFAULT_RESULTS = "benchmarks/results"


def run_shards(
    n_shards,
    mix,
    base_ops=1_500,
    n_keys=20_000,
    seed=1,
    alpha=0.3,
    partitioning="hash",
):
    """One sweep point: ``n_shards`` shards, ``base_ops`` ops per shard."""
    engine = Engine(seed=seed)
    simos = SimOS(engine, paper_testbed_profile())
    sharded = ShardedPaTree(simos, n_shards, partitioning=partitioning)
    rng = RngRegistry(seed).stream("workload")
    workload = YcsbWorkload(
        n_keys, base_ops * n_shards, mix=mix, alpha=alpha, rng=rng
    )
    sharded.bulk_load(workload.preload_items())
    sharded.run_operations(workload.operations(), window=WINDOW_PER_SHARD * n_shards)
    sharded.validate()

    stats = sharded.stats()
    elapsed_ns = sharded.last_user_done_ns or engine.now
    elapsed_s = elapsed_ns / NS_PER_SEC if elapsed_ns else 1.0
    shard_tput = [
        s["completed"] / elapsed_s for s in stats["per_shard"]
    ]
    return {
        "mix": mix,
        "shards": n_shards,
        "partitioning": partitioning,
        "ops": base_ops * n_shards,
        "window": WINDOW_PER_SHARD * n_shards,
        "elapsed_s": elapsed_s,
        "throughput_ops": sharded.user_completed / elapsed_s,
        "mean_latency_us": stats["mean_latency_us"],
        "p99_latency_us": stats["p99_latency_us"],
        "completed": stats["completed"],
        "user_completed": stats["user_completed"],
        "device_reads": stats["device_reads"],
        "device_writes": stats["device_writes"],
        "probes": stats["probes"],
        "latch_waits": stats["latch_waits"],
        "min_shard_tput": min(shard_tput),
        "max_shard_tput": max(shard_tput),
    }


def run_experiment(
    base_ops=1_500,
    n_keys=20_000,
    seed=1,
    shard_counts=SHARD_SWEEP,
    mixes=MIXES,
):
    rows = []
    for mix in mixes:
        base = None
        for n_shards in shard_counts:
            row = run_shards(
                n_shards, mix, base_ops=base_ops, n_keys=n_keys, seed=seed
            )
            if base is None:
                base = row["throughput_ops"] or 1.0
            row["speedup"] = row["throughput_ops"] / base
            rows.append(row)
    return rows


def report(rows=None, out=print, json_dir=_DEFAULT_RESULTS):
    """Print the sweep table; persist ``BENCH_shards.json`` to json_dir."""
    rows = rows or run_experiment()
    columns = [
        ("mix", "mix"),
        ("shards", "shards"),
        ("ops", "ops"),
        ("agg ops/s", "throughput_ops"),
        ("speedup", "speedup"),
        ("mean lat (us)", "mean_latency_us"),
        ("p99 lat (us)", "p99_latency_us"),
        ("dev reads", "device_reads"),
        ("dev writes", "device_writes"),
    ]
    print_table(
        "Scale-out: sharded multi-device PA-Tree (YCSB)", columns, rows, out=out
    )
    if json_dir:
        os.makedirs(json_dir, exist_ok=True)
        write_bench_json("shards", rows, json_dir)
    return rows
