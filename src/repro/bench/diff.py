"""``python -m repro.bench diff <old.json> <new.json>`` — regression gate.

Compares two ``BENCH_*.json`` artefacts (any shape — the comparison
walks every numeric leaf) and fails when a quantity moved past a
relative threshold in its *bad* direction:

* **lower-is-better** leaves (latency percentiles, CPU per op, error /
  failure / violation counts, lost writes) regress when the new value
  exceeds the old by more than the threshold,
* **higher-is-better** leaves (throughput, goodput, IOPS) regress when
  the new value falls short of the old by more than the threshold,
* unclassified leaves are reported when they move but never gate,
* leaves under a **wall-clock-variant** subtree — any dict carrying
  ``"wall_clock_variant": true``, or a ``"backend"`` descriptor with
  that flag (what :meth:`repro.backend.IoBackend.describe` emits for
  the file backend) — are reported but *never* gate: their quantities
  are host-timing measurements, not simulator outputs.  Sim and
  replay artifacts carry no such marker and stay byte-gated.

Exit status: 0 — no regression, 1 — at least one regression,
2 — usage error (missing or unreadable artefact).  Identical artefacts
always pass with any threshold, so deterministic same-seed reruns gate
cleanly in CI.
"""

import json
import os

DEFAULT_THRESHOLD = 0.10

# substring markers, checked against the full dotted leaf path
LOWER_BETTER_MARKERS = (
    "latency",
    "p50",
    "p99",
    "p999",
    "mean_us",
    "max_us",
    "cpu_us_per_op",
    "error",
    "failed",
    "failure",
    "lost",
    "violation",
    "escalation",
    "postmortem",
)
HIGHER_BETTER_MARKERS = (
    "throughput",
    "goodput",
    "iops",
    "completed",
    "hit_ratio",
)


def flatten(payload, prefix=""):
    """Every numeric leaf of a nested dict/list as ``{path: value}``."""
    leaves = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            path = "%s.%s" % (prefix, key) if prefix else str(key)
            leaves.update(flatten(value, path))
    elif isinstance(payload, list):
        for index, value in enumerate(payload):
            path = "%s[%d]" % (prefix, index)
            leaves.update(flatten(value, path))
    elif isinstance(payload, bool):
        pass  # bools are not quantities
    elif isinstance(payload, (int, float)):
        leaves[prefix] = payload
    return leaves


def wall_clock_prefixes(payload, prefix=""):
    """Dotted prefixes of every wall-clock-variant subtree.

    A subtree is wall-clock-variant when its dict carries
    ``wall_clock_variant: true`` directly or via a nested ``backend``
    descriptor; every numeric leaf underneath is excluded from gating.
    """
    prefixes = set()
    if isinstance(payload, dict):
        backend = payload.get("backend")
        if payload.get("wall_clock_variant") is True or (
            isinstance(backend, dict)
            and backend.get("wall_clock_variant") is True
        ):
            prefixes.add(prefix)
        for key, value in payload.items():
            path = "%s.%s" % (prefix, key) if prefix else str(key)
            prefixes.update(wall_clock_prefixes(value, path))
    elif isinstance(payload, list):
        for index, value in enumerate(payload):
            prefixes.update(
                wall_clock_prefixes(value, "%s[%d]" % (prefix, index))
            )
    return prefixes


def _under(path, prefixes):
    return any(
        path == prefix or path.startswith(prefix + ".")
        or path.startswith(prefix + "[")
        for prefix in prefixes
    )


def classify(path):
    """``"lower"``, ``"higher"`` or None (not a gated quantity)."""
    lowered = path.lower()
    if any(marker in lowered for marker in LOWER_BETTER_MARKERS):
        return "lower"
    if any(marker in lowered for marker in HIGHER_BETTER_MARKERS):
        return "higher"
    return None


def _relative_change(old, new):
    if old == 0:
        return float("inf") if new != 0 else 0.0
    return (new - old) / abs(old)


def compare(old_payload, new_payload, threshold=DEFAULT_THRESHOLD):
    """Compare two artefact payloads; returns the finding dict.

    The result has ``regressions``, ``improvements``, ``drifts``
    (unclassified leaves that moved), ``added`` and ``removed`` path
    lists; only ``regressions`` gate.
    """
    old_leaves = flatten(old_payload)
    new_leaves = flatten(new_payload)
    variant = wall_clock_prefixes(old_payload) | wall_clock_prefixes(
        new_payload
    )
    shared = sorted(set(old_leaves) & set(new_leaves))
    findings = {
        "regressions": [],
        "improvements": [],
        "drifts": [],
        "wall_clock": [],
        "added": sorted(set(new_leaves) - set(old_leaves)),
        "removed": sorted(set(old_leaves) - set(new_leaves)),
    }
    for path in shared:
        old, new = old_leaves[path], new_leaves[path]
        if old == new:
            continue
        change = _relative_change(old, new)
        direction = classify(path)
        row = {"path": path, "old": old, "new": new, "change": change}
        if _under(path, variant):
            findings["wall_clock"].append(row)
        elif direction is None:
            findings["drifts"].append(row)
        elif direction == "lower":
            if change > threshold:
                findings["regressions"].append(row)
            elif change < 0:
                findings["improvements"].append(row)
        else:  # higher is better
            if change < -threshold:
                findings["regressions"].append(row)
            elif change > 0:
                findings["improvements"].append(row)
    return findings


def _format_change(change):
    if change == float("inf"):
        return "0 -> nonzero"
    return "%+.1f%%" % (change * 100.0,)


def report(findings, threshold, out=print):
    """Print the comparison; returns True when no regression."""
    for row in findings["regressions"]:
        out(
            "REGRESSION %-48s %s -> %s (%s)"
            % (row["path"], row["old"], row["new"],
               _format_change(row["change"]))
        )
    for row in findings["improvements"]:
        out(
            "improved   %-48s %s -> %s (%s)"
            % (row["path"], row["old"], row["new"],
               _format_change(row["change"]))
        )
    for row in findings["drifts"]:
        out(
            "drift      %-48s %s -> %s (not gated)"
            % (row["path"], row["old"], row["new"])
        )
    for row in findings.get("wall_clock", ()):
        out(
            "wallclock  %-48s %s -> %s (wall-clock variant, not gated)"
            % (row["path"], row["old"], row["new"])
        )
    for path in findings["removed"]:
        out("removed    %s" % path)
    for path in findings["added"]:
        out("added      %s" % path)
    ok = not findings["regressions"]
    out(
        "diff: %d regression(s), %d improvement(s), %d drift(s), "
        "%d wall-clock-variant change(s) at threshold %.0f%% -> %s"
        % (
            len(findings["regressions"]),
            len(findings["improvements"]),
            len(findings["drifts"]),
            len(findings.get("wall_clock", ())),
            threshold * 100.0,
            "PASS" if ok else "FAIL",
        )
    )
    return ok


def diff_files(old_path, new_path, threshold=DEFAULT_THRESHOLD, out=print):
    """Compare two artefact files; returns a process exit status."""
    for path in (old_path, new_path):
        if path is None:
            out("usage: python -m repro.bench diff <old.json> <new.json>")
            return 2
        if not os.path.exists(path):
            out("no such artefact: %s" % path)
            return 2
    with open(old_path) as handle:
        old_payload = json.load(handle)
    with open(new_path) as handle:
        new_payload = json.load(handle)
    out("diffing %s -> %s" % (old_path, new_path))
    ok = report(
        compare(old_payload, new_payload, threshold), threshold, out=out
    )
    return 0 if ok else 1


def main(args, out=print):
    threshold = getattr(args, "threshold", None)
    if threshold is None:
        threshold = DEFAULT_THRESHOLD
    return diff_files(args.target, args.target2, threshold, out=out)
