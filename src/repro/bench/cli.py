"""Command-line experiment runner.

``python -m repro.bench <exhibit> [...]`` regenerates any of the
paper's tables/figures without pytest, printing the text table.

Examples::

    python -m repro.bench list
    python -m repro.bench fig3
    python -m repro.bench fig7 --ops 2000
    python -m repro.bench all --out results/
    python -m repro.bench trace list
    python -m repro.bench trace fig7 --out traces/
    python -m repro.bench metrics faults --out metrics/
    python -m repro.bench diff old/BENCH_shards.json new/BENCH_shards.json
"""

import argparse
import os
import sys

from repro.bench.experiments import (
    batch_pipeline,
    faults_injection,
    fig3_device,
    fig7_fig8,
    fig10_probing,
    fig11_dedicated_polling,
    fig12_priority,
    fig13_yielding,
    fig14_buffering,
    fig15_end_to_end,
    fuzz_explore,
    shards_scaling,
    table1_table2_fig9,
)

_EXHIBITS = {
    "batch": (
        "Batch pipeline: vectored ops/sec vs batch size",
        lambda args, out: batch_pipeline.report(
            batch_pipeline.run_experiment(
                n_specs=args.ops or 2_048, seed=args.seed
            ),
            out=out,
            json_dir=args.out or "benchmarks/results",
        ),
    ),
    "fig3": ("Fig 3: NVMe device characterization", lambda args, out: fig3_device.report(out=out)),
    "fig7": (
        "Fig 7/8: throughput + latency vs threads",
        lambda args, out: fig7_fig8.report(
            fig7_fig8.run_grid(n_ops=args.ops or 2_500), out=out
        ),
    ),
    "table1": (
        "Table I: runtime statistics",
        lambda args, out: table1_table2_fig9.report_table1(out=out),
    ),
    "table2": (
        "Table II: CPU cycles per operation",
        lambda args, out: table1_table2_fig9.report_table2(out=out),
    ),
    "fig9": (
        "Fig 9: CPU breakdown",
        lambda args, out: table1_table2_fig9.report_fig9(out=out),
    ),
    "fig10": (
        "Fig 10: probing strategies",
        lambda args, out: fig10_probing.report(out=out),
    ),
    "fig11": (
        "Fig 11: dedicated polling variants",
        lambda args, out: fig11_dedicated_polling.report(out=out),
    ),
    "fig12": (
        "Fig 12: prioritized execution vs skew",
        lambda args, out: fig12_priority.report(out=out),
    ),
    "fig13": (
        "Fig 13: CPU yielding vs input rate",
        lambda args, out: fig13_yielding.report(out=out),
    ),
    "fig14": (
        "Fig 14: buffering",
        lambda args, out: fig14_buffering.report(out=out),
    ),
    "fig15": (
        "Fig 15: end-to-end comparison",
        lambda args, out: fig15_end_to_end.report(out=out),
    ),
    "faults": (
        "Faults: goodput and recovery under injected device errors",
        lambda args, out: faults_injection.report(
            faults_injection.run_experiment(
                n_ops=args.ops or 1_500, seed=args.seed
            ),
            out=out,
            json_dir=args.out or "benchmarks/results",
        ),
    ),
    "fuzz": (
        "Fuzz: schedule exploration with differential parity checks",
        lambda args, out: fuzz_explore.report(
            fuzz_explore.run_experiment(n_ops=args.ops or 150),
            out=out,
            json_dir=args.out or "benchmarks/results",
        ),
    ),
    "shards": (
        "Scale-out: sharded multi-device PA-Tree",
        lambda args, out: shards_scaling.report(
            shards_scaling.run_experiment(
                base_ops=args.ops or 1_500, seed=args.seed
            ),
            out=out,
            json_dir=args.out or "benchmarks/results",
        ),
    ),
}


def _make_writer(path):
    if path is None:
        return print, lambda: None
    handle = open(path, "w")

    def out(line=""):
        print(line)  # patlint: ignore[PA404] -- CLI tees to stdout
        handle.write(str(line) + "\n")

    return out, handle.close


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the PA-Tree paper's tables and figures.",
    )
    parser.add_argument(
        "exhibit",
        help="one of: %s, 'all', 'list', 'trace', 'metrics', or 'diff'"
        % ", ".join(sorted(_EXHIBITS)),
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help="with 'trace'/'metrics': the run to record (or 'list'); "
        "with 'diff': the old BENCH_*.json artefact",
    )
    parser.add_argument(
        "target2",
        nargs="?",
        default=None,
        help="with 'diff': the new BENCH_*.json artefact",
    )
    parser.add_argument(
        "--ops", type=int, default=None, help="operations per measurement point"
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="root simulation seed"
    )
    parser.add_argument(
        "--out", default=None, help="directory to also write text tables into"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="with 'diff': relative regression threshold (default 0.10)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        help="I/O backend spec every exhibit runs on: 'sim' (default), "
        "'file', 'file:<path>', or 'replay:<trace.jsonl>'",
    )
    args = parser.parse_args(argv)

    if args.backend is not None:
        from repro.backend import normalize_backend_spec, set_default_backend

        # fail fast on typos, then retarget every machine the
        # exhibits build (configs that leave backend unset consult
        # the process default)
        normalize_backend_spec(args.backend)
        set_default_backend(args.backend)

    if args.exhibit == "list":
        for name, (title, _fn) in sorted(_EXHIBITS.items()):
            print("%-8s %s" % (name, title))  # patlint: ignore[PA404]
        return 0

    if args.exhibit == "trace":
        from repro.bench import trace

        return trace.main(args)

    if args.exhibit == "metrics":
        from repro.bench import health

        return health.main(args)

    if args.exhibit == "diff":
        from repro.bench import diff

        return diff.main(args)

    names = sorted(_EXHIBITS) if args.exhibit == "all" else [args.exhibit]
    unknown = [name for name in names if name not in _EXHIBITS]
    if unknown:
        parser.error("unknown exhibit(s): %s" % ", ".join(unknown))

    if args.out:
        os.makedirs(args.out, exist_ok=True)
    for name in names:
        title, fn = _EXHIBITS[name]
        print("=== %s ===" % title)  # patlint: ignore[PA404]
        path = os.path.join(args.out, name + ".txt") if args.out else None
        out, close = _make_writer(path)
        try:
            rows = fn(args, out)
        finally:
            close()
        if args.out and isinstance(rows, list):
            from repro.bench.report import write_bench_json

            write_bench_json(name, rows, args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
