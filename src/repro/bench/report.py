"""Tabular reporting for experiment results.

Prints the same row/series shapes the paper's tables and figures use,
as plain text so benchmark logs are diffable and greppable.
"""


def format_value(value):
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return "%.0f" % value
        if abs(value) >= 10:
            return "%.1f" % value
        return "%.3f" % value
    return str(value)


def print_table(title, columns, rows, out=print):
    """Render rows (dicts) as an aligned text table."""
    headers = [name for name, _key in columns]
    cells = [
        [format_value(row.get(key, "")) for _name, key in columns] for row in rows
    ]
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in cells), default=0))
        for i in range(len(columns))
    ]
    out("")
    out("== %s ==" % title)
    out("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out("  ".join("-" * w for w in widths))
    for row_cells in cells:
        out("  ".join(c.ljust(w) for c, w in zip(row_cells, widths)))
    out("")


def print_series(title, x_name, x_values, series, out=print):
    """Render one figure: named series over shared x values."""
    columns = [(x_name, "x")] + [(name, name) for name in series]
    rows = []
    for index, x in enumerate(x_values):
        row = {"x": x}
        for name, values in series.items():
            row[name] = values[index]
        rows.append(row)
    print_table(title, columns, rows, out=out)


def shape_ratio(a, b):
    """Safe ratio used by shape assertions in the benches."""
    if b == 0:
        return float("inf") if a > 0 else 1.0
    return a / b


def write_bench_json(name, payload, out_dir):
    """Write ``BENCH_<name>.json`` for machine consumption.

    ``payload`` is either a dict (a traced-run summary with histogram /
    time-series sections) or a list of experiment row dicts; non-JSON
    values (e.g. attached trace sessions) are dropped.  Output is
    sorted-key, indented JSON so diffs across PRs track the perf
    trajectory.
    """
    import json
    import os

    def scrub(value):
        if isinstance(value, dict):
            return {
                str(key): scrub(item)
                for key, item in value.items()
                if _jsonable(item)
            }
        if isinstance(value, (list, tuple)):
            return [scrub(item) for item in value if _jsonable(item)]
        return value

    def _jsonable(value):
        return isinstance(
            value, (dict, list, tuple, int, float, str, bool, type(None))
        )

    path = os.path.join(out_dir, "BENCH_%s.json" % name)
    with open(path, "w") as handle:
        json.dump(scrub(payload), handle, sort_keys=True, indent=2)
        handle.write("\n")
    return path


def write_csv(rows, path, columns=None):
    """Write experiment rows to a CSV file for downstream plotting.

    ``columns`` is a list of (header, key) pairs; by default every
    scalar key present in the first row is exported, in sorted order
    (nested dicts like ``cpu_breakdown`` are flattened one level).
    """
    import csv

    flat_rows = []
    for row in rows:
        flat = {}
        for key, value in row.items():
            if isinstance(value, dict):
                for sub_key, sub_value in value.items():
                    flat["%s.%s" % (key, sub_key)] = sub_value
            elif isinstance(value, (int, float, str)):
                flat[key] = value
        flat_rows.append(flat)
    if columns is None:
        keys = sorted({key for flat in flat_rows for key in flat})
        columns = [(key, key) for key in keys]
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([header for header, _key in columns])
        for flat in flat_rows:
            writer.writerow([flat.get(key, "") for _header, key in columns])
    return path
