"""``python -m repro.bench metrics <target>`` — health-check a run.

Runs a representative workload with the :mod:`repro.obs` metrics stack
attached (labeled registry + SLO tracker + flight recorder + periodic
scraper) and writes the health artefacts into the output directory
(default ``metrics/``):

* ``<target>.metrics.jsonl``    — virtual-time metric scrapes, one JSON
  object per line,
* ``<target>.prom``             — Prometheus text-exposition snapshot,
* ``<target>.postmortem.json``  — flight-recorder postmortems (only
  when a typed I/O error escalated),
* ``BENCH_metrics_<target>.json`` — machine-readable summary suitable
  for ``python -m repro.bench diff``.

It also prints the health report: top metrics by magnitude, the SLO
table (p99/p999 vs per-op-class targets), and the flight-recorder
summary.  Everything runs in virtual time on the deterministic engine,
so the same target and seed always produce byte-identical artefacts.
"""

import os

from repro.bench.report import write_bench_json
from repro.bench.runner import WorkloadSpec
from repro.sim.rng import RngRegistry

# fault arm: enough transient read errors to exhaust a 2-retry budget
# occasionally, plus a small poisoned LBA range whose reads fail with
# the non-retriable UNRECOVERED_READ — both escalate typed IoErrors,
# which is exactly what the flight recorder's postmortems are for
_FAULT_CONFIG = {"read_error_rate": 0.3, "poison_ranges": ((40, 60),)}
_FAULT_RETRY = {"max_retries": 2}

_RESULT_KEYS = (
    "completed",
    "failed_ops",
    "io_errors",
    "virtual_time_us",
)


def _run_result(session, metrics):
    """Flat numeric summary of a finished session run."""
    stats = session.stats()
    result = {
        key: stats[key] for key in _RESULT_KEYS if key in stats
    }
    result["slo_violations"] = metrics.slo.total_violations()
    result["postmortems"] = len(metrics.postmortems)
    return result


def _session_target(description, make_session, mix="default",
                    default_ops=2_000):
    """A target that drives an API session with metrics attached."""

    def run(ops, seed):
        spec = WorkloadSpec(
            kind="ycsb", n_keys=20_000, n_ops=ops or default_ops, mix=mix
        )
        workload = spec.build(RngRegistry(seed).stream("workload"))
        with make_session(seed) as session:
            metrics = session.attach_metrics()
            session.bulk_load(workload.preload_items())
            metrics.start()
            session.execute(workload.operations())
            metrics.finish()
            result = _run_result(session, metrics)
        result["metrics_session"] = metrics
        return result

    return description, run


def _make_fig7(seed):
    from repro.api import PATreeSession

    return PATreeSession(seed=seed)


def _make_faults(seed):
    from repro.api import PATreeSession

    return PATreeSession(seed=seed, faults=_FAULT_CONFIG, retry=_FAULT_RETRY)


def _make_shards(seed):
    from repro.api import ShardedSession

    return ShardedSession(seed=seed, shards=4)


TARGETS = {
    "fig7": _session_target(
        "PA-Tree on the default YCSB mix, full metrics stack attached",
        _make_fig7,
    ),
    "faults": _session_target(
        "PA-Tree under heavy injected faults (retry exhaustion, poison)",
        _make_faults,
    ),
    "shards": _session_target(
        "4-shard PA-Tree fleet with per-shard metric labels",
        _make_shards,
    ),
}


def list_targets(out=print):
    for name, (description, _run) in sorted(TARGETS.items()):
        out("%-8s %s" % (name, description))


def run_metrics(target, ops=None, seed=1, out_dir="metrics", out=print):
    """Run one metrics target and write its artefacts; returns paths."""
    description, run = TARGETS[target]
    out("metrics: %s" % description)
    result = run(ops, seed)
    session = result.pop("metrics_session")

    os.makedirs(out_dir, exist_ok=True)
    prefix = os.path.join(out_dir, target)
    artifact_paths = session.write_artifacts(prefix)

    payload = {
        "target": target,
        "seed": seed,
        "result": dict(sorted(result.items())),
        "health": session.bench_summary(),
    }
    bench_path = write_bench_json("metrics_" + target, payload, out_dir)

    session.health_report(out=out)
    for path in artifact_paths:
        out("wrote %s" % path)
    out("wrote %s" % bench_path)
    return artifact_paths + (bench_path,)


def main(args, out=print):
    target = args.target
    if target in (None, "list"):
        list_targets(out=out)
        return 0
    if target not in TARGETS:
        out("unknown metrics target %r; available:" % target)
        list_targets(out=out)
        return 2
    run_metrics(
        target,
        ops=args.ops,
        seed=args.seed,
        out_dir=args.out or "metrics",
        out=out,
    )
    return 0
