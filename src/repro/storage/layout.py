"""Binary layout helpers.

Little-endian cursor-style writer/reader over page-sized byte buffers.
All on-media structures (tree nodes, meta page, WAL records, SSTable
blocks) are packed through these helpers so the byte format is defined
in exactly one idiom.
"""

import struct

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")


class PageWriter:
    """Sequential writer into a fixed-size page buffer."""

    __slots__ = ("buf", "pos")

    def __init__(self, page_size):
        self.buf = bytearray(page_size)
        self.pos = 0

    def _put(self, packer, value):
        packer.pack_into(self.buf, self.pos, value)
        self.pos += packer.size

    def u8(self, value):
        self._put(_U8, value)

    def u16(self, value):
        self._put(_U16, value)

    def u32(self, value):
        self._put(_U32, value)

    def u64(self, value):
        self._put(_U64, value)

    def i64(self, value):
        self._put(_I64, value)

    def raw(self, data):
        end = self.pos + len(data)
        if end > len(self.buf):
            raise ValueError("page overflow: %d > %d" % (end, len(self.buf)))
        self.buf[self.pos:end] = data
        self.pos = end

    def seek(self, pos):
        self.pos = pos

    def finish(self):
        """Return the immutable page image."""
        return bytes(self.buf)


class PageReader:
    """Sequential reader over a page image."""

    __slots__ = ("buf", "pos")

    def __init__(self, buf):
        self.buf = buf
        self.pos = 0

    def _get(self, packer):
        value = packer.unpack_from(self.buf, self.pos)[0]
        self.pos += packer.size
        return value

    def u8(self):
        return self._get(_U8)

    def u16(self):
        return self._get(_U16)

    def u32(self):
        return self._get(_U32)

    def u64(self):
        return self._get(_U64)

    def i64(self):
        return self._get(_I64)

    def raw(self, length):
        data = bytes(self.buf[self.pos:self.pos + length])
        if len(data) != length:
            raise ValueError("short read: wanted %d bytes" % length)
        self.pos += length
        return data

    def seek(self, pos):
        self.pos = pos
