"""Write-ahead log.

A circular region of the device dedicated to sequential log pages.
Used by the LCB-tree baseline (log-based consistency) and the
LevelDB-like LSM store (per-write durability).  The WAL buffers
records into page images; the owner decides when to flush which pages
(per-record for strong persistence, group commit for weak) and submits
the returned (lba, bytes) writes itself, so the WAL stays independent
of any particular execution paradigm.

Record wire format within a page::

    page:   magic u32 | first_lsn u64 | count u16 | used u16 | records...
    record: length u16 | payload bytes

"""

from repro.errors import StorageError
from repro.storage.layout import PageReader, PageWriter

WAL_MAGIC = 0x57414C31  # "WAL1"
_PAGE_HEADER = 4 + 8 + 2 + 2
_RECORD_HEADER = 2


class WalPage:
    """An in-memory log page being filled."""

    __slots__ = ("seq", "first_lsn", "records", "used")

    def __init__(self, seq, first_lsn, header_size):
        self.seq = seq
        self.first_lsn = first_lsn
        self.records = []
        self.used = header_size

    def encode(self, page_size):
        writer = PageWriter(page_size)
        writer.u32(WAL_MAGIC)
        writer.u64(self.first_lsn)
        writer.u16(len(self.records))
        writer.u16(self.used)
        for record in self.records:
            writer.u16(len(record))
            writer.raw(record)
        return writer.finish()


def decode_wal_page(image):
    """Return (first_lsn, [record bytes]) for a WAL page image."""
    reader = PageReader(image)
    magic = reader.u32()
    if magic != WAL_MAGIC:
        raise StorageError("bad WAL page magic 0x%x" % magic)
    first_lsn = reader.u64()
    count = reader.u16()
    reader.u16()  # used
    records = []
    for _ in range(count):
        length = reader.u16()
        records.append(reader.raw(length))
    return first_lsn, records


class WriteAheadLog:
    """Buffered circular log over a fixed LBA range."""

    def __init__(self, page_size, base_lba, num_pages):
        if num_pages < 2:
            raise ValueError("WAL needs at least two pages")
        self.page_size = page_size
        self.base_lba = base_lba
        self.num_pages = num_pages
        self.next_lsn = 0
        self.durable_lsn = -1
        self._page_seq = 0
        self._open_page = WalPage(0, 0, _PAGE_HEADER)
        self._sealed = []

    @property
    def appended_lsn(self):
        """LSN of the most recently appended record, or -1."""
        return self.next_lsn - 1

    def lba_for_seq(self, seq):
        return self.base_lba + (seq % self.num_pages)

    def append(self, record):
        """Buffer a record; returns its LSN.  Records never span pages."""
        needed = _RECORD_HEADER + len(record)
        if needed > self.page_size - _PAGE_HEADER:
            raise StorageError(
                "WAL record of %d bytes exceeds page capacity" % len(record)
            )
        if self._open_page.used + needed > self.page_size:
            self._seal_open_page()
        lsn = self.next_lsn
        self.next_lsn += 1
        page = self._open_page
        if not page.records:
            page.first_lsn = lsn
        page.records.append(bytes(record))
        page.used += needed
        return lsn

    def _seal_open_page(self):
        if self._open_page.records:
            self._sealed.append(self._open_page)
            self._page_seq += 1
        self._open_page = WalPage(self._page_seq, self.next_lsn, _PAGE_HEADER)

    def take_flushable(self, include_partial=True):
        """Pages that must be written to make appended records durable.

        Returns ``(writes, flush_lsn)``: a list of ``(lba, image)``
        pairs and the highest LSN those writes cover.  The caller
        submits the writes and calls :meth:`mark_durable` when they all
        complete.  ``include_partial`` also flushes the open page (the
        per-record / sync path); group commit passes ``False`` until a
        page fills.
        """
        if include_partial and self._open_page.records:
            self._seal_open_page()
        writes = []
        flush_lsn = self.durable_lsn
        for page in self._sealed:
            writes.append((self.lba_for_seq(page.seq), page.encode(self.page_size)))
            flush_lsn = page.first_lsn + len(page.records) - 1
        self._sealed = []
        return writes, flush_lsn

    def mark_durable(self, lsn):
        """Caller confirms every record up to ``lsn`` is on media."""
        if lsn > self.durable_lsn:
            self.durable_lsn = lsn

    def pending_records(self):
        """Number of appended-but-not-yet-durable records."""
        return self.appended_lsn - self.durable_lsn
