"""Block storage substrate: binary page layout helpers, a page
allocator and a write-ahead log."""

from repro.storage.allocator import PageAllocator
from repro.storage.layout import PageReader, PageWriter
from repro.storage.wal import WriteAheadLog, decode_wal_page

__all__ = [
    "PageAllocator",
    "PageReader",
    "PageWriter",
    "WriteAheadLog",
    "decode_wal_page",
]
