"""Page allocator.

Watermark-plus-free-list allocation over a contiguous LBA range.  The
watermark is persisted in the tree meta page so a reopened tree never
hands out a live page; the free list itself is volatile, which only
leaks pages across a crash (the standard trade-off for structures that
do not log allocator state).
"""

from repro.errors import AllocationError


class PageAllocator:
    """Allocates page ids within ``[base, base + capacity)``."""

    __slots__ = ("base", "capacity", "next_page", "_free")

    def __init__(self, base, capacity, next_page=None):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.base = base
        self.capacity = capacity
        self.next_page = base if next_page is None else next_page
        if not base <= self.next_page <= base + capacity:
            raise ValueError("watermark outside managed range")
        self._free = []

    @property
    def allocated_count(self):
        return (self.next_page - self.base) - len(self._free)

    @property
    def free_count(self):
        return (self.base + self.capacity - self.next_page) + len(self._free)

    def allocate(self):
        """Return a fresh page id."""
        if self._free:
            return self._free.pop()
        if self.next_page >= self.base + self.capacity:
            raise AllocationError(
                "no pages left in range [%d, %d)"
                % (self.base, self.base + self.capacity)
            )
        page_id = self.next_page
        self.next_page += 1
        return page_id

    def free(self, page_id):
        """Return a page to the free list."""
        if not self.base <= page_id < self.next_page:
            raise AllocationError("freeing unallocated page %d" % page_id)
        self._free.append(page_id)
