"""Simulated threads.

A simulated thread is a Python generator that yields *instructions* to
the OS scheduler.  Instructions consume virtual CPU time, block on
semaphores, sleep, or yield the core.  Plain Python work inside the
generator costs zero virtual time — the thread body must charge the
time it models via :class:`Cpu` instructions, which is what lets us
account CPU by category for the paper's Fig 9 breakdown.

Example
-------
::

    def body(os):
        yield Cpu(usec(1.2), CPU_REAL_WORK)   # 1.2 us of index work
        yield SemWait(latch_sem)               # block until granted
        yield Cpu(usec(0.5), CPU_REAL_WORK)

    os.spawn(body(os), name="worker-0")
"""

from repro.sim.metrics import CPU_OTHER, CpuAccount


class Instruction:
    """Base class for everything a thread generator may yield."""

    __slots__ = ()


class Cpu(Instruction):
    """Consume ``ns`` of CPU time, accounted to ``category``."""

    __slots__ = ("ns", "category")

    def __init__(self, ns, category=CPU_OTHER):
        if ns < 0:
            raise ValueError("negative CPU burst: %r" % ns)
        self.ns = int(ns)
        self.category = category


class Sleep(Instruction):
    """Leave the core and become runnable again after ``ns``."""

    __slots__ = ("ns",)

    def __init__(self, ns):
        if ns < 0:
            raise ValueError("negative sleep: %r" % ns)
        self.ns = int(ns)


class YieldCpu(Instruction):
    """Voluntarily go to the back of the run queue (sched_yield)."""

    __slots__ = ()


class SemWait(Instruction):
    """P / wait on a semaphore; blocks if the count is zero."""

    __slots__ = ("sem",)

    def __init__(self, sem):
        self.sem = sem


class SemPost(Instruction):
    """V / post on a semaphore; wakes one waiter if any."""

    __slots__ = ("sem",)

    def __init__(self, sem):
        self.sem = sem


# Thread lifecycle states.
T_RUNNABLE = "runnable"
T_RUNNING = "running"
T_BLOCKED = "blocked"
T_SLEEPING = "sleeping"
T_DONE = "done"


class SimThread:
    """Bookkeeping for one simulated thread.

    Created via :meth:`repro.simos.scheduler.SimOS.spawn`; user code
    only supplies the generator.
    """

    __slots__ = (
        "tid",
        "name",
        "group",
        "gen",
        "state",
        "core",
        "account",
        "send_value",
        "quantum_start_ns",
        "on_exit",
        "exc",
    )

    def __init__(self, tid, name, group, gen):
        self.tid = tid
        self.name = name
        self.group = group
        self.gen = gen
        self.state = T_RUNNABLE
        self.core = None
        self.account = CpuAccount()
        self.send_value = None
        self.quantum_start_ns = 0
        self.on_exit = []
        self.exc = None

    @property
    def done(self):
        return self.state == T_DONE

    def __repr__(self):
        return "SimThread(%d, %r, %s)" % (self.tid, self.name, self.state)
