"""Multicore OS scheduler for simulated threads.

Models the costs the paper attributes to the traditional synchronous
execution paradigm: context switches when a core changes thread,
time-slice preemption under oversubscription, semaphore syscall cost
and wakeup latency.  The PA-Tree working thread runs on the same
scheduler but, because it never blocks, it incurs essentially none of
these costs — which is the paper's central claim, here made an exact
accounted quantity (Table I / Table II / Fig 9).
"""

from collections import deque
from functools import partial

from repro.errors import SchedulerError, SimulationError
from repro.sim.clock import msec, usec
from repro.sim.metrics import CPU_OTHER, CPU_SYNC, Counter, CpuAccount
from repro.simos.thread import (
    Cpu,
    SemPost,
    SemWait,
    SimThread,
    Sleep,
    T_BLOCKED,
    T_DONE,
    T_RUNNABLE,
    T_RUNNING,
    T_SLEEPING,
    YieldCpu,
)


class OsProfile:
    """Cost parameters of the simulated OS.

    Defaults model the paper's testbed: 8 physical cores, a few-us
    context switch, sub-us futex-style semaphore syscalls and a small
    wakeup latency; the time slice reflects scheduling granularity
    under heavy oversubscription.
    """

    __slots__ = (
        "cores",
        "context_switch_ns",
        "quantum_ns",
        "sem_syscall_ns",
        "wakeup_ns",
    )

    def __init__(
        self,
        cores=8,
        context_switch_ns=usec(3),
        quantum_ns=usec(200),
        sem_syscall_ns=usec(0.8),
        wakeup_ns=usec(2),
    ):
        if cores < 1:
            raise ValueError("need at least one core")
        self.cores = cores
        self.context_switch_ns = context_switch_ns
        self.quantum_ns = quantum_ns
        self.sem_syscall_ns = sem_syscall_ns
        self.wakeup_ns = wakeup_ns


class Core:
    """One simulated CPU core."""

    __slots__ = ("index", "current", "last_tid", "busy_ns")

    def __init__(self, index):
        self.index = index
        self.current = None
        self.last_tid = None
        self.busy_ns = 0


class SimOS:
    """The simulated operating system: cores, run queue, semaphores."""

    def __init__(self, engine, profile=None):
        self.engine = engine
        self.profile = profile or OsProfile()
        self.cores = [Core(i) for i in range(self.profile.cores)]
        self._idle = list(reversed(self.cores))
        self.run_queue = deque()
        self.threads = []
        self.context_switches = Counter()
        self.preemptions = Counter()
        self.sem_blocks = Counter()
        self._next_tid = 0
        # Observability hook: called with (thread, new_state) on every
        # scheduling transition.  Must not touch run queues or cores.
        self.on_thread_state = None
        # Schedule-exploration hooks (repro.fuzz).  All three must stay
        # None outside fuzz runs so ordinary runs are bit-identical:
        # * pick_runnable(run_queue) -> index: which queued thread the
        #   next free core dispatches (default: FIFO head).  Only
        #   consulted when the queue holds a real choice (>= 2).
        # * preempt_policy(thread, quantum_used_ns, quantum_ns) -> bool:
        #   whether a thread is preempted after a CPU burst while others
        #   wait (default: quantum_used_ns >= quantum_ns).
        # * wakeup_pick(waiters) -> index: which blocked thread a
        #   sem_post wakes (default: FIFO head).  Only consulted when
        #   more than one thread waits.
        self.pick_runnable = None
        self.preempt_policy = None
        self.wakeup_pick = None
        # Stall guard: if the event queue drains while threads are
        # still blocked on semaphores, the run is deadlocked — raise a
        # typed error naming them instead of silently ending the run.
        engine.on_idle = self._check_stalled

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def spawn(self, gen, name="thread", group="default"):
        """Register a generator as a runnable simulated thread."""
        thread = SimThread(self._next_tid, name, group, gen)
        self._next_tid += 1
        self.threads.append(thread)
        self._make_runnable(thread)
        return thread

    def live_threads(self):
        return [t for t in self.threads if not t.done]

    def blocked_threads(self):
        return [t for t in self.threads if t.state in (T_BLOCKED, T_SLEEPING)]

    def total_busy_ns(self):
        """Total core-busy time (includes context-switch overhead)."""
        return sum(core.busy_ns for core in self.cores)

    def cores_used(self, since_busy_ns, since_time_ns):
        """Average number of cores busy since a snapshot.

        Callers snapshot ``total_busy_ns()`` and the clock at the start
        of a measurement window and pass both here at the end.
        """
        elapsed = self.engine.now - since_time_ns
        if elapsed <= 0:
            return 0.0
        return (self.total_busy_ns() - since_busy_ns) / elapsed

    def cpu_account(self, group=None):
        """Merged CPU ledger across threads, optionally one group."""
        merged = CpuAccount()
        for thread in self.threads:
            if group is None or thread.group == group:
                merged = merged.merged(thread.account)
        return merged

    # ------------------------------------------------------------------
    # scheduling internals
    # ------------------------------------------------------------------

    def _check_stalled(self):
        """Engine idle hook: a drained queue with blocked threads is a
        deadlock, not a finished run."""
        live = self.live_threads()
        if not live:
            return
        blocked = [t for t in live if t.state == T_BLOCKED]
        if blocked and len(blocked) == len(live):
            raise SchedulerError(
                "scheduler stalled: event queue drained with %d live "
                "thread(s) all blocked on semaphores: %s"
                % (
                    len(blocked),
                    ", ".join(
                        "%s (tid %d)" % (t.name, t.tid) for t in blocked
                    ),
                )
            )

    def _pop_runnable(self):
        """Dequeue the next thread to dispatch (FIFO unless fuzzing)."""
        queue = self.run_queue
        if self.pick_runnable is None or len(queue) == 1:
            return queue.popleft()
        index = self.pick_runnable(queue)
        if not 0 <= index < len(queue):
            raise SchedulerError(
                "pick_runnable index %d out of range for %d runnable(s)"
                % (index, len(queue))
            )
        if index == 0:
            return queue.popleft()
        thread = queue[index]
        del queue[index]
        return thread

    def _make_runnable(self, thread):
        thread.state = T_RUNNABLE
        if self.on_thread_state is not None:
            self.on_thread_state(thread, T_RUNNABLE)
        if self._idle:
            self._dispatch_to(self._idle.pop(), thread)
        else:
            self.run_queue.append(thread)

    def _release_core(self, thread):
        core = thread.core
        if core is None:
            raise SimulationError("%r not on a core" % thread)
        thread.core = None
        core.last_tid = thread.tid
        core.current = None
        if self.run_queue:
            self._dispatch_to(core, self._pop_runnable())
        else:
            self._idle.append(core)

    def _dispatch_to(self, core, thread):
        switching = core.last_tid is not None and core.last_tid != thread.tid
        core.current = thread
        thread.core = core
        thread.state = T_RUNNING
        if self.on_thread_state is not None:
            self.on_thread_state(thread, T_RUNNING)
        if switching:
            cs = self.profile.context_switch_ns
            self.context_switches.add()
            thread.account.charge(cs, CPU_OTHER)
            core.busy_ns += cs
            thread.quantum_start_ns = self.engine.now + cs
            self.engine.schedule(cs, partial(self._step, thread))
        else:
            thread.quantum_start_ns = self.engine.now
            self._step(thread)

    def _finish(self, thread):
        thread.state = T_DONE
        if self.on_thread_state is not None:
            self.on_thread_state(thread, T_DONE)
        self._release_core(thread)
        callbacks = thread.on_exit
        thread.on_exit = []
        for callback in callbacks:
            callback(thread)

    def _step(self, thread):
        """Advance the generator, handling zero-cost instructions inline."""
        profile = self.profile
        while True:
            try:
                instr = thread.gen.send(thread.send_value)
            except StopIteration:
                self._finish(thread)
                return
            thread.send_value = None

            if type(instr) is Cpu:
                if instr.ns == 0:
                    continue
                thread.account.charge(instr.ns, instr.category)
                thread.core.busy_ns += instr.ns
                self.engine.schedule(instr.ns, partial(self._after_cpu, thread))
                return

            if type(instr) is SemWait:
                cost = profile.sem_syscall_ns
                thread.account.charge(cost, CPU_SYNC)
                thread.core.busy_ns += cost
                instr.sem.wait_count += 1
                self.engine.schedule(
                    cost, partial(self._sem_wait_cont, thread, instr.sem)
                )
                return

            if type(instr) is SemPost:
                cost = profile.sem_syscall_ns
                thread.account.charge(cost, CPU_SYNC)
                thread.core.busy_ns += cost
                self.engine.schedule(
                    cost, partial(self._sem_post_cont, thread, instr.sem)
                )
                return

            if type(instr) is Sleep:
                thread.state = T_SLEEPING
                if self.on_thread_state is not None:
                    self.on_thread_state(thread, T_SLEEPING)
                self._release_core(thread)
                self.engine.schedule(
                    instr.ns, partial(self._make_runnable, thread)
                )
                return

            if type(instr) is YieldCpu:
                if self.run_queue:
                    thread.state = T_RUNNABLE
                    if self.on_thread_state is not None:
                        self.on_thread_state(thread, T_RUNNABLE)
                    self.run_queue.append(thread)
                    self._release_core(thread)
                    return
                # with an empty run queue sched_yield keeps running
                continue

            raise SimulationError(
                "thread %r yielded unknown instruction %r" % (thread, instr)
            )

    def _after_cpu(self, thread):
        quantum_used = self.engine.now - thread.quantum_start_ns
        if self.run_queue:
            # preemption only matters when someone is waiting; the hook
            # is consulted (and a fuzz decision recorded) only then
            if self.preempt_policy is None:
                preempt = quantum_used >= self.profile.quantum_ns
            else:
                preempt = bool(
                    self.preempt_policy(
                        thread, quantum_used, self.profile.quantum_ns
                    )
                )
        else:
            preempt = False
        if preempt:
            self.preemptions.add()
            self.run_queue.append(thread)
            thread.state = T_RUNNABLE
            if self.on_thread_state is not None:
                self.on_thread_state(thread, T_RUNNABLE)
            self._release_core(thread)
            return
        self._step(thread)

    def _sem_wait_cont(self, thread, sem):
        if sem.try_acquire():
            self._step(thread)
            return
        sem.block_count += 1
        self.sem_blocks.add()
        sem.waiters.append(thread)
        thread.state = T_BLOCKED
        if self.on_thread_state is not None:
            self.on_thread_state(thread, T_BLOCKED)
        self._release_core(thread)

    def _sem_post_cont(self, thread, sem):
        if sem.waiters:
            if self.wakeup_pick is None or len(sem.waiters) == 1:
                waiter = sem.pop_waiter(0)
            else:
                waiter = sem.pop_waiter(self.wakeup_pick(sem.waiters))
            self.engine.schedule(
                self.profile.wakeup_ns, partial(self._make_runnable, waiter)
            )
        else:
            sem.count += 1
        self._step(thread)


DEFAULT_OS_PROFILE = OsProfile()


def paper_testbed_profile():
    """The 8-core EC2 i3.2xlarge-like profile used throughout."""
    return OsProfile(
        cores=8,
        context_switch_ns=usec(3),
        quantum_ns=usec(200),
        sem_syscall_ns=usec(0.8),
        wakeup_ns=usec(2),
    )


def single_core_profile():
    """Convenience profile for unit tests."""
    return OsProfile(cores=1, quantum_ns=msec(1))
