"""Simulated operating system: generator-based threads, a multicore
scheduler with context-switch and preemption accounting, and semaphore
primitives with syscall/wakeup costs."""

from repro.simos.scheduler import (
    Core,
    DEFAULT_OS_PROFILE,
    OsProfile,
    SimOS,
    paper_testbed_profile,
    single_core_profile,
)
from repro.simos.sync import Mutex, Semaphore
from repro.simos.thread import (
    Cpu,
    SemPost,
    SemWait,
    SimThread,
    Sleep,
    YieldCpu,
)

__all__ = [
    "SimOS",
    "OsProfile",
    "Core",
    "SimThread",
    "Cpu",
    "Sleep",
    "YieldCpu",
    "SemWait",
    "SemPost",
    "Semaphore",
    "Mutex",
    "DEFAULT_OS_PROFILE",
    "paper_testbed_profile",
    "single_core_profile",
]
