"""Synchronization primitives for simulated threads.

Counting semaphores with the cost structure the paper attributes to
``sem_wait`` / ``sem_post``: each call pays a syscall-sized CPU burst,
and waking a blocked thread pays a wakeup latency before the thread
re-enters the run queue.  A mutex is a semaphore initialised to one.
"""

from collections import deque

from repro.errors import SchedulerError


class Semaphore:
    """Counting semaphore.

    The scheduler drives all state changes; thread code only yields
    :class:`~repro.simos.thread.SemWait` / ``SemPost`` instructions that
    reference the semaphore.

    ``waiters`` is an explicit FIFO: blocked threads are appended at the
    tail and, by default, woken from the head in arrival order.  That
    order is a documented contract (asserted by
    :meth:`pop_waiter` and regression-tested), not an accident of the
    underlying deque — schedule-exploration runs reorder wakeups only
    through the scheduler's explicit ``wakeup_pick`` hook.
    """

    __slots__ = ("count", "waiters", "name", "wait_count", "block_count")

    def __init__(self, initial=0, name="sem"):
        if initial < 0:
            raise ValueError("negative initial semaphore count")
        self.count = initial
        self.waiters = deque()
        self.name = name
        self.wait_count = 0
        self.block_count = 0

    def try_acquire(self):
        """Non-blocking P; returns True on success (scheduler use)."""
        if self.count > 0:
            self.count -= 1
            return True
        return False

    def pop_waiter(self, index=0):
        """Remove and return the waiter at ``index`` (default: FIFO head).

        The scheduler's only way to dequeue a blocked thread.  Index 0
        is the arrival-order (FIFO) wakeup every normal run uses; a
        nonzero index is only ever chosen by the schedule-exploration
        ``wakeup_pick`` hook.  An out-of-range index is a scheduler bug
        and raises :class:`~repro.errors.SchedulerError`.
        """
        if not 0 <= index < len(self.waiters):
            raise SchedulerError(
                "wakeup index %d out of range for %d waiter(s) on %r"
                % (index, len(self.waiters), self.name)
            )
        if index == 0:
            return self.waiters.popleft()
        waiter = self.waiters[index]
        del self.waiters[index]
        return waiter

    def __repr__(self):
        return "Semaphore(%r, count=%d, waiters=%d)" % (
            self.name,
            self.count,
            len(self.waiters),
        )


class Mutex(Semaphore):
    """Binary semaphore used for critical sections in the baselines."""

    def __init__(self, name="mutex"):
        super().__init__(initial=1, name=name)
