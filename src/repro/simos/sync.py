"""Synchronization primitives for simulated threads.

Counting semaphores with the cost structure the paper attributes to
``sem_wait`` / ``sem_post``: each call pays a syscall-sized CPU burst,
and waking a blocked thread pays a wakeup latency before the thread
re-enters the run queue.  A mutex is a semaphore initialised to one.
"""

from collections import deque


class Semaphore:
    """Counting semaphore.

    The scheduler drives all state changes; thread code only yields
    :class:`~repro.simos.thread.SemWait` / ``SemPost`` instructions that
    reference the semaphore.
    """

    __slots__ = ("count", "waiters", "name", "wait_count", "block_count")

    def __init__(self, initial=0, name="sem"):
        if initial < 0:
            raise ValueError("negative initial semaphore count")
        self.count = initial
        self.waiters = deque()
        self.name = name
        self.wait_count = 0
        self.block_count = 0

    def try_acquire(self):
        """Non-blocking P; returns True on success (scheduler use)."""
        if self.count > 0:
            self.count -= 1
            return True
        return False

    def __repr__(self):
        return "Semaphore(%r, count=%d, waiters=%d)" % (
            self.name,
            self.count,
            len(self.waiters),
        )


class Mutex(Semaphore):
    """Binary semaphore used for critical sections in the baselines."""

    def __init__(self, name="mutex"):
        super().__init__(initial=1, name=name)
