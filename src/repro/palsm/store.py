"""Asynchronous LSM store state and operation plans.

The paper's future-work item ("applying our polled-mode, asynchronous
programming model on LSM tree is out of the scope of this paper"),
implemented: a LevelDB-shaped store — active + immutable memtables,
WAL, leveled SSTables with Bloom filters and a block cache — whose
reads, WAL flushes, memtable flushes and compactions are all operation
state machines interleaved by one polled-mode working thread.

Because a single worker drives every transition, no latches or mutexes
exist anywhere: memtable rotation, table installation and level swaps
are plain-Python steps that are atomic between yields.  The only
cross-operation hazard — a lookup holding a page reference while a
compaction retires its table — is handled with an epoch quarantine:
pages of dropped tables are only returned to the allocator once every
operation admitted before the swap has completed.

Plans yield the effects consumed by
:class:`repro.palsm.worker.PolledLsmWorker`:

* ``ReadPageEff(lba)``        — one page, through the block cache,
* ``ReadBatchEff(lbas)``      — many pages concurrently (compaction
                                 fan-out: the paradigm's advantage),
* ``WriteBatchEff(pages)``    — write and wait for completion,
* ``BackgroundWriteEff(pages)`` — write without waiting (group-commit
                                 WAL flushes),
* ``ChargeEff(ns, category)`` — CPU accounting.
"""

from repro.baselines.lsm.memtable import MemTable
from repro.baselines.lsm.sstable import SSTable, decode_page
from repro.buffer.lru import LruCache
from repro.core.ops import (
    ChargeEff,
    DELETE,
    INSERT,
    Operation,
    RANGE,
    SEARCH,
    SYNC,
    UPDATE,
)
from repro.errors import StorageError, TreeError
from repro.sim.clock import usec
from repro.sim.metrics import CPU_REAL_WORK
from repro.storage.allocator import PageAllocator
from repro.storage.wal import WriteAheadLog

OP_FLUSH = "lsm_flush"
OP_COMPACT = "lsm_compact"


class ReadPageEff:
    __slots__ = ("lba",)

    def __init__(self, lba):
        self.lba = lba


class ReadBatchEff:
    __slots__ = ("lbas",)

    def __init__(self, lbas):
        self.lbas = list(lbas)


class WriteBatchEff:
    __slots__ = ("pages",)

    def __init__(self, pages):
        self.pages = list(pages)  # (lba, image)


class BackgroundWriteEff:
    __slots__ = ("pages", "on_complete")

    def __init__(self, pages, on_complete=None):
        self.pages = list(pages)
        self.on_complete = on_complete


class AsyncLsmStore:
    """Shared state of the polled-mode asynchronous LSM store."""

    def __init__(
        self,
        device,
        persistence="strong",
        memtable_entries=1_000,
        level0_limit=4,
        level_ratio=4,
        level1_tables=8,
        block_cache_pages=1_024,
        wal_pages=65_536,
    ):
        if persistence not in ("strong", "weak"):
            raise TreeError("unknown persistence %r" % (persistence,))
        self.device = device
        self.persistence = persistence
        self.memtable_entries = memtable_entries
        self.level0_limit = level0_limit
        self.level_ratio = level_ratio
        self.level1_tables = level1_tables
        page_size = device.profile.page_size
        self.page_size = page_size
        self.wal = WriteAheadLog(page_size, base_lba=1, num_pages=wal_pages)
        self.allocator = PageAllocator(
            base=1 + wal_pages,
            capacity=device.profile.capacity_pages - 1 - wal_pages,
        )
        self.active = MemTable()
        self.immutables = []  # newest first
        self.levels = [[]]  # levels[0] newest-first; 1+ sorted by min_key
        self.cache = LruCache(block_cache_pages)
        self._flush_scheduled = False
        self._compact_scheduled = False
        self._pending_frees = []  # (barrier_seq, [lbas])
        self.flushes = 0
        self.compactions = 0
        # hooks the worker installs
        self.enqueue_internal = None  # fn(op)
        self.next_seq = lambda: 0
        # CPU cost knobs
        self.apply_cost_ns = usec(0.5)
        self.probe_cost_ns = usec(0.3)
        self.merge_cost_ns_per_entry = usec(0.05)

    # ------------------------------------------------------------------
    # bulk loading (offline)
    # ------------------------------------------------------------------

    def bulk_load(self, items):
        items = list(items)
        if not items:
            return
        if any(items[i][0] >= items[i + 1][0] for i in range(len(items) - 1)):
            raise StorageError("bulk_load input must be sorted and unique")
        while len(self.levels) < 2:
            self.levels.append([])
        for start in range(0, len(items), self.memtable_entries):
            chunk = items[start:start + self.memtable_entries]
            table, images = SSTable.plan(self.page_size, chunk)
            for index, image in enumerate(images):
                lba = self.allocator.allocate()
                table.page_lbas[index] = lba
                self.device.raw_write(lba, image)
            self.levels[1].append(table)
        self.levels[1].sort(key=lambda table: table.min_key)

    def data_pages(self):
        return sum(len(t.page_lbas) for level in self.levels for t in level)

    def resize_block_cache(self, pages):
        self.cache = LruCache(max(pages, 8))

    # ------------------------------------------------------------------
    # epoch quarantine for freed pages
    # ------------------------------------------------------------------

    def defer_free(self, lbas):
        self._pending_frees.append((self.next_seq(), list(lbas)))

    def release_frees(self, min_active_seq):
        """Free quarantined pages once no pre-swap operation remains."""
        kept = []
        for barrier, lbas in self._pending_frees:
            if min_active_seq > barrier:
                for lba in lbas:
                    self.allocator.free(lba)
                    self.cache.pop(lba)
            else:
                kept.append((barrier, lbas))
        self._pending_frees = kept

    # ------------------------------------------------------------------
    # plan factory
    # ------------------------------------------------------------------

    def make_plan(self, op):
        if op.kind == SEARCH:
            return self._get_plan(op)
        if op.kind == RANGE:
            return self._range_plan(op)
        if op.kind in (INSERT, UPDATE):
            return self._put_plan(op, op.payload)
        if op.kind == DELETE:
            return self._put_plan(op, None)
        if op.kind == SYNC:
            return self._sync_plan(op)
        if op.kind == OP_FLUSH:
            return self._flush_plan(op)
        if op.kind == OP_COMPACT:
            return self._compact_plan(op)
        raise TreeError("unknown operation kind %r" % (op.kind,))

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def _memory_lookup(self, key):
        found, value = self.active.get(key)
        if found:
            return True, value
        for memtable in self.immutables:
            found, value = memtable.get(key)
            if found:
                return True, value
        return False, None

    def _get_plan(self, op):
        yield ChargeEff(self.apply_cost_ns, CPU_REAL_WORK)
        found, value = self._memory_lookup(op.key)
        if found:
            op.result = value
            return
        key = op.key
        # snapshot the table lists: a compaction interleaved between our
        # yields mutates them in place, and the epoch quarantine keeps
        # every snapshotted table's pages readable until we complete
        levels = [list(tables) for tables in self.levels]
        for tables in levels:
            for table in tables:
                if not table.overlaps(key, key):
                    continue
                if not table.bloom.may_contain(key):
                    continue
                page_index = table.page_index_for(key)
                if page_index is None:
                    continue
                yield ChargeEff(self.probe_cost_ns, CPU_REAL_WORK)
                image = yield ReadPageEff(table.page_lbas[page_index])
                for entry_key, entry_value in decode_page(image):
                    if entry_key == key:
                        op.result = entry_value
                        return
        op.result = None

    def _range_plan(self, op):
        yield ChargeEff(self.apply_cost_ns, CPU_REAL_WORK)
        low, high = op.key, op.high_key
        merged = {}
        levels = [list(tables) for tables in self.levels]  # see _get_plan
        memtables = list(self.immutables)
        # oldest first so newer versions overwrite
        for tables in reversed(levels):
            for table in reversed(tables):
                if not table.overlaps(low, high):
                    continue
                start, end = table.page_range_for(low, high)
                lbas = table.page_lbas[start:end]
                if not lbas:
                    continue
                images = yield ReadBatchEff(lbas)
                for image in images:
                    for key, value in decode_page(image):
                        if low <= key <= high:
                            merged[key] = value
        for memtable in reversed(memtables):
            for key, value in memtable.range_items(low, high):
                merged[key] = value
        for key, value in self.active.range_items(low, high):
            merged[key] = value
        results = [(k, v) for k, v in sorted(merged.items()) if v is not None]
        if op.limit:
            results = results[: op.limit]
        op.result = results

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    @staticmethod
    def _wal_record(key, value):
        if value is None:
            return b"D" + key.to_bytes(8, "little")
        return b"P" + key.to_bytes(8, "little") + value

    def _put_plan(self, op, value):
        yield ChargeEff(self.apply_cost_ns, CPU_REAL_WORK)
        self.wal.append(self._wal_record(op.key, value))
        if value is None:
            self.active.delete(op.key)
        else:
            self.active.put(op.key, value)
        if self.persistence == "strong":
            writes, flush_lsn = self.wal.take_flushable(True)
            if writes:
                yield WriteBatchEff(writes)
                self.wal.mark_durable(flush_lsn)
        else:
            writes, flush_lsn = self.wal.take_flushable(False)
            if writes:
                # group commit: flush sealed log pages without blocking
                # this operation; durability is acknowledged when the
                # batch completes (batches may overlap, so this can
                # over-claim by one in-flight batch -- acceptable for
                # weak persistence, documented in DESIGN.md)
                yield BackgroundWriteEff(
                    writes, lambda lsn=flush_lsn: self.wal.mark_durable(lsn)
                )
        op.result = True
        self._maybe_rotate()

    def _maybe_rotate(self):
        if len(self.active) < self.memtable_entries:
            return
        self.immutables.insert(0, self.active)
        self.active = MemTable()
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self.enqueue_internal(Operation(OP_FLUSH))

    def _sync_plan(self, op):
        writes, flush_lsn = self.wal.take_flushable(True)
        if writes:
            yield WriteBatchEff(writes)
            self.wal.mark_durable(flush_lsn)
        op.result = len(writes)

    # ------------------------------------------------------------------
    # internal maintenance operations
    # ------------------------------------------------------------------

    def _flush_plan(self, op):
        # _flush_scheduled stays True for the whole plan so rotations
        # that happen while a table write is in flight do not enqueue a
        # second, racing flush; this plan drains them all.
        while self.immutables:
            memtable = self.immutables[-1]  # oldest first
            items = memtable.sorted_items()
            self.flushes += 1
            yield ChargeEff(
                len(items) * self.merge_cost_ns_per_entry, CPU_REAL_WORK
            )
            table, images = SSTable.plan(self.page_size, items)
            pages = []
            for index, image in enumerate(images):
                lba = self.allocator.allocate()
                table.page_lbas[index] = lba
                pages.append((lba, image))
            yield WriteBatchEff(pages)  # all pages in flight concurrently
            # install, then retire the memtable (it stayed readable for
            # lookups while its table was being written)
            self.levels[0].insert(0, table)
            self.immutables.remove(memtable)
        self._flush_scheduled = False
        if len(self.levels[0]) > self.level0_limit and not self._compact_scheduled:
            self._compact_scheduled = True
            self.enqueue_internal(Operation(OP_COMPACT))
        op.result = True

    def _level_budget(self, level):
        return self.level1_tables * (self.level_ratio ** (level - 1))

    def _compact_plan(self, op):
        # the guard stays True for the whole plan (see _flush_plan):
        # a flush finishing mid-compaction must not start a second,
        # racing compaction over the same tables
        progressed = True
        while progressed:
            progressed = False
            if len(self.levels[0]) > self.level0_limit:
                yield from self._compact_level(0)
                progressed = True
                continue
            for level in range(1, len(self.levels)):
                if len(self.levels[level]) > self._level_budget(level):
                    yield from self._compact_level(level)
                    progressed = True
                    break
        self._compact_scheduled = False
        op.result = True

    def _compact_level(self, level):
        self.compactions += 1
        if len(self.levels) <= level + 1:
            self.levels.append([])
        picked = list(self.levels[level]) if level == 0 else [self.levels[level][0]]
        low = min(table.min_key for table in picked)
        high = max(table.max_key for table in picked)
        below = [t for t in self.levels[level + 1] if t.overlaps(low, high)]
        sources = picked + below

        # read every source page concurrently -- the paradigm's win
        all_lbas = [lba for table in sources for lba in table.page_lbas]
        images = yield ReadBatchEff(all_lbas)
        image_for = dict(zip(all_lbas, images))

        entries = {}
        for source in reversed(sources):  # oldest first; newer overwrite
            for lba in source.page_lbas:
                for key, value in decode_page(image_for[lba]):
                    entries[key] = value
        items = sorted(entries.items())
        is_bottom = level + 2 == len(self.levels) and not self.levels[level + 1]
        if is_bottom:
            items = [(k, v) for k, v in items if v is not None]
        yield ChargeEff(len(items) * self.merge_cost_ns_per_entry, CPU_REAL_WORK)

        new_tables = []
        pages = []
        for start in range(0, len(items), self.memtable_entries):
            chunk = items[start:start + self.memtable_entries]
            if not chunk:
                continue
            table, chunk_images = SSTable.plan(self.page_size, chunk)
            for index, image in enumerate(chunk_images):
                lba = self.allocator.allocate()
                table.page_lbas[index] = lba
                pages.append((lba, image))
            new_tables.append(table)
        if pages:
            yield WriteBatchEff(pages)

        # atomic swap (single worker: no reader can interleave here)
        for table in picked:
            self.levels[level].remove(table)
        for table in below:
            self.levels[level + 1].remove(table)
        self.levels[level + 1].extend(new_tables)
        self.levels[level + 1].sort(key=lambda table: table.min_key)
        self.defer_free(
            [lba for table in picked + below for lba in table.page_lbas]
        )
