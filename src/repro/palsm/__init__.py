"""Polled-mode asynchronous LSM store: the paper's future-work
direction, implemented on the same paradigm machinery."""

from repro.palsm.store import AsyncLsmStore, OP_COMPACT, OP_FLUSH
from repro.palsm.worker import PolledLsmWorker

__all__ = ["AsyncLsmStore", "PolledLsmWorker", "OP_FLUSH", "OP_COMPACT"]
