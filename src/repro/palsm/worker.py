"""The polled-mode asynchronous LSM working thread.

A lightweight sibling of :class:`repro.core.engine.PaTreeEngine` that
drives :class:`~repro.palsm.store.AsyncLsmStore` operation plans: one
simulated thread admits operations, processes the ready set under a
scheduling policy, submits reads/writes through the SPDK-style driver
and probes for completions — the same Algorithm 1/2 main loop, applied
to an LSM instead of a B+ tree (the paper's future-work direction).

Differences from the tree engine reflect LSM structure: there are no
latches (a single worker over immutable tables needs none), reads go
through a block cache, and internal maintenance work (memtable
flushes, compactions) runs as ordinary interleaved operations — a
compaction's page reads and writes are all in flight concurrently
while user gets and puts continue to complete between them.
"""

from collections import deque

from repro.core.ops import (
    ChargeEff,
    ST_DONE,
    ST_IO_WAIT,
    ST_READY,
    SYNC,
)
from repro.errors import (
    IoError,
    QueueFullError,
    RetryExhaustedError,
    SchedulerError,
)
from repro.backend.base import as_backend
from repro.nvme.command import OP_READ
from repro.sim.nulltrace import NULL_TRACER
from repro.palsm.store import (
    BackgroundWriteEff,
    OP_COMPACT,
    OP_FLUSH,
    ReadBatchEff,
    ReadPageEff,
    WriteBatchEff,
)
from repro.sim.clock import usec
from repro.sim.metrics import (
    CPU_NVME,
    CPU_REAL_WORK,
    CPU_SCHED,
    Counter,
    LatencyRecorder,
)
from repro.simos.thread import Cpu, Sleep

_INTERNAL_KINDS = (OP_FLUSH, OP_COMPACT, SYNC)


class PolledLsmWorker:
    """Single polled-mode worker over an :class:`AsyncLsmStore`."""

    def __init__(self, simos, backend, store, policy, source, name="pa-lsm",
                 tracer=None):
        self.simos = simos
        self.engine = simos.engine
        self.clock = simos.engine.clock
        # like the tree engine, the worker speaks the IoBackend
        # contract; a bare NvmeDriver is adopted onto it unchanged
        self.backend = as_backend(backend)
        self.driver = self.backend
        self.store = store
        self.policy = policy
        self.source = source
        self.name = name
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.op_observer = None
        self._track = "worker:%s" % name
        self.qpair = self.backend.alloc_qpair(sq_size=4096, cq_size=4096)

        from repro.sched.history import IoHistory

        model = getattr(policy, "probe_model", None)
        if model is not None:
            self.io_history = IoHistory(
                self.clock, window_us=model.window_us, slices=model.slices
            )
        else:
            self.io_history = IoHistory(self.clock)

        self._internal = deque()
        self._batch_reads = {}  # op seq -> (lbas, {lba: image})
        self._deferred_escalations = deque()
        self._next_seq = 0
        self._active_seqs = set()
        self.inflight = 0
        self._background_outstanding = 0
        self._shutdown = False
        self._cache_hit_cost_ns = usec(0.12)
        self.sched_pick_cost_ns = usec(0.1)
        self.sched_gate_cost_ns = usec(0.1)
        self.max_write_escalations = 8

        self.latencies = LatencyRecorder()
        self.completed = Counter()
        self.user_completed = 0
        self.last_user_done_ns = 0
        self.probes = Counter()
        self.io_errors = Counter()
        self.failed_ops = Counter()
        self.io_escalations = Counter()
        self.lost_writes = Counter()
        self.worker_thread = None

        store.enqueue_internal = self._internal.append
        store.next_seq = lambda: self._next_seq
        policy.bind(self)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self):
        self.worker_thread = self.simos.spawn(
            self._worker_body(), name=self.name, group=self.name
        )
        return self.worker_thread

    def run_to_completion(self, until_ns=None):
        self.start()
        self.engine.run(until_ns=until_ns, until=lambda: self.worker_thread.done)
        if not self.worker_thread.done:
            raise SchedulerError(
                "PA-LSM worker did not finish (inflight=%d)" % self.inflight
            )

    def reset_source(self, source=None):
        """Install a fresh operation source and re-arm the worker.

        Mirrors :meth:`repro.core.engine.PaTreeEngine.reset_source`:
        the public way for facades to feed successive batches through
        one worker.
        """
        if self.worker_thread is not None and not self.worker_thread.done:
            raise SchedulerError("cannot reset the source of a running worker")
        if source is not None:
            self.source = source
        self._shutdown = False

    def run_operations(self, operations, window=64):
        from repro.core.source import ClosedLoopSource

        operations = list(operations)
        self.reset_source(ClosedLoopSource(operations, window=window))
        self.run_to_completion()
        return operations

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def _worker_body(self):
        driver = self.driver
        policy = self.policy
        profile = driver.profile
        while True:
            worked = False

            new_ops = self.source.poll(self.clock.now)
            while self._internal:
                new_ops.append(self._internal.popleft())
            if new_ops:
                yield Cpu(usec(0.1) * len(new_ops), CPU_SCHED)
                for op in new_ops:
                    self._admit(op)
                worked = True

            # re-drive failed writes deferred because the ring was full
            while self._deferred_escalations and self.qpair.sq.free_slots > 8:
                deferred = self._deferred_escalations.popleft()
                yield Cpu(driver.submit_cpu_ns, CPU_NVME)
                self._resubmit_write(*deferred)
                worked = True

            if policy.ready_count():
                yield Cpu(policy.pick_cost_ns(), CPU_SCHED)
                op = policy.pick()
                tracer = self.tracer
                if tracer.enabled:
                    span = tracer.begin(
                        self._track,
                        "process:%s" % op.kind,
                        cat="worker",
                        args={"seq": op.seq},
                    )
                    yield from self._process(op)
                    tracer.end(span, args={"state": op.state})
                else:
                    yield from self._process(op)
                worked = True

            if self.io_history.outstanding_count:
                gate_cost = policy.gate_cost_ns()
                if gate_cost:
                    yield Cpu(gate_cost, CPU_SCHED)
                    worked = True
                if policy.should_probe():
                    tracer = self.tracer
                    probe_start_ns = self.clock.now if tracer.enabled else 0
                    yield Cpu(driver.probe_cpu_ns(0), CPU_NVME)
                    done = driver.probe(self.qpair)
                    self.probes.add()
                    policy.note_probe(self.clock.now, len(done))
                    if done:
                        yield Cpu(
                            len(done) * profile.probe_cpu_per_completion_ns,
                            CPU_NVME,
                        )
                    if tracer.enabled:
                        tracer.complete(
                            self._track,
                            "probe",
                            probe_start_ns,
                            self.clock.now,
                            cat="worker",
                            args={"completions": len(done)},
                        )
                    worked = True

            if (
                self.source.exhausted()
                and self.inflight == 0
                and not self._internal
                and self._background_outstanding == 0
                and not self._deferred_escalations
            ):
                break

            if policy.ready_count() == 0 and not self._internal:
                sleep_ns = policy.idle_sleep_ns()
                next_arrival = self.source.next_event_ns(self.clock.now)
                if sleep_ns > 0:
                    if next_arrival is not None:
                        sleep_ns = min(
                            sleep_ns, max(1, next_arrival - self.clock.now)
                        )
                    yield Sleep(sleep_ns)
                elif not worked:
                    yield Cpu(usec(1.0), CPU_SCHED)

        self._shutdown = True

    # ------------------------------------------------------------------
    # operation processing
    # ------------------------------------------------------------------

    def _admit(self, op):
        op.seq = self._next_seq
        self._next_seq += 1
        op.admit_ns = self.clock.now
        op.gen = self.store.make_plan(op)
        op.state = ST_READY
        self.inflight += 1
        self._active_seqs.add(op.seq)
        if self.tracer.enabled:
            self.tracer.async_begin(
                "op", op.seq, op.kind, args={"key": op.key}
            )
        self.policy.on_ready(op)

    def _process(self, op):
        yield Cpu(usec(0.1), CPU_SCHED)
        send = op.resume_value
        op.resume_value = None
        while True:
            try:
                effect = op.gen.send(send)
            except StopIteration:
                self._complete(op)
                return
            send = None
            kind = type(effect)

            if kind is ReadPageEff:
                yield Cpu(self._cache_hit_cost_ns, CPU_REAL_WORK)
                cached = self.store.cache.get(effect.lba)
                if cached is not None:
                    send = cached
                    continue
                yield Cpu(self.driver.submit_cpu_ns, CPU_NVME)
                command = self.driver.read(
                    self.qpair, effect.lba, callback=self._on_io_done, context=op
                )
                self.io_history.on_submit(command)
                op.io_remaining = 1
                op.state = ST_IO_WAIT
                if self.tracer.enabled:
                    self.tracer.async_instant("op", op.seq, "io_wait")
                return

            if kind is ReadBatchEff:
                results = {}
                pending = 0
                for lba in effect.lbas:
                    yield Cpu(self._cache_hit_cost_ns, CPU_REAL_WORK)
                    cached = self.store.cache.get(lba)
                    if cached is not None:
                        results[lba] = cached
                        continue
                    yield Cpu(self.driver.submit_cpu_ns, CPU_NVME)
                    command = self.driver.read(
                        self.qpair, lba, callback=self._on_io_done, context=op
                    )
                    self.io_history.on_submit(command)
                    pending += 1
                if pending:
                    self._batch_reads[op.seq] = (effect.lbas, results)
                    op.io_remaining = pending
                    op.state = ST_IO_WAIT
                    if self.tracer.enabled:
                        self.tracer.async_instant(
                            "op", op.seq, "io_wait", args={"ios": pending}
                        )
                    return
                send = [results[lba] for lba in effect.lbas]
                continue

            if kind is WriteBatchEff:
                count = 0
                for lba, image in effect.pages:
                    yield Cpu(self.driver.submit_cpu_ns, CPU_NVME)
                    command = self.driver.write(
                        self.qpair, lba, image, callback=self._on_io_done, context=op
                    )
                    self.io_history.on_submit(command)
                    count += 1
                if count:
                    op.io_remaining = count
                    op.state = ST_IO_WAIT
                    if self.tracer.enabled:
                        self.tracer.async_instant(
                            "op", op.seq, "io_wait", args={"ios": count}
                        )
                    return
                continue

            if kind is BackgroundWriteEff:
                batch = _BackgroundBatch(len(effect.pages), effect.on_complete, self)
                for lba, image in effect.pages:
                    yield Cpu(self.driver.submit_cpu_ns, CPU_NVME)
                    command = self.driver.write(
                        self.qpair,
                        lba,
                        image,
                        callback=self._on_background_done,
                        context=batch,
                    )
                    self.io_history.on_submit(command)
                    self._background_outstanding += 1
                continue

            if kind is ChargeEff:
                yield Cpu(effect.ns, effect.category)
                continue

            raise SchedulerError("LSM plan yielded unknown effect %r" % (effect,))

    def _complete(self, op):
        op.state = ST_DONE
        op.done_ns = self.clock.now
        self.inflight -= 1
        self._active_seqs.discard(op.seq)
        self.completed.add()
        if self.tracer.enabled:
            self.tracer.async_end("op", op.seq, op.kind)
        if self.op_observer is not None:
            self.op_observer.on_op_complete(op)
        if op.kind in (OP_FLUSH, OP_COMPACT):
            pass  # internal maintenance: invisible to the source
        else:
            if op.kind not in _INTERNAL_KINDS and op.error is None:
                # goodput only: errored ops have no usable result
                self.user_completed += 1
                self.last_user_done_ns = op.done_ns
                self.latencies.record(op.latency_ns)
            self.source.on_op_complete(op)
        if op.on_complete is not None:
            op.on_complete(op)
        min_active = min(self._active_seqs) if self._active_seqs else self._next_seq
        self.store.release_frees(min_active)

    # ------------------------------------------------------------------
    # completion callbacks (fired from probe, zero virtual time)
    # ------------------------------------------------------------------

    def _on_io_done(self, completion):
        command = completion.command
        self.io_history.on_complete(command)
        if not completion.ok:
            self._on_io_failed(completion)
            return
        op = command.context
        if command.opcode == OP_READ:
            self.store.cache.put(command.lba, command.data)
            if op.state is ST_DONE:
                return  # late completion for an already-aborted op
            batch = self._batch_reads.get(op.seq)
            if batch is not None:
                lbas, results = batch
                results[command.lba] = command.data
                op.io_remaining -= 1
                if op.io_remaining == 0:
                    del self._batch_reads[op.seq]
                    op.resume_value = [results[lba] for lba in lbas]
                    op.state = ST_READY
                    self.policy.on_ready(op)
                return
            op.resume_value = command.data
            op.io_remaining -= 1
            if op.io_remaining == 0:
                op.state = ST_READY
                self.policy.on_ready(op)
            return
        op.io_remaining -= 1
        if op.io_remaining == 0:
            if op.error is not None:
                self._abort_op(op, None)
            else:
                op.state = ST_READY
                self.policy.on_ready(op)

    def _on_background_done(self, completion):
        command = completion.command
        self.io_history.on_complete(command)
        if not completion.ok:
            self.io_errors.add()
            if command.escalations < self.max_write_escalations:
                self.io_escalations.add()
                self._resubmit_write(
                    command.lba,
                    command.data,
                    command.context,
                    self._on_background_done,
                    command.escalations + 1,
                    background=True,
                )
                return
            self.lost_writes.add()
        self._background_outstanding -= 1
        batch = command.context
        batch.remaining -= 1
        if batch.remaining == 0 and batch.on_complete is not None:
            batch.on_complete()

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------

    def _on_io_failed(self, completion):
        command = completion.command
        self.io_errors.add()
        if command.opcode == OP_READ:
            op = command.context
            if op is None or op.state is ST_DONE:
                return
            op.io_remaining -= 1
            self._batch_reads.pop(op.seq, None)
            self._abort_op(op, self._error_from(completion))
            return
        # writes must land: the store's in-memory manifest already
        # accounts for these pages, so re-drive until success or cap
        if command.escalations < self.max_write_escalations:
            self.io_escalations.add()
            self._resubmit_write(
                command.lba,
                command.data,
                command.context,
                self._on_io_done,
                command.escalations + 1,
            )
            return
        self.lost_writes.add()
        op = command.context
        op.io_remaining -= 1
        if op.error is None:
            op.error = self._error_from(completion)
        if op.io_remaining == 0:
            self._abort_op(op, None)

    def _error_from(self, completion):
        command = completion.command
        status = completion.status
        cls = RetryExhaustedError if status.retriable else IoError
        return cls(
            "%s of lba %d failed with status %s (retries=%d)"
            % (command.opcode, command.lba, status, command.retries),
            status=status,
            opcode=command.opcode,
            lba=command.lba,
        )

    def _abort_op(self, op, error):
        """Terminate ``op`` with a typed error (LSM plans hold no latches)."""
        if error is not None and op.error is None:
            op.error = error
        op.result = None
        if op.gen is not None:
            op.gen.close()
        self.failed_ops.add()
        if self.tracer.enabled:
            self.tracer.async_instant(
                "op", op.seq, "aborted", args={"error": str(op.error)}
            )
        self._complete(op)

    def _resubmit_write(
        self, lba, image, context, callback, escalations, background=False
    ):
        try:
            command = self.driver.write(
                self.qpair, lba, image, callback=callback, context=context
            )
        except QueueFullError:
            self._deferred_escalations.append(
                (lba, image, context, callback, escalations, background)
            )
            return
        command.escalations = escalations
        self.io_history.on_submit(command)

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------

    def register_metrics(self, registry, labels=None):
        """Expose the LSM worker stack through a metric registry.

        Mirrors :meth:`repro.core.engine.PaTreeEngine.register_metrics`
        for the LSM sibling: worker counters plus delegation to the
        driver (covering the device), the queue pair and the policy.
        """
        registry.counter(
            "worker_completed_total", labels,
            fn=lambda: self.completed.value,
            help="operations completed (including failed ones)",
        )
        registry.counter(
            "worker_failed_ops_total", labels,
            fn=lambda: self.failed_ops.value,
            help="operations aborted with a typed error",
        )
        registry.counter(
            "worker_io_errors_total", labels,
            fn=lambda: self.io_errors.value,
            help="I/O failures the driver delivered to the worker",
        )
        registry.counter(
            "worker_io_escalations_total", labels,
            fn=lambda: self.io_escalations.value,
            help="failed writes re-driven with a fresh command",
        )
        registry.counter(
            "worker_lost_writes_total", labels,
            fn=lambda: self.lost_writes.value,
            help="writes abandoned at the escalation cap",
        )
        registry.counter(
            "worker_probes_total", labels,
            fn=lambda: self.probes.value,
            help="completion-queue probes performed",
        )
        registry.counter(
            "store_flushes_total", labels,
            fn=lambda: self.store.flushes,
            help="memtable flushes completed",
        )
        registry.counter(
            "store_compactions_total", labels,
            fn=lambda: self.store.compactions,
            help="compactions completed",
        )
        registry.gauge(
            "worker_inflight_ops", labels,
            fn=lambda: self.inflight,
            help="admitted operations not yet complete",
        )
        registry.gauge(
            "worker_outstanding_io_count", labels,
            fn=lambda: self.io_history.outstanding_count,
            help="worker-submitted I/Os awaiting completion",
        )
        self.driver.register_metrics(registry, labels=labels)
        self.qpair.register_metrics(registry, labels=labels)
        self.policy.register_metrics(registry, labels=labels)
        return registry

    def stats(self):
        return {
            "completed": self.completed.value,
            "user_completed": self.user_completed,
            "probes": self.probes.value,
            "flushes": self.store.flushes,
            "compactions": self.store.compactions,
            "mean_latency_us": self.latencies.mean_usec(),
            "p99_latency_us": self.latencies.p99_usec(),
            "io_errors": self.io_errors.value,
            "failed_ops": self.failed_ops.value,
            "io_retries": self.driver.retries_scheduled.value,
            "io_escalations": self.io_escalations.value,
            "lost_writes": self.lost_writes.value,
        }


class _BackgroundBatch:
    __slots__ = ("remaining", "on_complete", "worker")

    def __init__(self, remaining, on_complete, worker):
        self.remaining = remaining
        self.on_complete = on_complete
        self.worker = worker
