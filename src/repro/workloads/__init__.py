"""Workload generators: YCSB-style synthetic mixes, T-Drive-style
trajectories and SSE-style order books."""

from repro.workloads.sse import SseWorkload
from repro.workloads.tdrive import TDriveWorkload
from repro.workloads.ycsb import (
    MIX_DEFAULT,
    MIX_READ_ONLY,
    MIX_UPDATE_HEAVY,
    YcsbWorkload,
    payload_for,
    preload_key,
)
from repro.workloads.zipf import ZipfSampler, scatter_rank

__all__ = [
    "YcsbWorkload",
    "TDriveWorkload",
    "SseWorkload",
    "ZipfSampler",
    "scatter_rank",
    "preload_key",
    "payload_for",
    "MIX_READ_ONLY",
    "MIX_DEFAULT",
    "MIX_UPDATE_HEAVY",
]
