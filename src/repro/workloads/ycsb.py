"""YCSB-style synthetic workloads (paper §V).

Three representative mixes over a preloaded key population:

* ``read_only``    — 100 % point searches,
* ``default``      — 90 % searches / 10 % updates,
* ``update_heavy`` — 50 % searches / 50 % updates.

Keys are drawn Zipfian (skew ``alpha``, default 0.3 as in the paper)
over the preloaded population; updates overwrite the payload of an
existing key (YCSB update semantics).  An optional ``insert_ratio``
carves part of the update share into inserts of fresh keys, exercising
splits.  Keys and payloads are 8 bytes.
"""

from repro.core.ops import insert_op, range_op, search_op, update_op
from repro.errors import WorkloadError
from repro.workloads.zipf import ZipfSampler, scatter_rank

MIX_READ_ONLY = "read_only"
MIX_DEFAULT = "default"
MIX_UPDATE_HEAVY = "update_heavy"

_UPDATE_RATIOS = {
    MIX_READ_ONLY: 0.0,
    MIX_DEFAULT: 0.10,
    MIX_UPDATE_HEAVY: 0.50,
}

# Preloaded keys sit on a coarse stride so fresh-insert keys (offset
# within the stride) never collide with them.
KEY_STRIDE = 1 << 20


def preload_key(index):
    """The ``index``-th preloaded key."""
    return (index + 1) * KEY_STRIDE


def payload_for(key, size=8):
    """Deterministic payload derived from the key."""
    return (key & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little") * (size // 8) + bytes(
        size % 8
    )


class YcsbWorkload:
    """Generates a preload set and an operation stream."""

    def __init__(
        self,
        n_keys,
        n_ops,
        mix=MIX_DEFAULT,
        alpha=0.3,
        rng=None,
        payload_size=8,
        update_ratio=None,
        insert_ratio=0.0,
        range_ratio=0.0,
        range_span=50,
    ):
        if rng is None:
            raise WorkloadError("an rng stream is required for reproducibility")
        if mix not in _UPDATE_RATIOS and update_ratio is None:
            raise WorkloadError("unknown mix %r" % (mix,))
        if not 0.0 <= insert_ratio <= 1.0:
            raise WorkloadError("insert_ratio outside [0, 1]")
        if not 0.0 <= range_ratio <= 1.0:
            raise WorkloadError("range_ratio outside [0, 1]")
        self.n_keys = n_keys
        self.n_ops = n_ops
        self.mix = mix
        self.alpha = alpha
        self.payload_size = payload_size
        self.update_ratio = (
            update_ratio if update_ratio is not None else _UPDATE_RATIOS[mix]
        )
        self.insert_ratio = insert_ratio
        self.range_ratio = range_ratio
        self.range_span = range_span
        self._rng = rng
        self._sampler = ZipfSampler(n_keys, alpha, rng)
        self._fresh_serial = 0

    def preload_items(self):
        """Sorted unique (key, payload) pairs for bulk loading."""
        size = self.payload_size
        return [
            (preload_key(index), payload_for(preload_key(index), size))
            for index in range(self.n_keys)
        ]

    def _draw_key(self):
        rank = self._sampler.sample()
        return preload_key(scatter_rank(rank, self.n_keys))

    def _fresh_key(self):
        # A never-before-seen key adjacent to a Zipf-chosen anchor.
        self._fresh_serial += 1
        anchor = self._draw_key()
        return anchor + 1 + (self._fresh_serial % (KEY_STRIDE - 2))

    def operations(self):
        """Yield the operation stream (fresh Operation objects)."""
        size = self.payload_size
        rng = self._rng
        for _ in range(self.n_ops):
            if rng.random() < self.update_ratio:
                if self.insert_ratio and rng.random() < self.insert_ratio:
                    key = self._fresh_key()
                    yield insert_op(key, payload_for(key, size))
                else:
                    key = self._draw_key()
                    yield update_op(key, payload_for(key ^ 0x5A5A, size))
            elif self.range_ratio and rng.random() < self.range_ratio:
                # YCSB workload-E-style short scan from a Zipf start key
                low = self._draw_key()
                yield range_op(
                    low, low + self.range_span * KEY_STRIDE, limit=self.range_span
                )
            else:
                yield search_op(self._draw_key())
