"""T-Drive-style trajectory workload (paper §V).

The paper indexes Beijing taxi GPS records by a z-order code of
(latitude, longitude); queries fetch all records within a z-code
range.  The mix is extremely update-heavy: 70 % inserts of new
trajectory points, 30 % z-code range queries.

We do not have the proprietary trace, so we synthesize trajectories
with the same index-visible shape: each taxi performs a bounded random
walk over the Beijing bounding box, points are quantized to a 20-bit
grid per axis, z-order interleaved, and made unique with a sequence
suffix.  Range queries cover a small spatial window around a recently
active taxi, mirroring the locality of the real queries.
"""

from repro.core.keys import quantize_coordinate, zorder_encode
from repro.core.ops import insert_op, range_op
from repro.errors import WorkloadError

# Beijing bounding box used by the T-Drive papers.
LAT_LOW, LAT_HIGH = 39.6, 40.3
LON_LOW, LON_HIGH = 116.0, 116.8

GRID_BITS = 20
SEQ_BITS = 22
_SEQ_MASK = (1 << SEQ_BITS) - 1


def trajectory_key(lat, lon, seq):
    """u64 key: 40-bit z-code of the quantized position | sequence."""
    x = quantize_coordinate(lon, LON_LOW, LON_HIGH, GRID_BITS)
    y = quantize_coordinate(lat, LAT_LOW, LAT_HIGH, GRID_BITS)
    zcode = zorder_encode(x, y)
    return (zcode << SEQ_BITS) | (seq & _SEQ_MASK)


def zrange_for_window(lat, lon, window):
    """(low, high) key range for a square window centred on a point.

    A z-range is a superset of the exact rectangle (standard z-order
    over-selection); the paper's queries are z-code ranges too.
    """
    x0 = quantize_coordinate(lon - window, LON_LOW, LON_HIGH, GRID_BITS)
    y0 = quantize_coordinate(lat - window, LAT_LOW, LAT_HIGH, GRID_BITS)
    x1 = quantize_coordinate(lon + window, LON_LOW, LON_HIGH, GRID_BITS)
    y1 = quantize_coordinate(lat + window, LAT_LOW, LAT_HIGH, GRID_BITS)
    low = zorder_encode(x0, y0) << SEQ_BITS
    high = (zorder_encode(x1, y1) << SEQ_BITS) | _SEQ_MASK
    if high < low:
        low, high = high, low
    return low, high


class _Taxi:
    __slots__ = ("lat", "lon")

    def __init__(self, lat, lon):
        self.lat = lat
        self.lon = lon

    def step(self, rng, step_deg=0.003):
        self.lat = min(max(self.lat + rng.uniform(-step_deg, step_deg), LAT_LOW), LAT_HIGH)
        self.lon = min(max(self.lon + rng.uniform(-step_deg, step_deg), LON_LOW), LON_HIGH)


class TDriveWorkload:
    """Synthetic taxi-trajectory stream with the paper's 70 % update mix."""

    def __init__(
        self,
        n_taxis,
        n_preload,
        n_ops,
        rng,
        update_ratio=0.70,
        query_window_deg=0.004,
        range_limit=256,
        payload_size=8,
    ):
        if n_taxis < 1:
            raise WorkloadError("need at least one taxi")
        self.n_taxis = n_taxis
        self.n_preload = n_preload
        self.n_ops = n_ops
        self.update_ratio = update_ratio
        self.query_window_deg = query_window_deg
        self.range_limit = range_limit
        self.payload_size = payload_size
        self._rng = rng
        self._taxis = [
            _Taxi(rng.uniform(LAT_LOW, LAT_HIGH), rng.uniform(LON_LOW, LON_HIGH))
            for _ in range(n_taxis)
        ]
        self._seq = 0

    def _payload(self, taxi_index):
        return taxi_index.to_bytes(4, "little") + self._seq.to_bytes(4, "little")

    def _next_point(self):
        rng = self._rng
        taxi_index = rng.randrange(self.n_taxis)
        taxi = self._taxis[taxi_index]
        taxi.step(rng)
        self._seq += 1
        key = trajectory_key(taxi.lat, taxi.lon, self._seq)
        return taxi_index, taxi, key

    def preload_items(self):
        """Sorted unique records for bulk loading."""
        items = {}
        for _ in range(self.n_preload):
            taxi_index, _taxi, key = self._next_point()
            items[key] = self._payload(taxi_index)
        return sorted(items.items())

    def operations(self):
        rng = self._rng
        for _ in range(self.n_ops):
            if rng.random() < self.update_ratio:
                taxi_index, _taxi, key = self._next_point()
                yield insert_op(key, self._payload(taxi_index))
            else:
                taxi = self._taxis[rng.randrange(self.n_taxis)]
                low, high = zrange_for_window(
                    taxi.lat, taxi.lon, self.query_window_deg
                )
                yield range_op(low, high, limit=self.range_limit)
