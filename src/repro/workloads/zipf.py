"""Zipfian key-rank sampling.

The paper draws YCSB keys from a Zipfian distribution with skew
``alpha`` (default 0.3).  We precompute the normalized CDF over the
``n`` ranks once (numpy) and sample by binary search, so draws are
O(log n) and the whole stream is reproducible from the seed.
"""

import numpy as np

from repro.errors import WorkloadError


class ZipfSampler:
    """Samples ranks in ``[0, n)`` with P(rank k) ∝ 1 / (k+1)^alpha."""

    def __init__(self, n, alpha, rng):
        if n < 1:
            raise WorkloadError("need at least one rank")
        if alpha < 0:
            raise WorkloadError("alpha must be non-negative")
        self.n = n
        self.alpha = alpha
        self._rng = rng
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), alpha)
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        self._cdf = cdf

    def sample(self):
        """One rank draw."""
        return int(np.searchsorted(self._cdf, self._rng.random(), side="left"))

    def sample_many(self, count):
        """``count`` rank draws as a list (single vectorized pass)."""
        draws = np.array([self._rng.random() for _ in range(count)])
        return np.searchsorted(self._cdf, draws, side="left").tolist()


_SCATTER_PRIME = 2_654_435_761  # Knuth's multiplicative-hash prime


def scatter_rank(rank, n):
    """Bijectively scatter hot ranks across the key space.

    Without scattering, Zipf rank 0..k would be adjacent keys sharing
    one leaf, overstating locality.  Multiplying by a prime coprime to
    ``n`` permutes ``0..n-1`` (a true bijection for every ``n`` below
    the prime) while spreading consecutive ranks far apart.
    """
    if n >= _SCATTER_PRIME:
        raise WorkloadError("key population too large to scatter")
    return (rank * _SCATTER_PRIME) % n
