"""SSE-style order-book workload (paper §V).

Models the Shanghai Stock Exchange trace's index-visible behaviour:
outstanding limit orders for ~hundreds of stocks are kept in the B+
tree keyed by (stock id, price tick, sequence); a new order is matched
against outstanding orders with a range search over the opposite side
of the book, and matched orders are deleted.  Records average ~108
bytes, so this workload uses large payloads (deep trees, heavy I/O).

Mix: 28 % updates (order inserts and matched-order deletes) and 72 %
reads (range probes of the book), matching the paper's
characterization.
"""

from repro.core.keys import order_key, order_key_range
from repro.core.ops import delete_op, insert_op, range_op
from repro.errors import WorkloadError

PRICE_TICKS = 1 << 14  # price grid per stock


class _Stock:
    __slots__ = ("mid_tick",)

    def __init__(self, mid_tick):
        self.mid_tick = mid_tick

    def drift(self, rng):
        self.mid_tick = min(
            max(self.mid_tick + rng.randint(-3, 3), 100), PRICE_TICKS - 100
        )


class SseWorkload:
    """Synthetic order-book stream with the paper's 28 % update mix."""

    def __init__(
        self,
        n_stocks,
        n_preload,
        n_ops,
        rng,
        update_ratio=0.28,
        payload_size=100,
        probe_width=12,
        range_limit=64,
    ):
        if n_stocks < 1:
            raise WorkloadError("need at least one stock")
        self.n_stocks = n_stocks
        self.n_preload = n_preload
        self.n_ops = n_ops
        self.update_ratio = update_ratio
        self.payload_size = payload_size
        self.probe_width = probe_width
        self.range_limit = range_limit
        self._rng = rng
        self._stocks = [
            _Stock(rng.randint(1000, PRICE_TICKS - 1000)) for _ in range(n_stocks)
        ]
        self._seq = 0
        self._live_orders = []  # keys believed to be in the tree

    def _payload(self, key):
        base = key.to_bytes(8, "little")
        return (base * (self.payload_size // 8 + 1))[: self.payload_size]

    def _new_order_key(self):
        rng = self._rng
        stock_id = rng.randrange(self.n_stocks)
        stock = self._stocks[stock_id]
        stock.drift(rng)
        tick = min(
            max(stock.mid_tick + rng.randint(-self.probe_width, self.probe_width), 0),
            PRICE_TICKS - 1,
        )
        self._seq += 1
        return order_key(stock_id, tick, self._seq & 0xFFFFFF)

    def preload_items(self):
        items = {}
        for _ in range(self.n_preload):
            key = self._new_order_key()
            items[key] = self._payload(key)
        self._live_orders = sorted(items)
        return sorted(items.items())

    def operations(self):
        rng = self._rng
        for _ in range(self.n_ops):
            roll = rng.random()
            if roll < self.update_ratio:
                # Half the updates insert new orders, half delete
                # (matched/cancelled) outstanding ones.
                if rng.random() < 0.5 or not self._live_orders:
                    key = self._new_order_key()
                    self._live_orders.append(key)
                    yield insert_op(key, self._payload(key))
                else:
                    index = rng.randrange(len(self._live_orders))
                    key = self._live_orders[index]
                    last = self._live_orders.pop()
                    if index < len(self._live_orders):
                        self._live_orders[index] = last
                    yield delete_op(key)
            else:
                stock_id = rng.randrange(self.n_stocks)
                stock = self._stocks[stock_id]
                low_tick = max(stock.mid_tick - self.probe_width, 0)
                high_tick = min(stock.mid_tick + self.probe_width, PRICE_TICKS - 1)
                low, high = order_key_range(stock_id, low_tick, high_tick)
                yield range_op(low, high, limit=self.range_limit)
