"""Sharded multi-device PA-Tree: N polled workers over N devices.

The paper shows one polled working thread saturating one NVMe SSD.
This module scales the paradigm *out*: the key space is hash- or
range-partitioned across N shards, each shard a fully independent
``(IoBackend, PaTree, PaTreeEngine)`` stack with its own
queue pair, latch table, buffer and polled working thread — all on the
shared :class:`~repro.simos.scheduler.SimOS`, so the whole fleet runs
inside one deterministic simulation.  Because shards share *nothing*
(not even a device), the paradigm's no-inter-thread-synchronization
property is preserved and aggregate throughput scales with shard count
until the machine runs out of cores.

A zero-shared-state router splits incoming operation batches per
shard, fans out a closed-loop admission window, scatters cross-shard
range scans (and broadcast ``sync``), gathers their partial results in
key order, and aggregates per-shard engine/device statistics.  The
observability hooks from ``repro.obs`` attach per shard, so one
:class:`~repro.obs.TraceSession` records the whole fleet.

This differs from :class:`repro.core.partition.PartitionedPaTree`
(several workers sharing one device's LBA space): here every shard
owns a whole simulated device, which is what multi-backend scaling,
replication and tiering PRs will build on.
"""

import bisect
import heapq
from collections import deque

from repro.buffer import make_buffer
from repro.core.engine import PERSISTENCE_STRONG, PaTreeEngine
from repro.core.ops import BATCH, RANGE, SYNC, batch_op, range_op, sync_op
from repro.core.source import OperationSource
from repro.core.tree import PaTree, check_bulk_items
from repro.backend import (
    IoBackend,
    BackendSpec,
    make_backend,
    normalize_shard_backends,
)
from repro.errors import BackendConfigError, SchedulerError
from repro.backend import i3_nvme_profile
from repro.sched import NaiveScheduling
from repro.sim.metrics import LatencyRecorder

HASH_PARTITIONING = "hash"
RANGE_PARTITIONING = "range"

_MASK64 = (1 << 64) - 1


def shard_mix64(key):
    """SplitMix64 finalizer: spreads strided keys uniformly over 64 bits.

    Workload key populations are often strided (the YCSB preload keys
    sit on a 2^20 stride), so ``key % n`` would put every key on one
    shard; a full-avalanche mix makes hash placement balanced and —
    because it is pure arithmetic — deterministic across runs.
    """
    z = (key + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


class _ShardSource(OperationSource):
    """Pull queue one shard's worker polls; the router fills it."""

    def __init__(self, router):
        self._router = router
        self.pending = deque()
        self.inflight = 0

    def poll(self, now_ns):
        batch = []
        while self.pending:
            batch.append(self.pending.popleft())
            self.inflight += 1
        return batch

    def on_op_complete(self, op):
        self.inflight -= 1
        self._router._on_shard_complete(op)

    def exhausted(self):
        return self._router._drained and not self.pending and self.inflight == 0


class _GatherState:
    """Tracks a scattered operation until every part returns."""

    __slots__ = ("parent", "parts", "remaining")

    def __init__(self, parent, parts):
        self.parent = parent
        self.parts = parts
        self.remaining = len(parts)


class ShardedPaTree:
    """N independent single-device PA-Trees behind one router.

    Parameters
    ----------
    simos:
        The shared simulated OS every shard's worker thread runs on.
    n_shards:
        Number of shards; each gets its own simulated NVMe device.
    partitioning:
        ``"hash"`` (default; uniform placement, range scans broadcast)
        or ``"range"`` (contiguous key slices, range scans touch only
        the covered shards).
    policy_factory:
        Zero-argument callable building one scheduling policy per
        shard (a policy binds to exactly one engine).
    device_profile:
        :class:`~repro.nvme.device.DeviceProfile` shared by all shard
        devices (profiles are immutable calibration constants).  Each
        device still draws service times from its own named RNG
        stream, so shards are stochastically independent.
    backend:
        One backend spec (see :mod:`repro.backend`) applied to every
        shard, or a per-shard list whose entries must normalize
        identically — shards are shared-nothing but must sit on the
        same kind of substrate.  File backends with an explicit path
        get a ``.shard<i>`` suffix per shard so scratch files never
        collide.
    """

    def __init__(
        self,
        simos,
        n_shards,
        partitioning=HASH_PARTITIONING,
        payload_size=8,
        policy_factory=None,
        persistence=PERSISTENCE_STRONG,
        buffer_pages_per_shard=0,
        device_profile=None,
        qpair_size=4096,
        faults=None,
        retry=None,
        backend=None,
    ):
        if n_shards < 1:
            raise SchedulerError("need at least one shard")
        if partitioning not in (HASH_PARTITIONING, RANGE_PARTITIONING):
            raise SchedulerError("unknown partitioning %r" % (partitioning,))
        self.simos = simos
        self.engine = simos.engine
        self.n_shards = n_shards
        self.partitioning = partitioning
        self.persistence = persistence
        if policy_factory is None:
            policy_factory = NaiveScheduling
        self.device_profile = device_profile or i3_nvme_profile()
        # default range split: equal slices of the 64-bit key space,
        # rebalanced to population quantiles at bulk_load time
        self._split_keys = [
            ((1 << 64) // n_shards) * i for i in range(1, n_shards)
        ]

        backend_spec = normalize_shard_backends(backend, n_shards)
        if isinstance(backend_spec, IoBackend) and n_shards > 1:
            raise BackendConfigError(
                "a built backend instance cannot be shared across %d "
                "shards; pass a spec instead" % n_shards
            )
        self.backend_kind = (
            backend_spec.kind
            if isinstance(backend_spec, (IoBackend, BackendSpec))
            else "sim"
        )
        self.backends = []
        self.devices = []
        self.drivers = []
        self.trees = []
        self.engines = []
        self._sources = []
        for index in range(n_shards):
            # each shard's device builds its own injector from the
            # shared fault config, drawing from its own named stream
            shard_backend = make_backend(
                self._shard_spec(backend_spec, index),
                engine=self.engine,
                profile=self.device_profile,
                rng_name="nvme-shard-%d" % index,
                faults=faults,
                retry=retry,
            )
            tree = PaTree.create(shard_backend.device, payload_size=payload_size)
            source = _ShardSource(self)
            worker = PaTreeEngine(
                simos,
                shard_backend,
                tree,
                policy_factory(),
                source=source,
                buffer=make_buffer(persistence, buffer_pages_per_shard),
                persistence=persistence,
                qpair=shard_backend.alloc_qpair(
                    sq_size=qpair_size, cq_size=qpair_size
                ),
                name="pa-shard-%d" % index,
            )
            self.backends.append(shard_backend)
            self.devices.append(shard_backend.device)
            self.drivers.append(shard_backend.driver)
            self.trees.append(tree)
            self.engines.append(worker)
            self._sources.append(source)

        # router state
        self._drained = True
        self._global_pending = deque()
        self._window = 0
        self._inflight = 0
        self._gathers = {}
        self._dispatch_ns = {}

        # router-level measurement (user-visible operations, counted
        # once each — scattered parts are invisible here)
        self.latencies = LatencyRecorder()
        self.user_completed = 0
        self.user_failed = 0
        self.last_user_done_ns = 0

    @staticmethod
    def _shard_spec(spec, index):
        """Derive shard ``index``'s spec from the fleet-wide one.

        File backends with an explicit scratch path get a per-shard
        suffix; every other spec is shared as-is (each shard's device
        still draws from its own RNG stream).
        """
        if (
            isinstance(spec, BackendSpec)
            and spec.kind == "file"
            and spec.options.get("path")
        ):
            options = dict(spec.options)
            options["path"] = "%s.shard%d" % (options["path"], index)
            return BackendSpec("file", **options)
        return spec

    def close(self):
        """Release every shard backend's host-side resources."""
        for shard_backend in self.backends:
            shard_backend.close()

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------

    def shard_for(self, key):
        """The shard index that owns ``key``."""
        if self.partitioning == RANGE_PARTITIONING:
            return bisect.bisect_right(self._split_keys, key)
        return shard_mix64(key) % self.n_shards

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------

    def bulk_load(self, items, fill_factor=0.7):
        """Offline build from sorted unique (key, payload) pairs.

        Range mode re-derives the split keys from the population's
        quantiles so preloaded shards are balanced; hash mode scatters
        by the mix (each shard's slice of a sorted stream stays
        sorted, so per-shard bulk loads remain bottom-up builds).
        """
        items = check_bulk_items(items)
        if self.partitioning == RANGE_PARTITIONING:
            if items and self.n_shards > 1:
                step = len(items) // self.n_shards
                self._split_keys = [
                    items[step * i][0] for i in range(1, self.n_shards)
                ]
            start = 0
            for index in range(self.n_shards):
                end = (
                    bisect.bisect_left(items, (self._split_keys[index], b""))
                    if index < self.n_shards - 1
                    else len(items)
                )
                self.trees[index].bulk_load(items[start:end], fill_factor)
                start = end
            return
        per_shard = [[] for _ in range(self.n_shards)]
        for item in items:
            per_shard[self.shard_for(item[0])].append(item)
        for tree, shard_items in zip(self.trees, per_shard):
            tree.bulk_load(shard_items, fill_factor)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def _dispatch(self, op):
        if op.kind == SYNC:
            self._scatter(
                op,
                [sync_op() for _ in range(self.n_shards)],
                list(range(self.n_shards)),
            )
            return
        if op.kind == RANGE:
            self._dispatch_range(op)
            return
        if op.kind == BATCH:
            self._dispatch_batch(op)
            return
        self._sources[self.shard_for(op.key)].pending.append(op)

    def _dispatch_batch(self, op):
        """Fan a batched operation out by shard key.

        Each shard receives one sub-batch carrying the parent indices
        of its specs (``spec_indices``), so the gather can merge the
        per-shard result vectors back into input order.
        """
        groups = {}
        for index, spec in enumerate(op.specs or ()):
            groups.setdefault(self.shard_for(spec.key), []).append(index)
        if len(groups) <= 1:
            target = next(iter(groups)) if groups else 0
            self._sources[target].pending.append(op)
            return
        parts = []
        targets = []
        for shard in sorted(groups):
            indices = groups[shard]
            part = batch_op([op.specs[i] for i in indices])
            part.spec_indices = indices
            parts.append(part)
            targets.append(shard)
        self._scatter(op, parts, targets)

    def _dispatch_range(self, op):
        if self.partitioning == HASH_PARTITIONING:
            # every shard may hold keys from [low, high]: broadcast,
            # each shard returns its (sorted) matches, merge in order
            if self.n_shards == 1:
                self._sources[0].pending.append(op)
                return
            parts = [
                range_op(op.key, op.high_key, limit=op.limit)
                for _ in range(self.n_shards)
            ]
            self._scatter(op, parts, list(range(self.n_shards)))
            return
        low_shard = self.shard_for(op.key)
        high_shard = self.shard_for(op.high_key)
        if low_shard == high_shard:
            self._sources[low_shard].pending.append(op)
            return
        parts = []
        targets = []
        for index in range(low_shard, high_shard + 1):
            low = op.key if index == low_shard else self._split_keys[index - 1]
            high = (
                op.high_key
                if index == high_shard
                else self._split_keys[index] - 1
            )
            parts.append(range_op(low, high, limit=op.limit))
            targets.append(index)
        self._scatter(op, parts, targets)

    def _scatter(self, parent, parts, targets):
        state = _GatherState(parent, parts)
        for part in parts:
            self._gathers[id(part)] = state
        for part, target in zip(parts, targets):
            self._sources[target].pending.append(part)

    def _on_shard_complete(self, op):
        state = self._gathers.pop(id(op), None)
        if state is not None:
            state.remaining -= 1
            if state.remaining:
                return
            parent = state.parent
            for part in state.parts:
                if part.error is not None:
                    # a failed part poisons the gathered result: the
                    # parent carries the first shard error observed
                    parent.error = part.error
                    break
            if parent.kind == RANGE:
                # per-shard results are sorted; a k-way merge restores
                # global key order (range partitioning scatters in
                # shard order, so its parts are already concatenable,
                # but the merge is correct and cheap for both modes)
                merged = list(
                    heapq.merge(*(part.result or () for part in state.parts))
                )
                if parent.limit:
                    merged = merged[: parent.limit]
                parent.result = None if parent.error is not None else merged
            elif parent.kind == BATCH:
                # stitch per-shard result vectors back into input order
                if parent.error is not None:
                    parent.result = None
                    for part in state.parts:
                        if part.error is not None and part.spec_indices:
                            cursor = part.cursor
                            if not 0 <= cursor < len(part.spec_indices):
                                cursor = 0
                            parent.cursor = part.spec_indices[cursor]
                            break
                else:
                    merged = [None] * len(parent.specs or ())
                    for part in state.parts:
                        for local, parent_index in enumerate(part.spec_indices):
                            merged[parent_index] = part.result[local]
                    parent.result = merged
            else:  # broadcast sync: total pages flushed
                parent.result = sum(part.result or 0 for part in state.parts)
            if parent.on_complete is not None:
                parent.on_complete(parent)
            op = parent
        self._inflight -= 1
        now = self.engine.now
        if op.done_ns is None:
            op.done_ns = now
        started = self._dispatch_ns.pop(id(op), None)
        if started is not None and op.error is None:
            self.latencies.record(op.done_ns - started)
        if op.kind != SYNC:
            if op.error is None:
                self.user_completed += 1
                self.last_user_done_ns = op.done_ns
            else:
                self.user_failed += 1
        self._refill()

    def _refill(self):
        while self._inflight < self._window and self._global_pending:
            next_op = self._global_pending.popleft()
            now = self.engine.now
            next_op.admit_ns = now
            self._dispatch_ns[id(next_op)] = now
            self._inflight += 1
            self._dispatch(next_op)
        if not self._global_pending and self._inflight == 0:
            self._drained = True

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run_operations(self, operations, window=64):
        """Run a batch across all shards to completion.

        ``window`` is the *aggregate* closed-loop admission window —
        the number of concurrent callers the whole fleet models.  The
        router fans admitted operations out to the owning shards; each
        shard's worker interleaves whatever lands on it.
        """
        operations = list(operations)
        self._global_pending = deque(operations)
        self._window = window
        self._drained = False
        self._inflight = 0
        self._refill()
        workers = []
        for worker in self.engines:
            worker.reset_source()
            workers.append(worker.start())
        self.engine.run(until=lambda: all(thread.done for thread in workers))
        if not all(thread.done for thread in workers):
            raise SchedulerError("sharded run did not finish")
        for worker in self.engines:
            worker.latches.assert_quiescent()
        return operations

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def attach_trace(self, session):
        """Wire one :class:`~repro.obs.TraceSession` across every shard.

        Each shard's device and worker attach under a ``shard<i>``
        name so sampled series and spans stay distinguishable in one
        recording.
        """
        session.attach_simos(self.simos)
        for index in range(self.n_shards):
            name = "shard%d" % index
            session.attach_device(self.devices[index], name=name)
            session.attach_worker(self.engines[index], name=name)
        return session

    def register_metrics(self, registry):
        """Register the fleet into a metric registry.

        Router-level rollups register unlabeled; each shard's full
        stack registers under a ``shard="<i>"`` label, so per-shard and
        aggregate views coexist in one registry.
        """
        registry.counter(
            "router_user_completed_total",
            fn=lambda: self.user_completed,
            help="user operations completed across all shards",
        )
        registry.counter(
            "router_user_failed_total",
            fn=lambda: self.user_failed,
            help="user operations surfaced with a typed error",
        )
        registry.gauge(
            "router_inflight_ops",
            fn=lambda: self._inflight,
            help="operations admitted through the closed-loop window",
        )
        registry.gauge(
            "router_pending_ops",
            fn=lambda: len(self._global_pending),
            help="operations queued behind the admission window",
        )
        for index in range(self.n_shards):
            self.engines[index].register_metrics(
                registry, labels={"shard": str(index)}
            )
        return registry

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def key_count(self):
        return sum(tree.meta.key_count for tree in self.trees)

    def validate(self):
        """Validate every shard tree; returns aggregate statistics."""
        stats = {"keys": 0, "nodes": 0}
        for tree in self.trees:
            part = tree.validate()
            stats["keys"] += part["keys"]
            stats["nodes"] += part["nodes"]
        return stats

    def iterate_items_raw(self):
        """All (key, payload) pairs in global key order (zero time)."""
        return heapq.merge(*(tree.iterate_items_raw() for tree in self.trees))

    def stats(self):
        """Aggregate + per-shard statistics snapshot.

        Returns a fresh dict on every call.  All counters are
        cumulative over the router's lifetime; ``per_shard[i]`` holds
        shard *i*'s own engine/device counters and the top-level
        totals are their sums, so ``sum(s["completed"] for s in
        per_shard) == completed`` always holds.
        """
        per_shard = []
        injectors_armed = False
        for index in range(self.n_shards):
            shard_stats = self.engines[index].stats()
            device = self.devices[index]
            shard_stats["shard"] = index
            shard_stats["device_reads"] = device.reads_completed.value
            shard_stats["device_writes"] = device.writes_completed.value
            shard_stats["device_errors"] = device.errors_completed.value
            if device.fault_injector is not None:
                injectors_armed = True
                shard_stats["faults"] = device.fault_injector.stats()
            per_shard.append(shard_stats)
        # explicit `_total` rollups of the retry/fault/error family, so
        # health tooling can read aggregates without summing per_shard
        totals = {
            "%s_total" % key: sum(s[key] for s in per_shard)
            for key in (
                "device_errors",
                "io_errors",
                "failed_ops",
                "io_retries",
                "io_escalations",
                "lost_writes",
            )
        }
        if injectors_armed:
            fault_totals = {}
            for shard_stats in per_shard:
                for key, value in shard_stats.get("faults", {}).items():
                    fault_totals[key] = fault_totals.get(key, 0) + value
            totals["faults"] = fault_totals
        return {
            **totals,
            "shards": self.n_shards,
            "partitioning": self.partitioning,
            "completed": sum(s["completed"] for s in per_shard),
            "user_completed": self.user_completed,
            "user_failed": self.user_failed,
            "probes": sum(s["probes"] for s in per_shard),
            "latch_waits": sum(s["latch_waits"] for s in per_shard),
            "device_reads": sum(s["device_reads"] for s in per_shard),
            "device_writes": sum(s["device_writes"] for s in per_shard),
            "device_errors": sum(s["device_errors"] for s in per_shard),
            "io_errors": sum(s["io_errors"] for s in per_shard),
            "failed_ops": sum(s["failed_ops"] for s in per_shard),
            "io_retries": sum(s["io_retries"] for s in per_shard),
            "io_escalations": sum(s["io_escalations"] for s in per_shard),
            "lost_writes": sum(s["lost_writes"] for s in per_shard),
            "mean_latency_us": self.latencies.mean_usec(),
            "p99_latency_us": self.latencies.p99_usec(),
            "per_shard": per_shard,
        }
