"""Sharded multi-device PA-Tree (scale-out extension).

The paper saturates one NVMe SSD with one polled working thread; this
package is the scale-out seam: N independent ``(NvmeDevice,
NvmeDriver, PaTreeEngine)`` shards on one simulated machine, each
driven by its own polled worker, behind a single routing front door.
"""

from repro.shard.sharded import (
    HASH_PARTITIONING,
    RANGE_PARTITIONING,
    ShardedPaTree,
    shard_mix64,
)

__all__ = [
    "ShardedPaTree",
    "HASH_PARTITIONING",
    "RANGE_PARTITIONING",
    "shard_mix64",
]
