"""Deterministic fault injection for the simulated NVMe device.

Real polled-mode NVMe paths must survive per-command failure statuses
and stragglers; this module makes those first-class, reproducible
quantities.  A :class:`FaultConfig` declares *what* can go wrong and a
:class:`FaultInjector` (one per device, seeded from the device's own
named RNG stream) decides, per command, *whether* it goes wrong:

* **Transient media errors** — with probability ``read_error_rate`` /
  ``write_error_rate`` a command completes with
  :attr:`~repro.nvme.command.IoStatus.MEDIA_ERROR`; a failed write
  leaves the media unchanged, a failed read returns no data.  These are
  retriable: the driver's :class:`~repro.nvme.driver.RetryPolicy`
  resubmits with virtual-time exponential backoff.
* **Latency spikes (stragglers)** — with probability ``spike_rate`` a
  command's media service time is multiplied by ``spike_factor``,
  producing the tail-latency outliers real devices exhibit.
* **Poisoned LBAs** — pages listed in ``poison_lbas`` (or covered by
  ``poison_ranges``) fail every *read* with the non-retriable
  :attr:`~repro.nvme.command.IoStatus.UNRECOVERED_READ`.  A successful
  *write* to a poisoned LBA cures it (the FTL remaps the bad block on
  program, as real SSDs do) — so writes always eventually land and a
  durable index never wedges on a bad block, while cold poisoned pages
  surface typed read errors to the layers above.

Because the injector draws from its own named stream
(``faults:<device-rng-name>``), enabling fault injection never perturbs
device service-time draws: a zero-rate config is bit-for-bit identical
to running with no injector at all, and a nonzero-rate run is exactly
reproducible from the experiment seed.
"""

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.nvme.command import IoStatus


@dataclass(frozen=True)
class FaultConfig:
    """Declarative fault model for one simulated device.

    Rates are per-command probabilities in ``[0, 1]``;
    ``poison_ranges`` is an iterable of inclusive ``(low, high)`` LBA
    pairs.  The default config injects nothing.
    """

    read_error_rate: float = 0.0
    write_error_rate: float = 0.0
    spike_rate: float = 0.0
    spike_factor: float = 25.0
    poison_lbas: tuple = ()
    poison_ranges: tuple = ()

    def __post_init__(self):
        for name in ("read_error_rate", "write_error_rate", "spike_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise SimulationError("%s %r outside [0, 1]" % (name, rate))
        if self.spike_factor < 1.0:
            raise SimulationError(
                "spike_factor %r must be >= 1" % (self.spike_factor,)
            )
        for pair in self.poison_ranges:
            low, high = pair
            if low > high or low < 0:
                raise SimulationError("bad poison range %r" % (pair,))

    @property
    def injects_anything(self):
        return bool(
            self.read_error_rate
            or self.write_error_rate
            or self.spike_rate
            or self.poison_lbas
            or self.poison_ranges
        )


class FaultInjector:
    """Per-device fault decision engine with its own RNG stream.

    The device consults it at two points: :meth:`service_factor` when a
    command is fetched into a channel (latency spikes) and
    :meth:`complete_status` when media service finishes (error codes).
    All counters are cumulative and exposed through :meth:`stats`.
    """

    def __init__(self, config, rng):
        self.config = config
        self._rng = rng
        self._poisoned = set(config.poison_lbas)
        self._ranges = tuple(
            (int(low), int(high)) for low, high in config.poison_ranges
        )
        self._cured = set()
        # cumulative counters
        self.media_errors_injected = 0
        self.spikes_injected = 0
        self.poison_read_failures = 0
        self.poison_cured = 0

    # -- poison bookkeeping --------------------------------------------

    def poison(self, lba):
        """Mark one LBA bad at runtime (tests / chaos harnesses)."""
        self._cured.discard(lba)
        self._poisoned.add(lba)

    def is_poisoned(self, lba):
        if lba in self._poisoned:
            return True
        if lba in self._cured:
            return False
        return any(low <= lba <= high for low, high in self._ranges)

    def _cure(self, lba):
        self._poisoned.discard(lba)
        if any(low <= lba <= high for low, high in self._ranges):
            self._cured.add(lba)
        self.poison_cured += 1

    # -- device decision points ----------------------------------------

    def service_factor(self, is_write):
        """Multiplier applied to this command's media service time."""
        rate = self.config.spike_rate
        if rate and self._rng.random() < rate:
            self.spikes_injected += 1
            return self.config.spike_factor
        return 1.0

    def complete_status(self, command):
        """The :class:`IoStatus` this command completes with.

        Called once per service attempt; a write that succeeds against
        a poisoned LBA cures it (FTL remap-on-program).
        """
        if not command.is_write and self.is_poisoned(command.lba):
            self.poison_read_failures += 1
            return IoStatus.UNRECOVERED_READ
        rate = (
            self.config.write_error_rate
            if command.is_write
            else self.config.read_error_rate
        )
        if rate and self._rng.random() < rate:
            self.media_errors_injected += 1
            return IoStatus.MEDIA_ERROR
        if command.is_write and self.is_poisoned(command.lba):
            self._cure(command.lba)
        return IoStatus.SUCCESS

    # -- introspection -------------------------------------------------

    def stats(self):
        """Cumulative injection counters (fresh dict per call)."""
        return {
            "media_errors_injected": self.media_errors_injected,
            "spikes_injected": self.spikes_injected,
            "poison_read_failures": self.poison_read_failures,
            "poison_cured": self.poison_cured,
            "poisoned_lbas": len(self._poisoned),
        }


def make_injector(faults, rng):
    """Normalize ``faults`` (None / config / injector) for a device."""
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        return faults
    if isinstance(faults, FaultConfig):
        return FaultInjector(faults, rng)
    if isinstance(faults, dict):
        return FaultInjector(FaultConfig(**faults), rng)
    raise SimulationError(
        "faults must be a FaultConfig, FaultInjector, dict or None, "
        "not %r" % (faults,)
    )
