"""Ready-operation queues (paper §IV-B).

Two implementations of the ready set ``R(C)``:

* :class:`FifoReadyQueue` — plain admission order (the naive
  scheduler, and the "without prioritized execution" arm of Fig 12).
* :class:`PriorityReadyQueue` — the paper's prioritized execution: an
  operation holding write latches is processed before others (so its
  exclusive latches release sooner, improving concurrency under
  contention), and ties break by admission order (older first, bounding
  individual latency).

The priority is computed when the operation (re-)enters the ready set,
which is exactly when its latch holdings last changed.
"""

import heapq
from collections import deque


class FifoReadyQueue:
    """First-in-first-out ready set."""

    def __init__(self):
        self._queue = deque()

    def __len__(self):
        return len(self._queue)

    def push(self, op):
        self._queue.append(op)

    def pop(self):
        if not self._queue:
            return None
        return self._queue.popleft()


class PriorityReadyQueue:
    """Write-latch holders first, then admission order."""

    def __init__(self):
        self._heap = []
        self._tiebreak = 0

    def __len__(self):
        return len(self._heap)

    def push(self, op):
        holds_write = 1 if op.write_latches == 0 else 0
        self._tiebreak += 1
        heapq.heappush(self._heap, (holds_write, op.seq, self._tiebreak, op))

    def pop(self):
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[3]
