"""Probing-strategy baselines (Fig 10).

* :class:`FixedRateProbing` — probe every ``omega`` microseconds, the
  paper's pre-defined fixed-rate strategy (``omega = 0`` probes on
  every loop iteration).
* :class:`AvgLatencyProbing` — probe every ``avg(t)`` microseconds
  where ``avg(t)`` is the mean I/O completion latency over the last
  second, the paper's first naive dynamic strategy.

Both process ready operations FIFO and sleep until the next probe
instant when idle, isolating the probing strategy as the only
difference from the workload-aware policy.
"""

from repro.sched.base import SchedulingPolicy
from repro.sched.priority import FifoReadyQueue
from repro.sim.clock import usec


class _TimerProbing(SchedulingPolicy):
    """Shared machinery: probe when a (possibly dynamic) period elapsed."""

    def __init__(self):
        super().__init__()
        self._ready = FifoReadyQueue()
        self._last_probe_ns = None

    def period_ns(self):
        raise NotImplementedError

    def on_ready(self, op):
        self._ready.push(op)

    def pick(self):
        return self._ready.pop()

    def ready_count(self):
        return len(self._ready)

    def should_probe(self):
        if self.engine.io_history.outstanding_count == 0:
            return False
        if self._last_probe_ns is None:
            return True
        return self.engine.clock.now - self._last_probe_ns >= self.period_ns()

    def note_probe(self, now_ns, completions):
        self._last_probe_ns = now_ns

    def idle_sleep_ns(self):
        if self.engine.io_history.outstanding_count == 0:
            return usec(20)
        if self._last_probe_ns is None:
            return 0
        remaining = self.period_ns() - (self.engine.clock.now - self._last_probe_ns)
        return max(0, remaining)


class FixedRateProbing(_TimerProbing):
    """Probe every ``omega_us`` microseconds."""

    name = "fixed_rate"

    def __init__(self, omega_us):
        super().__init__()
        if omega_us < 0:
            raise ValueError("omega must be non-negative")
        self.omega_ns = usec(omega_us)

    def period_ns(self):
        return self.omega_ns


class AvgLatencyProbing(_TimerProbing):
    """Probe every mean-completion-latency microseconds."""

    name = "avg_latency"

    def __init__(self, fallback_us=100):
        super().__init__()
        self.fallback_ns = usec(fallback_us)

    def period_ns(self):
        average = self.engine.io_history.avg_completion_latency_ns()
        return average if average > 0 else self.fallback_ns
