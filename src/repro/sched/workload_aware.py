"""Workload-aware scheduling (paper Algorithm 2).

Combines the three optimizations of §IV:

* **model-gated probing** — probe only when the linear-regression
  estimator predicts at least one completed I/O is waiting,
* **prioritized execution** — process write-latch holders first, then
  older operations,
* **CPU yielding** — when the ready set is empty and the model
  predicts no completion now *or* after ``t`` more microseconds, yield
  the core for ``t``.

Each knob can be disabled independently for the ablation experiments
(Fig 12 disables prioritization, Fig 13 disables yielding).
"""

from repro.sched.base import SchedulingPolicy
from repro.sched.priority import FifoReadyQueue, PriorityReadyQueue
from repro.sim.clock import usec


class WorkloadAwareScheduling(SchedulingPolicy):
    """Algorithm 2 with switchable prioritization and yielding."""

    name = "workload_aware"

    def __init__(
        self,
        probe_model,
        prioritized=True,
        cpu_yield=True,
        yield_granularity_us=50,
        min_probe_gap_us=3.0,
        max_probe_gap_us=100.0,
    ):
        super().__init__()
        self.probe_model = probe_model
        self.prioritized = prioritized
        self.cpu_yield = cpu_yield
        self.yield_ns = usec(yield_granularity_us)
        self._inflight_granule_ns = usec(min(yield_granularity_us, 10))
        self.min_probe_gap_ns = usec(min_probe_gap_us)
        self.max_probe_gap_ns = usec(max_probe_gap_us)
        self._ready = PriorityReadyQueue() if prioritized else FifoReadyQueue()
        self._last_probe_ns = -1

    def on_ready(self, op):
        self._ready.push(op)

    def pick(self):
        return self._ready.pop()

    def ready_count(self):
        return len(self._ready)

    def should_probe(self):
        history = self.engine.io_history
        if history.outstanding_count == 0:
            return False
        now = self.engine.clock.now
        if self._last_probe_ns < 0:
            self._last_probe_ns = now  # start the deadline clock
        if self._last_probe_ns >= 0:
            gap = now - self._last_probe_ns
            if gap < self.min_probe_gap_ns:
                return False
            # Deadline fallback: a purely model-gated probe can starve
            # detection when few, old I/Os make the prediction hover
            # below one; bound the detection delay (and tail latency).
            if gap >= self.max_probe_gap_ns:
                return True
        features = history.feature_vector()
        return self.probe_model.predicts_completion(features)

    def note_probe(self, now_ns, completions):
        self._last_probe_ns = now_ns

    def idle_sleep_ns(self):
        if not self.cpu_yield:
            return 0
        history = self.engine.io_history
        if history.outstanding_count == 0:
            return self.yield_ns
        # Nothing ready and no completion predicted to be due yet:
        # yield the core.  Detection of a completion that lands
        # mid-sleep is delayed by at most the granule (and bounded
        # overall by the probe deadline), which costs a little latency
        # but saves the idle spin -- the Fig 13 trade.  With I/Os in
        # flight a short granule keeps that delay small relative to
        # device latency; with none in flight the full granule is safe.
        if self.probe_model.predicts_completion(history.feature_vector()):
            return 0
        return min(self.yield_ns, self._inflight_granule_ns)

    def gate_cost_ns(self):
        return self.engine.sched_gate_cost_ns
