"""The linear-regression completion estimator (paper §IV-A).

The model maps the recent-submission feature vector ``T = w|r`` to the
expected number of completed (but not yet detected) write and read
I/Os, ``(w0, r0)``.  The working thread probes the NVMe interface only
when the model predicts at least one completion, which is the paper's
workload-aware probing strategy.

Training is offline against the device model: a synthetic driver
submits I/O with piecewise-random intensity and write ratio, probes
once per slice width, and records (features before probe, detected
completions) pairs; ``beta`` is the least-squares solution (the paper
trains the same model class with pandas; we use ``numpy.linalg``).
"""

import numpy as np

from repro.backend import make_backend
from repro.sched.history import DEFAULT_SLICES, DEFAULT_WINDOW_US, IoHistory
from repro.sim.clock import usec
from repro.sim.engine import Engine


class LinearProbeModel:
    """``(w0, r0) = T @ beta`` with a ``2n x 2`` parameter matrix."""

    def __init__(self, beta, window_us=DEFAULT_WINDOW_US, slices=DEFAULT_SLICES):
        beta = np.asarray(beta, dtype=np.float64)
        if beta.shape != (2 * slices, 2):
            raise ValueError(
                "beta shape %r, expected %r" % (beta.shape, (2 * slices, 2))
            )
        self.beta = beta
        self.window_us = window_us
        self.slices = slices
        self._beta_w = beta[:, 0]
        self._beta_r = beta[:, 1]

    def predict(self, features):
        """Expected (completed writes, completed reads) right now."""
        n = len(features)
        w0 = 0.0
        r0 = 0.0
        beta_w = self._beta_w
        beta_r = self._beta_r
        for index in range(n):
            value = features[index]
            if value:
                w0 += value * beta_w[index]
                r0 += value * beta_r[index]
        return w0, r0

    def predicts_completion(self, features, threshold=1.0):
        w0, r0 = self.predict(features)
        return w0 >= threshold or r0 >= threshold


def train_probe_model(
    engine_seed,
    device_profile,
    duration_us=400_000,
    window_us=DEFAULT_WINDOW_US,
    slices=DEFAULT_SLICES,
    max_outstanding=96,
    ridge=1e-6,
):
    """Train a :class:`LinearProbeModel` against ``device_profile``.

    Drives the device model with open-loop traffic whose intensity and
    write ratio are re-drawn every few milliseconds (covering idle to
    saturated, read-only to write-heavy), samples features and detected
    completions once per slice width, and solves the ridge-regularized
    least-squares system.
    """
    engine = Engine(seed=engine_seed)
    backend = make_backend(
        "sim", engine=engine, profile=device_profile, rng_name="probe_train"
    )
    device = backend.device
    driver = backend.driver
    qpair = driver.alloc_qpair()
    history = IoHistory(engine.clock, window_us, slices)
    rng = engine.rng.stream("probe_train_load")

    slice_ns = usec(window_us) // slices
    segment_ns = usec(4_000)
    tick_ns = usec(5)

    rows_x = []
    rows_y = []
    state = {"rate_per_tick": 1.0, "write_ratio": 0.1, "segment_end": 0}

    def submit_tick():
        if engine.now >= state["segment_end"]:
            state["rate_per_tick"] = rng.uniform(0.0, 0.6)
            state["write_ratio"] = rng.uniform(0.0, 1.0)
            state["segment_end"] = engine.now + segment_ns
        expected = state["rate_per_tick"]
        count = int(expected)
        if rng.random() < expected - count:
            count += 1
        for _ in range(count):
            if history.outstanding_count >= max_outstanding:
                break
            lba = rng.randrange(1, device_profile.capacity_pages)
            if rng.random() < state["write_ratio"]:
                payload = bytes(device_profile.page_size)
                command = driver.write(qpair, lba, payload)
            else:
                command = driver.read(qpair, lba)
            history.on_submit(command)
        engine.schedule(tick_ns, submit_tick)

    def sample_tick():
        features = history.feature_vector()
        completed = device.probe(qpair, 0)
        writes = 0
        reads = 0
        for completion in completed:
            history.on_complete(completion.command)
            if completion.is_write:
                writes += 1
            else:
                reads += 1
        rows_x.append(features)
        rows_y.append((writes, reads))
        engine.schedule(slice_ns, sample_tick)

    engine.schedule(0, submit_tick)
    engine.schedule(slice_ns, sample_tick)
    engine.run(until_ns=usec(duration_us))

    x = np.asarray(rows_x, dtype=np.float64)
    y = np.asarray(rows_y, dtype=np.float64)
    # Ridge-regularized normal equations: robust when some slices never
    # saw traffic (singular plain least squares).
    gram = x.T @ x + ridge * np.eye(x.shape[1])
    beta = np.linalg.solve(gram, x.T @ y)
    return LinearProbeModel(beta, window_us, slices)


_MODEL_CACHE = {}


def cached_probe_model(device_profile, seed=12345, **kwargs):
    """Train-once-per-profile cache used by benchmark sweeps."""
    key = (
        device_profile.name,
        device_profile.channels,
        device_profile.read_service_ns,
        device_profile.write_service_ns,
        seed,
        tuple(sorted(kwargs.items())),
    )
    model = _MODEL_CACHE.get(key)
    if model is None:
        model = train_probe_model(seed, device_profile, **kwargs)
        _MODEL_CACHE[key] = model
    return model
