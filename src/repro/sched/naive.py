"""Naive scheduling (paper Algorithm 1).

Process ready operations in admission order and probe the NVMe
interface on every main-loop iteration.  No completion estimation, no
prioritization, no CPU yielding: when idle the thread spins in the
main loop, probing as it goes.
"""

from repro.sched.base import SchedulingPolicy
from repro.sched.priority import FifoReadyQueue


class NaiveScheduling(SchedulingPolicy):
    """Algorithm 1: FIFO processing, probe every iteration, never yield."""

    name = "naive"

    def __init__(self):
        super().__init__()
        self._ready = FifoReadyQueue()

    def on_ready(self, op):
        self._ready.push(op)

    def pick(self):
        return self._ready.pop()

    def ready_count(self):
        return len(self._ready)

    def should_probe(self):
        return True

    def idle_sleep_ns(self):
        return 0
