"""Operation scheduling: the paper's naive (Algorithm 1) and
workload-aware (Algorithm 2) schedulers, the linear-regression probe
model, ready-queue implementations and the Fig 10 probing baselines."""

from repro.sched.base import SchedulingPolicy
from repro.sched.history import IoHistory
from repro.sched.naive import NaiveScheduling
from repro.sched.policies import AvgLatencyProbing, FixedRateProbing
from repro.sched.priority import FifoReadyQueue, PriorityReadyQueue
from repro.sched.probe_model import (
    LinearProbeModel,
    cached_probe_model,
    train_probe_model,
)
from repro.sched.workload_aware import WorkloadAwareScheduling

SCHEDULERS = ("workload_aware", "naive")


def make_scheduler(name, device_profile=None):
    """Build a scheduling policy instance from its configuration name.

    The single factory behind every session facade, the shard router
    and the bench harness — ``"workload_aware"`` (Algorithm 2; trains
    or reuses the cached probe model for ``device_profile``) or
    ``"naive"`` (Algorithm 1).  Each call returns a fresh policy: a
    policy binds to exactly one engine.
    """
    if name == "workload_aware":
        if device_profile is None:
            from repro.backend import i3_nvme_profile

            device_profile = i3_nvme_profile()
        return WorkloadAwareScheduling(cached_probe_model(device_profile))
    if name == "naive":
        return NaiveScheduling()
    from repro.errors import SchedulerError

    raise SchedulerError("unknown scheduler %r" % (name,))


__all__ = [
    "SCHEDULERS",
    "make_scheduler",
    "SchedulingPolicy",
    "NaiveScheduling",
    "WorkloadAwareScheduling",
    "FixedRateProbing",
    "AvgLatencyProbing",
    "IoHistory",
    "LinearProbeModel",
    "train_probe_model",
    "cached_probe_model",
    "FifoReadyQueue",
    "PriorityReadyQueue",
]
