"""Operation scheduling: the paper's naive (Algorithm 1) and
workload-aware (Algorithm 2) schedulers, the linear-regression probe
model, ready-queue implementations and the Fig 10 probing baselines."""

from repro.sched.base import SchedulingPolicy
from repro.sched.history import IoHistory
from repro.sched.naive import NaiveScheduling
from repro.sched.policies import AvgLatencyProbing, FixedRateProbing
from repro.sched.priority import FifoReadyQueue, PriorityReadyQueue
from repro.sched.probe_model import (
    LinearProbeModel,
    cached_probe_model,
    train_probe_model,
)
from repro.sched.workload_aware import WorkloadAwareScheduling

__all__ = [
    "SchedulingPolicy",
    "NaiveScheduling",
    "WorkloadAwareScheduling",
    "FixedRateProbing",
    "AvgLatencyProbing",
    "IoHistory",
    "LinearProbeModel",
    "train_probe_model",
    "cached_probe_model",
    "FifoReadyQueue",
    "PriorityReadyQueue",
]
