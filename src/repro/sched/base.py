"""Scheduling policy interface.

A policy owns the ready set ``R(C)`` and decides, each iteration of
the working thread's main loop: which ready operation to process next,
whether to probe the NVMe completion queue now, and whether the thread
may yield its core when there is nothing to do.  The engine charges
the policy's bookkeeping CPU (``pick_cost_ns`` / ``gate_cost_ns``) to
the ``scheduling`` category so Fig 9 can show scheduling overhead
explicitly.
"""


class SchedulingPolicy:
    """Base policy; concrete policies override the decision points."""

    name = "base"

    def __init__(self):
        self.engine = None

    def bind(self, engine):
        """Called once by the PA engine before the run starts."""
        self.engine = engine

    # ready set --------------------------------------------------------

    def on_ready(self, op):
        raise NotImplementedError

    def pick(self):
        raise NotImplementedError

    def ready_count(self):
        raise NotImplementedError

    # observability ------------------------------------------------------

    def register_metrics(self, registry, labels=None):
        """Expose the ready-set size; policies may add their own."""
        registry.gauge(
            "sched_ready_ops", labels,
            fn=self.ready_count,
            help="operations in the policy's ready set",
        )
        return registry

    # probe gating ------------------------------------------------------

    def should_probe(self):
        """Probe the completion queue in this loop iteration?"""
        raise NotImplementedError

    def note_probe(self, now_ns, completions):
        """Engine reports every probe it performed."""

    # idling -------------------------------------------------------------

    def idle_sleep_ns(self):
        """When nothing is ready: >0 = yield the CPU for that long,
        0 = busy-spin (the engine charges the spin to ``scheduling``)."""
        return 0

    # CPU cost hooks ------------------------------------------------------
    # Engines expose ``sched_pick_cost_ns`` / ``sched_gate_cost_ns`` so
    # policies work against any polled-mode engine (B+ tree or LSM).

    def pick_cost_ns(self):
        return self.engine.sched_pick_cost_ns

    def gate_cost_ns(self):
        return 0
