"""Runtime I/O bookkeeping for the workload-aware scheduler.

Tracks the working thread's outstanding I/O commands and produces the
paper's feature vector ``T = w|r`` (§IV-A): the recent ``t``
microseconds are divided into ``n`` time slices, and ``w_i`` / ``r_i``
count the outstanding write / read commands submitted within the
``i``-th slice (slice 0 = most recent).  Commands older than the
window are clamped into the oldest slice — they are still outstanding
and still predictive.

Also maintains the rolling average completion latency used by the
``avg(t)`` probing baseline of Fig 10.
"""

from collections import deque

from repro.sim.clock import usec

DEFAULT_WINDOW_US = 1000
DEFAULT_SLICES = 20


class IoHistory:
    """Outstanding-I/O tracker owned by one working thread."""

    def __init__(self, clock, window_us=DEFAULT_WINDOW_US, slices=DEFAULT_SLICES,
                 latency_window_us=1_000_000):
        if slices < 1:
            raise ValueError("need at least one slice")
        self.clock = clock
        self.window_ns = usec(window_us)
        self.slices = slices
        self.slice_ns = self.window_ns // slices
        self.latency_window_ns = usec(latency_window_us)
        self._outstanding = {}
        self._completions = deque()
        self._latency_sum = 0
        self.submitted_reads = 0
        self.submitted_writes = 0
        self.detected_completions = 0

    @property
    def outstanding_count(self):
        return len(self._outstanding)

    def on_submit(self, command):
        self._outstanding[id(command)] = (command.submit_ns, command.is_write)
        if command.is_write:
            self.submitted_writes += 1
        else:
            self.submitted_reads += 1

    def on_complete(self, command):
        """Record a completion *detected by probe* (polled-mode)."""
        self._outstanding.pop(id(command), None)
        self.detected_completions += 1
        latency = self.clock.now - command.submit_ns
        self._completions.append((self.clock.now, latency))
        self._latency_sum += latency
        self._trim_completions()

    def _trim_completions(self):
        horizon = self.clock.now - self.latency_window_ns
        completions = self._completions
        while completions and completions[0][0] < horizon:
            _, latency = completions.popleft()
            self._latency_sum -= latency

    def feature_vector(self, at_ns=None):
        """The ``2n``-dim feature list ``[w_1..w_n, r_1..r_n]``.

        ``at_ns`` lets the scheduler ask "what will the vector look
        like at a future instant" for the CPU-yield decision (ages grow
        but no new submissions are assumed).
        """
        now = self.clock.now if at_ns is None else at_ns
        n = self.slices
        features = [0.0] * (2 * n)
        slice_ns = self.slice_ns
        last = n - 1
        for submit_ns, is_write in self._outstanding.values():
            age = now - submit_ns
            index = age // slice_ns
            if index > last:
                index = last
            elif index < 0:
                index = 0
            if is_write:
                features[index] += 1.0
            else:
                features[n + index] += 1.0
        return features

    def avg_completion_latency_ns(self):
        """Mean detected-completion latency over the rolling window."""
        self._trim_completions()
        count = len(self._completions)
        if count == 0:
            return 0
        return self._latency_sum // count
