"""PA-Tree: Polled-Mode Asynchronous B+ Tree for NVMe (ICDE 2020).

A full reproduction of Wang et al.'s PA-Tree on a deterministic
discrete-event simulator: the polled-mode asynchronous execution
paradigm, workload-aware scheduling (probe model, prioritized
execution, CPU yielding), strong/weak persistent buffering, the
shared/dedicated synchronous baselines, Blink-tree, LCB-tree and a
LevelDB-like LSM store, plus the paper's full evaluation suite.

Quick start::

    from repro import PATreeSession

    with PATreeSession(seed=7) as session:
        session.bulk_load((k, k.to_bytes(8, "little")) for k in range(1, 10_001))
        session[123_456] = b"hello!!" + b"\\x00"
        assert 123_456 in session

Scale out across simulated devices with ``ShardedSession``::

    from repro import SessionConfig, ShardedSession

    with ShardedSession(SessionConfig(seed=7, shards=4)) as fleet:
        ...

Inject deterministic device faults (and tune the driver's retry)::

    from repro import FaultConfig, PATreeSession, SessionConfig

    config = SessionConfig(seed=7, faults=FaultConfig(read_error_rate=0.01))
    with PATreeSession(config) as session:
        ...
"""

from repro.api import (
    AsyncLsmSession,
    BaseSession,
    PATreeSession,
    SessionConfig,
    ShardedSession,
    SimEnvironment,
)
from repro.core import (
    PERSISTENCE_STRONG,
    PERSISTENCE_WEAK,
    PaTree,
    PaTreeEngine,
    delete_op,
    insert_op,
    range_op,
    search_op,
    sync_op,
    update_op,
)
from repro.core.ops import OpResult, OpSpec, batch_op
from repro.errors import (
    BatchError,
    BulkLoadError,
    IoError,
    ReproError,
    RetryExhaustedError,
)
from repro.faults import FaultConfig
from repro.nvme.command import IoStatus
from repro.backend import RetryPolicy
from repro.shard import ShardedPaTree

__version__ = "1.6.0"

__all__ = [
    "PATreeSession",
    "AsyncLsmSession",
    "ShardedSession",
    "SessionConfig",
    "BaseSession",
    "SimEnvironment",
    "PaTree",
    "PaTreeEngine",
    "ShardedPaTree",
    "OpSpec",
    "OpResult",
    "batch_op",
    "ReproError",
    "IoError",
    "RetryExhaustedError",
    "BatchError",
    "BulkLoadError",
    "IoStatus",
    "FaultConfig",
    "RetryPolicy",
    "PERSISTENCE_STRONG",
    "PERSISTENCE_WEAK",
    "search_op",
    "range_op",
    "insert_op",
    "update_op",
    "delete_op",
    "sync_op",
    "__version__",
]
