"""LRU cache core.

An ``OrderedDict``-based least-recently-used map used by both buffer
managers and by the LSM block cache.  Eviction returns the victim to
the caller, which decides what to do with it (drop clean pages, flush
dirty ones).
"""

from collections import OrderedDict


class LruCache:
    """Bounded LRU mapping; capacity counts entries (pages)."""

    def __init__(self, capacity):
        if capacity < 1:
            raise ValueError("LRU capacity must be positive")
        self.capacity = capacity
        self._entries = OrderedDict()

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries

    def get(self, key):
        """Return the value and mark it most-recently used, or None."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        self._entries.move_to_end(key)
        return entry

    def peek(self, key):
        """Return the value without touching recency, or None."""
        return self._entries.get(key)

    def put(self, key, value):
        """Insert/replace; returns the evicted ``(key, value)`` or None."""
        entries = self._entries
        if key in entries:
            entries[key] = value
            entries.move_to_end(key)
            return None
        entries[key] = value
        if len(entries) > self.capacity:
            return entries.popitem(last=False)
        return None

    def pop(self, key):
        """Remove and return the value, or None if absent."""
        return self._entries.pop(key, None)

    def items(self):
        return self._entries.items()

    def keys(self):
        return self._entries.keys()
