"""Strong-persistent buffering (paper §III-C, read-only buffer).

Every node write still goes directly to the NVM, so a completed update
operation is durable; the buffer only short-circuits reads.  To keep
the cache consistent with the media under asynchronous I/O, a written
block is installed into the buffer **only when its write I/O
completes** — installing earlier would make the new content visible to
concurrent operations before it is durable.
"""

from repro.buffer.lru import LruCache


class ReadOnlyBuffer:
    """LRU page cache that never holds dirty data."""

    mode = "strong"

    def __init__(self, capacity_pages):
        self._lru = LruCache(capacity_pages)
        self.hits = 0
        self.misses = 0

    def __len__(self):
        return len(self._lru)

    @property
    def dirty_count(self):
        return 0

    def lookup(self, page_id):
        data = self._lru.get(page_id)
        if data is None:
            self.misses += 1
        else:
            self.hits += 1
        return data

    def install(self, page_id, data):
        """Cache a block known to match the media (read return or
        completed write).  Clean eviction needs no I/O, so the list of
        dirty evictions to flush is always empty."""
        self._lru.put(page_id, bytes(data))
        return []

    def write(self, page_id, data):
        """Weak-buffer interface shim: strong buffering never absorbs
        writes; the caller must issue the I/O.  Returns no evictions."""
        return []

    def invalidate(self, page_id):
        self._lru.pop(page_id)

    def hit_rate(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def register_metrics(self, registry, labels=None):
        """Expose hit/miss counters through a metric registry."""
        registry.counter(
            "buffer_hits_total", labels,
            fn=lambda: self.hits, help="page lookups served from cache",
        )
        registry.counter(
            "buffer_misses_total", labels,
            fn=lambda: self.misses, help="page lookups that went to media",
        )
        registry.gauge(
            "buffer_hit_ratio", labels,
            fn=self.hit_rate, help="cumulative cache hit rate",
        )
        registry.gauge(
            "buffer_resident_pages", labels,
            fn=lambda: len(self._lru), help="pages resident in the cache",
        )
        return registry

    def snapshot(self):
        """Stats dict for the observability exporters."""
        return {
            "mode": self.mode,
            "pages": len(self._lru),
            "capacity": self._lru.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate(),
            "dirty": 0,
        }
