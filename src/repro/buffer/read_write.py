"""Weak-persistent buffering (paper §III-C, read-write buffer).

Writes land in the buffer as dirty pages and reach the NVM only when
evicted or when the application calls ``sync()``, merging repeated
writes to hot pages into one device write (lower write amplification).

Pages whose flush I/O is in flight remain readable through the
``in-flight`` side table until the write completes — otherwise a read
racing the flush would fetch stale bytes from the media.
"""

from repro.buffer.lru import LruCache


class _Entry:
    __slots__ = ("data", "dirty")

    def __init__(self, data, dirty):
        self.data = data
        self.dirty = dirty


class ReadWriteBuffer:
    """LRU page cache with write-back and explicit sync."""

    mode = "weak"

    def __init__(self, capacity_pages):
        self._lru = LruCache(capacity_pages)
        self._in_flight = {}  # page_id -> [latest bytes, outstanding count]
        self.hits = 0
        self.misses = 0
        self.write_absorbs = 0
        self.flushes = 0

    def __len__(self):
        return len(self._lru)

    @property
    def dirty_count(self):
        return sum(1 for _, entry in self._lru.items() if entry.dirty)

    def lookup(self, page_id):
        entry = self._lru.get(page_id)
        if entry is not None:
            self.hits += 1
            return entry.data
        in_flight = self._in_flight.get(page_id)
        if in_flight is not None:
            self.hits += 1
            return in_flight[0]
        self.misses += 1
        return None

    def install(self, page_id, data):
        """Fill from a completed read; returns dirty evictions to flush."""
        if page_id in self._lru:
            return []
        evicted = self._lru.put(page_id, _Entry(bytes(data), dirty=False))
        return self._handle_eviction(evicted)

    def write(self, page_id, data):
        """Absorb a node write; returns dirty evictions to flush."""
        self.write_absorbs += 1
        entry = self._lru.get(page_id)
        if entry is not None:
            entry.data = bytes(data)
            entry.dirty = True
            return []
        evicted = self._lru.put(page_id, _Entry(bytes(data), dirty=True))
        return self._handle_eviction(evicted)

    def _handle_eviction(self, evicted):
        if evicted is None:
            return []
        page_id, entry = evicted
        if not entry.dirty:
            return []
        self._mark_in_flight(page_id, entry.data)
        self.flushes += 1
        return [(page_id, entry.data)]

    def take_dirty(self):
        """All dirty pages, marked in-flight, for a ``sync()`` flush."""
        flushing = []
        for page_id, entry in self._lru.items():
            if entry.dirty:
                entry.dirty = False
                self._mark_in_flight(page_id, entry.data)
                flushing.append((page_id, entry.data))
        self.flushes += len(flushing)
        return flushing

    def _mark_in_flight(self, page_id, data):
        slot = self._in_flight.get(page_id)
        if slot is None:
            self._in_flight[page_id] = [data, 1]
        else:
            slot[0] = data
            slot[1] += 1

    def in_flight_data(self, page_id):
        """Latest bytes being flushed for ``page_id``, or None."""
        slot = self._in_flight.get(page_id)
        return slot[0] if slot else None

    def flush_done(self, page_id):
        """One flush write to ``page_id`` completed."""
        slot = self._in_flight.get(page_id)
        if slot is None:
            return
        slot[1] -= 1
        if slot[1] <= 0:
            del self._in_flight[page_id]

    def invalidate(self, page_id):
        self._lru.pop(page_id)
        self._in_flight.pop(page_id, None)

    def hit_rate(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def register_metrics(self, registry, labels=None):
        """Expose hit/miss/absorb/flush counters through a registry."""
        registry.counter(
            "buffer_hits_total", labels,
            fn=lambda: self.hits, help="page lookups served from cache",
        )
        registry.counter(
            "buffer_misses_total", labels,
            fn=lambda: self.misses, help="page lookups that went to media",
        )
        registry.gauge(
            "buffer_hit_ratio", labels,
            fn=self.hit_rate, help="cumulative cache hit rate",
        )
        registry.gauge(
            "buffer_resident_pages", labels,
            fn=lambda: len(self._lru), help="pages resident in the cache",
        )
        registry.gauge(
            "buffer_dirty_pages", labels,
            fn=lambda: self.dirty_count, help="resident pages awaiting flush",
        )
        registry.counter(
            "buffer_write_absorbs_total", labels,
            fn=lambda: self.write_absorbs,
            help="node writes absorbed without device I/O",
        )
        registry.counter(
            "buffer_flushes_total", labels,
            fn=lambda: self.flushes,
            help="dirty pages handed to the flush path",
        )
        return registry

    def snapshot(self):
        """Stats dict for the observability exporters."""
        return {
            "mode": self.mode,
            "pages": len(self._lru),
            "capacity": self._lru.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate(),
            "dirty": self.dirty_count,
            "write_absorbs": self.write_absorbs,
            "flushes": self.flushes,
        }
