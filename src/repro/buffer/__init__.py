"""Buffer management: LRU core, strong-persistent read-only buffer and
weak-persistent read-write buffer (paper §III-C)."""

from repro.buffer.lru import LruCache
from repro.buffer.read_only import ReadOnlyBuffer
from repro.buffer.read_write import ReadWriteBuffer


def make_buffer(persistence, buffer_pages):
    """Build the buffer matching a persistence mode, or None.

    The single factory behind the session facades, the shard router
    and the bench harness: ``"weak"`` persistence gets a write-back
    :class:`ReadWriteBuffer` (and requires ``buffer_pages > 0``),
    ``"strong"`` gets a :class:`ReadOnlyBuffer` when ``buffer_pages``
    is positive and no buffer otherwise.
    """
    if persistence == "weak":
        if buffer_pages <= 0:
            from repro.errors import SchedulerError

            raise SchedulerError("weak persistence requires a buffer")
        return ReadWriteBuffer(buffer_pages)
    if buffer_pages > 0:
        return ReadOnlyBuffer(buffer_pages)
    return None


__all__ = ["LruCache", "ReadOnlyBuffer", "ReadWriteBuffer", "make_buffer"]
