"""Buffer management: LRU core, strong-persistent read-only buffer and
weak-persistent read-write buffer (paper §III-C)."""

from repro.buffer.lru import LruCache
from repro.buffer.read_only import ReadOnlyBuffer
from repro.buffer.read_write import ReadWriteBuffer

__all__ = ["LruCache", "ReadOnlyBuffer", "ReadWriteBuffer"]
