"""Measurement primitives.

The paper reports throughput, mean latency, IOPS, time-averaged
outstanding I/Os, CPU cores consumed, context-switch counts and a CPU
breakdown by activity.  These recorders provide each of those as exact
accounted quantities in virtual time.
"""

import math

from repro.sim.clock import NS_PER_SEC, to_usec

# CPU burst categories used for the Fig 9 breakdown.
CPU_REAL_WORK = "real_work"
CPU_SYNC = "synchronization"
CPU_NVME = "nvme"
CPU_SCHED = "scheduling"
CPU_OTHER = "other"

CPU_CATEGORIES = (CPU_REAL_WORK, CPU_SYNC, CPU_NVME, CPU_SCHED, CPU_OTHER)


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def add(self, n=1):
        self.value += n

    def __repr__(self):
        return "Counter(%d)" % self.value


class TimeWeightedGauge:
    """Tracks the time integral of a piecewise-constant quantity.

    Used for time-averaged queue depth / outstanding I/Os: each change
    is recorded with the clock, and :meth:`average` divides the integral
    by elapsed time.
    """

    __slots__ = ("_clock", "_value", "_last_ns", "_area", "_max")

    def __init__(self, clock, initial=0):
        self._clock = clock
        self._value = initial
        self._last_ns = clock.now
        self._area = 0.0
        self._max = initial

    @property
    def value(self):
        return self._value

    @property
    def max_value(self):
        return self._max

    def set(self, value):
        now = self._clock.now
        self._area += self._value * (now - self._last_ns)
        self._last_ns = now
        self._value = value
        if value > self._max:
            self._max = value

    def add(self, delta):
        self.set(self._value + delta)

    def average(self, since_ns=0):
        """Time-weighted mean of the gauge from ``since_ns`` to now."""
        now = self._clock.now
        elapsed = now - since_ns
        if elapsed <= 0:
            return float(self._value)
        area = self._area + self._value * (now - self._last_ns)
        return area / elapsed


class LatencyRecorder:
    """Stores latency samples (ns) and reports summary statistics."""

    def __init__(self):
        self._samples = []
        self._sorted = True

    def __len__(self):
        return len(self._samples)

    def record(self, latency_ns):
        self._samples.append(latency_ns)
        self._sorted = False

    def mean_usec(self):
        if not self._samples:
            return 0.0
        return to_usec(sum(self._samples) / len(self._samples))

    def percentile_usec(self, q):
        """q-th percentile in microseconds, q in [0, 100]."""
        if not self._samples:
            return 0.0
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        if len(self._samples) == 1:
            return to_usec(self._samples[0])
        rank = (q / 100.0) * (len(self._samples) - 1)
        lo = int(math.floor(rank))
        hi = int(math.ceil(rank))
        if lo == hi:
            return to_usec(self._samples[lo])
        frac = rank - lo
        interp = self._samples[lo] * (1 - frac) + self._samples[hi] * frac
        return to_usec(interp)

    def p50_usec(self):
        return self.percentile_usec(50)

    def p99_usec(self):
        return self.percentile_usec(99)

    def max_usec(self):
        if not self._samples:
            return 0.0
        return to_usec(max(self._samples))


class CpuAccount:
    """CPU time ledger, split by activity category (for Fig 9)."""

    def __init__(self):
        self.by_category = {name: 0 for name in CPU_CATEGORIES}
        self.total_ns = 0

    def charge(self, ns, category=CPU_OTHER):
        if category not in self.by_category:
            category = CPU_OTHER
        self.by_category[category] += ns
        self.total_ns += ns

    def fraction(self, category):
        if self.total_ns == 0:
            return 0.0
        return self.by_category.get(category, 0) / self.total_ns

    def merged(self, other):
        """Return a new account summing this one with ``other``."""
        out = CpuAccount()
        for name in CPU_CATEGORIES:
            out.by_category[name] = (
                self.by_category[name] + other.by_category[name]
            )
        out.total_ns = self.total_ns + other.total_ns
        return out


def throughput_per_sec(count, elapsed_ns):
    """Operations (or I/Os) per second of virtual time."""
    if elapsed_ns <= 0:
        return 0.0
    return count * NS_PER_SEC / elapsed_ns
