"""Measurement primitives.

The paper reports throughput, mean latency, IOPS, time-averaged
outstanding I/Os, CPU cores consumed, context-switch counts and a CPU
breakdown by activity.  These recorders provide each of those as exact
accounted quantities in virtual time.
"""

import math

from repro.sim.clock import NS_PER_SEC, to_usec

# CPU burst categories used for the Fig 9 breakdown.
CPU_REAL_WORK = "real_work"
CPU_SYNC = "synchronization"
CPU_NVME = "nvme"
CPU_SCHED = "scheduling"
CPU_OTHER = "other"

CPU_CATEGORIES = (CPU_REAL_WORK, CPU_SYNC, CPU_NVME, CPU_SCHED, CPU_OTHER)


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def add(self, n=1):
        self.value += n

    def __repr__(self):
        return "Counter(%d)" % self.value


class TimeWeightedGauge:
    """Tracks the time integral of a piecewise-constant quantity.

    Used for time-averaged queue depth / outstanding I/Os: each change
    is recorded with the clock, and :meth:`average` divides the integral
    by elapsed time.
    """

    __slots__ = ("_clock", "_value", "_last_ns", "_area", "_max",
                 "_start_ns", "_marks")

    def __init__(self, clock, initial=0):
        self._clock = clock
        self._value = initial
        self._last_ns = clock.now
        self._area = 0.0
        self._max = initial
        self._start_ns = clock.now
        self._marks = {}

    @property
    def value(self):
        return self._value

    @property
    def max_value(self):
        return self._max

    def set(self, value):
        now = self._clock.now
        self._area += self._value * (now - self._last_ns)
        self._last_ns = now
        self._value = value
        if value > self._max:
            self._max = value

    def add(self, delta):
        self.set(self._value + delta)

    def _area_now(self):
        return self._area + self._value * (self._clock.now - self._last_ns)

    def mark(self):
        """Checkpoint the accumulated area at the current instant.

        Call at the start of a measurement window, then pass the
        returned time to :meth:`average` to get the exact mean over
        that window.
        """
        now = self._clock.now
        self._marks[now] = self._area_now()
        return now

    def average(self, since_ns=0):
        """Time-weighted mean of the gauge from ``since_ns`` to now.

        Exact when ``since_ns`` is 0 (whole lifetime), a time returned
        by :meth:`mark`, or no later than the last value change (the
        value has been constant over the tail).  Other window starts
        would silently require area the gauge no longer has, so they
        raise ``ValueError`` instead of inflating the average by
        dividing the whole accumulated area by the short window.
        """
        now = self._clock.now
        elapsed = now - since_ns
        if elapsed <= 0:
            return float(self._value)
        area = self._area_now()
        if since_ns > self._start_ns:
            base = self._marks.get(since_ns)
            if base is None:
                if since_ns >= self._last_ns:
                    base = area - self._value * (now - since_ns)
                else:
                    raise ValueError(
                        "no checkpoint at t=%d; call mark() at the window"
                        " start for windowed averages" % since_ns
                    )
            area -= base
        return area / elapsed


class LatencyRecorder:
    """Stores latency samples (ns) and reports summary statistics.

    Queries never mutate the recording order: percentiles work on a
    lazily built sorted copy that is invalidated by :meth:`record`, so
    interleaving queries with recording is safe and ``samples()``
    always returns samples in arrival order.
    """

    def __init__(self):
        self._samples = []
        self._sorted_cache = None

    def __len__(self):
        return len(self._samples)

    def record(self, latency_ns):
        self._samples.append(latency_ns)
        self._sorted_cache = None

    def samples(self):
        """The raw samples in arrival order (read-only view by copy)."""
        return list(self._samples)

    def _sorted_samples(self):
        if self._sorted_cache is None:
            self._sorted_cache = sorted(self._samples)
        return self._sorted_cache

    def mean_usec(self):
        if not self._samples:
            return 0.0
        return to_usec(sum(self._samples) / len(self._samples))

    def percentile_usec(self, q):
        """q-th percentile in microseconds, q in [0, 100]."""
        if not self._samples:
            return 0.0
        ordered = self._sorted_samples()
        if len(ordered) == 1:
            return to_usec(ordered[0])
        rank = (q / 100.0) * (len(ordered) - 1)
        lo = int(math.floor(rank))
        hi = int(math.ceil(rank))
        if lo == hi:
            return to_usec(ordered[lo])
        frac = rank - lo
        interp = ordered[lo] * (1 - frac) + ordered[hi] * frac
        return to_usec(interp)

    def p50_usec(self):
        return self.percentile_usec(50)

    def p99_usec(self):
        return self.percentile_usec(99)

    def p999_usec(self):
        return self.percentile_usec(99.9)

    def max_usec(self):
        if not self._samples:
            return 0.0
        return to_usec(max(self._samples))

    def snapshot(self):
        """Summary dict used by the observability exporters."""
        return {
            "count": len(self._samples),
            "mean_us": self.mean_usec(),
            "p50_us": self.p50_usec(),
            "p99_us": self.p99_usec(),
            "p999_us": self.p999_usec(),
            "max_us": self.max_usec(),
        }


class CpuAccount:
    """CPU time ledger, split by activity category (for Fig 9)."""

    def __init__(self):
        self.by_category = {name: 0 for name in CPU_CATEGORIES}
        self.total_ns = 0

    def charge(self, ns, category=CPU_OTHER):
        if category not in self.by_category:
            category = CPU_OTHER
        self.by_category[category] += ns
        self.total_ns += ns

    def fraction(self, category):
        if self.total_ns == 0:
            return 0.0
        return self.by_category.get(category, 0) / self.total_ns

    def merged(self, other):
        """Return a new account summing this one with ``other``."""
        out = CpuAccount()
        for name in CPU_CATEGORIES:
            out.by_category[name] = (
                self.by_category[name] + other.by_category[name]
            )
        out.total_ns = self.total_ns + other.total_ns
        return out


def throughput_per_sec(count, elapsed_ns):
    """Operations (or I/Os) per second of virtual time."""
    if elapsed_ns <= 0:
        return 0.0
    return count * NS_PER_SEC / elapsed_ns
