"""Event queue for the discrete-event kernel.

A binary heap of ``(time, sequence, Event)`` entries.  The sequence
number breaks ties so that events scheduled at the same instant fire in
scheduling order, which keeps runs deterministic.

Cancellation is lazy: :meth:`Event.cancel` marks the entry dead and the
heap skips it on pop.  This is the standard approach (also used by
``sched`` and asyncio) and keeps cancellation O(1).
"""

import heapq


class Event:
    """A scheduled callback.  Returned by :meth:`EventQueue.push`."""

    __slots__ = ("time", "seq", "fn", "cancelled")

    def __init__(self, time, seq, fn):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def cancel(self):
        """Prevent the event from firing.  Safe to call repeatedly."""
        self.cancelled = True
        self.fn = None

    def __lt__(self, other):
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return "Event(t=%d, seq=%d, %s)" % (self.time, self.seq, state)


class EventQueue:
    """Deterministic min-heap of events."""

    def __init__(self):
        self._heap = []
        self._seq = 0
        self._live = 0

    def __len__(self):
        return self._live

    def __bool__(self):
        return self._live > 0

    def push(self, time, fn):
        """Schedule ``fn`` to fire at virtual time ``time`` (ns)."""
        event = Event(time, self._seq, fn)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event):
        """Cancel a previously pushed event."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def peek_time(self):
        """Time of the next live event, or ``None`` if the queue is empty."""
        self._drop_dead()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self):
        """Remove and return the next live event, or ``None``."""
        self._drop_dead()
        if not self._heap:
            return None
        self._live -= 1
        return heapq.heappop(self._heap)

    def _drop_dead(self):
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
