"""The disabled tracer, at the bottom of the layer stack.

Engine-layer components (``repro.core``, ``repro.palsm``) hold a tracer
by default so the enabled check is one attribute read (``if
self.tracer.enabled:``) and the disabled path never allocates or
branches further.  The no-op implementation lives here in the
foundation layer — not in ``repro.obs`` — so holding the default does
not couple the engine upward to the observability package (patlint
PA501); ``repro.obs.tracer`` re-exports both names for its callers.
"""


class NullTracer:
    """Disabled tracer: every call is a no-op."""

    enabled = False
    events = ()
    dropped = 0

    def track_id(self, track):
        return 0

    def begin(self, track, name, cat="", args=None):
        return None

    def end(self, span, args=None):
        pass

    def complete(self, track, name, start_ns, end_ns, cat="", args=None):
        pass

    def instant(self, track, name, cat="", args=None):
        pass

    def async_begin(self, cat, aid, name, args=None):
        pass

    def async_instant(self, cat, aid, name, args=None):
        pass

    def async_end(self, cat, aid, name, args=None):
        pass

    def counter(self, track, name, values):
        pass

    def __len__(self):
        return 0


NULL_TRACER = NullTracer()
