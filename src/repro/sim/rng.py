"""Seeded random-number streams.

Every stochastic component (device service times, workload key draws,
arrival processes, ...) draws from its own named stream derived from a
single experiment seed.  Independent streams mean that, for example,
changing the workload generator does not perturb device service times,
which keeps A/B comparisons between schedulers and baselines paired.
"""

import random
import zlib


class RngRegistry:
    """Factory of named, deterministically seeded ``random.Random``."""

    def __init__(self, seed=0):
        self.seed = int(seed)
        self._streams = {}

    def stream(self, name):
        """Return the stream for ``name``, creating it on first use.

        The per-stream seed mixes the registry seed with a CRC of the
        name, so streams are stable across runs and independent of the
        order in which they are first requested.
        """
        stream = self._streams.get(name)
        if stream is None:
            mixed = (self.seed * 0x9E3779B1 + zlib.crc32(name.encode())) & 0xFFFFFFFF
            stream = random.Random(mixed)
            self._streams[name] = stream
        return stream

    def fork(self, salt):
        """Derive a new registry (e.g. one per repetition of a sweep)."""
        return RngRegistry((self.seed * 1_000_003 + int(salt)) & 0x7FFFFFFF)
