"""Virtual time.

The whole reproduction runs on simulated time so that every performance
quantity the paper reports (latency, throughput, CPU cores consumed,
context switches) is an exact accounted number rather than a wall-clock
measurement distorted by the Python interpreter.

Time is an integer count of **nanoseconds**.  Integers keep event
ordering exact and reproducible; helpers below convert to and from the
microsecond units the paper uses in its figures.
"""

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_SEC = 1_000_000_000


def usec(value):
    """Convert microseconds (int or float) to integer nanoseconds."""
    return int(round(value * NS_PER_US))


def msec(value):
    """Convert milliseconds to integer nanoseconds."""
    return int(round(value * NS_PER_MS))


def sec(value):
    """Convert seconds to integer nanoseconds."""
    return int(round(value * NS_PER_SEC))


def to_usec(ns):
    """Convert integer nanoseconds to float microseconds."""
    return ns / NS_PER_US


def to_msec(ns):
    """Convert integer nanoseconds to float milliseconds."""
    return ns / NS_PER_MS


def to_sec(ns):
    """Convert integer nanoseconds to float seconds."""
    return ns / NS_PER_SEC


class Clock:
    """Monotonic virtual clock owned by the simulation engine.

    Only the engine advances the clock; everyone else reads it through
    :attr:`now`.
    """

    __slots__ = ("_now",)

    def __init__(self, start_ns=0):
        self._now = int(start_ns)

    @property
    def now(self):
        """Current virtual time in nanoseconds."""
        return self._now

    @property
    def now_usec(self):
        """Current virtual time in float microseconds."""
        return self._now / NS_PER_US

    def advance_to(self, t_ns):
        """Move the clock forward to ``t_ns``.

        Raises ``ValueError`` on attempts to move backwards, which would
        indicate a corrupted event queue.
        """
        if t_ns < self._now:
            raise ValueError(
                "clock moving backwards: %d -> %d" % (self._now, t_ns)
            )
        self._now = t_ns

    def __repr__(self):
        return "Clock(now=%dns)" % self._now
