"""The discrete-event simulation kernel.

A minimal, deterministic event loop: components schedule callbacks at
future virtual times; :meth:`Engine.run` pops them in time order and
advances the clock.  Everything else in the reproduction — the OS
model, the NVMe device, the PA-Tree working thread — is built from
callbacks on this kernel.
"""

from repro.errors import SimulationError
from repro.sim.clock import Clock
from repro.sim.events import EventQueue
from repro.sim.rng import RngRegistry


class Engine:
    """Discrete-event simulation engine.

    Parameters
    ----------
    seed:
        Root seed for all random streams in the simulation.
    max_events:
        Safety valve: the engine raises :class:`SimulationError` after
        this many dispatched events, catching accidental infinite loops
        (e.g. a polling thread that never yields virtual time).
    """

    def __init__(self, seed=0, max_events=500_000_000):
        self.clock = Clock()
        self.events = EventQueue()
        self.rng = RngRegistry(seed)
        self.max_events = max_events
        self.dispatched = 0
        self._running = False
        # Observability hook: called with each event just before its
        # callback runs.  Must not schedule, cancel, or advance time.
        self.on_dispatch = None
        # Schedule-exploration hook (repro.fuzz): called with every
        # scheduled delay and returns the (possibly perturbed) delay to
        # use.  Must stay None outside fuzz runs so ordinary runs are
        # bit-identical; the fuzzer's perturbations stay >= 0.
        self.perturb_delay = None
        # Idle hook: called once when the event queue drains while a
        # run() is still looking for work.  SimOS installs its stall
        # guard here so a drained queue with blocked threads raises a
        # typed error instead of silently ending the run.
        self.on_idle = None

    @property
    def now(self):
        return self.clock.now

    def schedule(self, delay_ns, fn):
        """Run ``fn()`` after ``delay_ns`` nanoseconds of virtual time."""
        if self.perturb_delay is not None:
            delay_ns = self.perturb_delay(int(delay_ns))
        if delay_ns < 0:
            raise SimulationError("negative delay: %r" % delay_ns)
        return self.events.push(self.clock.now + int(delay_ns), fn)

    def schedule_at(self, time_ns, fn):
        """Run ``fn()`` at absolute virtual time ``time_ns``."""
        if time_ns < self.clock.now:
            raise SimulationError(
                "scheduling in the past: %d < %d" % (time_ns, self.clock.now)
            )
        return self.events.push(int(time_ns), fn)

    def cancel(self, event):
        self.events.cancel(event)

    def run(self, until_ns=None, until=None):
        """Dispatch events until a stop condition.

        ``until_ns``: stop once the clock would pass this time (the
        clock is left at ``until_ns``).  ``until``: a zero-argument
        predicate checked after every event.  With neither, runs until
        the event queue drains.
        """
        if self._running:
            raise SimulationError("Engine.run is not reentrant")
        self._running = True
        try:
            while True:
                if until is not None and until():
                    return
                next_time = self.events.peek_time()
                if next_time is None and self.on_idle is not None:
                    # the idle hook may raise (stall guard) or schedule
                    # wrap-up work; re-check the queue afterwards
                    self.on_idle()
                    next_time = self.events.peek_time()
                if next_time is None:
                    if until_ns is not None and until_ns > self.clock.now:
                        self.clock.advance_to(until_ns)
                    return
                if until_ns is not None and next_time > until_ns:
                    self.clock.advance_to(until_ns)
                    return
                event = self.events.pop()
                self.clock.advance_to(event.time)
                fn = event.fn
                event.fn = None
                self.dispatched += 1
                if self.on_dispatch is not None:
                    self.on_dispatch(event)
                if self.dispatched > self.max_events:
                    raise SimulationError(
                        "event budget exceeded (%d); likely a livelock"
                        % self.max_events
                    )
                fn()
        finally:
            self._running = False

    def run_for(self, duration_ns):
        """Run for ``duration_ns`` of virtual time from now."""
        self.run(until_ns=self.clock.now + duration_ns)
