"""Discrete-event simulation kernel: virtual clock, event queue, engine,
seeded random streams and measurement primitives."""

from repro.sim.clock import (
    Clock,
    NS_PER_MS,
    NS_PER_SEC,
    NS_PER_US,
    msec,
    sec,
    to_msec,
    to_sec,
    to_usec,
    usec,
)
from repro.sim.engine import Engine
from repro.sim.events import Event, EventQueue
from repro.sim.metrics import (
    CPU_CATEGORIES,
    CPU_NVME,
    CPU_OTHER,
    CPU_REAL_WORK,
    CPU_SCHED,
    CPU_SYNC,
    Counter,
    CpuAccount,
    LatencyRecorder,
    TimeWeightedGauge,
    throughput_per_sec,
)
from repro.sim.rng import RngRegistry

__all__ = [
    "Clock",
    "Engine",
    "Event",
    "EventQueue",
    "RngRegistry",
    "Counter",
    "CpuAccount",
    "LatencyRecorder",
    "TimeWeightedGauge",
    "throughput_per_sec",
    "CPU_CATEGORIES",
    "CPU_REAL_WORK",
    "CPU_SYNC",
    "CPU_NVME",
    "CPU_SCHED",
    "CPU_OTHER",
    "NS_PER_US",
    "NS_PER_MS",
    "NS_PER_SEC",
    "usec",
    "msec",
    "sec",
    "to_usec",
    "to_msec",
    "to_sec",
]
