"""Public synchronous facade.

Most users want a B+ tree they can call, not a simulation they must
wire.  The session classes here package a simulated machine (event
engine, OS model, one or more NVMe devices), the index structure and
its polled working thread(s) behind blocking calls: each call (or
batch) drives the discrete-event simulation until the operations
complete, then returns their results — so examples read like ordinary
database code while every access still flows through the full
polled-mode asynchronous machinery.

All sessions share one shape:

* construction from a :class:`SessionConfig` (or the equivalent
  keyword arguments — both spellings work and may be mixed, keywords
  winning),
* context-manager support (``with PATreeSession(seed=7) as s: ...``)
  and an idempotent :meth:`~BaseSession.close`,
* dict-style sugar: ``s[key] = payload``, ``s[key]``, ``key in s``,
* a :meth:`~BaseSession.stats` snapshot that returns a **fresh dict on
  every call** whose counters are **cumulative** over the session's
  lifetime (diff two snapshots to measure one batch).

Three sessions exist: :class:`PATreeSession` (one PA-Tree on one
device), :class:`AsyncLsmSession` (the PA-LSM extension on one
device), and :class:`ShardedSession` (a hash- or range-sharded fleet
of PA-Trees, one device per shard — see ``repro.shard``).

For experiments that need explicit control (custom policies, baseline
paradigms, open-loop arrival), use the underlying pieces directly; the
benchmark harness in ``repro.bench`` shows how.
"""

from dataclasses import dataclass, replace

from repro.buffer import make_buffer
from repro.core.engine import (
    PERSISTENCE_STRONG,
    PERSISTENCE_WEAK,
    PaTreeEngine,
)
from repro.core.ops import (
    delete_op,
    insert_op,
    range_op,
    search_op,
    sync_op,
    update_op,
)
from repro.core.source import ClosedLoopSource
from repro.core.tree import PaTree
from repro.errors import ReproError
from repro.nvme.device import NvmeDevice, i3_nvme_profile
from repro.nvme.driver import NvmeDriver, RetryPolicy
from repro.sched import make_scheduler
from repro.sim.engine import Engine
from repro.simos.scheduler import SimOS, paper_testbed_profile


@dataclass(frozen=True)
class SessionConfig:
    """Declarative configuration shared by every session facade.

    Parameters
    ----------
    seed:
        Simulation seed (full determinism).
    payload_size:
        Bytes per value (8 by default, as in the paper's YCSB setup).
    persistence:
        ``"strong"`` (every update durable on completion; read-only
        buffering) or ``"weak"`` (write-back buffer + explicit
        ``sync``).
    buffer_pages:
        Buffer capacity in pages (per shard for sharded sessions);
        0 disables buffering (strong mode only).
    scheduler:
        ``"workload_aware"`` (Algorithm 2; trains/caches the probe
        model on first use) or ``"naive"`` (Algorithm 1).
    window:
        Closed-loop in-flight window — how many concurrent callers
        the session models (aggregate across shards).
    device_profile / os_profile:
        Hardware calibration; defaults model the paper's testbed.
    memtable_entries:
        LSM sessions only: memtable flush threshold.
    shards / partitioning:
        Sharded sessions only: shard count and ``"hash"`` or
        ``"range"`` key placement.
    faults:
        Deterministic fault injection: a
        :class:`~repro.faults.FaultConfig` (or an equivalent dict of
        its fields), or None (the default) for a fault-free device.
        Sharded sessions build one injector per shard device, each
        drawing from its own seeded stream.
    retry:
        Driver-level :class:`~repro.nvme.driver.RetryPolicy` (or an
        equivalent dict of its fields) applied to transient media
        errors; None (the default) delivers every failure to the
        engine immediately.
    """

    seed: int = 0
    payload_size: int = 8
    persistence: str = PERSISTENCE_STRONG
    buffer_pages: int = 4096
    scheduler: str = "workload_aware"
    window: int = 64
    device_profile: object = None
    os_profile: object = None
    memtable_entries: int = 1_000
    shards: int = 4
    partitioning: str = "hash"
    faults: object = None
    retry: object = None

    def merged(self, **overrides):
        """A copy with ``overrides`` applied (unknown names raise)."""
        return replace(self, **overrides)


def make_retry(retry):
    """Normalize a retry spec (None / RetryPolicy / dict of fields)."""
    if retry is None or isinstance(retry, RetryPolicy):
        return retry
    if isinstance(retry, dict):
        return RetryPolicy(**retry)
    raise ReproError(
        "retry must be a RetryPolicy, dict or None, not %r" % (retry,)
    )


class SimEnvironment:
    """One simulated machine: event engine, OS, NVMe device, driver."""

    def __init__(
        self, seed=0, device_profile=None, os_profile=None, faults=None,
        retry=None,
    ):
        self.engine = Engine(seed=seed)
        self.os = SimOS(self.engine, os_profile or paper_testbed_profile())
        self.device_profile = device_profile or i3_nvme_profile()
        self.device = NvmeDevice(self.engine, self.device_profile, faults=faults)
        self.driver = NvmeDriver(self.device, retry=make_retry(retry))

    @property
    def now_usec(self):
        return self.engine.clock.now_usec


class BaseSession:
    """Common machinery of every blocking session facade.

    Subclasses set ``default_config`` (their knob defaults) and
    implement ``_build(config)``, ``execute(operations)``, ``_get``
    and ``_put``.  The base class provides configuration merging (a
    ``SessionConfig``, keyword overrides, or a bare int treated as a
    seed for backward compatibility), ``close()`` / context-manager
    support, and the dict-style sugar.
    """

    default_config = SessionConfig()

    def __init__(self, config=None, **overrides):
        if config is None:
            config = self.default_config
        elif isinstance(config, int):
            # legacy positional call: PATreeSession(7) meant seed=7
            config = self.default_config.merged(seed=config)
        elif not isinstance(config, SessionConfig):
            raise ReproError(
                "config must be a SessionConfig or an int seed, not %r"
                % (config,)
            )
        if overrides:
            try:
                config = config.merged(**overrides)
            except TypeError as exc:
                raise ReproError(str(exc)) from None
        self.config = config
        self.window = config.window
        self.closed = False
        self._build(config)

    # -- lifecycle -----------------------------------------------------

    def _build(self, config):
        raise NotImplementedError

    def close(self):
        """Mark the session closed; further data-plane calls raise.

        Idempotent.  Weak-persistence sessions flush their dirty tail
        first so the simulated media holds every acknowledged update.
        """
        if self.closed:
            return
        if self.config.persistence == PERSISTENCE_WEAK:
            self.sync()
        self.closed = True

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def _check_open(self):
        if self.closed:
            raise ReproError("session is closed")

    # -- data plane (shared verbs) -------------------------------------

    def execute(self, operations):
        """Run a batch of operations to completion; returns them.

        Batch execution never raises for per-operation I/O failures:
        each failed operation carries its typed error in ``op.error``
        (and ``op.result`` is None).  The single-operation verbs below
        *do* raise that error.
        """
        raise NotImplementedError

    @staticmethod
    def _result(op):
        """Single-op verbs surface a failed op's typed error by raising."""
        if op.error is not None:
            raise op.error
        return op.result

    def search(self, key):
        """Point lookup; returns the payload bytes or None."""
        (op,) = self.execute([search_op(key)])
        return self._result(op)

    def range_search(self, low, high, limit=0):
        """All (key, payload) pairs with low <= key <= high."""
        (op,) = self.execute([range_op(low, high, limit=limit)])
        return self._result(op)

    def insert(self, key, payload):
        """Upsert; returns True when the key was new."""
        (op,) = self.execute([insert_op(key, payload)])
        return self._result(op)

    def delete(self, key):
        """Remove a key; returns True when it was present."""
        (op,) = self.execute([delete_op(key)])
        return self._result(op)

    def sync(self):
        """Flush buffered updates (weak persistence); returns count."""
        (op,) = self.execute([sync_op()])
        return self._result(op)

    # -- dict-style sugar ----------------------------------------------

    def _get(self, key):
        return self.search(key)

    def _put(self, key, payload):
        self.insert(key, payload)

    def __getitem__(self, key):
        value = self._get(key)
        if value is None:
            raise KeyError(key)
        return value

    def __setitem__(self, key, payload):
        self._put(key, payload)

    def __contains__(self, key):
        return self._get(key) is not None

    # -- introspection -------------------------------------------------

    def stats(self):
        """Cumulative statistics snapshot (a fresh dict every call).

        Counters accumulate over the whole session, not per batch:
        callers wanting a per-batch window diff two snapshots.
        Mutating a returned dict never affects later calls.
        """
        raise NotImplementedError

    def attach_metrics(self, session=None, **session_kwargs):
        """Attach a :class:`~repro.obs.MetricsSession` to this session.

        Builds one (forwarding ``session_kwargs`` — SLO targets, scrape
        interval, flight-recorder capacity) unless an existing session
        is passed, wires it into this session's stack and returns it.
        The caller still owns the lifecycle: ``session.start()`` before
        the workload, ``session.finish()`` after.  A session that is
        never attached costs nothing.
        """
        raise NotImplementedError

    def _make_metrics(self, engine, session, session_kwargs):
        if session is not None:
            if session_kwargs:
                raise ReproError(
                    "pass session kwargs only when attach_metrics builds "
                    "the session"
                )
            return session
        from repro.obs.health import MetricsSession

        return MetricsSession(engine, **session_kwargs)


class PATreeSession(BaseSession):
    """Blocking convenience wrapper around a PA-Tree on one device.

    Accepts a :class:`SessionConfig` or the historical keyword
    arguments (``seed``, ``payload_size``, ``persistence``,
    ``buffer_pages``, ``scheduler``, ``window``, ``device_profile``,
    ``os_profile``); keywords override config fields.
    """

    default_config = SessionConfig()

    def _build(self, config):
        self.env = SimEnvironment(
            config.seed,
            config.device_profile,
            config.os_profile,
            faults=config.faults,
            retry=config.retry,
        )
        self.tree = PaTree.create(
            self.env.device, payload_size=config.payload_size
        )
        self.pa_engine = PaTreeEngine(
            self.env.os,
            self.env.driver,
            self.tree,
            make_scheduler(config.scheduler, self.env.device_profile),
            source=ClosedLoopSource([], window=config.window),
            buffer=make_buffer(config.persistence, config.buffer_pages),
            persistence=config.persistence,
        )

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------

    def bulk_load(self, items, fill_factor=0.7):
        """Offline bottom-up build from sorted unique (key, bytes) pairs."""
        self._check_open()
        self.tree.bulk_load(items, fill_factor)

    def execute(self, operations):
        """Run a batch of operations to completion; returns them."""
        self._check_open()
        operations = list(operations)
        engine = self.pa_engine
        engine.reset_source(ClosedLoopSource(operations, window=self.window))
        engine.run_to_completion()
        return operations

    def update(self, key, payload):
        """Overwrite an existing key; returns True when found."""
        (op,) = self.execute([update_op(key, payload)])
        return self._result(op)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def __len__(self):
        return self.tree.meta.key_count

    def stats(self):
        """Engine + device statistics for the session so far.

        Fresh dict per call; counters are cumulative (see
        :meth:`BaseSession.stats`).
        """
        stats = self.pa_engine.stats()
        device = self.env.device
        stats["device_reads"] = device.reads_completed.value
        stats["device_writes"] = device.writes_completed.value
        stats["device_errors"] = device.errors_completed.value
        if device.fault_injector is not None:
            stats["faults"] = device.fault_injector.stats()
        stats["virtual_time_us"] = self.env.now_usec
        return stats

    def attach_metrics(self, session=None, **session_kwargs):
        """Wire a metrics session into the device and engine stack."""
        session = self._make_metrics(self.env.engine, session, session_kwargs)
        session.attach_device(self.env.device)
        session.attach_worker(self.pa_engine)
        return session

    def validate(self):
        """Verify every on-media structural invariant of the tree."""
        return self.tree.validate()


class AsyncLsmSession(BaseSession):
    """Blocking convenience wrapper around the PA-LSM extension.

    The same facade shape as :class:`PATreeSession`, over the
    polled-mode asynchronous LSM store (``repro.palsm``): point and
    range reads, upserts, deletes and ``sync`` against one simulated
    device, with memtable flushes and compactions interleaved by the
    single polled working thread.
    """

    default_config = SessionConfig(scheduler="naive", buffer_pages=0)

    def _build(self, config):
        from repro.palsm import AsyncLsmStore, PolledLsmWorker

        self.env = SimEnvironment(
            config.seed,
            config.device_profile,
            config.os_profile,
            faults=config.faults,
            retry=config.retry,
        )
        self.store = AsyncLsmStore(
            self.env.device,
            persistence=config.persistence,
            memtable_entries=config.memtable_entries,
        )
        self.worker = PolledLsmWorker(
            self.env.os,
            self.env.driver,
            self.store,
            make_scheduler(config.scheduler, self.env.device_profile),
            ClosedLoopSource([], window=config.window),
        )

    def bulk_load(self, items):
        """Offline build of level-1 runs from sorted unique items."""
        self._check_open()
        self.store.bulk_load(sorted(items))
        self.store.resize_block_cache(max(self.store.data_pages() // 10, 64))

    def execute(self, operations):
        self._check_open()
        return self.worker.run_operations(list(operations), window=self.window)

    def put(self, key, payload):
        (op,) = self.execute([insert_op(key, payload)])
        return self._result(op)

    def get(self, key):
        (op,) = self.execute([search_op(key)])
        return self._result(op)

    # dict sugar routes through the LSM verbs
    _get = get
    _put = put

    def stats(self):
        """Worker statistics; fresh dict per call, cumulative counters."""
        stats = self.worker.stats()
        device = self.env.device
        stats["device_errors"] = device.errors_completed.value
        if device.fault_injector is not None:
            stats["faults"] = device.fault_injector.stats()
        stats["virtual_time_us"] = self.env.now_usec
        return stats

    def attach_metrics(self, session=None, **session_kwargs):
        """Wire a metrics session into the device and worker stack."""
        session = self._make_metrics(self.env.engine, session, session_kwargs)
        session.attach_device(self.env.device)
        session.attach_worker(self.worker)
        return session


class ShardedSession(BaseSession):
    """Blocking facade over a sharded multi-device PA-Tree fleet.

    ``config.shards`` independent (device, driver, tree, polled
    worker) stacks run on one simulated machine; a router splits each
    batch by key (``config.partitioning``: ``"hash"`` or ``"range"``),
    fans out the closed-loop window, merges cross-shard range scans in
    key order and broadcasts ``sync``.  See ``repro.shard`` for the
    underlying router.
    """

    default_config = SessionConfig(scheduler="naive", buffer_pages=0)

    def _build(self, config):
        from repro.shard import ShardedPaTree

        self.engine = Engine(seed=config.seed)
        self.os = SimOS(self.engine, config.os_profile or paper_testbed_profile())
        device_profile = config.device_profile or i3_nvme_profile()
        self.sharded = ShardedPaTree(
            self.os,
            config.shards,
            partitioning=config.partitioning,
            payload_size=config.payload_size,
            policy_factory=lambda: make_scheduler(
                config.scheduler, device_profile
            ),
            persistence=config.persistence,
            buffer_pages_per_shard=config.buffer_pages,
            device_profile=device_profile,
            faults=config.faults,
            retry=make_retry(config.retry),
        )

    @property
    def now_usec(self):
        return self.engine.clock.now_usec

    def bulk_load(self, items, fill_factor=0.7):
        """Offline build across all shards from sorted unique pairs."""
        self._check_open()
        self.sharded.bulk_load(items, fill_factor)

    def execute(self, operations):
        self._check_open()
        return self.sharded.run_operations(
            list(operations), window=self.window
        )

    def update(self, key, payload):
        """Overwrite an existing key; returns True when found."""
        (op,) = self.execute([update_op(key, payload)])
        return self._result(op)

    def __len__(self):
        return self.sharded.key_count

    def stats(self):
        """Aggregate + per-shard statistics (fresh dict, cumulative).

        The fault-injector rollup (``stats()["faults"]``) now comes
        from :meth:`repro.shard.ShardedPaTree.stats` alongside the
        ``*_total`` error/retry rollups.
        """
        stats = self.sharded.stats()
        stats["virtual_time_us"] = self.now_usec
        return stats

    def attach_metrics(self, session=None, **session_kwargs):
        """Wire a metrics session across every shard and the router."""
        session = self._make_metrics(self.engine, session, session_kwargs)
        session.attach_sharded(self.sharded)
        return session

    def validate(self):
        """Validate every shard tree; returns aggregate statistics."""
        return self.sharded.validate()
