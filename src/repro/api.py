"""Public synchronous facade.

Most users want a B+ tree they can call, not a simulation they must
wire.  The session classes here package a simulated machine (event
engine, OS model, one or more NVMe devices), the index structure and
its polled working thread(s) behind blocking calls: each call (or
batch) drives the discrete-event simulation until the operations
complete, then returns their results — so examples read like ordinary
database code while every access still flows through the full
polled-mode asynchronous machinery.

All sessions share one shape:

* construction from a :class:`SessionConfig` (or the equivalent
  keyword arguments — both spellings work and may be mixed, keywords
  winning),
* a batch-first data plane: :meth:`~BaseSession.put_many` /
  :meth:`~BaseSession.get_many` / :meth:`~BaseSession.delete_many`
  vector whole key sets through one planned batch operation (keys
  grouped by target leaf during a shared descent, one latch
  acquisition per group, sibling page writes coalesced into vectored
  device commands); the single-op verbs ``put`` / ``get`` /
  ``delete`` are size-1 batches over the same code path, and
  :meth:`~BaseSession.scan` walks a key range,
* a canonical :meth:`~BaseSession.execute` contract over
  :class:`~repro.core.ops.OpSpec` records returning
  :class:`~repro.core.ops.OpResult` records (raw
  :class:`~repro.core.ops.Operation` lists — the historical
  spelling — still work),
* context-manager support (``with PATreeSession(seed=7) as s: ...``)
  and an idempotent :meth:`~BaseSession.close`,
* dict-style sugar: ``s[key] = payload``, ``s[key]``, ``key in s``,
* a :meth:`~BaseSession.stats` snapshot that returns a **fresh dict on
  every call** whose counters are **cumulative** over the session's
  lifetime (diff two snapshots to measure one batch).

Three sessions exist: :class:`PATreeSession` (one PA-Tree on one
device), :class:`AsyncLsmSession` (the PA-LSM extension on one
device), and :class:`ShardedSession` (a hash- or range-sharded fleet
of PA-Trees, one device per shard — see ``repro.shard``).

For experiments that need explicit control (custom policies, baseline
paradigms, open-loop arrival), use the underlying pieces directly; the
benchmark harness in ``repro.bench`` shows how.
"""

import warnings
from dataclasses import dataclass, replace

from repro.backend import make_backend
from repro.buffer import make_buffer
from repro.core.engine import (
    PERSISTENCE_STRONG,
    PERSISTENCE_WEAK,
    PaTreeEngine,
)
from repro.core.ops import (
    OpResult,
    OpSpec,
    batch_op,
    range_op,
    sync_op,
    update_op,
)
from repro.core.source import ClosedLoopSource
from repro.core.tree import PaTree, check_bulk_items
from repro.errors import BatchError, ReproError
from repro.backend import RetryPolicy, i3_nvme_profile
from repro.sched import make_scheduler
from repro.sim.engine import Engine
from repro.simos.scheduler import SimOS, paper_testbed_profile


@dataclass(frozen=True)
class SessionConfig:
    """Declarative configuration shared by every session facade.

    Parameters
    ----------
    seed:
        Simulation seed (full determinism).
    payload_size:
        Bytes per value (8 by default, as in the paper's YCSB setup).
    persistence:
        ``"strong"`` (every update durable on completion; read-only
        buffering) or ``"weak"`` (write-back buffer + explicit
        ``sync``).
    buffer_pages:
        Buffer capacity in pages (per shard for sharded sessions);
        0 disables buffering (strong mode only).
    scheduler:
        ``"workload_aware"`` (Algorithm 2; trains/caches the probe
        model on first use) or ``"naive"`` (Algorithm 1).
    window:
        Closed-loop in-flight window — how many concurrent callers
        the session models (aggregate across shards).
    device_profile / os_profile:
        Hardware calibration; defaults model the paper's testbed.
    memtable_entries:
        LSM sessions only: memtable flush threshold.
    shards / partitioning:
        Sharded sessions only: shard count and ``"hash"`` or
        ``"range"`` key placement.
    faults:
        Deterministic fault injection: a
        :class:`~repro.faults.FaultConfig` (or an equivalent dict of
        its fields), or None (the default) for a fault-free device.
        Sharded sessions build one injector per shard device, each
        drawing from its own seeded stream.
    retry:
        Driver-level :class:`~repro.nvme.driver.RetryPolicy` (or an
        equivalent dict of its fields) applied to transient media
        errors; None (the default) delivers every failure to the
        engine immediately.
    backend:
        I/O substrate spec (see :mod:`repro.backend`): ``None`` (the
        process default — the simulated NVMe device unless
        ``repro.bench --backend`` overrode it), ``"sim"``, ``"file"``
        / ``"file:<path>"``, ``"replay:<trace>"``, a dict with a
        ``"kind"`` key, or a built
        :class:`~repro.backend.IoBackend`.  Unknown names raise
        :class:`~repro.errors.BackendConfigError`.  Sharded sessions
        require every shard on the same backend kind.
    """

    seed: int = 0
    payload_size: int = 8
    persistence: str = PERSISTENCE_STRONG
    buffer_pages: int = 4096
    scheduler: str = "workload_aware"
    window: int = 64
    device_profile: object = None
    os_profile: object = None
    memtable_entries: int = 1_000
    shards: int = 4
    partitioning: str = "hash"
    faults: object = None
    retry: object = None
    backend: object = None

    def merged(self, **overrides):
        """A copy with ``overrides`` applied (unknown names raise)."""
        return replace(self, **overrides)


def make_retry(retry):
    """Normalize a retry spec (None / RetryPolicy / dict of fields)."""
    if retry is None or isinstance(retry, RetryPolicy):
        return retry
    if isinstance(retry, dict):
        return RetryPolicy(**retry)
    raise ReproError(
        "retry must be a RetryPolicy, dict or None, not %r" % (retry,)
    )


class SimEnvironment:
    """One simulated machine: event engine, OS, and one I/O backend.

    The backend (``repro.backend``) carries the device model and the
    driver bound to it; ``self.device`` / ``self.driver`` stay exposed
    for observability attachment and tests.
    """

    def __init__(
        self, seed=0, device_profile=None, os_profile=None, faults=None,
        retry=None, backend=None,
    ):
        self.engine = Engine(seed=seed)
        self.os = SimOS(self.engine, os_profile or paper_testbed_profile())
        self.device_profile = device_profile or i3_nvme_profile()
        self.backend = make_backend(
            backend,
            engine=self.engine,
            profile=device_profile,
            faults=faults,
            retry=make_retry(retry),
        )
        self.device = self.backend.device
        self.driver = self.backend.driver

    def close(self):
        self.backend.close()

    @property
    def now_usec(self):
        return self.engine.clock.now_usec


class BaseSession:
    """Common machinery of every blocking session facade.

    Subclasses set ``default_config`` (their knob defaults) and
    implement ``_build(config)`` and ``_execute_ops(operations)`` —
    the one hook that drives raw operations through their engine.  The
    base class provides everything else: configuration merging (a
    ``SessionConfig``, keyword overrides, or a bare int treated as a
    seed for backward compatibility), the batch-first verbs (single
    ops are size-1 batches), the :class:`~repro.core.ops.OpSpec`
    execute contract, ``close()`` / context-manager support, and the
    dict-style sugar.
    """

    default_config = SessionConfig()

    def __init__(self, config=None, **overrides):
        if config is None:
            config = self.default_config
        elif isinstance(config, int):
            # legacy positional call: PATreeSession(7) meant seed=7
            config = self.default_config.merged(seed=config)
        elif not isinstance(config, SessionConfig):
            raise ReproError(
                "config must be a SessionConfig or an int seed, not %r"
                % (config,)
            )
        if overrides:
            try:
                config = config.merged(**overrides)
            except TypeError as exc:
                raise ReproError(str(exc)) from None
        self.config = config
        self.window = config.window
        self.closed = False
        self._build(config)

    # -- lifecycle -----------------------------------------------------

    def _build(self, config):
        raise NotImplementedError

    def close(self):
        """Mark the session closed; further data-plane calls raise.

        Idempotent.  Weak-persistence sessions flush their dirty tail
        first so the simulated media holds every acknowledged update.
        """
        if self.closed:
            return
        if self.config.persistence == PERSISTENCE_WEAK:
            self.sync()
        self.closed = True
        self._teardown()

    def _teardown(self):
        """Release backend resources; sessions with an env close it."""

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def _check_open(self):
        if self.closed:
            raise ReproError("session is closed")

    # -- data plane (canonical execute contract) -----------------------

    def execute(self, operations):
        """Run a batch of specs (or raw operations) to completion.

        Two input shapes are accepted:

        * a list of :class:`~repro.core.ops.OpSpec` records — the
          canonical contract.  Returns a matching list of
          :class:`~repro.core.ops.OpResult` records in input order;
          per-operation failures are carried in ``result.error``,
          never raised.
        * a list of raw :class:`~repro.core.ops.Operation` objects
          (the historical spelling) — returned as-is with
          ``op.result`` / ``op.error`` filled in.

        Mixing the two shapes in one call raises
        :class:`~repro.errors.ReproError`.  The single-operation and
        ``*_many`` verbs below *do* raise on failure.
        """
        self._check_open()
        items = list(operations)
        spec_flags = [isinstance(item, OpSpec) for item in items]
        if any(spec_flags):
            if not all(spec_flags):
                raise ReproError(
                    "execute() cannot mix OpSpec and Operation inputs"
                )
            ops = [spec.to_operation() for spec in items]
            self._execute_ops(ops)
            return [
                OpResult(spec.verb, spec.key, op.result, op.error)
                for spec, op in zip(items, ops)
            ]
        return self._execute_ops(items)

    def _execute_ops(self, operations):
        """Drive raw operations through the engine; returns them."""
        raise NotImplementedError

    @staticmethod
    def _result(op):
        """Single-op verbs surface a failed op's typed error by raising."""
        if op.error is not None:
            raise op.error
        return op.result

    # -- batch pipeline ------------------------------------------------

    def _run_batch(self, specs):
        """Run specs as one planned batch operation.

        Returns the per-spec result vector; raises
        :class:`~repro.errors.BatchError` naming the failing spec when
        an I/O failure aborts the batch.
        """
        specs = list(specs)
        if not specs:
            return []
        op = batch_op(specs)
        self._execute_ops([op])
        if op.error is not None:
            index = op.cursor if 0 <= op.cursor < len(specs) else 0
            raise self._batch_error(op.error, specs[index], index)
        return op.result

    def _single(self, spec):
        """Single-op verbs are size-1 batches: one code path end to end."""
        op = batch_op([spec])
        self._execute_ops([op])
        if op.error is not None:
            raise op.error
        return op.result[0]

    @staticmethod
    def _batch_error(cause, spec, index):
        """Wrap a mid-batch failure, naming the spec it stopped at."""
        error = BatchError(
            "batch aborted at %s(key=%d): %s" % (spec.verb, spec.key, cause),
            status=getattr(cause, "status", None),
            opcode=getattr(cause, "opcode", None),
            lba=getattr(cause, "lba", None),
            key=spec.key,
            index=index,
        )
        error.__cause__ = cause
        return error

    def put_many(self, items):
        """Vectored upsert of (key, payload) pairs.

        Returns one bool per pair in input order (True when the key
        was new).  Keys are sorted and grouped by target leaf during
        one shared descent; each leaf is latched once per group, the
        group is applied as one vectored in-node operation and sibling
        page writes coalesce into vectored device commands — far fewer
        latch round-trips and doorbells than per-key calls.
        """
        return self._run_batch(
            [OpSpec.put(key, payload) for key, payload in items]
        )

    def get_many(self, keys):
        """Vectored point lookup; one payload-or-None per key."""
        return self._run_batch([OpSpec.get(key) for key in keys])

    def delete_many(self, keys):
        """Vectored delete; one was-present bool per key."""
        return self._run_batch([OpSpec.delete(key) for key in keys])

    # -- single-op verbs (size-1 batches) ------------------------------

    def put(self, key, payload):
        """Upsert; returns True when the key was new."""
        return self._single(OpSpec.put(key, payload))

    def get(self, key):
        """Point lookup; returns the payload bytes or None."""
        return self._single(OpSpec.get(key))

    def delete(self, key):
        """Remove a key; returns True when it was present."""
        return self._single(OpSpec.delete(key))

    def scan(self, low, high, limit=0):
        """All (key, payload) pairs with low <= key <= high."""
        (op,) = self._execute_ops([range_op(low, high, limit=limit)])
        return self._result(op)

    def update(self, key, payload):
        """Overwrite an existing key; returns True when found."""
        (op,) = self._execute_ops([update_op(key, payload)])
        return self._result(op)

    def sync(self):
        """Flush buffered updates (weak persistence); returns count."""
        (op,) = self._execute_ops([sync_op()])
        return self._result(op)

    # -- deprecated aliases --------------------------------------------

    _warned_aliases = set()

    @staticmethod
    def _warn_alias(old, new):
        """Emit one DeprecationWarning per alias per process."""
        if old in BaseSession._warned_aliases:
            return
        BaseSession._warned_aliases.add(old)
        warnings.warn(
            "Session.%s() is deprecated; use %s()" % (old, new),
            DeprecationWarning,
            stacklevel=3,
        )

    def search(self, key):
        """Deprecated alias for :meth:`get`."""
        self._warn_alias("search", "get")
        return self.get(key)

    def insert(self, key, payload):
        """Deprecated alias for :meth:`put`."""
        self._warn_alias("insert", "put")
        return self.put(key, payload)

    def range_search(self, low, high, limit=0):
        """Deprecated alias for :meth:`scan`."""
        self._warn_alias("range_search", "scan")
        return self.scan(low, high, limit)

    # -- dict-style sugar ----------------------------------------------

    def _get(self, key):
        return self.get(key)

    def _put(self, key, payload):
        self.put(key, payload)

    def __getitem__(self, key):
        value = self._get(key)
        if value is None:
            raise KeyError(key)
        return value

    def __setitem__(self, key, payload):
        self._put(key, payload)

    def __contains__(self, key):
        return self._get(key) is not None

    # -- introspection -------------------------------------------------

    def stats(self):
        """Cumulative statistics snapshot (a fresh dict every call).

        Counters accumulate over the whole session, not per batch:
        callers wanting a per-batch window diff two snapshots.
        Mutating a returned dict never affects later calls.
        """
        raise NotImplementedError

    def attach_metrics(self, session=None, **session_kwargs):
        """Attach a :class:`~repro.obs.MetricsSession` to this session.

        Builds one (forwarding ``session_kwargs`` — SLO targets, scrape
        interval, flight-recorder capacity) unless an existing session
        is passed, wires it into this session's stack and returns it.
        The caller still owns the lifecycle: ``session.start()`` before
        the workload, ``session.finish()`` after.  A session that is
        never attached costs nothing.
        """
        raise NotImplementedError

    def _make_metrics(self, engine, session, session_kwargs):
        if session is not None:
            if session_kwargs:
                raise ReproError(
                    "pass session kwargs only when attach_metrics builds "
                    "the session"
                )
            return session
        from repro.obs.health import MetricsSession

        return MetricsSession(engine, **session_kwargs)


class PATreeSession(BaseSession):
    """Blocking convenience wrapper around a PA-Tree on one device.

    Accepts a :class:`SessionConfig` or the historical keyword
    arguments (``seed``, ``payload_size``, ``persistence``,
    ``buffer_pages``, ``scheduler``, ``window``, ``device_profile``,
    ``os_profile``); keywords override config fields.
    """

    default_config = SessionConfig()

    def _build(self, config):
        self.env = SimEnvironment(
            config.seed,
            config.device_profile,
            config.os_profile,
            faults=config.faults,
            retry=config.retry,
            backend=config.backend,
        )
        self.tree = PaTree.create(
            self.env.device, payload_size=config.payload_size
        )
        self.pa_engine = PaTreeEngine(
            self.env.os,
            self.env.backend,
            self.tree,
            make_scheduler(config.scheduler, self.env.device_profile),
            source=ClosedLoopSource([], window=config.window),
            buffer=make_buffer(config.persistence, config.buffer_pages),
            persistence=config.persistence,
        )

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------

    def bulk_load(self, items, fill_factor=0.7):
        """Offline bottom-up build from sorted unique (key, bytes) pairs."""
        self._check_open()
        self.tree.bulk_load(items, fill_factor)

    def _execute_ops(self, operations):
        """Run raw operations through the polled engine; returns them."""
        self._check_open()
        operations = list(operations)
        engine = self.pa_engine
        engine.reset_source(ClosedLoopSource(operations, window=self.window))
        engine.run_to_completion()
        return operations

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def __len__(self):
        return self.tree.meta.key_count

    def stats(self):
        """Engine + device statistics for the session so far.

        Fresh dict per call; counters are cumulative (see
        :meth:`BaseSession.stats`).
        """
        stats = self.pa_engine.stats()
        device = self.env.device
        stats["device_reads"] = device.reads_completed.value
        stats["device_writes"] = device.writes_completed.value
        stats["device_errors"] = device.errors_completed.value
        if device.fault_injector is not None:
            stats["faults"] = device.fault_injector.stats()
        stats["virtual_time_us"] = self.env.now_usec
        return stats

    def attach_metrics(self, session=None, **session_kwargs):
        """Wire a metrics session into the device and engine stack."""
        session = self._make_metrics(self.env.engine, session, session_kwargs)
        session.attach_device(self.env.device)
        session.attach_worker(self.pa_engine)
        return session

    def validate(self):
        """Verify every on-media structural invariant of the tree."""
        return self.tree.validate()

    def _teardown(self):
        self.env.close()


class AsyncLsmSession(BaseSession):
    """Blocking convenience wrapper around the PA-LSM extension.

    The same facade shape as :class:`PATreeSession`, over the
    polled-mode asynchronous LSM store (``repro.palsm``): point and
    range reads, upserts, deletes and ``sync`` against one simulated
    device, with memtable flushes and compactions interleaved by the
    single polled working thread.
    """

    default_config = SessionConfig(scheduler="naive", buffer_pages=0)

    def _build(self, config):
        from repro.palsm import AsyncLsmStore, PolledLsmWorker

        self.env = SimEnvironment(
            config.seed,
            config.device_profile,
            config.os_profile,
            faults=config.faults,
            retry=config.retry,
            backend=config.backend,
        )
        self.store = AsyncLsmStore(
            self.env.device,
            persistence=config.persistence,
            memtable_entries=config.memtable_entries,
        )
        self.worker = PolledLsmWorker(
            self.env.os,
            self.env.backend,
            self.store,
            make_scheduler(config.scheduler, self.env.device_profile),
            ClosedLoopSource([], window=config.window),
        )

    def bulk_load(self, items):
        """Offline build of level-1 runs from unique (key, bytes) pairs.

        Unlike the tree sessions the input may arrive unsorted (runs
        are built from the sorted view), but duplicate keys are
        rejected with the same typed :class:`~repro.errors.BulkLoadError`.
        """
        self._check_open()
        self.store.bulk_load(check_bulk_items(sorted(items)))
        self.store.resize_block_cache(max(self.store.data_pages() // 10, 64))

    def _execute_ops(self, operations):
        self._check_open()
        return self.worker.run_operations(list(operations), window=self.window)

    # The LSM worker executes per-key state machines — there is no
    # shared-descent batch plan to vector through — so the batch verbs
    # map spec-wise onto single operations with the same contract.

    def _run_batch(self, specs):
        specs = list(specs)
        if not specs:
            return []
        ops = [spec.to_operation() for spec in specs]
        self._execute_ops(ops)
        for index, (spec, op) in enumerate(zip(specs, ops)):
            if op.error is not None:
                raise self._batch_error(op.error, spec, index)
        return [op.result for op in ops]

    def _single(self, spec):
        (op,) = self._execute_ops([spec.to_operation()])
        return self._result(op)

    def stats(self):
        """Worker statistics; fresh dict per call, cumulative counters."""
        stats = self.worker.stats()
        device = self.env.device
        stats["device_errors"] = device.errors_completed.value
        if device.fault_injector is not None:
            stats["faults"] = device.fault_injector.stats()
        stats["virtual_time_us"] = self.env.now_usec
        return stats

    def attach_metrics(self, session=None, **session_kwargs):
        """Wire a metrics session into the device and worker stack."""
        session = self._make_metrics(self.env.engine, session, session_kwargs)
        session.attach_device(self.env.device)
        session.attach_worker(self.worker)
        return session

    def _teardown(self):
        self.env.close()


class ShardedSession(BaseSession):
    """Blocking facade over a sharded multi-device PA-Tree fleet.

    ``config.shards`` independent (device, driver, tree, polled
    worker) stacks run on one simulated machine; a router splits each
    batch by key (``config.partitioning``: ``"hash"`` or ``"range"``),
    fans out the closed-loop window, merges cross-shard range scans in
    key order and broadcasts ``sync``.  See ``repro.shard`` for the
    underlying router.
    """

    default_config = SessionConfig(scheduler="naive", buffer_pages=0)

    def _build(self, config):
        from repro.shard import ShardedPaTree

        self.engine = Engine(seed=config.seed)
        self.os = SimOS(self.engine, config.os_profile or paper_testbed_profile())
        device_profile = config.device_profile or i3_nvme_profile()
        self.sharded = ShardedPaTree(
            self.os,
            config.shards,
            partitioning=config.partitioning,
            payload_size=config.payload_size,
            policy_factory=lambda: make_scheduler(
                config.scheduler, device_profile
            ),
            persistence=config.persistence,
            buffer_pages_per_shard=config.buffer_pages,
            device_profile=device_profile,
            faults=config.faults,
            retry=make_retry(config.retry),
            backend=config.backend,
        )

    def _teardown(self):
        self.sharded.close()

    @property
    def now_usec(self):
        return self.engine.clock.now_usec

    def bulk_load(self, items, fill_factor=0.7):
        """Offline build across all shards from sorted unique pairs."""
        self._check_open()
        self.sharded.bulk_load(items, fill_factor)

    def _execute_ops(self, operations):
        self._check_open()
        return self.sharded.run_operations(
            list(operations), window=self.window
        )

    def __len__(self):
        return self.sharded.key_count

    def stats(self):
        """Aggregate + per-shard statistics (fresh dict, cumulative).

        The fault-injector rollup (``stats()["faults"]``) now comes
        from :meth:`repro.shard.ShardedPaTree.stats` alongside the
        ``*_total`` error/retry rollups.
        """
        stats = self.sharded.stats()
        stats["virtual_time_us"] = self.now_usec
        return stats

    def attach_metrics(self, session=None, **session_kwargs):
        """Wire a metrics session across every shard and the router."""
        session = self._make_metrics(self.engine, session, session_kwargs)
        session.attach_sharded(self.sharded)
        return session

    def validate(self):
        """Validate every shard tree; returns aggregate statistics."""
        return self.sharded.validate()
