"""Public synchronous facade.

Most users want a B+ tree they can call, not a simulation they must
wire: :class:`PATreeSession` packages the simulation engine, OS model,
NVMe device, tree, buffer and scheduler behind blocking calls.  Each
call (or batch) drives the discrete-event simulation until the
operations complete, then returns their results — so examples read
like ordinary database code while every access still flows through the
full polled-mode asynchronous machinery.

For experiments that need explicit control (custom policies, baseline
paradigms, open-loop arrival), use the underlying pieces directly; the
benchmark harness in ``repro.bench`` shows how.
"""

from repro.buffer import ReadOnlyBuffer, ReadWriteBuffer
from repro.core.engine import (
    PERSISTENCE_STRONG,
    PERSISTENCE_WEAK,
    PaTreeEngine,
)
from repro.core.ops import (
    delete_op,
    insert_op,
    range_op,
    search_op,
    sync_op,
    update_op,
)
from repro.core.source import ClosedLoopSource
from repro.core.tree import PaTree
from repro.errors import ReproError
from repro.nvme.device import NvmeDevice, i3_nvme_profile
from repro.nvme.driver import NvmeDriver
from repro.sched.naive import NaiveScheduling
from repro.sched.probe_model import cached_probe_model
from repro.sched.workload_aware import WorkloadAwareScheduling
from repro.sim.engine import Engine
from repro.simos.scheduler import SimOS, paper_testbed_profile


class SimEnvironment:
    """One simulated machine: event engine, OS, NVMe device, driver."""

    def __init__(self, seed=0, device_profile=None, os_profile=None):
        self.engine = Engine(seed=seed)
        self.os = SimOS(self.engine, os_profile or paper_testbed_profile())
        self.device_profile = device_profile or i3_nvme_profile()
        self.device = NvmeDevice(self.engine, self.device_profile)
        self.driver = NvmeDriver(self.device)

    @property
    def now_usec(self):
        return self.engine.clock.now_usec


class PATreeSession:
    """Blocking convenience wrapper around a PA-Tree on one device.

    Parameters
    ----------
    seed:
        Simulation seed (full determinism).
    payload_size:
        Bytes per value (8 by default, as in the paper's YCSB setup).
    persistence:
        ``"strong"`` (every update durable on completion; read-only
        buffer) or ``"weak"`` (write-back buffer + explicit ``sync``).
    buffer_pages:
        Buffer capacity in pages; 0 disables buffering (strong mode
        only).
    scheduler:
        ``"workload_aware"`` (Algorithm 2; trains/caches the probe
        model on first use) or ``"naive"`` (Algorithm 1).
    window:
        Closed-loop in-flight window — how many concurrent callers the
        session models.
    """

    def __init__(
        self,
        seed=0,
        payload_size=8,
        persistence=PERSISTENCE_STRONG,
        buffer_pages=4096,
        scheduler="workload_aware",
        window=64,
        device_profile=None,
        os_profile=None,
    ):
        self.env = SimEnvironment(seed, device_profile, os_profile)
        self.window = window
        self.tree = PaTree.create(self.env.device, payload_size=payload_size)

        if persistence == PERSISTENCE_WEAK:
            if buffer_pages <= 0:
                raise ReproError("weak persistence requires a buffer")
            buffer = ReadWriteBuffer(buffer_pages)
        elif buffer_pages > 0:
            buffer = ReadOnlyBuffer(buffer_pages)
        else:
            buffer = None

        if scheduler == "workload_aware":
            model = cached_probe_model(self.env.device_profile)
            policy = WorkloadAwareScheduling(model)
        elif scheduler == "naive":
            policy = NaiveScheduling()
        else:
            raise ReproError("unknown scheduler %r" % (scheduler,))

        self.pa_engine = PaTreeEngine(
            self.env.os,
            self.env.driver,
            self.tree,
            policy,
            source=ClosedLoopSource([], window=window),
            buffer=buffer,
            persistence=persistence,
        )

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------

    def bulk_load(self, items, fill_factor=0.7):
        """Offline bottom-up build from sorted unique (key, bytes) pairs."""
        self.tree.bulk_load(items, fill_factor)

    def execute(self, operations):
        """Run a batch of operations to completion; returns them."""
        operations = list(operations)
        engine = self.pa_engine
        engine.source = ClosedLoopSource(operations, window=self.window)
        engine._shutdown = False
        engine.run_to_completion()
        return operations

    def search(self, key):
        """Point lookup; returns the payload bytes or None."""
        (op,) = self.execute([search_op(key)])
        return op.result

    def range_search(self, low, high, limit=0):
        """All (key, payload) pairs with low <= key <= high."""
        (op,) = self.execute([range_op(low, high, limit=limit)])
        return op.result

    def insert(self, key, payload):
        """Upsert; returns True when the key was new."""
        (op,) = self.execute([insert_op(key, payload)])
        return op.result

    def update(self, key, payload):
        """Overwrite an existing key; returns True when found."""
        (op,) = self.execute([update_op(key, payload)])
        return op.result

    def delete(self, key):
        """Remove a key; returns True when it was present."""
        (op,) = self.execute([delete_op(key)])
        return op.result

    def sync(self):
        """Flush buffered updates (weak persistence); returns count."""
        (op,) = self.execute([sync_op()])
        return op.result

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def __len__(self):
        return self.tree.meta.key_count

    def stats(self):
        """Engine + device statistics for the session so far."""
        stats = self.pa_engine.stats()
        device = self.env.device
        stats["device_reads"] = device.reads_completed.value
        stats["device_writes"] = device.writes_completed.value
        stats["virtual_time_us"] = self.env.now_usec
        return stats

    def validate(self):
        """Verify every on-media structural invariant of the tree."""
        return self.tree.validate()


class AsyncLsmSession:
    """Blocking convenience wrapper around the PA-LSM extension.

    The same facade shape as :class:`PATreeSession`, over the
    polled-mode asynchronous LSM store (``repro.palsm``): point and
    range reads, upserts, deletes and ``sync`` against one simulated
    device, with memtable flushes and compactions interleaved by the
    single polled working thread.
    """

    def __init__(
        self,
        seed=0,
        persistence=PERSISTENCE_STRONG,
        scheduler="naive",
        window=64,
        memtable_entries=1_000,
        device_profile=None,
        os_profile=None,
    ):
        from repro.palsm import AsyncLsmStore, PolledLsmWorker

        self.env = SimEnvironment(seed, device_profile, os_profile)
        self.window = window
        self.store = AsyncLsmStore(
            self.env.device,
            persistence=persistence,
            memtable_entries=memtable_entries,
        )
        if scheduler == "workload_aware":
            policy = WorkloadAwareScheduling(
                cached_probe_model(self.env.device_profile)
            )
        elif scheduler == "naive":
            policy = NaiveScheduling()
        else:
            raise ReproError("unknown scheduler %r" % (scheduler,))
        self.worker = PolledLsmWorker(
            self.env.os,
            self.env.driver,
            self.store,
            policy,
            ClosedLoopSource([], window=window),
        )

    def bulk_load(self, items):
        """Offline build of level-1 runs from sorted unique items."""
        self.store.bulk_load(sorted(items))
        self.store.resize_block_cache(max(self.store.data_pages() // 10, 64))

    def execute(self, operations):
        return self.worker.run_operations(list(operations), window=self.window)

    def put(self, key, payload):
        (op,) = self.execute([insert_op(key, payload)])
        return op.result

    def get(self, key):
        (op,) = self.execute([search_op(key)])
        return op.result

    def delete(self, key):
        (op,) = self.execute([delete_op(key)])
        return op.result

    def range_search(self, low, high, limit=0):
        (op,) = self.execute([range_op(low, high, limit=limit)])
        return op.result

    def sync(self):
        (op,) = self.execute([sync_op()])
        return op.result

    def stats(self):
        stats = self.worker.stats()
        stats["virtual_time_us"] = self.env.now_usec
        return stats
