"""Trace-replay backend: recorded service times, virtual everything else.

Replays the per-command service durations of a recorded trace (see
``repro.backend.trace_io``) through the shared page-device pipeline.
Media is an in-memory page store (like the simulated device), timing
is table lookup — so replay runs are **fully deterministic**: the same
trace and workload produce byte-identical artifacts on any machine,
which is what lets the calibration harness compare a wall-clock
FileBackend run against a reproducible stand-in.

Service times are consumed per opcode in recorded order; when a
replayed workload issues more commands of an opcode than the trace
holds, the sequence wraps around (deterministically).  An empty
opcode sequence falls back to the profile's modelled mean, so a
read-only trace can still replay a mixed workload.
"""

from repro.backend.base import IoBackend
from repro.backend.pagedev import PageDeviceBase
from repro.backend.trace_io import read_trace
from repro.errors import BackendConfigError
from repro.nvme.command import OP_READ, OP_WRITE
from repro.nvme.device import DeviceProfile
from repro.nvme.driver import NvmeDriver


class ReplayPageDevice(PageDeviceBase):
    """Page device whose service times come from a recorded trace."""

    def __init__(self, engine, profile, trace, rng_name="replay",
                 faults=None):
        super().__init__(engine, profile, rng_name=rng_name, faults=faults)
        self._times = {
            OP_READ: trace.service_times(OP_READ),
            OP_WRITE: trace.service_times(OP_WRITE),
        }
        self._cursors = {OP_READ: 0, OP_WRITE: 0}
        self.wraps = 0

    def _service_ns(self, command):
        times = self._times[command.opcode]
        if not times:
            return (
                self.profile.write_service_ns
                if command.is_write
                else self.profile.read_service_ns
            )
        cursor = self._cursors[command.opcode]
        if cursor >= len(times):
            cursor = 0
            self.wraps += 1
        self._cursors[command.opcode] = cursor + 1
        return times[cursor]


class TraceReplayBackend(IoBackend):
    """Backend contract over a :class:`ReplayPageDevice`.

    ``trace`` may be a path to a JSONL trace file or an already-parsed
    :class:`~repro.backend.trace_io.IoTrace`.  The profile defaults to
    one derived from the trace header (page size, channel count) with
    per-opcode fallback means taken from the recorded samples.
    """

    kind = "replay"

    def __init__(self, engine, trace, profile=None, rng_name="replay",
                 faults=None, retry=None):
        if isinstance(trace, str):
            trace = read_trace(trace)
        if trace is None:
            raise BackendConfigError("replay backend requires a trace")
        if profile is None:
            profile = profile_from_trace(trace)
        self.trace = trace
        device = ReplayPageDevice(
            engine, profile, trace, rng_name=rng_name, faults=faults
        )
        super().__init__(device, NvmeDriver(device, retry=retry))

    def describe(self):
        info = super().describe()
        info["trace_records"] = len(self.trace)
        info["trace_wraps"] = self.device.wraps
        return info


def _mean(values, fallback):
    return int(sum(values) / len(values)) if values else fallback


def profile_from_trace(trace, **overrides):
    """Derive a :class:`DeviceProfile` from a trace's header + samples.

    The per-opcode service means are only *fallbacks* during replay
    (live commands take exact recorded durations); they make the
    profile a sensible stand-alone simulator calibration as well,
    which is how the calibration harness seeds its fit.
    """
    defaults = dict(
        name="replay:%s" % trace.header.get("backend", "trace"),
        channels=trace.channels,
        page_size=trace.page_size,
        read_service_ns=_mean(trace.service_times(OP_READ), 6_000),
        write_service_ns=_mean(trace.service_times(OP_WRITE), 10_000),
        service_sigma=0.0,
        capacity_pages=4_000_000,
    )
    defaults.update(overrides)
    return DeviceProfile(**defaults)
