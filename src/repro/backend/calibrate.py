"""Calibration harness: fit the simulator to a real file backend.

``python -m repro.backend.calibrate`` closes the loop between the
simulated device and real storage in three steps:

1. **Record** — drive a :class:`~repro.backend.file.FileBackend` with
   closed-loop traffic at a sweep of queue depths, recording every
   serviced command (quantized wall-clock syscall durations) into
   JSONL traces;
2. **Fit** — estimate the simulator's calibration constants from the
   recording: per-opcode service times from the depth-1 samples (no
   queueing, so the sample *is* the service time) and the channel
   count from the saturation knee of the depth sweep (effective
   parallelism = throughput x mean service time, which stops growing
   once every channel is busy);
3. **Validate** — re-run the same workload schedule on (a) a
   :class:`~repro.backend.base.SimNvmeBackend` built from the fitted
   :class:`~repro.nvme.device.DeviceProfile` and (b) a
   :class:`~repro.backend.replay.TraceReplayBackend` replaying the
   recorded trace, and report sim-vs-real residuals per depth plus the
   replay throughput ratio.

The emitted report (``CALIBRATION.json``) carries
``"wall_clock_variant": true`` — it is a *measurement* of the host's
storage stack and is never byte-gated (see ``repro.bench diff``).
"""

import argparse
import json
import os
import sys

from repro.backend.base import SimNvmeBackend
from repro.backend.file import FileBackend, file_backend_profile
from repro.backend.replay import TraceReplayBackend
from repro.backend.trace_io import read_trace
from repro.nvme.command import OP_READ, OP_WRITE
from repro.nvme.device import DeviceProfile
from repro.sim.clock import NS_PER_SEC, usec
from repro.sim.engine import Engine

DEFAULT_DEPTHS = (1, 2, 4, 8, 16, 32)


def run_fixed_depth(backend, n_ops, depth, write_ratio=0.3,
                    stream="calibrate", probe_cycle_us=2):
    """Closed-loop fixed-depth run on any backend; returns flat stats.

    The operation schedule is a deterministic function of the
    backend engine's seed and ``stream``, so the same (seed, depth,
    ops) triple replays the identical lba/opcode sequence on every
    backend — which is what makes the residual comparison paired.
    """
    engine = backend.engine
    profile = backend.profile
    qpair = backend.alloc_qpair(sq_size=4096, cq_size=4096)
    rng = engine.rng.stream(stream)
    lba_span = min(profile.capacity_pages - 1, 1 << 20)
    state = {"submitted": 0, "completed": 0, "latency_sum_ns": 0}
    start_ns = engine.now

    def submit_one():
        lba = 1 + rng.randrange(lba_span)
        if rng.random() < write_ratio:
            backend.write(qpair, lba, bytes(profile.page_size))
        else:
            backend.read(qpair, lba)
        state["submitted"] += 1

    probe_ns = max(usec(probe_cycle_us), 1)

    def probe_tick():
        for command in backend.probe(qpair):
            state["completed"] += 1
            state["latency_sum_ns"] += engine.now - command.submit_ns
            if state["submitted"] < n_ops:
                submit_one()
        if state["completed"] < n_ops:
            engine.schedule(probe_ns, probe_tick)

    for _ in range(min(depth, n_ops)):
        submit_one()
    engine.schedule(probe_ns, probe_tick)
    engine.run(until=lambda: state["completed"] >= n_ops)

    elapsed_ns = max(engine.now - start_ns, 1)
    completed = state["completed"]
    return {
        "depth": depth,
        "ops": completed,
        "elapsed_us": elapsed_ns / 1000.0,
        "throughput_ops": completed / (elapsed_ns / NS_PER_SEC),
        "mean_latency_us": (
            state["latency_sum_ns"] / completed / 1000.0 if completed else 0.0
        ),
    }


def record_sweep(out_dir, depths=DEFAULT_DEPTHS, n_ops=300, write_ratio=0.3,
                 seed=7, quantum_ns=256):
    """Step 1: record one FileBackend trace + measurement per depth.

    Every depth gets a fresh engine (same seed) and a fresh scratch
    file, so the points are independent and the schedule is identical
    across depths up to admission timing.  Returns the list of
    measured points, each carrying its ``trace`` path.
    """
    os.makedirs(out_dir, exist_ok=True)
    points = []
    for depth in depths:
        engine = Engine(seed=seed)
        backend = FileBackend(engine, quantum_ns=quantum_ns)
        # unrecorded warmup: absorbs the file/page-cache cold start so
        # the measured window samples steady-state syscall timings
        run_fixed_depth(
            backend, max(4 * depth, 32), depth, write_ratio=write_ratio,
            stream="warmup",
        )
        trace_path = os.path.join(out_dir, "qd%d.jsonl" % depth)
        backend.record_to(trace_path)
        point = run_fixed_depth(
            backend, n_ops, depth, write_ratio=write_ratio
        )
        point["trace"] = trace_path
        point["syscalls"] = backend.device.syscalls
        points.append(point)
        backend.close()
    return points


def _trimmed_mean(values, fallback, trim=0.1):
    """Mean of the lowest ``1 - trim`` fraction of the samples.

    Real syscall timings have a heavy upper tail (cold page cache,
    scheduler preemption); a plain mean lets one 500 us outlier set
    the fitted service time, a trimmed mean tracks the bulk.
    """
    if not values:
        return fallback
    ordered = sorted(values)
    keep = max(1, int(len(ordered) * (1.0 - trim)))
    kept = ordered[:keep]
    return int(sum(kept) / len(kept))


def fit_profile(points, name="fitted_file"):
    """Step 2: fit a :class:`DeviceProfile` from the recorded sweep.

    * service times: trimmed per-opcode means of the **depth-1**
      trace — with one command outstanding there is no queueing, so
      each recorded duration is a pure service-time sample (the trim
      discards the cold-cache / preemption tail);
    * channels: the saturation knee.  At depth *d* the backend keeps
      ``min(d, channels)`` commands in service, so effective
      parallelism ``throughput x trimmed mean service`` grows
      linearly and then flattens; the sweep-wide maximum (rounded) is
      the channel count;
    * host-interface terms (``fetch_ns`` / ``post_ns`` /
      ``probe_iface_ns``): zeroed — the file backend has no modelled
      PCIe interface, so a fitted profile that kept the sim defaults
      would charge contention the measurement never saw.
    """
    fallback = file_backend_profile()
    qd1 = min(points, key=lambda point: point["depth"])
    trace = read_trace(qd1["trace"])
    read_ns = _trimmed_mean(
        trace.service_times(OP_READ), fallback.read_service_ns
    )
    write_ns = _trimmed_mean(
        trace.service_times(OP_WRITE), fallback.write_service_ns
    )

    parallelism = []
    for point in points:
        sample = read_trace(point["trace"])
        services = [record["service_ns"] for record in sample.records]
        service_s = _trimmed_mean(services, 0) / NS_PER_SEC
        parallelism.append(point["throughput_ops"] * service_s)
    channels = max(1, int(round(max(parallelism)))) if parallelism else 1

    profile = DeviceProfile(
        name=name,
        channels=channels,
        read_service_ns=max(read_ns, 1),
        write_service_ns=max(write_ns, 1),
        service_sigma=0.0,
        fetch_ns=0,
        post_ns=0,
        probe_iface_ns=0,
        capacity_pages=fallback.capacity_pages,
        page_size=fallback.page_size,
    )
    return profile, {"parallelism": parallelism}


def profile_to_dict(profile):
    return {slot: getattr(profile, slot) for slot in DeviceProfile.__slots__}


def validate(points, profile, n_ops=300, write_ratio=0.3, seed=7):
    """Step 3: sim residuals per depth + replay throughput check.

    Each recorded point is re-run on a fitted-profile sim backend
    (residual = relative error of throughput / mean latency) and the
    deepest point's trace is replayed through the replay backend; the
    acceptance bar is replay throughput within 15% of the recorded
    run.
    """
    residuals = []
    for point in points:
        engine = Engine(seed=seed)
        backend = SimNvmeBackend(engine, profile)
        sim = run_fixed_depth(
            backend, n_ops, point["depth"], write_ratio=write_ratio
        )
        backend.close()
        residuals.append(
            {
                "depth": point["depth"],
                "real_throughput_ops": point["throughput_ops"],
                "sim_throughput_ops": sim["throughput_ops"],
                "throughput_residual": (
                    (sim["throughput_ops"] - point["throughput_ops"])
                    / point["throughput_ops"]
                ),
                "real_mean_latency_us": point["mean_latency_us"],
                "sim_mean_latency_us": sim["mean_latency_us"],
                "latency_residual": (
                    (sim["mean_latency_us"] - point["mean_latency_us"])
                    / point["mean_latency_us"]
                    if point["mean_latency_us"]
                    else 0.0
                ),
            }
        )

    deepest = max(points, key=lambda point: point["depth"])
    engine = Engine(seed=seed)
    backend = TraceReplayBackend(engine, deepest["trace"])
    replay = run_fixed_depth(
        backend, n_ops, deepest["depth"], write_ratio=write_ratio
    )
    backend.close()
    ratio = replay["throughput_ops"] / deepest["throughput_ops"]
    replay_check = {
        "depth": deepest["depth"],
        "recorded_throughput_ops": deepest["throughput_ops"],
        "replay_throughput_ops": replay["throughput_ops"],
        "ratio": ratio,
        "within_15pct": abs(ratio - 1.0) <= 0.15,
    }
    return residuals, replay_check


def calibrate(out_dir, depths=DEFAULT_DEPTHS, n_ops=300, write_ratio=0.3,
              seed=7, quantum_ns=256, out=print):
    """Record -> fit -> validate; writes ``CALIBRATION.json``.

    Returns the report dict.  ``out`` receives the human-readable
    table lines (swap in a sink for tests).
    """
    out("recording FileBackend sweep: depths=%s ops=%d write_ratio=%.2f"
        % (list(depths), n_ops, write_ratio))
    points = record_sweep(
        out_dir, depths=depths, n_ops=n_ops, write_ratio=write_ratio,
        seed=seed, quantum_ns=quantum_ns,
    )
    profile, fit_detail = fit_profile(points)
    out("fitted profile: channels=%d read=%dns write=%dns"
        % (profile.channels, profile.read_service_ns,
           profile.write_service_ns))
    residuals, replay_check = validate(
        points, profile, n_ops=n_ops, write_ratio=write_ratio, seed=seed
    )

    out("")
    out("%6s %14s %14s %9s %12s %12s %9s"
        % ("depth", "real kops/s", "sim kops/s", "resid",
           "real lat us", "sim lat us", "resid"))
    for row in residuals:
        out("%6d %14.1f %14.1f %8.1f%% %12.1f %12.1f %8.1f%%"
            % (row["depth"],
               row["real_throughput_ops"] / 1e3,
               row["sim_throughput_ops"] / 1e3,
               row["throughput_residual"] * 100.0,
               row["real_mean_latency_us"],
               row["sim_mean_latency_us"],
               row["latency_residual"] * 100.0))
    out("")
    out("replay check (qd=%d): recorded %.1f kops/s, replay %.1f kops/s, "
        "ratio %.3f -> %s"
        % (replay_check["depth"],
           replay_check["recorded_throughput_ops"] / 1e3,
           replay_check["replay_throughput_ops"] / 1e3,
           replay_check["ratio"],
           "PASS (within 15%)" if replay_check["within_15pct"]
           else "FAIL (outside 15%)"))

    report = {
        "kind": "patree-calibration",
        "version": 1,
        "wall_clock_variant": True,
        "quantum_ns": quantum_ns,
        "seed": seed,
        "ops_per_depth": n_ops,
        "write_ratio": write_ratio,
        "fitted_profile": profile_to_dict(profile),
        "fit_detail": fit_detail,
        "sweep": [
            {key: value for key, value in point.items()}
            for point in points
        ],
        "residuals": residuals,
        "replay_check": replay_check,
    }
    report_path = os.path.join(out_dir, "CALIBRATION.json")
    with open(report_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    out("report written to %s" % report_path)
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.backend.calibrate",
        description="Fit simulator device parameters from a real file "
        "backend and report sim-vs-real residuals.",
    )
    parser.add_argument(
        "--out", default="calibration",
        help="directory for traces and CALIBRATION.json",
    )
    parser.add_argument(
        "--ops", type=int, default=300, help="operations per depth point"
    )
    parser.add_argument(
        "--depths", default=",".join(str(d) for d in DEFAULT_DEPTHS),
        help="comma-separated queue depths to sweep",
    )
    parser.add_argument(
        "--write-ratio", type=float, default=0.3,
        help="fraction of operations that are writes",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--quantum-ns", type=int, default=256,
        help="wall-clock quantization bucket (see FileBackend)",
    )
    args = parser.parse_args(argv)
    depths = tuple(
        int(field) for field in args.depths.split(",") if field.strip()
    )
    report = calibrate(
        args.out,
        depths=depths,
        n_ops=args.ops,
        write_ratio=args.write_ratio,
        seed=args.seed,
        quantum_ns=args.quantum_ns,
        out=lambda line="": print(line),  # patlint: ignore[PA404]
    )
    return 0 if report["replay_check"]["within_15pct"] else 1


if __name__ == "__main__":
    sys.exit(main())
