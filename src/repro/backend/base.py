"""The I/O backend contract.

Every layer above the device boundary — the PA-Tree engine, the PA-LSM
worker, the sharded router, the session facades, the bench harness —
talks to storage through one object: an :class:`IoBackend`.  The
contract is the union of the two roles the simulated NVMe stack used
to play:

* the **driver plane** (what :class:`~repro.nvme.driver.NvmeDriver`
  exposes): ``alloc_qpair`` / ``io_submit`` / ``io_submit_many`` /
  ``read`` / ``write`` / ``write_many`` / ``probe`` returning
  :class:`~repro.nvme.command.Completion` records, the per-call CPU
  cost constants, and the bounded retry policy;
* the **media plane** (what :class:`~repro.nvme.device.NvmeDevice`
  exposes): ``raw_read`` / ``raw_write`` zero-time backdoors for bulk
  loading and validation, the :class:`~repro.nvme.device.DeviceProfile`
  calibration constants, completion counters, and the observability /
  fault-injection / fuzz hook points (``on_submit``, ``on_complete``,
  ``on_retry``, ``perturb_service``, ``fault_injector``).

A backend is a composition of a device model and a driver bound to it;
the base class implements the whole contract by delegation, so the
three concrete backends only supply the device underneath:

* :class:`SimNvmeBackend` — the existing event-driven NVMe model,
  bit-identical to wiring the device and driver by hand;
* :class:`~repro.backend.file.FileBackend` — real ``os.pread`` /
  ``os.pwrite`` against a scratch file, wall-clock timed;
* :class:`~repro.backend.replay.TraceReplayBackend` — per-command
  service times replayed from a recorded JSONL trace.

Construct backends through :func:`repro.backend.make_backend`; direct
``NvmeDevice`` / ``NvmeDriver`` construction outside this package is
flagged by patlint PA408.
"""

from repro.errors import BackendConfigError
from repro.nvme.device import NvmeDevice
from repro.nvme.driver import NvmeDriver


class IoBackend:
    """One pluggable I/O substrate: a device model plus its driver.

    The full driver-plane and media-plane API is implemented here by
    delegation to ``self.device`` and ``self.driver``; subclasses set
    :attr:`kind` and build the two members.  The facade adds zero
    virtual time — every delegated call is a plain Python attribute
    hop, so a backend-wired run of the simulated stack is bit-identical
    to the historical directly-wired one.
    """

    #: Stable backend family name (``"sim"`` / ``"file"`` / ``"replay"``).
    kind = "abstract"

    #: Whether per-command service times come from the wall clock.
    #: Wall-clock-variant backends are excluded from byte-identity
    #: gates (see ``repro.bench.diff``); virtual-time backends stay
    #: gated.
    wall_clock_variant = False

    def __init__(self, device, driver):
        if driver.device is not device:
            raise BackendConfigError(
                "backend driver must be bound to the backend device"
            )
        self.device = device
        self.driver = driver
        self.closed = False

    # -- identity ------------------------------------------------------

    @property
    def engine(self):
        return self.device.engine

    @property
    def profile(self):
        return self.device.profile

    @property
    def page_size(self):
        return self.device.profile.page_size

    @property
    def capacity_pages(self):
        return self.device.profile.capacity_pages

    def describe(self):
        """One JSON-able dict identifying this backend in artifacts."""
        return {
            "kind": self.kind,
            "profile": self.profile.name,
            "wall_clock_variant": self.wall_clock_variant,
        }

    # -- driver plane --------------------------------------------------

    @property
    def retry(self):
        return self.driver.retry

    @property
    def submit_cpu_ns(self):
        return self.driver.submit_cpu_ns

    def submit_many_cpu_ns(self, count):
        return self.driver.submit_many_cpu_ns(count)

    def probe_cpu_ns(self, completions):
        return self.driver.probe_cpu_ns(completions)

    def alloc_qpair(self, sq_size=1024, cq_size=1024):
        return self.driver.alloc_qpair(sq_size, cq_size)

    def io_submit(self, qpair, opcode, lba, data=None, callback=None, context=None):
        return self.driver.io_submit(
            qpair, opcode, lba, data=data, callback=callback, context=context
        )

    def io_submit_many(self, qpair, entries, callback=None, context=None):
        return self.driver.io_submit_many(
            qpair, entries, callback=callback, context=context
        )

    def read(self, qpair, lba, callback=None, context=None):
        return self.driver.read(qpair, lba, callback=callback, context=context)

    def write(self, qpair, lba, data, callback=None, context=None):
        return self.driver.write(
            qpair, lba, data, callback=callback, context=context
        )

    def write_many(self, qpair, pages, callback=None, context=None):
        return self.driver.write_many(
            qpair, pages, callback=callback, context=context
        )

    def probe(self, qpair, max_completions=0):
        return self.driver.probe(qpair, max_completions)

    # -- media plane ---------------------------------------------------

    def raw_read(self, lba):
        return self.device.raw_read(lba)

    def raw_write(self, lba, data):
        self.device.raw_write(lba, data)

    # -- accounting passthroughs ---------------------------------------

    @property
    def reads_completed(self):
        return self.device.reads_completed

    @property
    def writes_completed(self):
        return self.device.writes_completed

    @property
    def errors_completed(self):
        return self.device.errors_completed

    @property
    def probe_calls(self):
        return self.device.probe_calls

    @property
    def outstanding(self):
        return self.device.outstanding

    @property
    def total_completed(self):
        return self.device.total_completed

    @property
    def retries_scheduled(self):
        return self.driver.retries_scheduled

    @property
    def failures_delivered(self):
        return self.driver.failures_delivered

    def mean_read_latency_ns(self):
        return self.device.mean_read_latency_ns()

    def mean_write_latency_ns(self):
        return self.device.mean_write_latency_ns()

    # -- hook points ---------------------------------------------------

    @property
    def fault_injector(self):
        return self.device.fault_injector

    @property
    def on_submit(self):
        return self.device.on_submit

    @on_submit.setter
    def on_submit(self, hook):
        self.device.on_submit = hook

    @property
    def on_complete(self):
        return self.device.on_complete

    @on_complete.setter
    def on_complete(self, hook):
        self.device.on_complete = hook

    @property
    def on_retry(self):
        return self.driver.on_retry

    @on_retry.setter
    def on_retry(self, hook):
        self.driver.on_retry = hook

    @property
    def perturb_service(self):
        return self.device.perturb_service

    @perturb_service.setter
    def perturb_service(self, hook):
        self.device.perturb_service = hook

    # -- observability -------------------------------------------------

    def register_metrics(self, registry, labels=None):
        """Register the driver + device metric family (callback-backed)."""
        self.driver.register_metrics(registry, labels=labels)
        return registry

    # -- lifecycle -----------------------------------------------------

    def close(self):
        """Release host-side resources (idempotent; sim holds none)."""
        self.closed = True


class SimNvmeBackend(IoBackend):
    """The simulated NVMe device/driver stack behind the contract.

    Wiring is exactly what :class:`~repro.api.SimEnvironment` and the
    sharded router used to do by hand — same RNG stream names, same
    injector construction, same retry default — so every sim-backend
    artifact stays byte-identical to the pre-backend-boundary code.
    """

    kind = "sim"

    def __init__(self, engine, profile=None, rng_name="nvme", faults=None,
                 retry=None):
        device = NvmeDevice(engine, profile, rng_name=rng_name, faults=faults)
        super().__init__(device, NvmeDriver(device, retry=retry))

    @classmethod
    def from_parts(cls, device, driver=None):
        """Adopt an existing device (and optionally driver) pair.

        Used by :func:`as_backend` to lift historically-wired stacks —
        tests and experiments that build ``NvmeDevice`` / ``NvmeDriver``
        directly — onto the backend contract without re-allocating
        anything.
        """
        backend = cls.__new__(cls)
        IoBackend.__init__(
            backend, device, driver if driver is not None else NvmeDriver(device)
        )
        return backend


def as_backend(substrate):
    """Normalize an engine/worker I/O argument onto the contract.

    Accepts an :class:`IoBackend` (returned unchanged), a bound
    :class:`~repro.nvme.driver.NvmeDriver` or bare
    :class:`~repro.nvme.device.NvmeDevice` (wrapped in a
    :class:`SimNvmeBackend` around the existing objects).  Anything
    else raises :class:`~repro.errors.BackendConfigError`.
    """
    if isinstance(substrate, IoBackend):
        return substrate
    if isinstance(substrate, NvmeDriver):
        return SimNvmeBackend.from_parts(substrate.device, substrate)
    if isinstance(substrate, NvmeDevice):
        return SimNvmeBackend.from_parts(substrate)
    raise BackendConfigError(
        "expected an IoBackend, NvmeDriver or NvmeDevice, not %r"
        % (substrate,)
    )
