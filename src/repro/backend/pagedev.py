"""Shared device model for the non-simulated backends.

:class:`PageDeviceBase` implements the device half of the backend
contract — queue pairs with ring-capacity limits, round-robin command
fetch into a bounded set of service channels, :class:`IoStatus`-typed
completion minting, completion/error/outstanding accounting, metric
registration, and the fault-injector / fuzz ``perturb_service`` hook
points — with the *service-time source* left abstract.  The simulated
:class:`~repro.nvme.device.NvmeDevice` draws service times from a
calibrated stochastic model; the subclasses here take them from a real
syscall's wall clock (:class:`~repro.backend.file.FilePageDevice`) or
a recorded trace (:class:`~repro.backend.replay.ReplayPageDevice`).

The model intentionally omits the simulated device's serial-interface
contention (the Fig 3c probe-pressure mechanism): that is a property
of the modelled hardware, not of a scratch file, and keeping the
non-sim backends free of it makes the calibration residuals honest —
what the simulator adds on top is exactly what calibration measures.

Semantics shared with the simulated device (the conformance suite in
``tests/test_backend_conformance.py`` pins these across all three
backends):

* ``submit`` validates bounds/payload and rejects on a full ring with
  :class:`~repro.errors.QueueFullError`;
* ``submit_many`` is all-or-nothing and counts vectored submissions;
* commands complete in service order onto the completion ring and are
  only visible through ``probe``;
* a failed write leaves the media untouched, a failed read carries no
  data, and the injector's poison/cure rules apply unchanged.
"""

from functools import partial

from repro.errors import DeviceError, PageBoundsError, QueueFullError
from repro.faults import make_injector
from repro.nvme.command import Completion, IoStatus
from repro.nvme.qpair import QueuePair
from repro.sim.metrics import Counter, TimeWeightedGauge


class PageDeviceBase:
    """Event-driven page device with a pluggable service-time source."""

    def __init__(self, engine, profile, rng_name="backend", faults=None):
        self.engine = engine
        self.profile = profile
        # same injector discipline as the simulated device: a dedicated
        # named stream, so arming faults never perturbs anything else
        self.fault_injector = make_injector(
            faults, engine.rng.stream("faults:" + rng_name)
        )
        self._pages = {}
        self._qpairs = []
        self._rr_index = 0
        self._free_channels = profile.channels
        # statistics (same names and semantics as NvmeDevice)
        self.reads_completed = Counter()
        self.writes_completed = Counter()
        self.errors_completed = Counter()
        self.read_latency_sum_ns = 0
        self.write_latency_sum_ns = 0
        self.outstanding = TimeWeightedGauge(engine.clock)
        self.probe_calls = Counter()
        # hook points (null defaults: ordinary runs pay one attr check)
        self.on_submit = None
        self.on_complete = None
        self.perturb_service = None

    # ------------------------------------------------------------------
    # host-facing operations (called via the driver)
    # ------------------------------------------------------------------

    def alloc_qpair(self, sq_size=1024, cq_size=1024):
        qpair = QueuePair(len(self._qpairs), sq_size, cq_size)
        self._qpairs.append(qpair)
        return qpair

    def _enqueue(self, qpair, command):
        if command.lba >= self.profile.capacity_pages:
            raise PageBoundsError("lba %d beyond device capacity" % command.lba)
        if command.is_write:
            data = command.data
            if data is None:
                raise DeviceError("write command without data")
            if len(data) != self.profile.page_size:
                raise DeviceError(
                    "write payload %d bytes != page size %d"
                    % (len(data), self.profile.page_size)
                )
        command.qpair = qpair
        command.submit_ns = self.engine.now
        command.status = IoStatus.SUBMITTED
        qpair.sq.push(command)
        qpair.outstanding += 1
        qpair.submitted += 1
        self.outstanding.add(1)
        if self.on_submit is not None:
            self.on_submit(command)

    def submit(self, qpair, command):
        self._enqueue(qpair, command)
        self._try_start()

    def submit_many(self, qpair, commands):
        """All-or-nothing vectored submit (single doorbell ring)."""
        if qpair.sq.free_slots < len(commands):
            raise QueueFullError(
                "submission ring %s cannot take %d commands (%d free)"
                % (qpair.sq.name, len(commands), qpair.sq.free_slots)
            )
        for command in commands:
            self._enqueue(qpair, command)
        if commands:
            qpair.vector_submissions += 1
            qpair.vector_commands += len(commands)
        self._try_start()

    def probe(self, qpair, max_completions=0):
        """Pop visible completions; no interface-contention charge."""
        self.probe_calls.add()
        completed = []
        while max_completions <= 0 or len(completed) < max_completions:
            command = qpair.cq.pop()
            if command is None:
                break
            completed.append(command)
        return completed

    # ------------------------------------------------------------------
    # direct media access (bulk loading / recovery inspection only)
    # ------------------------------------------------------------------

    def raw_write(self, lba, data):
        if len(data) != self.profile.page_size:
            raise DeviceError("raw write payload size mismatch")
        if lba >= self.profile.capacity_pages:
            raise PageBoundsError("lba %d beyond device capacity" % lba)
        self._media_write(lba, bytes(data))

    def raw_read(self, lba):
        if lba >= self.profile.capacity_pages:
            raise PageBoundsError("lba %d beyond device capacity" % lba)
        return self._media_read(lba)

    # ------------------------------------------------------------------
    # media store (in-memory by default; FilePageDevice overrides)
    # ------------------------------------------------------------------

    def _media_write(self, lba, data):
        self._pages[lba] = data

    def _media_read(self, lba):
        page = self._pages.get(lba)
        if page is None:
            return bytes(self.profile.page_size)
        return page

    # ------------------------------------------------------------------
    # service pipeline
    # ------------------------------------------------------------------

    def _next_nonempty_qpair(self):
        n = len(self._qpairs)
        for offset in range(n):
            qpair = self._qpairs[(self._rr_index + offset) % n]
            if not qpair.sq.is_empty:
                self._rr_index = (self._rr_index + offset + 1) % n
                return qpair
        return None

    def _try_start(self):
        """Fetch commands into free channels, round-robin across queues."""
        while self._free_channels > 0:
            qpair = self._next_nonempty_qpair()
            if qpair is None:
                return
            command = qpair.sq.pop()
            self._free_channels -= 1
            command.fetch_ns = self.engine.now
            service, status, read_data = self._begin_service(command)
            if self.fault_injector is not None:
                service = int(
                    service * self.fault_injector.service_factor(command.is_write)
                )
            if self.perturb_service is not None:
                service = int(self.perturb_service(command, service))
            self.engine.schedule_at(
                self.engine.now + max(int(service), 1),
                partial(self._service_done, command, status, read_data),
            )

    def _begin_service(self, command):
        """Start servicing one fetched command.

        Returns ``(service_ns, status, read_data)``.  The default
        decides the completion status up front (the injector's
        poison/cure and error-rate rules), snapshots read data from
        the media store, and asks :meth:`_service_ns` for the timing.
        A failed read carries no data; a write's payload is committed
        at completion time by :meth:`_commit_write`, so a failed write
        leaves the media untouched.
        """
        if self.fault_injector is None:
            status = IoStatus.SUCCESS
        else:
            status = self.fault_injector.complete_status(command)
        read_data = None
        if status.ok and not command.is_write:
            read_data = self._media_read(command.lba)
        return self._service_ns(command), status, read_data

    def _service_ns(self, command):
        raise NotImplementedError

    def _commit_write(self, command):
        """Make a successful write durable (completion time)."""
        self._media_write(command.lba, bytes(command.data))

    def _service_done(self, command, status, read_data):
        now = self.engine.now
        command.complete_ns = now
        if status.ok:
            if command.is_write:
                self._commit_write(command)
            else:
                command.data = read_data
        self._free_channels += 1
        command.status = status
        command.visible_ns = now
        qpair = command.qpair
        qpair.outstanding -= 1
        qpair.completed += 1
        self.outstanding.add(-1)
        latency = command.visible_ns - command.submit_ns
        if not status.ok:
            self.errors_completed.add()
        elif command.is_write:
            self.writes_completed.add()
            self.write_latency_sum_ns += latency
        else:
            self.reads_completed.add()
            self.read_latency_sum_ns += latency
        completion = Completion(
            command, status, command.visible_ns, attempt=command.retries
        )
        qpair.cq.push(completion)
        if self.on_complete is not None:
            self.on_complete(completion)
        if qpair.on_complete is not None:
            qpair.on_complete(completion)
        self._try_start()

    # ------------------------------------------------------------------
    # statistics helpers (same surface as NvmeDevice)
    # ------------------------------------------------------------------

    def register_metrics(self, registry, labels=None):
        registry.counter(
            "device_reads_total", labels,
            fn=lambda: self.reads_completed.value,
            help="read commands completed successfully",
        )
        registry.counter(
            "device_writes_total", labels,
            fn=lambda: self.writes_completed.value,
            help="write commands completed successfully",
        )
        registry.counter(
            "device_errors_total", labels,
            fn=lambda: self.errors_completed.value,
            help="commands completed with a failure status",
        )
        registry.counter(
            "device_probe_calls_total", labels,
            fn=lambda: self.probe_calls.value,
            help="completion-queue probe calls",
        )
        registry.gauge(
            "device_outstanding_ops", labels,
            fn=lambda: self.outstanding.value,
            help="commands submitted but not yet visible-complete",
        )
        channels = self.profile.channels
        registry.gauge(
            "device_channel_busy_ratio", labels,
            fn=lambda: (channels - self._free_channels) / channels,
            help="fraction of device channels in service",
        )
        injector = self.fault_injector
        if injector is not None:
            registry.counter(
                "fault_media_errors_total", labels,
                fn=lambda: injector.media_errors_injected,
                help="injected transient media errors",
            )
            registry.counter(
                "fault_spikes_total", labels,
                fn=lambda: injector.spikes_injected,
                help="injected latency spikes",
            )
            registry.counter(
                "fault_poison_read_failures_total", labels,
                fn=lambda: injector.poison_read_failures,
                help="reads failed against poisoned LBAs",
            )
            registry.counter(
                "fault_poison_cured_total", labels,
                fn=lambda: injector.poison_cured,
                help="poisoned LBAs cured by successful writes",
            )
        return registry

    @property
    def total_completed(self):
        return self.reads_completed.value + self.writes_completed.value

    def mean_read_latency_ns(self):
        n = self.reads_completed.value
        return self.read_latency_sum_ns / n if n else 0.0

    def mean_write_latency_ns(self):
        n = self.writes_completed.value
        return self.write_latency_sum_ns / n if n else 0.0
