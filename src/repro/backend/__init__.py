"""Pluggable I/O backends behind one contract.

The device/driver boundary of the reproduction, carved out so the same
tree, workers, shards, sessions and bench exhibits run on three
substrates:

=========  =====================================  ===================
kind       substrate                              determinism
=========  =====================================  ===================
``sim``    event-driven NVMe model (the paper's   byte-identical
           calibrated device; the default)        artifacts
``file``   real ``os.pread``/``os.pwrite`` on a   wall-clock variant
           scratch file, syscall-timed            (quantized)
``replay``  recorded per-command service times    byte-identical
           from a JSONL trace                     artifacts
=========  =====================================  ===================

Construction goes through :func:`make_backend` — patlint PA408 flags
direct ``NvmeDevice`` / ``NvmeDriver`` construction anywhere else in
``src/``.  A *backend spec* is any of:

* ``None`` — the process default (``"sim"`` unless overridden with
  :func:`set_default_backend`, e.g. by ``repro.bench --backend``);
* a string: ``"sim"``, ``"file"``, ``"file:/path/scratch.dat"``,
  ``"replay:/path/trace.jsonl"``;
* a ``dict`` with a ``"kind"`` key plus keyword overrides;
* an already-built :class:`IoBackend` (adopted as-is; its engine must
  match).

``python -m repro.backend.calibrate`` records a FileBackend trace,
fits the simulator's service-time/channel parameters from it, and
reports sim-vs-real residuals — see ``repro.backend.calibrate``.
"""

from repro.backend.base import IoBackend, SimNvmeBackend, as_backend
from repro.backend.file import FileBackend, FilePageDevice, file_backend_profile
from repro.backend.pagedev import PageDeviceBase
from repro.backend.replay import (
    ReplayPageDevice,
    TraceReplayBackend,
    profile_from_trace,
)
from repro.backend.trace_io import IoTrace, TraceWriter, read_trace
from repro.errors import BackendConfigError

# Device/driver knobs re-exported as the public face of the boundary:
# everything outside this package takes profiles and retry policies
# from here (patlint PA502 flags repro.nvme.device / repro.nvme.driver
# imports anywhere else in src/).
from repro.nvme.device import DeviceProfile, fast_test_profile, i3_nvme_profile
from repro.nvme.driver import RetryPolicy

BACKEND_KINDS = ("sim", "file", "replay")

_DEFAULT_SPEC = "sim"


def set_default_backend(spec):
    """Set the process-wide default backend spec (``None`` resets).

    The default is consulted whenever a config leaves ``backend``
    unset, which is how ``repro.bench --backend file`` retargets every
    exhibit without threading a parameter through each one.  Returns
    the previous default so callers can restore it.
    """
    global _DEFAULT_SPEC
    previous = _DEFAULT_SPEC
    _DEFAULT_SPEC = "sim" if spec is None else spec
    return previous


def get_default_backend():
    return _DEFAULT_SPEC


class BackendSpec:
    """Parsed backend spec: kind plus constructor keyword overrides."""

    __slots__ = ("kind", "options")

    def __init__(self, kind, **options):
        if kind not in BACKEND_KINDS:
            raise BackendConfigError(
                "unknown backend %r (expected one of %s)"
                % (kind, ", ".join(BACKEND_KINDS))
            )
        self.kind = kind
        self.options = options

    def __repr__(self):
        return "BackendSpec(%r, %r)" % (self.kind, self.options)

    def __eq__(self, other):
        return (
            isinstance(other, BackendSpec)
            and self.kind == other.kind
            and self.options == other.options
        )


def normalize_backend_spec(spec):
    """Normalize any accepted spec spelling to a :class:`BackendSpec`.

    Already-built :class:`IoBackend` instances pass through unchanged
    (the factory adopts them); everything else becomes a
    :class:`BackendSpec` or raises
    :class:`~repro.errors.BackendConfigError`.
    """
    if spec is None:
        spec = _DEFAULT_SPEC
    if isinstance(spec, (IoBackend, BackendSpec)):
        return spec
    if isinstance(spec, str):
        kind, _, arg = spec.partition(":")
        kind = kind.strip()
        if kind == "sim":
            if arg:
                raise BackendConfigError(
                    "the sim backend takes no spec argument (%r)" % (spec,)
                )
            return BackendSpec("sim")
        if kind == "file":
            return BackendSpec("file", path=arg or None)
        if kind == "replay":
            if not arg:
                raise BackendConfigError(
                    "the replay backend needs a trace path: 'replay:<path>'"
                )
            return BackendSpec("replay", trace=arg)
        raise BackendConfigError(
            "unknown backend %r (expected one of %s)"
            % (kind or spec, ", ".join(BACKEND_KINDS))
        )
    if isinstance(spec, dict):
        options = dict(spec)
        kind = options.pop("kind", None)
        if kind is None:
            raise BackendConfigError(
                "backend dict spec needs a 'kind' key: %r" % (spec,)
            )
        return BackendSpec(kind, **options)
    raise BackendConfigError(
        "backend spec must be None, a string, dict, BackendSpec or "
        "IoBackend, not %r" % (spec,)
    )


def normalize_shard_backends(spec, n_shards):
    """Resolve a sharded session's backend spec to one shared spec.

    Shards are shared-nothing but must run on the *same kind* of
    substrate — a fleet half on simulated time and half on wall-clock
    time has no coherent virtual timeline.  A sequence spec is
    accepted for symmetry with other per-shard knobs but every entry
    must normalize identically.
    """
    if isinstance(spec, (list, tuple)):
        if len(spec) != n_shards:
            raise BackendConfigError(
                "per-shard backend list has %d entries for %d shards"
                % (len(spec), n_shards)
            )
        normalized = [normalize_backend_spec(entry) for entry in spec]
        if any(isinstance(entry, IoBackend) for entry in normalized):
            raise BackendConfigError(
                "per-shard backend lists must hold specs, not built "
                "backend instances"
            )
        first = normalized[0]
        for entry in normalized[1:]:
            if entry != first:
                raise BackendConfigError(
                    "mixed per-shard backends are not supported: %r != %r"
                    % (first, entry)
                )
        return first
    return normalize_backend_spec(spec)


def make_backend(spec=None, *, engine, profile=None, rng_name="nvme",
                 faults=None, retry=None):
    """Build (or adopt) an :class:`IoBackend` from a spec.

    ``profile`` / ``rng_name`` / ``faults`` / ``retry`` mirror the
    historical device/driver constructor arguments; spec-carried
    options (a file path, a trace path, a quantum) win over them.
    """
    spec = normalize_backend_spec(spec)
    if isinstance(spec, IoBackend):
        if spec.engine is not engine:
            raise BackendConfigError(
                "adopted backend is bound to a different engine"
            )
        return spec
    options = dict(spec.options)
    if spec.kind == "sim":
        return SimNvmeBackend(
            engine, profile, rng_name=rng_name, faults=faults, retry=retry,
            **options,
        )
    if spec.kind == "file":
        return FileBackend(
            engine, profile=profile, rng_name=rng_name, faults=faults,
            retry=retry, **options,
        )
    # normalize_backend_spec guarantees the kind set; "replay" remains
    trace = options.pop("trace", None)
    return TraceReplayBackend(
        engine, trace, profile=profile, rng_name=rng_name, faults=faults,
        retry=retry, **options,
    )


__all__ = [
    "BACKEND_KINDS",
    "BackendConfigError",
    "BackendSpec",
    "DeviceProfile",
    "FileBackend",
    "FilePageDevice",
    "IoBackend",
    "IoTrace",
    "PageDeviceBase",
    "ReplayPageDevice",
    "RetryPolicy",
    "SimNvmeBackend",
    "TraceReplayBackend",
    "TraceWriter",
    "as_backend",
    "fast_test_profile",
    "file_backend_profile",
    "get_default_backend",
    "i3_nvme_profile",
    "make_backend",
    "normalize_backend_spec",
    "normalize_shard_backends",
    "profile_from_trace",
    "read_trace",
    "set_default_backend",
]
