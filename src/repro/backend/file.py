"""Real-file I/O backend: ``os.pread`` / ``os.pwrite`` on a scratch file.

The bridge from the simulated device to real hardware.  Pages live at
``lba * page_size`` offsets in a (sparse) scratch file; every read and
write command performs the real syscall and the **measured wall-clock
duration of that syscall becomes the command's virtual service time**,
so the discrete-event machinery above — polled probing, closed-loop
windows, latency accounting — runs unchanged while the timings are the
host storage stack's own.

Determinism seams (this backend is deliberately the one wall-clock
leak in the tree, and the seams are fenced):

* measured service times are **quantized** to ``quantum_ns`` buckets
  so one run's artifacts are stable against scheduler micro-jitter
  (they are still machine-dependent — ``wall_clock_variant`` marks
  every derived artifact row, and ``repro.bench diff`` refuses to
  byte-gate such rows);
* the real syscall happens at service *start*; durability therefore
  coincides with the start of the measured service window, not its
  end.  An injected write failure skips the syscall entirely, so the
  failed-write-leaves-media-untouched contract still holds.

A :class:`FileBackend` can record every serviced command into a JSONL
trace (:meth:`record_to`) for the calibration harness and the
trace-replay backend.
"""

import os
import tempfile
import time

from repro.backend.base import IoBackend
from repro.backend.pagedev import PageDeviceBase
from repro.backend.trace_io import TraceWriter
from repro.nvme.device import DeviceProfile
from repro.nvme.driver import NvmeDriver
from repro.sim.clock import usec


def file_backend_profile(**overrides):
    """Default calibration constants for the file backend.

    Host-page-cache-backed files serve in single-digit microseconds,
    so the channel count is modest and the CPU cost constants keep the
    simulated-thread accounting meaningful.  ``read_service_ns`` /
    ``write_service_ns`` are *fallbacks* (used when a syscall is
    skipped, e.g. an injected write failure); live commands are timed,
    not modelled.
    """
    defaults = dict(
        name="file_backend",
        channels=8,
        read_service_ns=usec(6),
        write_service_ns=usec(10),
        service_sigma=0.0,
        capacity_pages=4_000_000,
    )
    defaults.update(overrides)
    return DeviceProfile(**defaults)


class FilePageDevice(PageDeviceBase):
    """Page device whose media is a real scratch file.

    ``path=None`` creates (and owns) a temporary scratch file that is
    unlinked on :meth:`close`; an explicit path is opened/created and
    left in place.
    """

    def __init__(self, engine, profile, path=None, rng_name="file",
                 faults=None, quantum_ns=256):
        super().__init__(engine, profile, rng_name=rng_name, faults=faults)
        if quantum_ns < 1:
            quantum_ns = 1
        self.quantum_ns = quantum_ns
        self._owns_file = path is None
        if path is None:
            fd, path = tempfile.mkstemp(prefix="patree-file-backend-",
                                        suffix=".dat")
            self._fd = fd
        else:
            self._fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o600)
        self.path = path
        self._written = set()
        self.recorder = None
        self.syscall_ns_total = 0
        self.syscalls = 0
        self.closed = False

    # -- media plane (real syscalls) -----------------------------------

    def _media_write(self, lba, data):
        os.pwrite(self._fd, data, lba * self.profile.page_size)
        self._written.add(lba)

    def _media_read(self, lba):
        page_size = self.profile.page_size
        if lba not in self._written:
            # untouched pages read as zeroes, as the sim device does —
            # without relying on filesystem sparse-read semantics
            return bytes(page_size)
        data = os.pread(self._fd, page_size, lba * page_size)
        if len(data) < page_size:
            data = data + bytes(page_size - len(data))
        return data

    # -- service timing (the wall-clock seam) --------------------------

    def _quantize(self, measured_ns):
        quantum = self.quantum_ns
        buckets = (measured_ns + quantum - 1) // quantum
        return max(buckets, 1) * quantum

    def _begin_service(self, command):
        from repro.nvme.command import IoStatus

        if self.fault_injector is None:
            status = IoStatus.SUCCESS
        else:
            status = self.fault_injector.complete_status(command)
        read_data = None
        profile = self.profile
        if not status.ok:
            # the syscall is skipped: charge the modelled fallback time
            service = (
                profile.write_service_ns
                if command.is_write
                else profile.read_service_ns
            )
        else:
            # the one sanctioned wall-clock read in the tree: the file
            # backend's service times ARE the host's storage timings
            start = time.perf_counter_ns()  # patlint: ignore[PA101]
            if command.is_write:
                self._media_write(command.lba, bytes(command.data))
            else:
                read_data = self._media_read(command.lba)
            measured = time.perf_counter_ns() - start  # patlint: ignore[PA101]
            self.syscall_ns_total += measured
            self.syscalls += 1
            service = self._quantize(measured)
        if self.recorder is not None:
            self.recorder.record(
                command.opcode,
                command.lba,
                service,
                qd=int(self.outstanding.value),
            )
        return service, status, read_data

    def _service_ns(self, command):
        # _begin_service is fully overridden; this is never reached
        raise NotImplementedError

    def _commit_write(self, command):
        """No-op: the pwrite already landed when the service began."""

    # -- lifecycle -----------------------------------------------------

    def close(self):
        if self.closed:
            return
        self.closed = True
        if self.recorder is not None:
            self.recorder.close()
            self.recorder = None
        os.close(self._fd)
        if self._owns_file:
            try:
                os.unlink(self.path)
            except OSError:
                pass


class FileBackend(IoBackend):
    """Backend contract over a :class:`FilePageDevice`."""

    kind = "file"
    wall_clock_variant = True

    def __init__(self, engine, profile=None, path=None, rng_name="file",
                 faults=None, retry=None, quantum_ns=256):
        profile = profile or file_backend_profile()
        device = FilePageDevice(
            engine, profile, path=path, rng_name=rng_name, faults=faults,
            quantum_ns=quantum_ns,
        )
        super().__init__(device, NvmeDriver(device, retry=retry))

    @property
    def path(self):
        return self.device.path

    def describe(self):
        info = super().describe()
        info["quantum_ns"] = self.device.quantum_ns
        return info

    def record_to(self, trace_path):
        """Start recording every serviced command into a JSONL trace."""
        self.device.recorder = TraceWriter(
            trace_path,
            backend=self.kind,
            page_size=self.page_size,
            channels=self.profile.channels,
            quantum_ns=self.device.quantum_ns,
        )
        return self.device.recorder

    def close(self):
        if not self.closed:
            self.device.close()
        super().close()
