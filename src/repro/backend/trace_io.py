"""JSONL I/O-trace format shared by recording, replay and calibration.

A trace file is newline-delimited JSON:

* line 1 — a header object: ``{"kind": "patree-io-trace",
  "version": 1, "backend": "...", "page_size": N, "channels": N,
  "quantum_ns": N}`` (extra keys allowed and preserved);
* every further line — one serviced command, in service-start order:
  ``{"op": "read"|"write", "lba": N, "service_ns": N, "qd": N}``
  where ``qd`` is the device-outstanding depth when the command began
  service.

The format deliberately carries **durations, not timestamps**: replay
re-derives arrival times from the replayed workload, so one trace
calibrates many schedules.  Nothing in a trace identifies the host or
the wall-clock date — traces diff cleanly and can be committed.
"""

import json

from repro.errors import BackendConfigError

TRACE_KIND = "patree-io-trace"
TRACE_VERSION = 1


class TraceWriter:
    """Streams one I/O trace to disk, header first."""

    def __init__(self, path, backend="file", page_size=512, channels=8,
                 **extra):
        self.path = path
        self._handle = open(path, "w")
        self.records = 0
        header = {
            "kind": TRACE_KIND,
            "version": TRACE_VERSION,
            "backend": backend,
            "page_size": page_size,
            "channels": channels,
        }
        header.update(extra)
        self._handle.write(json.dumps(header, sort_keys=True) + "\n")

    def record(self, opcode, lba, service_ns, qd=0):
        self._handle.write(
            json.dumps(
                {
                    "op": opcode,
                    "lba": lba,
                    "service_ns": int(service_ns),
                    "qd": int(qd),
                },
                sort_keys=True,
            )
            + "\n"
        )
        self.records += 1

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class IoTrace:
    """One parsed trace: the header dict plus the record list."""

    def __init__(self, header, records):
        self.header = header
        self.records = records

    @property
    def page_size(self):
        return self.header.get("page_size", 512)

    @property
    def channels(self):
        return self.header.get("channels", 8)

    def service_times(self, opcode):
        return [r["service_ns"] for r in self.records if r["op"] == opcode]

    def __len__(self):
        return len(self.records)


def read_trace(path):
    """Parse a trace file; typed errors for malformed input."""
    try:
        with open(path) as handle:
            lines = [line for line in handle.read().splitlines() if line]
    except OSError as exc:
        raise BackendConfigError("cannot read trace %r: %s" % (path, exc))
    if not lines:
        raise BackendConfigError("trace %r is empty" % (path,))
    try:
        header = json.loads(lines[0])
        records = [json.loads(line) for line in lines[1:]]
    except ValueError as exc:
        raise BackendConfigError("trace %r is not JSONL: %s" % (path, exc))
    if not isinstance(header, dict) or header.get("kind") != TRACE_KIND:
        raise BackendConfigError(
            "trace %r missing the %r header" % (path, TRACE_KIND)
        )
    for record in records:
        if "op" not in record or "service_ns" not in record:
            raise BackendConfigError(
                "trace %r has a record without op/service_ns" % (path,)
            )
    return IoTrace(header, records)
