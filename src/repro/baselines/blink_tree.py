"""Blink-tree baseline (Lehman & Yao), synchronous paradigm.

The paper compares against a Blink-tree using CAS-style lock-free
reads.  The defining properties reproduced here:

* every node carries a right-link (``next_id``) and a fence
  (``high_key``); a reader that lands on a node whose fence is below
  its search key simply chases right — so **reads take no latches at
  all** (page reads are atomic snapshots),
* writers latch only the leaf (then parent, one level at a time,
  bottom-up) — no latch coupling down the tree,
* deletes never merge (classic Blink lazy deletion).

It shares the node format, blocking I/O services and buffer machinery
with the other baselines, so the comparison isolates the concurrency
protocol and execution paradigm.
"""

from repro.core.latch import EXCLUSIVE
from repro.core.meta import META_PAGE
from repro.core.node import NO_PAGE, Node
from repro.core.ops import DELETE, INSERT, RANGE, SEARCH, SYNC, UPDATE
from repro.errors import TreeError
from repro.sim.metrics import CPU_REAL_WORK
from repro.simos.sync import Mutex
from repro.simos.thread import Cpu, SemPost, SemWait


class BlinkTreeAccessor:
    """Latch-free-read Blink-tree over the shared blocking substrate."""

    def __init__(self, tree, io_service, latches, buffer=None, persistence="strong"):
        if persistence == "weak" and (buffer is None or buffer.mode != "weak"):
            raise TreeError("weak persistence requires a ReadWriteBuffer")
        self.tree = tree
        self.io = io_service
        self.latches = latches
        self.buffer = buffer
        self.persistence = persistence
        self._buffer_mutex = Mutex("blink-buffer") if buffer is not None else None
        self._alloc_mutex = Mutex("blink-alloc")
        self._flush_locks = {}  # page_id -> Mutex (serializes flushes)
        self._meta_mutex = Mutex("blink-meta")

    # ------------------------------------------------------------------
    # shared plumbing (same cost structure as SyncTreeAccessor)
    # ------------------------------------------------------------------

    def _read_node(self, tls, page_id):
        costs = self.tree.costs
        if self.buffer is not None:
            yield SemWait(self._buffer_mutex)
            yield Cpu(costs.buffer_lookup_ns, CPU_REAL_WORK)
            data = self.buffer.lookup(page_id)
            yield SemPost(self._buffer_mutex)
            if data is not None:
                yield Cpu(costs.node_parse_ns, CPU_REAL_WORK)
                return Node.from_bytes(self.tree.config, page_id, data)
        data = yield from self.io.read(tls, page_id)
        if self.buffer is not None:
            yield SemWait(self._buffer_mutex)
            evicted = self.buffer.install(page_id, data)
            yield SemPost(self._buffer_mutex)
            yield from self._flush_evicted(tls, evicted)
        yield Cpu(costs.node_parse_ns, CPU_REAL_WORK)
        return Node.from_bytes(self.tree.config, page_id, data)

    def _flush_evicted(self, tls, evicted):
        """Flush dirty evictions with per-page ordering.

        Two threads may hold flushes for the same page (evict, rewrite,
        evict again); without serialization the older image could land
        on media last.  A per-page mutex serializes the device writes,
        and each flusher writes the *newest* in-flight bytes, so the
        final media content is always the latest version.
        """
        for victim_id, victim_data in evicted:
            yield SemWait(self._buffer_mutex)
            lock = self._flush_locks.get(victim_id)
            if lock is None:
                lock = self._flush_locks[victim_id] = Mutex("flush")
            yield SemPost(self._buffer_mutex)
            yield SemWait(lock)
            latest = self.buffer.in_flight_data(victim_id)
            yield from self.io.write(
                tls, victim_id, latest if latest is not None else victim_data
            )
            yield SemWait(self._buffer_mutex)
            self.buffer.flush_done(victim_id)
            yield SemPost(self._buffer_mutex)
            yield SemPost(lock)

    def _write_page(self, tls, page_id, data):
        if self.persistence == "weak":
            yield SemWait(self._buffer_mutex)
            evicted = self.buffer.write(page_id, data)
            yield SemPost(self._buffer_mutex)
            yield from self._flush_evicted(tls, evicted)
            return
        yield from self.io.write(tls, page_id, data)
        if self.buffer is not None:
            yield SemWait(self._buffer_mutex)
            self.buffer.install(page_id, data)
            yield SemPost(self._buffer_mutex)

    def _write_node(self, tls, node):
        yield Cpu(self.tree.costs.node_serialize_ns, CPU_REAL_WORK)
        yield from self._write_page(tls, node.page_id, node.to_bytes())

    def _allocate(self):
        yield SemWait(self._alloc_mutex)
        page_id = self.tree.allocator.allocate()
        yield SemPost(self._alloc_mutex)
        return page_id

    # ------------------------------------------------------------------
    # traversal helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _needs_right_move(node, key):
        return (
            node.high_key is not None
            and key >= node.high_key
            and node.next_id != NO_PAGE
        )

    def _chase_right(self, tls, node, key):
        """Follow right-links until ``key`` is within the node's fence."""
        while self._needs_right_move(node, key):
            node = yield from self._read_node(tls, node.next_id)
            yield Cpu(self.tree.costs.node_search_ns, CPU_REAL_WORK)
        return node

    def _descend_to_leaf(self, tls, key):
        """Latch-free descent; returns (leaf_node, ancestor_page_ids)."""
        costs = self.tree.costs
        ancestors = []
        node = yield from self._read_node(tls, self.tree.meta.root_page)
        yield Cpu(costs.node_search_ns, CPU_REAL_WORK)
        while True:
            node = yield from self._chase_right(tls, node, key)
            if node.is_leaf:
                return node, ancestors
            ancestors.append(node.page_id)
            node = yield from self._read_node(tls, node.child_for(key))
            yield Cpu(costs.node_search_ns, CPU_REAL_WORK)

    def _latch_node_for_key(self, tls, start_id, key):
        """Latch a node, re-read it, and move right (with latch hand-over)
        until the key fits — the Blink writer protocol."""
        page_id = start_id
        yield from self.latches.acquire(page_id, EXCLUSIVE)
        node = yield from self._read_node(tls, page_id)
        while self._needs_right_move(node, key):
            next_id = node.next_id
            yield from self.latches.acquire(next_id, EXCLUSIVE)
            yield from self.latches.release(page_id, EXCLUSIVE)
            page_id = next_id
            node = yield from self._read_node(tls, page_id)
        return node

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def execute(self, tls, op):
        if op.kind == SEARCH:
            yield from self._search(tls, op)
        elif op.kind == RANGE:
            yield from self._range(tls, op)
        elif op.kind == INSERT:
            yield from self._insert(tls, op)
        elif op.kind == UPDATE:
            yield from self._leaf_write(tls, op, update_only=True)
        elif op.kind == DELETE:
            yield from self._delete(tls, op)
        elif op.kind == SYNC:
            yield from self._sync(tls, op)
        else:
            raise TreeError("unknown operation kind %r" % (op.kind,))

    def _search(self, tls, op):
        leaf, _ancestors = yield from self._descend_to_leaf(tls, op.key)
        op.result = leaf.leaf_lookup(op.key)

    def _range(self, tls, op):
        costs = self.tree.costs
        results = []
        node, _ancestors = yield from self._descend_to_leaf(tls, op.key)
        while True:
            index = node.leaf_range_from(op.key)
            truncated = False
            while index < node.count and node.keys[index] <= op.high_key:
                results.append((node.keys[index], node.values[index]))
                index += 1
                if op.limit and len(results) >= op.limit:
                    truncated = True
                    break
            exhausted = node.count > 0 and node.keys[-1] >= op.high_key
            if truncated or exhausted or node.next_id == NO_PAGE:
                op.result = results
                return
            node = yield from self._read_node(tls, node.next_id)
            yield Cpu(costs.node_search_ns, CPU_REAL_WORK)

    def _leaf_write(self, tls, op, update_only):
        """Update (and simple non-splitting insert) path."""
        costs = self.tree.costs
        leaf_hint, _ancestors = yield from self._descend_to_leaf(tls, op.key)
        leaf = yield from self._latch_node_for_key(tls, leaf_hint.page_id, op.key)
        yield Cpu(costs.leaf_update_ns, CPU_REAL_WORK)
        found = leaf.leaf_lookup(op.key) is not None
        if update_only:
            if found:
                leaf.leaf_insert(op.key, op.payload)
                yield from self._write_node(tls, leaf)
            op.result = found
            yield from self.latches.release(leaf.page_id, EXCLUSIVE)
            return leaf, found
        return leaf, found

    def _insert(self, tls, op):
        costs = self.tree.costs
        tree = self.tree
        leaf_hint, ancestors = yield from self._descend_to_leaf(tls, op.key)
        leaf = yield from self._latch_node_for_key(tls, leaf_hint.page_id, op.key)
        yield Cpu(costs.leaf_update_ns, CPU_REAL_WORK)

        if not leaf.is_full or leaf.leaf_lookup(op.key) is not None:
            inserted = leaf.leaf_insert(op.key, op.payload)
            op.result = inserted
            if inserted:
                tree.meta.key_count += 1
            yield from self._write_node(tls, leaf)
            yield from self.latches.release(leaf.page_id, EXCLUSIVE)
            return

        # Split the leaf, then insert separators bottom-up.
        yield Cpu(costs.split_ns, CPU_REAL_WORK)
        right_id = yield from self._allocate()
        right, separator = leaf.split(right_id)
        if op.key >= separator:
            right.leaf_insert(op.key, op.payload)
        else:
            leaf.leaf_insert(op.key, op.payload)
        tree.meta.key_count += 1
        op.result = True
        yield from self._write_node(tls, right)  # right sibling durable first
        yield from self._write_node(tls, leaf)
        yield from self.latches.release(leaf.page_id, EXCLUSIVE)

        child_id = leaf.page_id
        child_level = 0
        while True:
            if ancestors:
                parent_start = ancestors.pop()
            else:
                done = yield from self._maybe_split_root(
                    tls, child_level, separator, right_id
                )
                if done:
                    return
                # a concurrent root change happened; re-descend for a
                # parent.  ``fresh`` holds ancestor ids root-first, so
                # the ancestor at level L sits L entries from the end
                # (level 1 is last); we need the level child_level + 1.
                _leaf, fresh = yield from self._descend_to_leaf(tls, separator)
                if len(fresh) < child_level + 1:
                    continue  # tree still too short; retry the root path
                parent_start = fresh[-(child_level + 1)]
            parent = yield from self._latch_node_for_key(tls, parent_start, separator)
            yield Cpu(costs.leaf_update_ns, CPU_REAL_WORK)
            if not parent.is_full:
                parent.inner_insert(separator, right_id)
                yield from self._write_node(tls, parent)
                yield from self.latches.release(parent.page_id, EXCLUSIVE)
                return
            yield Cpu(costs.split_ns, CPU_REAL_WORK)
            parent_right_id = yield from self._allocate()
            parent_right, parent_sep = parent.split(parent_right_id)
            if separator > parent_sep:
                parent_right.inner_insert(separator, right_id)
            else:
                parent.inner_insert(separator, right_id)
            yield from self._write_node(tls, parent_right)
            yield from self._write_node(tls, parent)
            yield from self.latches.release(parent.page_id, EXCLUSIVE)
            child_id = parent.page_id
            child_level = parent.level
            separator = parent_sep
            right_id = parent_right_id

    def _maybe_split_root(self, tls, child_level, separator, right_id):
        """Grow the tree when the split reached the current root."""
        tree = self.tree
        yield SemWait(self._meta_mutex)
        if tree.meta.height - 1 != child_level:
            # someone already grew the tree; a parent level exists now
            yield SemPost(self._meta_mutex)
            return False
        new_root_id = yield from self._allocate()
        new_root = Node.new_inner(tree.config, new_root_id, child_level + 1)
        old_root_id = tree.meta.root_page
        new_root.keys = [separator]
        new_root.children = [old_root_id, right_id]
        yield from self._write_node(tls, new_root)
        tree.meta.root_page = new_root_id
        tree.meta.height += 1
        yield Cpu(tree.costs.node_serialize_ns, CPU_REAL_WORK)
        yield from self._write_page(tls, META_PAGE, tree.meta.to_bytes())
        yield SemPost(self._meta_mutex)
        return True

    def _delete(self, tls, op):
        costs = self.tree.costs
        leaf_hint, _ancestors = yield from self._descend_to_leaf(tls, op.key)
        leaf = yield from self._latch_node_for_key(tls, leaf_hint.page_id, op.key)
        yield Cpu(costs.leaf_update_ns, CPU_REAL_WORK)
        removed = leaf.leaf_delete(op.key)
        op.result = removed
        if removed:
            self.tree.meta.key_count -= 1
            yield from self._write_node(tls, leaf)
        yield from self.latches.release(leaf.page_id, EXCLUSIVE)

    def _sync(self, tls, op):
        if self.persistence == "strong" or self.buffer is None:
            op.result = 0
            return
        yield SemWait(self._buffer_mutex)
        flushing = self.buffer.take_dirty()
        yield SemPost(self._buffer_mutex)
        # reuse the ordered per-page flush path so a sync never races
        # an in-flight eviction flush of the same page
        yield from self._flush_evicted(tls, flushing)
        op.result = len(flushing)
