"""Thread-blocking latches for the synchronous baselines.

The paper's shared and dedicated baselines use the same latch-coupling
protocol as PA-Tree but implemented with semaphore wait/post
primitives: a global table mutex protects the latch state, and a
blocked acquirer sleeps on a private semaphore until a releaser grants
it.  Every acquire/release therefore costs at least two semaphore
syscalls, and contention adds blocking, wakeup latency and context
switches — the synchronization overhead the paper's Fig 9 breakdown
attributes to the traditional execution paradigm.
"""

from collections import deque

from repro.core.latch import EXCLUSIVE, SHARED
from repro.errors import LatchError
from repro.simos.sync import Mutex, Semaphore
from repro.simos.thread import SemPost, SemWait


class _Entry:
    __slots__ = ("readers", "writers", "pending")

    def __init__(self):
        self.readers = 0
        self.writers = 0
        self.pending = deque()  # (mode, semaphore)

    @property
    def idle(self):
        return self.readers == 0 and self.writers == 0 and not self.pending

    def can_grant(self, mode):
        if mode == EXCLUSIVE:
            return self.readers == 0 and self.writers == 0
        return self.writers == 0

    def grant(self, mode):
        if mode == EXCLUSIVE:
            self.writers += 1
        else:
            self.readers += 1


class BlockingLatchTable:
    """Semaphore-based page latches shared by baseline worker threads."""

    def __init__(self):
        self._mutex = Mutex("latch-table")
        self._entries = {}
        self.acquisitions = 0
        self.blocks = 0

    def _entry(self, page_id):
        entry = self._entries.get(page_id)
        if entry is None:
            entry = _Entry()
            self._entries[page_id] = entry
        return entry

    def acquire(self, page_id, mode):
        """Generator: blocks the calling simulated thread until granted."""
        if mode not in (SHARED, EXCLUSIVE):
            raise LatchError("unknown latch mode %r" % (mode,))
        yield SemWait(self._mutex)
        self.acquisitions += 1
        entry = self._entry(page_id)
        if not entry.pending and entry.can_grant(mode):
            entry.grant(mode)
            yield SemPost(self._mutex)
            return
        self.blocks += 1
        wakeup = Semaphore(0, name="latch-wait-%d" % page_id)
        entry.pending.append((mode, wakeup))
        yield SemPost(self._mutex)
        yield SemWait(wakeup)  # granter updated the counts already

    def release(self, page_id, mode):
        """Generator: releases and wakes eligible FIFO waiters."""
        yield SemWait(self._mutex)
        entry = self._entries.get(page_id)
        if entry is None:
            raise LatchError("release on unlatched page %d" % page_id)
        if mode == EXCLUSIVE:
            if entry.writers != 1:
                raise LatchError("exclusive release without writer on %d" % page_id)
            entry.writers = 0
        else:
            if entry.readers < 1:
                raise LatchError("shared release without readers on %d" % page_id)
            entry.readers -= 1
        woken = []
        while entry.pending:
            pending_mode, wakeup = entry.pending[0]
            if not entry.can_grant(pending_mode):
                break
            entry.pending.popleft()
            entry.grant(pending_mode)
            woken.append(wakeup)
        if entry.idle:
            del self._entries[page_id]
        yield SemPost(self._mutex)
        for wakeup in woken:
            yield SemPost(wakeup)

    def assert_quiescent(self):
        if self._entries:
            raise LatchError(
                "latches still held on pages %r" % sorted(self._entries)
            )
