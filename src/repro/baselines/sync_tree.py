"""Synchronous B+ tree accessor (paper §V-A baselines).

Implements exactly the same index algorithms as PA-Tree's operation
plans — latch-coupled descent, split cascades with ordered write
waves, right-sibling delete rebalancing, strong/weak persistence — but
in the *traditional synchronous execution paradigm*: the calling
thread blocks on every I/O (through a :mod:`~repro.baselines.io_service`)
and on every latch (through the semaphore-based
:class:`~repro.baselines.latching.BlockingLatchTable`).

One accessor instance is shared by all worker threads of a baseline
run; shared mutable state (buffer, allocator, meta) is protected by
mutexes, each access paying the semaphore syscall costs the paper's
CPU breakdown charges to synchronization.
"""

from repro.core.latch import EXCLUSIVE, SHARED
from repro.core.meta import META_PAGE
from repro.core.node import NO_PAGE, Node
from repro.core.ops import DELETE, INSERT, RANGE, SEARCH, SYNC, UPDATE
from repro.errors import TreeError
from repro.sim.metrics import CPU_REAL_WORK
from repro.simos.sync import Mutex
from repro.simos.thread import Cpu, SemPost, SemWait


class SyncTreeAccessor:
    """Blocking-paradigm tree operations over shared tree state."""

    def __init__(self, tree, io_service, latches, buffer=None, persistence="strong"):
        if persistence not in ("strong", "weak"):
            raise TreeError("unknown persistence %r" % (persistence,))
        if persistence == "weak" and (buffer is None or buffer.mode != "weak"):
            raise TreeError("weak persistence requires a ReadWriteBuffer")
        self.tree = tree
        self.io = io_service
        self.latches = latches
        self.buffer = buffer
        self.persistence = persistence
        self._buffer_mutex = Mutex("buffer") if buffer is not None else None
        self._alloc_mutex = Mutex("allocator")
        self._flush_locks = {}  # page_id -> Mutex (serializes flushes)

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def execute(self, tls, op):
        """Run one operation to completion on the calling thread."""
        if op.kind == SEARCH:
            yield from self._search(tls, op)
        elif op.kind == RANGE:
            yield from self._range(tls, op)
        elif op.kind == INSERT:
            yield from self._insert(tls, op)
        elif op.kind == UPDATE:
            yield from self._update(tls, op)
        elif op.kind == DELETE:
            yield from self._delete(tls, op)
        elif op.kind == SYNC:
            yield from self._sync(tls, op)
        else:
            raise TreeError("unknown operation kind %r" % (op.kind,))

    # ------------------------------------------------------------------
    # node I/O through buffer + blocking I/O service
    # ------------------------------------------------------------------

    def _read_node(self, tls, page_id):
        costs = self.tree.costs
        if self.buffer is not None:
            yield SemWait(self._buffer_mutex)
            yield Cpu(costs.buffer_lookup_ns, CPU_REAL_WORK)
            data = self.buffer.lookup(page_id)
            yield SemPost(self._buffer_mutex)
            if data is not None:
                yield Cpu(costs.node_parse_ns, CPU_REAL_WORK)
                return Node.from_bytes(self.tree.config, page_id, data)
        data = yield from self.io.read(tls, page_id)
        if self.buffer is not None:
            yield from self._install(tls, page_id, data)
        yield Cpu(costs.node_parse_ns, CPU_REAL_WORK)
        return Node.from_bytes(self.tree.config, page_id, data)

    def _install(self, tls, page_id, data):
        yield SemWait(self._buffer_mutex)
        evicted = self.buffer.install(page_id, data)
        yield SemPost(self._buffer_mutex)
        yield from self._flush_evicted(tls, evicted)

    def _flush_evicted(self, tls, evicted):
        """Flush dirty evictions with per-page ordering.

        Two threads may hold flushes for the same page (evict, rewrite,
        evict again); without serialization the older image could land
        on media last.  A per-page mutex serializes the device writes,
        and each flusher writes the *newest* in-flight bytes, so the
        final media content is always the latest version.
        """
        for victim_id, victim_data in evicted:
            yield SemWait(self._buffer_mutex)
            lock = self._flush_locks.get(victim_id)
            if lock is None:
                lock = self._flush_locks[victim_id] = Mutex("flush")
            yield SemPost(self._buffer_mutex)
            yield SemWait(lock)
            latest = self.buffer.in_flight_data(victim_id)
            yield from self.io.write(
                tls, victim_id, latest if latest is not None else victim_data
            )
            yield SemWait(self._buffer_mutex)
            self.buffer.flush_done(victim_id)
            yield SemPost(self._buffer_mutex)
            yield SemPost(lock)

    def _write_page(self, tls, page_id, data):
        """Persist one page per the persistence mode (blocking)."""
        if self.persistence == "weak":
            yield SemWait(self._buffer_mutex)
            evicted = self.buffer.write(page_id, data)
            yield SemPost(self._buffer_mutex)
            yield from self._flush_evicted(tls, evicted)
            return
        yield from self.io.write(tls, page_id, data)
        if self.buffer is not None:
            yield SemWait(self._buffer_mutex)
            self.buffer.install(page_id, data)
            yield SemPost(self._buffer_mutex)

    def _write_node(self, tls, node):
        yield Cpu(self.tree.costs.node_serialize_ns, CPU_REAL_WORK)
        yield from self._write_page(tls, node.page_id, node.to_bytes())

    def _write_meta(self, tls):
        yield Cpu(self.tree.costs.node_serialize_ns, CPU_REAL_WORK)
        yield from self._write_page(tls, META_PAGE, self.tree.meta.to_bytes())

    def _allocate(self):
        yield SemWait(self._alloc_mutex)
        page_id = self.tree.allocator.allocate()
        yield SemPost(self._alloc_mutex)
        return page_id

    def _free(self, page_id):
        yield SemWait(self._alloc_mutex)
        self.tree.allocator.free(page_id)
        yield SemPost(self._alloc_mutex)
        if self.buffer is not None:
            yield SemWait(self._buffer_mutex)
            self.buffer.invalidate(page_id)
            yield SemPost(self._buffer_mutex)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def _search(self, tls, op):
        costs = self.tree.costs
        yield from self.latches.acquire(META_PAGE, SHARED)
        prev = META_PAGE
        page_id = self.tree.meta.root_page
        while True:
            yield from self.latches.acquire(page_id, SHARED)
            yield from self.latches.release(prev, SHARED)
            node = yield from self._read_node(tls, page_id)
            yield Cpu(costs.node_search_ns, CPU_REAL_WORK)
            if node.is_leaf:
                op.result = node.leaf_lookup(op.key)
                yield from self.latches.release(page_id, SHARED)
                return
            prev = page_id
            page_id = node.child_for(op.key)

    def _range(self, tls, op):
        costs = self.tree.costs
        results = []
        yield from self.latches.acquire(META_PAGE, SHARED)
        prev = META_PAGE
        page_id = self.tree.meta.root_page
        while True:
            yield from self.latches.acquire(page_id, SHARED)
            yield from self.latches.release(prev, SHARED)
            node = yield from self._read_node(tls, page_id)
            yield Cpu(costs.node_search_ns, CPU_REAL_WORK)
            if node.is_leaf:
                break
            prev = page_id
            page_id = node.child_for(op.key)
        while True:
            index = node.leaf_range_from(op.key)
            truncated = False
            while index < node.count and node.keys[index] <= op.high_key:
                results.append((node.keys[index], node.values[index]))
                index += 1
                if op.limit and len(results) >= op.limit:
                    truncated = True
                    break
            exhausted = node.count > 0 and node.keys[-1] >= op.high_key
            if truncated or exhausted or node.next_id == NO_PAGE:
                yield from self.latches.release(node.page_id, SHARED)
                op.result = results
                return
            next_id = node.next_id
            yield from self.latches.acquire(next_id, SHARED)
            yield from self.latches.release(node.page_id, SHARED)
            node = yield from self._read_node(tls, next_id)
            yield Cpu(costs.node_search_ns, CPU_REAL_WORK)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def _descend_exclusive(self, tls, op, safe_test):
        yield from self.latches.acquire(META_PAGE, EXCLUSIVE)
        path_ids = [META_PAGE]
        path_nodes = [None]
        page_id = self.tree.meta.root_page
        while True:
            yield from self.latches.acquire(page_id, EXCLUSIVE)
            node = yield from self._read_node(tls, page_id)
            yield Cpu(self.tree.costs.node_search_ns, CPU_REAL_WORK)
            if safe_test(node):
                for ancestor in path_ids:
                    yield from self.latches.release(ancestor, EXCLUSIVE)
                path_ids = [page_id]
                path_nodes = [node]
            else:
                path_ids.append(page_id)
                path_nodes.append(node)
            if node.is_leaf:
                return path_ids, path_nodes
            page_id = node.child_for(op.key)

    def _release_path(self, path_ids):
        for page_id in path_ids:
            yield from self.latches.release(page_id, EXCLUSIVE)

    def _insert(self, tls, op):
        costs = self.tree.costs
        tree = self.tree
        path_ids, path_nodes = yield from self._descend_exclusive(
            tls, op, lambda node: node.is_safe_for_insert()
        )
        leaf = path_nodes[-1]
        yield Cpu(costs.leaf_update_ns, CPU_REAL_WORK)

        if not leaf.is_full or leaf.leaf_lookup(op.key) is not None:
            inserted = leaf.leaf_insert(op.key, op.payload)
            op.result = inserted
            if inserted:
                tree.meta.key_count += 1
            yield from self._write_node(tls, leaf)
            yield from self._release_path(path_ids)
            return

        new_nodes = []
        dirty = {}
        write_meta = False

        yield Cpu(costs.split_ns, CPU_REAL_WORK)
        right_id = yield from self._allocate()
        right, separator = leaf.split(right_id)
        if op.key >= separator:
            right.leaf_insert(op.key, op.payload)
        else:
            leaf.leaf_insert(op.key, op.payload)
        tree.meta.key_count += 1
        op.result = True
        new_nodes.append(right)
        dirty[leaf.page_id] = leaf

        index = len(path_nodes) - 2
        while True:
            parent = path_nodes[index] if index >= 0 else None
            if parent is None:
                old_root = path_nodes[index + 1]
                new_root_id = yield from self._allocate()
                new_root = Node.new_inner(tree.config, new_root_id, old_root.level + 1)
                new_root.keys = [separator]
                new_root.children = [old_root.page_id, right_id]
                new_nodes.append(new_root)
                tree.meta.root_page = new_root_id
                tree.meta.height += 1
                write_meta = True
                break
            if not parent.is_full:
                parent.inner_insert(separator, right_id)
                dirty[parent.page_id] = parent
                break
            yield Cpu(costs.split_ns, CPU_REAL_WORK)
            parent_right_id = yield from self._allocate()
            parent_right, parent_sep = parent.split(parent_right_id)
            if separator > parent_sep:
                parent_right.inner_insert(separator, right_id)
            else:
                parent.inner_insert(separator, right_id)
            new_nodes.append(parent_right)
            dirty[parent.page_id] = parent
            separator = parent_sep
            right_id = parent_right_id
            index -= 1

        # wave 1: new right siblings; wave 2: pages pointing at them
        for node in new_nodes:
            yield from self._write_node(tls, node)
        for node in dirty.values():
            yield from self._write_node(tls, node)
        if write_meta:
            yield from self._write_meta(tls)
        yield from self._release_path(path_ids)

    def _update(self, tls, op):
        costs = self.tree.costs
        yield from self.latches.acquire(META_PAGE, SHARED)
        prev = META_PAGE
        prev_mode = SHARED
        page_id = self.tree.meta.root_page
        level = self.tree.meta.height - 1
        while True:
            mode = EXCLUSIVE if level == 0 else SHARED
            yield from self.latches.acquire(page_id, mode)
            yield from self.latches.release(prev, prev_mode)
            node = yield from self._read_node(tls, page_id)
            yield Cpu(costs.node_search_ns, CPU_REAL_WORK)
            if node.is_leaf:
                found = node.leaf_lookup(op.key) is not None
                if found:
                    yield Cpu(costs.leaf_update_ns, CPU_REAL_WORK)
                    node.leaf_insert(op.key, op.payload)
                    yield from self._write_node(tls, node)
                op.result = found
                yield from self.latches.release(page_id, mode)
                return
            prev = page_id
            prev_mode = mode
            page_id = node.child_for(op.key)
            level -= 1

    def _delete(self, tls, op):
        costs = self.tree.costs
        tree = self.tree
        path_ids, path_nodes = yield from self._descend_exclusive(
            tls, op, lambda node: node.is_safe_for_delete()
        )
        leaf = path_nodes[-1]
        yield Cpu(costs.leaf_update_ns, CPU_REAL_WORK)
        removed = leaf.leaf_delete(op.key)
        op.result = removed
        if not removed:
            yield from self._release_path(path_ids)
            return
        tree.meta.key_count -= 1

        dirty = {leaf.page_id: leaf}
        write_meta = False
        index = len(path_nodes) - 1
        current = leaf
        while current.count < current.min_keys:
            parent = path_nodes[index - 1] if index >= 1 else None
            if parent is None:
                break
            child_index = parent.children.index(current.page_id)
            if child_index == parent.count:
                break  # rightmost child: tolerate underflow
            right_id = parent.children[child_index + 1]
            yield from self.latches.acquire(right_id, EXCLUSIVE)
            right = yield from self._read_node(tls, right_id)
            separator = parent.keys[child_index]
            yield Cpu(costs.merge_ns, CPU_REAL_WORK)
            if current.can_merge_with(right):
                current.merge_from_right(right, separator)
                parent.inner_remove_child(child_index + 1)
                yield from self.latches.release(right_id, EXCLUSIVE)
                yield from self._free(right_id)
                dirty.pop(right_id, None)
                dirty[current.page_id] = current
                dirty[parent.page_id] = parent
                current = parent
                index -= 1
            else:
                moves = max(1, (right.count - current.count) // 2)
                new_separator = separator
                for _ in range(moves):
                    new_separator = current.borrow_from_right(right, new_separator)
                parent.keys[child_index] = new_separator
                dirty[current.page_id] = current
                dirty[right_id] = right
                dirty[parent.page_id] = parent
                yield from self.latches.release(right_id, EXCLUSIVE)
                break

        root = (
            path_nodes[1]
            if path_nodes and path_nodes[0] is None and len(path_nodes) > 1
            else None
        )
        if (
            root is not None
            and not root.is_leaf
            and root.count == 0
            and tree.meta.root_page == root.page_id
        ):
            tree.meta.root_page = root.children[0]
            tree.meta.height -= 1
            write_meta = True
            dirty.pop(root.page_id, None)
            yield from self._free(root.page_id)

        for node in dirty.values():
            yield from self._write_node(tls, node)
        if write_meta:
            yield from self._write_meta(tls)
        yield from self._release_path(path_ids)

    def _sync(self, tls, op):
        if self.persistence == "strong" or self.buffer is None:
            op.result = 0
            return
        yield SemWait(self._buffer_mutex)
        flushing = self.buffer.take_dirty()
        yield SemPost(self._buffer_mutex)
        # reuse the ordered per-page flush path so a sync never races
        # an in-flight eviction flush of the same page
        yield from self._flush_evicted(tls, flushing)
        op.result = len(flushing)
