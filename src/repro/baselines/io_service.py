"""Blocking I/O paradigms for the synchronous baselines (paper §V-A).

* :class:`DedicatedIoService` — every working thread owns a queue
  pair; after submitting it spin-polls its own completion queue with a
  short pause between probes.  High CPU burn, frequent device probes.
* :class:`SharedIoService` — working threads push requests onto a
  global queue and block on a per-request semaphore; one daemon thread
  submits everything through a single queue pair, probes continuously,
  and posts the semaphores of completed requests.  Lower probe
  pressure per worker but two thread hops (block + wakeup) per I/O.

Both expose generator-style ``read``/``write`` that block the calling
simulated thread until the I/O completes — the synchronous paradigm
whose costs the paper measures against PA-Tree.

Both branch on the completion status: a failed *write* is re-driven
inline (the blocking caller is already waiting, so escalation is just
another submit) up to a bounded budget; a failed *read* — or a write
that exhausts the budget — raises the typed
:class:`~repro.errors.IoError` to the calling thread.
"""

from collections import deque

from repro.errors import IoError, RetryExhaustedError, SimulationError
from repro.nvme.command import OP_READ, OP_WRITE
from repro.sim.clock import usec
from repro.sim.metrics import CPU_NVME, CPU_OTHER
from repro.simos.sync import Mutex, Semaphore
from repro.simos.thread import Cpu, SemPost, SemWait, Sleep

_MAX_WRITE_ESCALATIONS = 8


def _io_error(completion):
    """Typed exception for a completion delivered with a failure status."""
    command = completion.command
    status = completion.status
    cls = RetryExhaustedError if status.retriable else IoError
    return cls(
        "%s of lba %d failed with status %s (retries=%d)"
        % (command.opcode, command.lba, status, command.retries),
        status=status,
        opcode=command.opcode,
        lba=command.lba,
    )


class _ThreadIoState:
    """Per-worker-thread I/O state (dedicated: its own queue pair)."""

    __slots__ = ("qpair",)

    def __init__(self, qpair=None):
        self.qpair = qpair


class DedicatedIoService:
    """Per-thread queue pair with polled completion.

    ``pause_mode='spin'`` burns CPU between probes (reproduces the
    paper's Table I: high CPU consumption for the dedicated approach);
    ``pause_mode='sleep'`` blocks between probes (reproduces Table II's
    lower CPU-per-op at the cost of extra wakeup context switches —
    the paper's two tables are mutually inconsistent about which the
    authors ran, so both are provided).
    """

    name = "dedicated"
    needs_daemon = False

    def __init__(self, driver, poll_pause_us=20, pause_mode="spin"):
        if pause_mode not in ("spin", "sleep"):
            raise SimulationError("unknown pause mode %r" % (pause_mode,))
        self.driver = driver
        self.poll_pause_ns = usec(poll_pause_us)
        self.pause_mode = pause_mode

    def register_thread(self):
        return _ThreadIoState(self.driver.alloc_qpair())

    def start(self, simos):
        """No daemon to start."""

    def stop(self):
        """No daemon to stop."""

    def _blocking_io(self, tls, opcode, lba, data):
        driver = self.driver
        escalations = 0
        while True:
            yield Cpu(driver.submit_cpu_ns, CPU_NVME)
            done = []
            driver.io_submit(
                tls.qpair, opcode, lba, data=data, callback=done.append
            )
            while not done:
                if self.pause_mode == "spin":
                    yield Cpu(self.poll_pause_ns, CPU_OTHER)  # busy pause
                else:
                    yield Sleep(self.poll_pause_ns)
                yield Cpu(driver.probe_cpu_ns(0), CPU_NVME)
                driver.probe(tls.qpair)
            completion = done[0]
            if completion.ok:
                return completion
            if opcode == OP_WRITE and escalations < _MAX_WRITE_ESCALATIONS:
                escalations += 1
                continue
            raise _io_error(completion)

    def read(self, tls, lba):
        completion = yield from self._blocking_io(tls, OP_READ, lba, None)
        return completion.data

    def write(self, tls, lba, data):
        yield from self._blocking_io(tls, OP_WRITE, lba, data)


class _IoRequest:
    __slots__ = ("opcode", "lba", "data", "wakeup", "completion")

    def __init__(self, opcode, lba, data):
        self.opcode = opcode
        self.lba = lba
        self.data = data
        self.wakeup = Semaphore(0, name="io-req")
        self.completion = None


class SharedIoService:
    """Global request queue drained by a dedicated I/O daemon thread."""

    name = "shared"
    needs_daemon = True

    def __init__(self, driver, daemon_spin_us=1.0):
        self.driver = driver
        self.qpair = driver.alloc_qpair()
        self.daemon_spin_ns = usec(daemon_spin_us)
        self._mutex = Mutex("shared-io-queue")
        self._requests = deque()
        self._stop = False
        self._daemon = None

    def register_thread(self):
        return _ThreadIoState()

    def start(self, simos):
        if self._daemon is not None:
            raise SimulationError("shared I/O daemon already running")
        self._stop = False
        self._daemon = simos.spawn(
            self._daemon_body(), name="io-daemon", group="io-daemon"
        )

    def stop(self):
        self._stop = True
        self._daemon = None

    def _daemon_body(self):
        driver = self.driver
        outstanding = 0
        while True:
            yield SemWait(self._mutex)
            batch = list(self._requests)
            self._requests.clear()
            yield SemPost(self._mutex)

            for request in batch:
                yield Cpu(driver.submit_cpu_ns, CPU_NVME)
                driver.io_submit(
                    self.qpair,
                    request.opcode,
                    request.lba,
                    data=request.data,
                    context=request,
                )
                outstanding += 1

            yield Cpu(driver.probe_cpu_ns(0), CPU_NVME)
            completed = driver.probe(self.qpair)
            for completion in completed:
                outstanding -= 1
                request = completion.context
                request.completion = completion
                yield SemPost(request.wakeup)

            if not batch and not completed:
                if self._stop and outstanding == 0:
                    return
                yield Cpu(self.daemon_spin_ns, CPU_NVME)

    def _blocking_io(self, tls, opcode, lba, data):
        escalations = 0
        while True:
            request = _IoRequest(opcode, lba, data)
            yield SemWait(self._mutex)
            self._requests.append(request)
            yield SemPost(self._mutex)
            yield SemWait(request.wakeup)
            completion = request.completion
            if completion.ok:
                return completion
            if opcode == OP_WRITE and escalations < _MAX_WRITE_ESCALATIONS:
                escalations += 1
                continue
            raise _io_error(completion)

    def read(self, tls, lba):
        completion = yield from self._blocking_io(tls, OP_READ, lba, None)
        return completion.data

    def write(self, tls, lba, data):
        yield from self._blocking_io(tls, OP_WRITE, lba, data)
