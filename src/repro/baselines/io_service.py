"""Blocking I/O paradigms for the synchronous baselines (paper §V-A).

* :class:`DedicatedIoService` — every working thread owns a queue
  pair; after submitting it spin-polls its own completion queue with a
  short pause between probes.  High CPU burn, frequent device probes.
* :class:`SharedIoService` — working threads push requests onto a
  global queue and block on a per-request semaphore; one daemon thread
  submits everything through a single queue pair, probes continuously,
  and posts the semaphores of completed requests.  Lower probe
  pressure per worker but two thread hops (block + wakeup) per I/O.

Both expose generator-style ``read``/``write`` that block the calling
simulated thread until the I/O completes — the synchronous paradigm
whose costs the paper measures against PA-Tree.
"""

from collections import deque

from repro.errors import SimulationError
from repro.nvme.command import OP_READ, OP_WRITE
from repro.sim.clock import usec
from repro.sim.metrics import CPU_NVME, CPU_OTHER
from repro.simos.sync import Mutex, Semaphore
from repro.simos.thread import Cpu, SemPost, SemWait, Sleep


class _ThreadIoState:
    """Per-worker-thread I/O state (dedicated: its own queue pair)."""

    __slots__ = ("qpair",)

    def __init__(self, qpair=None):
        self.qpair = qpair


class DedicatedIoService:
    """Per-thread queue pair with polled completion.

    ``pause_mode='spin'`` burns CPU between probes (reproduces the
    paper's Table I: high CPU consumption for the dedicated approach);
    ``pause_mode='sleep'`` blocks between probes (reproduces Table II's
    lower CPU-per-op at the cost of extra wakeup context switches —
    the paper's two tables are mutually inconsistent about which the
    authors ran, so both are provided).
    """

    name = "dedicated"
    needs_daemon = False

    def __init__(self, driver, poll_pause_us=20, pause_mode="spin"):
        if pause_mode not in ("spin", "sleep"):
            raise SimulationError("unknown pause mode %r" % (pause_mode,))
        self.driver = driver
        self.poll_pause_ns = usec(poll_pause_us)
        self.pause_mode = pause_mode

    def register_thread(self):
        return _ThreadIoState(self.driver.alloc_qpair())

    def start(self, simos):
        """No daemon to start."""

    def stop(self):
        """No daemon to stop."""

    def _blocking_io(self, tls, opcode, lba, data):
        driver = self.driver
        yield Cpu(driver.submit_cpu_ns, CPU_NVME)
        done = []
        driver.io_submit(tls.qpair, opcode, lba, data=data, callback=done.append)
        while not done:
            if self.pause_mode == "spin":
                yield Cpu(self.poll_pause_ns, CPU_OTHER)  # busy pause
            else:
                yield Sleep(self.poll_pause_ns)
            yield Cpu(driver.probe_cpu_ns(0), CPU_NVME)
            driver.probe(tls.qpair)
        return done[0]

    def read(self, tls, lba):
        command = yield from self._blocking_io(tls, OP_READ, lba, None)
        return command.data

    def write(self, tls, lba, data):
        yield from self._blocking_io(tls, OP_WRITE, lba, data)


class _IoRequest:
    __slots__ = ("opcode", "lba", "data", "wakeup", "command")

    def __init__(self, opcode, lba, data):
        self.opcode = opcode
        self.lba = lba
        self.data = data
        self.wakeup = Semaphore(0, name="io-req")
        self.command = None


class SharedIoService:
    """Global request queue drained by a dedicated I/O daemon thread."""

    name = "shared"
    needs_daemon = True

    def __init__(self, driver, daemon_spin_us=1.0):
        self.driver = driver
        self.qpair = driver.alloc_qpair()
        self.daemon_spin_ns = usec(daemon_spin_us)
        self._mutex = Mutex("shared-io-queue")
        self._requests = deque()
        self._stop = False
        self._daemon = None

    def register_thread(self):
        return _ThreadIoState()

    def start(self, simos):
        if self._daemon is not None:
            raise SimulationError("shared I/O daemon already running")
        self._stop = False
        self._daemon = simos.spawn(
            self._daemon_body(), name="io-daemon", group="io-daemon"
        )

    def stop(self):
        self._stop = True
        self._daemon = None

    def _daemon_body(self):
        driver = self.driver
        outstanding = 0
        while True:
            yield SemWait(self._mutex)
            batch = list(self._requests)
            self._requests.clear()
            yield SemPost(self._mutex)

            for request in batch:
                yield Cpu(driver.submit_cpu_ns, CPU_NVME)
                driver.io_submit(
                    self.qpair,
                    request.opcode,
                    request.lba,
                    data=request.data,
                    context=request,
                )
                outstanding += 1

            yield Cpu(driver.probe_cpu_ns(0), CPU_NVME)
            completed = driver.probe(self.qpair)
            for command in completed:
                outstanding -= 1
                request = command.context
                request.command = command
                yield SemPost(request.wakeup)

            if not batch and not completed:
                if self._stop and outstanding == 0:
                    return
                yield Cpu(self.daemon_spin_ns, CPU_NVME)

    def _blocking_io(self, tls, opcode, lba, data):
        request = _IoRequest(opcode, lba, data)
        yield SemWait(self._mutex)
        self._requests.append(request)
        yield SemPost(self._mutex)
        yield SemWait(request.wakeup)
        return request.command

    def read(self, tls, lba):
        command = yield from self._blocking_io(tls, OP_READ, lba, None)
        return command.data

    def write(self, tls, lba, data):
        yield from self._blocking_io(tls, OP_WRITE, lba, data)
