"""LCB-Tree baseline: a log-based consistent B+ tree.

The paper's LCB-Tree reaches consistency through logging rather than
in-place page persistence: updates append records to a write-ahead log
and the modified pages stay in an in-memory delta table, written back
to their home locations only at checkpoints.  Strong persistence
flushes the log after every update (one small sequential write per
operation); weak persistence flushes only filled log pages and on
``sync()`` — amortizing many updates per device write.

Implemented as a :class:`SyncTreeAccessor` subclass: identical tree
algorithms and latch protocol, with the page-persistence layer swapped
for log-append + delta-table + checkpoint.
"""

from repro.baselines.sync_tree import SyncTreeAccessor
from repro.core.node import Node
from repro.errors import TreeError
from repro.sim.metrics import CPU_REAL_WORK
from repro.simos.sync import Mutex
from repro.simos.thread import Cpu, SemPost, SemWait
from repro.storage.wal import WriteAheadLog


class LcbTreeAccessor(SyncTreeAccessor):
    """Log-based-consistency variant of the synchronous tree."""

    def __init__(
        self,
        tree,
        io_service,
        latches,
        buffer=None,
        persistence="strong",
        wal_base_lba=None,
        wal_pages=65_536,
        checkpoint_pages=2_048,
    ):
        # The base class validates buffer/persistence pairing for page
        # write-back; LCB persists via the log instead, so a read-only
        # buffer is fine in both modes.
        super().__init__(tree, io_service, latches, buffer=buffer, persistence="strong")
        if persistence not in ("strong", "weak"):
            raise TreeError("unknown persistence %r" % (persistence,))
        self.log_persistence = persistence
        if wal_base_lba is None:
            wal_base_lba = tree.device.profile.capacity_pages - wal_pages
        self.wal = WriteAheadLog(
            tree.config.page_size, base_lba=wal_base_lba, num_pages=wal_pages
        )
        self._wal_mutex = Mutex("lcb-wal")
        self._delta_mutex = Mutex("lcb-delta")
        self._delta = {}  # page_id -> latest page image
        self.checkpoint_pages = checkpoint_pages
        self.checkpoints = 0

    # ------------------------------------------------------------------
    # persistence layer overrides
    # ------------------------------------------------------------------

    def _read_node(self, tls, page_id):
        yield SemWait(self._delta_mutex)
        data = self._delta.get(page_id)
        yield SemPost(self._delta_mutex)
        if data is not None:
            yield Cpu(self.tree.costs.node_parse_ns, CPU_REAL_WORK)
            return Node.from_bytes(self.tree.config, page_id, data)
        node = yield from super()._read_node(tls, page_id)
        return node

    def _write_page(self, tls, page_id, data):
        """Log the update; keep the page image in the delta table."""
        yield SemWait(self._delta_mutex)
        self._delta[page_id] = data
        delta_size = len(self._delta)
        yield SemPost(self._delta_mutex)

        record = page_id.to_bytes(8, "little") + data[:24]  # logical record
        yield SemWait(self._wal_mutex)
        self.wal.append(record)
        include_partial = self.log_persistence == "strong"
        writes, flush_lsn = self.wal.take_flushable(include_partial)
        yield SemPost(self._wal_mutex)
        for lba, image in writes:
            yield from self.io.write(tls, lba, image)
        if writes:
            self.wal.mark_durable(flush_lsn)

        if delta_size >= self.checkpoint_pages:
            yield from self._checkpoint(tls)

    def _checkpoint(self, tls):
        """Write the delta table back to home locations (amortized)."""
        yield SemWait(self._delta_mutex)
        if len(self._delta) < self.checkpoint_pages:
            yield SemPost(self._delta_mutex)
            return
        self.checkpoints += 1
        snapshot = list(self._delta.items())
        yield SemPost(self._delta_mutex)
        for page_id, data in snapshot:
            yield from self.io.write(tls, page_id, data)
            if self.buffer is not None:
                yield SemWait(self._buffer_mutex)
                self.buffer.install(page_id, data)
                yield SemPost(self._buffer_mutex)
        yield SemWait(self._delta_mutex)
        for page_id, data in snapshot:
            if self._delta.get(page_id) is data:
                del self._delta[page_id]
        yield SemPost(self._delta_mutex)

    def materialize_delta(self):
        """Apply the in-memory delta to the media (zero time).

        Stands in for log replay: after a clean shutdown or recovery,
        every logged update is reflected in the home pages.  Used by
        validation and recovery inspection, not by the benchmarks.
        """
        for page_id, data in self._delta.items():
            self.tree.device.raw_write(page_id, data)
        self._delta.clear()

    def _sync(self, tls, op):
        """Flush the log tail (weak persistence group commit)."""
        yield SemWait(self._wal_mutex)
        writes, flush_lsn = self.wal.take_flushable(True)
        yield SemPost(self._wal_mutex)
        for lba, image in writes:
            yield from self.io.write(tls, lba, image)
        if writes:
            self.wal.mark_durable(flush_lsn)
        op.result = len(writes)
