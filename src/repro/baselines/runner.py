"""Multi-threaded baseline runner.

Spawns ``n_threads`` simulated worker threads that pull operations
from a shared queue and execute them synchronously through an accessor
(:class:`~repro.baselines.sync_tree.SyncTreeAccessor`, the Blink/LCB
variants, or the LSM store adapter).  This is the closed-loop shape of
the paper's baseline evaluation: concurrency equals the thread count.

Collects the same statistics the PA engine reports so experiment
harnesses can compare the paradigms directly.
"""

from collections import deque

from repro.core.ops import SYNC
from repro.errors import BenchmarkError, IoError
from repro.sim.metrics import Counter, LatencyRecorder
from repro.simos.sync import Mutex
from repro.simos.thread import SemPost, SemWait


class BaselineRunner:
    """Runs an operation list on N synchronous worker threads."""

    def __init__(self, simos, accessor, operations, n_threads, name="baseline"):
        if n_threads < 1:
            raise BenchmarkError("need at least one worker thread")
        self.simos = simos
        self.engine = simos.engine
        self.accessor = accessor
        self.n_threads = n_threads
        self.name = name
        self._ops = deque(operations)
        self._queue_mutex = Mutex("op-queue")
        self.latencies = LatencyRecorder()
        self.completed = Counter()
        self.failed_ops = Counter()
        self.user_completed = 0
        self.last_user_done_ns = 0
        self.threads = []

    def _worker_body(self, worker_index):
        accessor = self.accessor
        tls = accessor.io.register_thread()
        while True:
            yield SemWait(self._queue_mutex)
            op = self._ops.popleft() if self._ops else None
            yield SemPost(self._queue_mutex)
            if op is None:
                return
            op.admit_ns = self.engine.now
            try:
                yield from accessor.execute(tls, op)
            except IoError as exc:
                # typed I/O failure: record it on the op and keep the
                # worker alive (the aborted op may leak a latch, as a
                # crashed thread would; fault runs use async engines)
                op.error = exc
                op.result = None
                self.failed_ops.add()
            op.done_ns = self.engine.now
            self.completed.add()
            if op.error is None:
                self.latencies.record(op.latency_ns)
                if op.kind != SYNC:
                    self.user_completed += 1
                    self.last_user_done_ns = op.done_ns

    def start(self):
        self.accessor.io.start(self.simos)
        for index in range(self.n_threads):
            thread = self.simos.spawn(
                self._worker_body(index),
                name="%s-w%d" % (self.name, index),
                group=self.name,
            )
            self.threads.append(thread)

    def run_to_completion(self, until_ns=None):
        self.start()
        self.engine.run(
            until_ns=until_ns,
            until=lambda: all(thread.done for thread in self.threads),
        )
        if not all(thread.done for thread in self.threads):
            raise BenchmarkError(
                "baseline %r did not finish (%d ops left)"
                % (self.name, len(self._ops))
            )
        self.accessor.io.stop()
        # let a shared-I/O daemon drain and exit
        self.engine.run(until_ns=until_ns)

    def worker_cpu_account(self):
        return self.simos.cpu_account(self.name)
