"""Baselines: the shared/dedicated synchronous paradigms with a
latch-coupled B+ tree, Blink-tree, LCB-tree and a LevelDB-like LSM
store — all running on the same simulated OS and NVMe device."""

from repro.baselines.blink_tree import BlinkTreeAccessor
from repro.baselines.io_service import DedicatedIoService, SharedIoService
from repro.baselines.latching import BlockingLatchTable
from repro.baselines.lcb_tree import LcbTreeAccessor
from repro.baselines.lsm import LsmAccessor, LsmConfig, LsmStore
from repro.baselines.runner import BaselineRunner
from repro.baselines.sync_tree import SyncTreeAccessor

__all__ = [
    "SyncTreeAccessor",
    "BlinkTreeAccessor",
    "LcbTreeAccessor",
    "LsmStore",
    "LsmConfig",
    "LsmAccessor",
    "BaselineRunner",
    "BlockingLatchTable",
    "DedicatedIoService",
    "SharedIoService",
]
