"""Immutable sorted-run tables on the simulated device.

Each SSTable owns a run of data pages; the per-page index (first key
of each page) and the Bloom filter live in memory, as LevelDB keeps
index/filter blocks cached.  Point lookups cost at most one device
read (after a Bloom pass); range reads scan the overlapping pages.

Data page layout::

    header: magic u16 | count u16 | reserved u32
    entry:  key u64 | flags u8 (bit0 = tombstone) | vlen u16 | value
"""

import bisect

from repro.baselines.lsm.bloom import BloomFilter
from repro.errors import StorageError
from repro.storage.layout import PageReader, PageWriter

SST_MAGIC = 0x5354
_PAGE_HEADER = 8
_ENTRY_HEADER = 8 + 1 + 2
_FLAG_TOMBSTONE = 1


def encode_page(page_size, entries):
    """Pack (key, value-or-None) entries into one page image."""
    writer = PageWriter(page_size)
    writer.u16(SST_MAGIC)
    writer.u16(len(entries))
    writer.u32(0)
    for key, value in entries:
        writer.u64(key)
        if value is None:
            writer.u8(_FLAG_TOMBSTONE)
            writer.u16(0)
        else:
            writer.u8(0)
            writer.u16(len(value))
            writer.raw(value)
    return writer.finish()


def decode_page(image):
    """Unpack a data page into (key, value-or-None) entries."""
    reader = PageReader(image)
    magic = reader.u16()
    if magic != SST_MAGIC:
        raise StorageError("bad SSTable page magic 0x%04x" % magic)
    count = reader.u16()
    reader.u32()
    entries = []
    for _ in range(count):
        key = reader.u64()
        flags = reader.u8()
        vlen = reader.u16()
        value = None if flags & _FLAG_TOMBSTONE else reader.raw(vlen)
        if flags & _FLAG_TOMBSTONE:
            reader.raw(vlen)  # no-op; vlen is 0 for tombstones
        entries.append((key, value))
    return entries


def plan_pages(page_size, items):
    """Group sorted (key, value-or-None) items into page-sized chunks."""
    pages = []
    current = []
    used = _PAGE_HEADER
    for key, value in items:
        needed = _ENTRY_HEADER + (len(value) if value is not None else 0)
        if needed + _PAGE_HEADER > page_size:
            raise StorageError("LSM value of %d bytes exceeds page size" % needed)
        if used + needed > page_size:
            pages.append(current)
            current = []
            used = _PAGE_HEADER
        current.append((key, value))
        used += needed
    if current:
        pages.append(current)
    return pages


class SSTable:
    """Metadata for one immutable on-device run."""

    _next_id = 0

    def __init__(self, page_lbas, first_keys, min_key, max_key, entry_count):
        self.table_id = SSTable._next_id
        SSTable._next_id += 1
        self.page_lbas = page_lbas
        self.first_keys = first_keys  # first key of each page
        self.min_key = min_key
        self.max_key = max_key
        self.entry_count = entry_count
        self.bloom = BloomFilter(max(entry_count, 1))

    @classmethod
    def plan(cls, page_size, items):
        """Return (table, page_images) ready to be written.

        ``items`` must be sorted by key and non-empty; values of None
        are tombstones.  The caller allocates LBAs and performs the
        writes (blocking or async, per its paradigm).
        """
        if not items:
            raise StorageError("cannot build an empty SSTable")
        chunks = plan_pages(page_size, items)
        table = cls(
            page_lbas=[None] * len(chunks),
            first_keys=[chunk[0][0] for chunk in chunks],
            min_key=items[0][0],
            max_key=items[-1][0],
            entry_count=len(items),
        )
        for key, _value in items:
            table.bloom.add(key)
        images = [encode_page(page_size, chunk) for chunk in chunks]
        return table, images

    def overlaps(self, low, high):
        return not (high < self.min_key or low > self.max_key)

    def page_index_for(self, key):
        """Index of the single page that may contain ``key``, or None."""
        if key < self.min_key or key > self.max_key:
            return None
        index = bisect.bisect_right(self.first_keys, key) - 1
        return max(index, 0)

    def page_range_for(self, low, high):
        """(start, end) page-index range overlapping [low, high]."""
        start = max(bisect.bisect_right(self.first_keys, low) - 1, 0)
        end = bisect.bisect_right(self.first_keys, high)
        return start, end

    def __repr__(self):
        return "SSTable(#%d, %d entries, [%d..%d])" % (
            self.table_id,
            self.entry_count,
            self.min_key,
            self.max_key,
        )
