"""LevelDB-like LSM store: memtable, WAL, leveled SSTables with
compaction, Bloom filters and a block cache."""

from repro.baselines.lsm.bloom import BloomFilter
from repro.baselines.lsm.memtable import MemTable
from repro.baselines.lsm.sstable import SSTable, decode_page, encode_page, plan_pages
from repro.baselines.lsm.store import LsmAccessor, LsmConfig, LsmStore

__all__ = [
    "BloomFilter",
    "MemTable",
    "SSTable",
    "LsmStore",
    "LsmConfig",
    "LsmAccessor",
    "encode_page",
    "decode_page",
    "plan_pages",
]
