"""Bloom filters for SSTables.

Per-table filters let point lookups skip tables that cannot contain
the key — the standard LevelDB optimization, and important here
because every skipped table saves a simulated device read.
"""


class BloomFilter:
    """Fixed-size Bloom filter over u64 keys (double hashing)."""

    __slots__ = ("n_bits", "k", "_bits")

    def __init__(self, expected_keys, bits_per_key=10):
        self.n_bits = max(64, expected_keys * bits_per_key)
        self.k = max(1, min(8, int(round(bits_per_key * 0.69))))
        self._bits = 0

    @staticmethod
    def _hash_pair(key):
        h1 = (key * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        h2 = ((key ^ (key >> 33)) * 0xC2B2AE3D27D4EB4F) & 0xFFFFFFFFFFFFFFFF
        return h1, h2 | 1

    def add(self, key):
        h1, h2 = self._hash_pair(key)
        for i in range(self.k):
            self._bits |= 1 << ((h1 + i * h2) % self.n_bits)

    def may_contain(self, key):
        h1, h2 = self._hash_pair(key)
        bits = self._bits
        for i in range(self.k):
            if not bits & (1 << ((h1 + i * h2) % self.n_bits)):
                return False
        return True
