"""LevelDB-like LSM key-value store on the simulated device.

Components mirroring LevelDB's architecture:

* an active :class:`MemTable` fronted by a write-ahead log,
* level 0: memtable flushes (tables may overlap; newest first),
* levels 1+: non-overlapping runs, each level ``level_ratio`` times
  the previous one's byte budget; exceeding a budget triggers an
  inline compaction paid for by the writing thread,
* an in-memory block cache for data pages,
* ``sync()``: flush the WAL (strong persistence syncs per write, the
  expensive ``sync()`` behaviour the paper measures for LevelDB).

All mutation goes through a single writer mutex (LevelDB's global
mutex); reads take the mutex only to snapshot table references.
"""

from repro.baselines.lsm.memtable import MemTable
from repro.baselines.lsm.sstable import SSTable, decode_page
from repro.buffer.lru import LruCache
from repro.core.ops import DELETE, INSERT, RANGE, SEARCH, SYNC, UPDATE
from repro.errors import StorageError, TreeError
from repro.sim.clock import usec
from repro.sim.metrics import CPU_REAL_WORK
from repro.simos.sync import Mutex
from repro.simos.thread import Cpu, SemPost, SemWait
from repro.storage.allocator import PageAllocator
from repro.storage.wal import WriteAheadLog


class LsmConfig:
    """Tuning knobs (scaled-down LevelDB defaults)."""

    __slots__ = (
        "memtable_entries",
        "level0_limit",
        "level_ratio",
        "level1_tables",
        "block_cache_pages",
        "wal_pages",
    )

    def __init__(
        self,
        memtable_entries=1_000,
        level0_limit=4,
        level_ratio=4,
        level1_tables=8,
        block_cache_pages=1_024,
        wal_pages=65_536,
    ):
        self.memtable_entries = memtable_entries
        self.level0_limit = level0_limit
        self.level_ratio = level_ratio
        self.level1_tables = level1_tables
        self.block_cache_pages = block_cache_pages
        self.wal_pages = wal_pages


class LsmStore:
    """The store shared by all baseline worker threads."""

    def __init__(self, device, io_service, config=None, persistence="strong"):
        if persistence not in ("strong", "weak"):
            raise TreeError("unknown persistence %r" % (persistence,))
        self.device = device
        self.io = io_service
        self.config = config or LsmConfig()
        self.persistence = persistence
        page_size = device.profile.page_size
        capacity = device.profile.capacity_pages
        self.wal = WriteAheadLog(page_size, base_lba=1, num_pages=self.config.wal_pages)
        self.allocator = PageAllocator(
            base=1 + self.config.wal_pages,
            capacity=capacity - 1 - self.config.wal_pages,
        )
        self.memtable = MemTable()
        self.levels = [[]]  # levels[0] newest-first; levels[i>=1] sorted by min_key
        self._cache = LruCache(self.config.block_cache_pages)
        self._write_mutex = Mutex("lsm-write")
        self._cache_mutex = Mutex("lsm-cache")
        self.flushes = 0
        self.compactions = 0
        # CPU cost constants (same scale as the tree cost model)
        self.apply_cost_ns = usec(0.5)
        self.merge_cost_ns_per_entry = usec(0.05)

    # ------------------------------------------------------------------
    # offline bulk load (zero time, like an offline DB build)
    # ------------------------------------------------------------------

    def bulk_load(self, items):
        """Build level-1 runs directly from sorted unique items."""
        items = list(items)
        if not items:
            return
        if any(items[i][0] >= items[i + 1][0] for i in range(len(items) - 1)):
            raise StorageError("bulk_load input must be sorted and unique")
        while len(self.levels) < 2:
            self.levels.append([])
        chunk_size = max(self.config.memtable_entries, 1)
        page_size = self.device.profile.page_size
        for start in range(0, len(items), chunk_size):
            chunk = items[start:start + chunk_size]
            table, images = SSTable.plan(page_size, chunk)
            for index, image in enumerate(images):
                lba = self.allocator.allocate()
                table.page_lbas[index] = lba
                self.device.raw_write(lba, image)
            self.levels[1].append(table)
        self.levels[1].sort(key=lambda table: table.min_key)

    def resize_block_cache(self, pages):
        """Resize the block cache (e.g. to 10 % of the loaded store)."""
        self._cache = LruCache(max(pages, 8))

    def data_pages(self):
        """Pages currently owned by SSTables (for cache sizing)."""
        return sum(
            len(table.page_lbas) for level in self.levels for table in level
        )

    # ------------------------------------------------------------------
    # page I/O with block cache
    # ------------------------------------------------------------------

    def _read_page(self, tls, lba):
        yield SemWait(self._cache_mutex)
        data = self._cache.get(lba)
        yield SemPost(self._cache_mutex)
        if data is not None:
            return data
        data = yield from self.io.read(tls, lba)
        yield SemWait(self._cache_mutex)
        self._cache.put(lba, data)
        yield SemPost(self._cache_mutex)
        return data

    def _write_table(self, tls, table, images):
        """Allocate LBAs and write a planned table's pages (blocking)."""
        for index, image in enumerate(images):
            lba = self.allocator.allocate()
            table.page_lbas[index] = lba
            yield from self.io.write(tls, lba, image)

    def _drop_table(self, table):
        for lba in table.page_lbas:
            self.allocator.free(lba)
            self._cache.pop(lba)

    # ------------------------------------------------------------------
    # WAL
    # ------------------------------------------------------------------

    @staticmethod
    def _wal_record(key, value):
        if value is None:
            return b"D" + key.to_bytes(8, "little")
        return b"P" + key.to_bytes(8, "little") + value

    def _flush_wal(self, tls, include_partial):
        writes, flush_lsn = self.wal.take_flushable(include_partial)
        for lba, image in writes:
            yield from self.io.write(tls, lba, image)
        self.wal.mark_durable(flush_lsn)
        return len(writes)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def _apply(self, tls, op_key, value):
        """Shared insert/update/delete path (holds the writer mutex)."""
        yield SemWait(self._write_mutex)
        yield Cpu(self.apply_cost_ns, CPU_REAL_WORK)
        self.wal.append(self._wal_record(op_key, value))
        if value is None:
            self.memtable.delete(op_key)
        else:
            self.memtable.put(op_key, value)
        if self.persistence == "strong":
            yield from self._flush_wal(tls, include_partial=True)
        else:
            yield from self._flush_wal(tls, include_partial=False)
        if len(self.memtable) >= self.config.memtable_entries:
            yield from self._flush_memtable(tls)
            yield from self._maybe_compact(tls)
        yield SemPost(self._write_mutex)

    def _flush_memtable(self, tls):
        items = self.memtable.sorted_items()
        if not items:
            return
        self.flushes += 1
        table, images = SSTable.plan(self.device.profile.page_size, items)
        yield Cpu(len(items) * self.merge_cost_ns_per_entry, CPU_REAL_WORK)
        yield from self._write_table(tls, table, images)
        self.levels[0].insert(0, table)
        self.memtable = MemTable()

    def _level_budget_tables(self, level):
        return self.config.level1_tables * (self.config.level_ratio ** (level - 1))

    def _maybe_compact(self, tls):
        """Compact while any level exceeds its budget (inline)."""
        while len(self.levels[0]) > self.config.level0_limit:
            yield from self._compact_level(tls, 0)
        level = 1
        while level < len(self.levels):
            if len(self.levels[level]) > self._level_budget_tables(level):
                yield from self._compact_level(tls, level)
            level += 1

    def _compact_level(self, tls, level):
        """Merge one level's pick with the overlapping next-level runs."""
        self.compactions += 1
        if len(self.levels) <= level + 1:
            self.levels.append([])
        if level == 0:
            picked = list(self.levels[0])  # all of L0 (they overlap)
        else:
            picked = [self.levels[level][0]]  # oldest/first run
        low = min(table.min_key for table in picked)
        high = max(table.max_key for table in picked)
        below = [
            table for table in self.levels[level + 1] if table.overlaps(low, high)
        ]

        merged = yield from self._merge_tables(tls, picked, below, level)

        for table in picked:
            self.levels[level].remove(table)
            self._drop_table(table)
        for table in below:
            self.levels[level + 1].remove(table)
            self._drop_table(table)
        self.levels[level + 1].extend(merged)
        self.levels[level + 1].sort(key=lambda table: table.min_key)

    def _merge_tables(self, tls, picked, below, level):
        """K-way merge; newest version wins, tombstones drop at the
        bottom level.  Returns the new tables (already written)."""
        # Priority: picked tables are newer than below; within L0,
        # index 0 is newest.
        sources = picked + below
        entries = {}
        for source in reversed(sources):  # oldest first; newer overwrite
            for lba in source.page_lbas:
                image = yield from self._read_page(tls, lba)
                for key, value in decode_page(image):
                    entries[key] = value
        items = sorted(entries.items())
        is_bottom = level + 2 == len(self.levels) and not self.levels[level + 1]
        if is_bottom:
            items = [(k, v) for k, v in items if v is not None]
        yield Cpu(len(items) * self.merge_cost_ns_per_entry, CPU_REAL_WORK)
        if not items:
            return []
        # split into tables of ~memtable_entries each
        out = []
        chunk_size = max(self.config.memtable_entries, 1)
        for start in range(0, len(items), chunk_size):
            chunk = items[start:start + chunk_size]
            table, images = SSTable.plan(self.device.profile.page_size, chunk)
            yield from self._write_table(tls, table, images)
            out.append(table)
        return out

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def _snapshot(self):
        """References to the current memtable and table lists."""
        tables = [list(level) for level in self.levels]
        return self.memtable, tables

    def get(self, tls, key):
        yield SemWait(self._write_mutex)
        memtable, levels = self._snapshot()
        yield SemPost(self._write_mutex)
        yield Cpu(self.apply_cost_ns, CPU_REAL_WORK)
        found, value = memtable.get(key)
        if found:
            return value
        for level_index, tables in enumerate(levels):
            for table in tables:
                if not table.overlaps(key, key):
                    continue
                if not table.bloom.may_contain(key):
                    continue
                page_index = table.page_index_for(key)
                if page_index is None:
                    continue
                image = yield from self._read_page(tls, table.page_lbas[page_index])
                for entry_key, value in decode_page(image):
                    if entry_key == key:
                        return value
        return None

    def range(self, tls, low, high, limit=0):
        yield SemWait(self._write_mutex)
        memtable, levels = self._snapshot()
        yield SemPost(self._write_mutex)
        yield Cpu(self.apply_cost_ns, CPU_REAL_WORK)
        merged = {}
        # oldest first so newer versions overwrite
        for tables in reversed(levels):
            for table in reversed(tables):
                if not table.overlaps(low, high):
                    continue
                start, end = table.page_range_for(low, high)
                for page_index in range(start, end):
                    image = yield from self._read_page(
                        tls, table.page_lbas[page_index]
                    )
                    for key, value in decode_page(image):
                        if low <= key <= high:
                            merged[key] = value
        for key, value in memtable.range_items(low, high):
            merged[key] = value
        results = [(k, v) for k, v in sorted(merged.items()) if v is not None]
        if limit:
            results = results[:limit]
        return results

    # ------------------------------------------------------------------
    # sync
    # ------------------------------------------------------------------

    def sync(self, tls):
        yield SemWait(self._write_mutex)
        flushed = yield from self._flush_wal(tls, include_partial=True)
        yield SemPost(self._write_mutex)
        return flushed


class LsmAccessor:
    """Adapts :class:`LsmStore` to the BaselineRunner operation API."""

    def __init__(self, store):
        self.store = store
        self.io = store.io

    def execute(self, tls, op):
        store = self.store
        if op.kind == SEARCH:
            op.result = yield from store.get(tls, op.key)
        elif op.kind == RANGE:
            op.result = yield from store.range(tls, op.key, op.high_key, op.limit)
        elif op.kind in (INSERT, UPDATE):
            yield from store._apply(tls, op.key, op.payload)
            op.result = True
        elif op.kind == DELETE:
            yield from store._apply(tls, op.key, None)
            op.result = True
        elif op.kind == SYNC:
            op.result = yield from store.sync(tls)
        else:
            raise StorageError("unknown operation kind %r" % (op.kind,))
