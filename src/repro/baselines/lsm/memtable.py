"""In-memory write buffer of the LSM store.

A sorted-key map (dict + lazily re-sorted key list) standing in for
LevelDB's skiplist.  Deletes are tombstones so they mask older
versions in the SSTables below.
"""

import bisect

TOMBSTONE = None  # stored value meaning "deleted"


class MemTable:
    """Mutable sorted map with tombstones."""

    def __init__(self):
        self._data = {}
        self._sorted_keys = []
        self._keys_dirty = False
        self.bytes_used = 0

    def __len__(self):
        return len(self._data)

    def put(self, key, value):
        if key not in self._data:
            self._keys_dirty = True
            self.bytes_used += 8
        else:
            old = self._data[key]
            self.bytes_used -= len(old) if old is not None else 0
        self._data[key] = value
        self.bytes_used += len(value)

    def delete(self, key):
        if key not in self._data:
            self._keys_dirty = True
            self.bytes_used += 8
        else:
            old = self._data[key]
            self.bytes_used -= len(old) if old is not None else 0
        self._data[key] = TOMBSTONE

    def get(self, key):
        """Returns (found, value).  ``found`` True with value None means
        a tombstone masks the key."""
        if key in self._data:
            return True, self._data[key]
        return False, None

    def _keys(self):
        if self._keys_dirty:
            self._sorted_keys = sorted(self._data)
            self._keys_dirty = False
        return self._sorted_keys

    def range_items(self, low, high):
        """Sorted (key, value-or-tombstone) pairs with low <= key <= high."""
        keys = self._keys()
        start = bisect.bisect_left(keys, low)
        end = bisect.bisect_right(keys, high)
        return [(key, self._data[key]) for key in keys[start:end]]

    def sorted_items(self):
        """All entries in key order (for flushing to an SSTable)."""
        return [(key, self._data[key]) for key in self._keys()]
