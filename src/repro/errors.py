"""Exception hierarchy for the PA-Tree reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch a single base class at the API boundary.  The tree::

    ReproError
    ├── SimulationError          (simulation kernel misuse)
    │   ├── DeadlockError
    │   └── LivelockError        (no-progress watchdog tripped)
    ├── DeviceError              (NVMe device model / completion path)
    │   ├── QueueFullError       (submission ring has no free slot)
    │   └── IoError              (a command completed with a failure status)
    │       └── RetryExhaustedError  (still failing after retry/backoff)
    ├── StorageError             (block storage layer)
    │   ├── PageBoundsError
    │   ├── AllocationError
    │   └── CorruptPageError
    ├── TreeError                (B+ tree invariants / bad input)
    │   ├── KeyEncodingError
    │   ├── LatchError
    │   └── BulkLoadError        (unsorted/duplicate bulk-load input)
    ├── BatchError               (a batched operation aborted mid-flight)
    ├── SchedulerError
    ├── WorkloadError
    └── BenchmarkError

:class:`IoError` is the typed error the session facades surface when an
operation's I/O failed (a fault-injected transient error that outlived
the driver's bounded retries, or a read of a poisoned LBA); it carries
the final :class:`~repro.nvme.command.IoStatus`, the opcode and the LBA
so callers and tests can assert on the exact failure.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The simulation kernel was driven into an invalid state."""


class DeadlockError(SimulationError):
    """The event queue drained while threads or operations still wait."""


class LivelockError(SimulationError):
    """A no-progress watchdog saw events dispatching but no completions.

    Raised by the schedule-fuzz harness (``repro.fuzz``) when the
    simulation keeps dispatching events without any operation or I/O
    completing for longer than the configured budget — the polled-mode
    failure shape a deadlock check cannot see.
    """


class BackendConfigError(ReproError):
    """An I/O backend spec could not be resolved.

    Raised by :func:`repro.backend.make_backend` for unknown backend
    names, malformed spec strings, or sharded configurations that mix
    different per-shard backends.
    """


class DeviceError(ReproError):
    """The NVMe device model rejected a request."""


class QueueFullError(DeviceError):
    """A submission queue ring has no free slot."""


class IoError(DeviceError):
    """An NVMe command completed with a non-success status.

    Raised (or attached to ``op.error``) after the driver's retry
    budget is spent or when the failure is not retriable (a poisoned
    LBA).  ``status`` is the final :class:`~repro.nvme.command.IoStatus`;
    ``opcode`` and ``lba`` identify the failed command.
    """

    def __init__(self, message, status=None, opcode=None, lba=None):
        super().__init__(message)
        self.status = status
        self.opcode = opcode
        self.lba = lba


class RetryExhaustedError(IoError):
    """An I/O kept failing through the bounded retry/backoff budget."""


class BatchError(IoError):
    """A batched operation aborted mid-flight.

    Subclasses :class:`IoError` so existing ``except IoError`` recovery
    paths keep working; additionally names the failing spec: ``key`` is
    the first key of the leaf group being processed when the I/O
    failed, ``index`` its position in the caller's input vector.  The
    underlying failure is chained as ``__cause__`` (and mirrored in
    ``status``/``opcode``/``lba``).  Groups already applied before the
    failure remain durable; the rest of the batch is untouched.
    """

    def __init__(self, message, status=None, opcode=None, lba=None,
                 key=None, index=None):
        super().__init__(message, status=status, opcode=opcode, lba=lba)
        self.key = key
        self.index = index


class StorageError(ReproError):
    """The block storage layer rejected a request."""


class PageBoundsError(StorageError):
    """A page id falls outside the device capacity."""


class AllocationError(StorageError):
    """The page allocator ran out of free pages."""


class CorruptPageError(StorageError):
    """A page image failed structural validation on deserialization."""


class TreeError(ReproError):
    """The B+ tree detected an invariant violation or bad input."""


class KeyEncodingError(TreeError):
    """A key or payload cannot be encoded in the configured node format."""


class LatchError(TreeError):
    """Latch protocol violation (double release, unknown holder, ...)."""


class BulkLoadError(TreeError):
    """Bulk-load input rejected: unsorted or duplicate keys."""


class SchedulerError(ReproError):
    """The operation scheduler was misconfigured or misused."""


class WorkloadError(ReproError):
    """A workload generator received invalid parameters."""


class BenchmarkError(ReproError):
    """An experiment harness was misconfigured."""
