"""Exception hierarchy for the PA-Tree reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch a single base class at the API boundary.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The simulation kernel was driven into an invalid state."""


class DeadlockError(SimulationError):
    """The event queue drained while threads or operations still wait."""


class DeviceError(ReproError):
    """The NVMe device model rejected a request."""


class QueueFullError(DeviceError):
    """A submission queue ring has no free slot."""


class StorageError(ReproError):
    """The block storage layer rejected a request."""


class PageBoundsError(StorageError):
    """A page id falls outside the device capacity."""


class AllocationError(StorageError):
    """The page allocator ran out of free pages."""


class CorruptPageError(StorageError):
    """A page image failed structural validation on deserialization."""


class TreeError(ReproError):
    """The B+ tree detected an invariant violation or bad input."""


class KeyEncodingError(TreeError):
    """A key or payload cannot be encoded in the configured node format."""


class LatchError(TreeError):
    """Latch protocol violation (double release, unknown holder, ...)."""


class SchedulerError(ReproError):
    """The operation scheduler was misconfigured or misused."""


class WorkloadError(ReproError):
    """A workload generator received invalid parameters."""


class BenchmarkError(ReproError):
    """An experiment harness was misconfigured."""
