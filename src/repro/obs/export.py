"""Trace exporters: Chrome/Perfetto ``trace_event`` JSON, JSONL, text.

The Chrome exporter emits the documented subset of the trace-event
format (phases ``X``, ``i``, ``b``/``n``/``e``, ``C`` plus ``M``
metadata), which both ``chrome://tracing`` and https://ui.perfetto.dev
load directly.  Timestamps are virtual-time microseconds.

Output is deterministic: events are emitted in record order, JSON keys
are sorted, and no wall-clock or environment data is included — the
same seeded run always serialises to the same bytes.
"""

import json

from repro.obs.tracer import (
    EV_ASYNC_BEGIN,
    EV_ASYNC_END,
    EV_ASYNC_INSTANT,
    EV_COUNTER,
    EV_INSTANT,
    EV_SLICE,
)

_PID = 1  # single simulated process


def _ts(ns):
    """Virtual ns -> trace-event microseconds (float, deterministic)."""
    return ns / 1000


def chrome_trace_events(tracer):
    """Flatten tracer records into a list of trace-event dicts."""
    out = []
    # Register every track up front (record order) so the thread_name
    # metadata block precedes the events that reference the tids.
    for record in tracer.events:
        if record[0] in (EV_SLICE, EV_INSTANT, EV_COUNTER):
            tracer.track_id(record[1])
    for track, tid in sorted(tracer.tracks.items(), key=lambda kv: kv[1]):
        out.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": _PID,
                "tid": tid,
                "args": {"name": track},
            }
        )
    for record in tracer.events:
        kind = record[0]
        if kind is EV_SLICE:
            _kind, track, name, cat, start_ns, end_ns, args = record
            event = {
                "ph": "X",
                "name": name,
                "cat": cat or "span",
                "pid": _PID,
                "tid": tracer.track_id(track),
                "ts": _ts(start_ns),
                "dur": _ts(end_ns - start_ns),
            }
        elif kind is EV_INSTANT:
            _kind, track, name, cat, time_ns, args = record
            event = {
                "ph": "i",
                "name": name,
                "cat": cat or "instant",
                "pid": _PID,
                "tid": tracer.track_id(track),
                "ts": _ts(time_ns),
                "s": "t",
            }
        elif kind in (EV_ASYNC_BEGIN, EV_ASYNC_INSTANT, EV_ASYNC_END):
            _kind, cat, aid, name, time_ns, args = record
            event = {
                "ph": {EV_ASYNC_BEGIN: "b", EV_ASYNC_INSTANT: "n",
                       EV_ASYNC_END: "e"}[kind],
                "name": name,
                "cat": cat,
                "pid": _PID,
                "tid": 0,
                "id": aid,
                "ts": _ts(time_ns),
            }
        elif kind is EV_COUNTER:
            _kind, track, name, time_ns, values = record
            event = {
                "ph": "C",
                "name": name,
                "cat": "counter",
                "pid": _PID,
                "tid": tracer.track_id(track),
                "ts": _ts(time_ns),
                "args": dict(values),
            }
            args = None
        else:  # pragma: no cover - tracer only emits the kinds above
            continue
        if kind is not EV_COUNTER and args:
            event["args"] = dict(args)
        out.append(event)
    return out


def to_chrome_trace(tracer):
    """The full JSON-object form of the trace."""
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ns",
        "otherData": {
            "clock": "virtual",
            "dropped_events": tracer.dropped,
        },
    }


def write_chrome_trace(tracer, path):
    """Write Chrome ``trace_event`` JSON; open in Perfetto / chrome://tracing."""
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(tracer), handle, sort_keys=True,
                  separators=(",", ":"))
        handle.write("\n")
    return path


def write_jsonl(tracer, path):
    """One raw tracer record per line, for ad-hoc grep/jq analysis."""
    with open(path, "w") as handle:
        for record in tracer.events:
            kind = record[0]
            if kind is EV_SLICE:
                row = {
                    "ev": kind, "track": record[1], "name": record[2],
                    "cat": record[3], "start_ns": record[4],
                    "end_ns": record[5], "args": record[6],
                }
            elif kind is EV_INSTANT:
                row = {
                    "ev": kind, "track": record[1], "name": record[2],
                    "cat": record[3], "t_ns": record[4], "args": record[5],
                }
            elif kind is EV_COUNTER:
                row = {
                    "ev": kind, "track": record[1], "name": record[2],
                    "t_ns": record[3], "values": record[4],
                }
            else:
                row = {
                    "ev": kind, "cat": record[1], "id": record[2],
                    "name": record[3], "t_ns": record[4], "args": record[5],
                }
            handle.write(json.dumps(row, sort_keys=True,
                                    separators=(",", ":")))
            handle.write("\n")
    return path


def _aggregate_slices(tracer):
    """(track, name) -> [count, total_ns, max_ns] over slice records."""
    totals = {}
    for record in tracer.events:
        if record[0] is not EV_SLICE:
            continue
        _kind, track, name, _cat, start_ns, end_ns, _args = record
        duration = end_ns - start_ns
        slot = totals.get((track, name))
        if slot is None:
            totals[(track, name)] = [1, duration, duration]
        else:
            slot[0] += 1
            slot[1] += duration
            if duration > slot[2]:
                slot[2] = duration
    return totals


def _aggregate_async(tracer):
    """(cat, name) -> [count, total_ns, max_ns] from begin/end pairs."""
    open_spans = {}
    totals = {}
    for record in tracer.events:
        kind = record[0]
        if kind is EV_ASYNC_BEGIN:
            open_spans[(record[1], record[2])] = record[4]
        elif kind is EV_ASYNC_END:
            start_ns = open_spans.pop((record[1], record[2]), None)
            if start_ns is None:
                continue
            duration = record[4] - start_ns
            slot = totals.get((record[1], record[3]))
            if slot is None:
                totals[(record[1], record[3])] = [1, duration, duration]
            else:
                slot[0] += 1
                slot[1] += duration
                if duration > slot[2]:
                    slot[2] = duration
    return totals


def trace_summary(tracer, cpu_account=None, top=15, out=None):
    """Text report: top spans by total virtual time + CPU flame summary.

    Returns the report as a string; also prints through ``out`` when
    given a writer callable.
    """
    lines = []

    def emit(line=""):
        lines.append(line)
        if out is not None:
            out(line)

    def table(title, totals):
        emit("== %s ==" % title)
        emit("%-42s %10s %14s %12s %12s"
             % ("span", "count", "total (us)", "mean (us)", "max (us)"))
        ranked = sorted(totals.items(), key=lambda kv: (-kv[1][1], kv[0]))
        for (scope, name), (count, total_ns, max_ns) in ranked[:top]:
            emit(
                "%-42s %10d %14.1f %12.3f %12.3f"
                % (
                    ("%s/%s" % (scope, name))[:42],
                    count,
                    total_ns / 1000,
                    total_ns / 1000 / count,
                    max_ns / 1000,
                )
            )
        if len(ranked) > top:
            emit("  ... %d more" % (len(ranked) - top))
        emit()

    table("Top spans (worker-thread slices)", _aggregate_slices(tracer))
    async_totals = _aggregate_async(tracer)
    if async_totals:
        table("Async lifecycles (operations / I/O)", async_totals)

    if cpu_account is not None and cpu_account.total_ns:
        emit("== CPU flame summary ==")
        ranked = sorted(
            cpu_account.by_category.items(), key=lambda kv: (-kv[1], kv[0])
        )
        for category, ns in ranked:
            emit(
                "%-18s %12.1f us  %6.1f%%"
                % (category, ns / 1000, 100.0 * ns / cpu_account.total_ns)
            )
        emit("%-18s %12.1f us" % ("total", cpu_account.total_ns / 1000))
        emit()

    emit("events recorded: %d  dropped: %d" % (len(tracer.events),
                                               tracer.dropped))
    return "\n".join(lines) + "\n"
