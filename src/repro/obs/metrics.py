"""The labeled metric registry and its exporters.

Every layer of the simulated stack can describe itself as a set of
**metrics**: monotone counters (completions, retries, faults), gauges
(queue depth, channel occupancy, buffer residency) and fixed-bucket
latency histograms.  A :class:`MetricRegistry` holds them under a
``(name, labels)`` identity — the same metric name registered with
different label sets (``shard="0"`` vs ``shard="1"``) stays
distinguishable while rollups can still sum across the label axis.

Naming discipline (enforced here at registration time and statically by
patlint rule PA405): metric names are ``snake_case`` and end in a unit
suffix from :data:`METRIC_NAME_SUFFIXES`, so a consumer can always tell
nanoseconds from pages from ratios without a side channel.

Determinism: the registry iterates in registration order, label keys
are sorted inside each identity, and every exporter below (Prometheus
text, JSONL scrape rows) writes from those orders only — two same-seed
runs produce byte-identical exports.  Components hold
:data:`NULL_REGISTRY` by default; like the tracer's ``NULL_TRACER`` it
makes every registration a no-op returning inert metric objects, so
the disabled path costs one attribute check and nothing else.
"""

import json
import re

from repro.errors import ReproError
from repro.obs.series import Histogram, latency_histogram
from repro.sim.clock import to_usec

#: Unit suffixes a registered metric name must end with.  PA405 (the
#: patlint metric-name rule) carries a copy of this tuple; keep the two
#: in sync when adding a unit.
METRIC_NAME_SUFFIXES = (
    "_ns",
    "_us",
    "_bytes",
    "_pages",
    "_ops",
    "_total",
    "_ratio",
    "_count",
    "_size",
)

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")


class MetricError(ReproError):
    """A metric was registered or used against the registry contract."""


def validate_metric_name(name):
    """Raise :class:`MetricError` unless ``name`` obeys the discipline."""
    if not _NAME_RE.match(name):
        raise MetricError(
            "metric name %r is not snake_case ([a-z][a-z0-9_]*)" % (name,)
        )
    if not name.endswith(METRIC_NAME_SUFFIXES):
        raise MetricError(
            "metric name %r lacks a unit suffix (one of %s)"
            % (name, ", ".join(METRIC_NAME_SUFFIXES))
        )


def _normalize_labels(labels):
    """Sorted ``(key, str(value))`` tuple — the label part of identity."""
    if not labels:
        return ()
    return tuple(
        (str(key), str(labels[key])) for key in sorted(labels)
    )


def flat_name(name, label_items):
    """``name{k="v",...}`` rendering shared by the exporters."""
    if not label_items:
        return name
    inner = ",".join('%s="%s"' % (key, value) for key, value in label_items)
    return "%s{%s}" % (name, inner)


class Metric:
    """Base of all registered metrics; identity is ``(name, labels)``."""

    kind = "metric"
    __slots__ = ("name", "labels", "help")

    def __init__(self, name, labels, help=""):
        self.name = name
        self.labels = labels  # normalized (key, value) tuple
        self.help = help

    @property
    def flat(self):
        return flat_name(self.name, self.labels)

    def __repr__(self):
        return "%s(%s)" % (type(self).__name__, self.flat)


class CounterMetric(Metric):
    """Monotone event count.

    Either owned (``inc()``) or a *callback counter* reading an
    existing cumulative quantity (``fn``) — the stack already counts
    completions/retries/faults in always-on ``sim.metrics.Counter``
    objects, and a callback counter exports those without double
    bookkeeping on the hot path.
    """

    kind = "counter"
    __slots__ = ("value", "_fn")

    def __init__(self, name, labels, fn=None, help=""):
        super().__init__(name, labels, help)
        self.value = 0
        self._fn = fn

    def inc(self, n=1):
        self.value += n

    def read(self):
        if self._fn is not None:
            return self._fn()
        return self.value


class GaugeMetric(Metric):
    """Point-in-time quantity; callback-backed or explicitly ``set``."""

    kind = "gauge"
    __slots__ = ("value", "_fn")

    def __init__(self, name, labels, fn=None, help=""):
        super().__init__(name, labels, help)
        self.value = 0
        self._fn = fn

    def set(self, value):
        self.value = value

    def read(self):
        if self._fn is not None:
            return self._fn()
        return self.value


class HistogramMetric(Metric):
    """Fixed-bucket distribution (see :class:`repro.obs.series.Histogram`).

    Values are recorded in the unit the name declares (``_ns`` names
    record nanoseconds); the default bounds are the 1 us .. 1 s latency
    decades.
    """

    kind = "histogram"
    __slots__ = ("histogram",)

    def __init__(self, name, labels, bounds=None, help=""):
        super().__init__(name, labels, help)
        if bounds is None:
            self.histogram = latency_histogram()
        else:
            self.histogram = Histogram(bounds)

    def observe(self, value):
        self.histogram.record(value)

    def read(self):
        return self.histogram.count

    def quantile(self, q):
        return self.histogram.quantile(q)


class _NullMetric:
    """Inert metric returned by the null registry: every call no-ops."""

    __slots__ = ()
    kind = "null"
    name = ""
    labels = ()
    flat = ""

    def inc(self, n=1):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass

    def read(self):
        return 0

    def quantile(self, q):
        return 0


NULL_METRIC = _NullMetric()


class MetricRegistry:
    """Labeled metrics under ``(name, labels)`` identity.

    Registration is idempotent: asking for an identity that already
    exists returns the existing instance (so per-shard attach loops and
    re-attachment are safe), but re-registering under a different
    metric kind is an error.  Iteration yields metrics in first
    registration order — the deterministic order every exporter uses.
    """

    enabled = True

    def __init__(self):
        self._metrics = {}  # (name, labels) -> Metric, insertion-ordered

    # -- registration --------------------------------------------------

    def counter(self, name, labels=None, fn=None, help=""):
        return self._register(CounterMetric, name, labels, help, fn=fn)

    def gauge(self, name, labels=None, fn=None, help=""):
        return self._register(GaugeMetric, name, labels, help, fn=fn)

    def histogram(self, name, labels=None, bounds=None, help=""):
        return self._register(
            HistogramMetric, name, labels, help, bounds=bounds
        )

    def _register(self, cls, name, labels, help, **kwargs):
        validate_metric_name(name)
        identity = (name, _normalize_labels(labels))
        existing = self._metrics.get(identity)
        if existing is not None:
            if type(existing) is not cls:
                raise MetricError(
                    "metric %s already registered as a %s, not a %s"
                    % (flat_name(*identity), existing.kind, cls.kind)
                )
            return existing
        metric = cls(identity[0], identity[1], help=help, **kwargs)
        self._metrics[identity] = metric
        return metric

    # -- access --------------------------------------------------------

    def get(self, name, labels=None):
        """The registered metric, or None."""
        return self._metrics.get((name, _normalize_labels(labels)))

    def __iter__(self):
        return iter(list(self._metrics.values()))

    def __len__(self):
        return len(self._metrics)

    def collect(self):
        """All metrics, in registration order (a fresh list)."""
        return list(self._metrics.values())

    # -- snapshots -----------------------------------------------------

    def scalars(self):
        """Flat-name -> value for counters and gauges, registry order."""
        row = {}
        for metric in self._metrics.values():
            if metric.kind in ("counter", "gauge"):
                row[metric.flat] = metric.read()
        return row

    def snapshot(self):
        """Machine-readable dump of every metric (fresh dict per call).

        Histograms expand to their summary snapshot (count / mean /
        percentiles / buckets, microsecond units as in
        :meth:`repro.obs.series.Histogram.snapshot`).
        """
        out = {}
        for metric in self._metrics.values():
            if metric.kind == "histogram":
                out[metric.flat] = metric.histogram.snapshot()
            else:
                out[metric.flat] = metric.read()
        return out


class NullRegistry:
    """Disabled registry: registrations return inert metrics.

    Components can unconditionally call ``register_metrics`` against
    it; nothing is retained and updates cost one no-op method call.
    """

    enabled = False

    def counter(self, name, labels=None, fn=None, help=""):
        return NULL_METRIC

    def gauge(self, name, labels=None, fn=None, help=""):
        return NULL_METRIC

    def histogram(self, name, labels=None, bounds=None, help=""):
        return NULL_METRIC

    def get(self, name, labels=None):
        return None

    def __iter__(self):
        return iter(())

    def __len__(self):
        return 0

    def collect(self):
        return []

    def scalars(self):
        return {}

    def snapshot(self):
        return {}


NULL_REGISTRY = NullRegistry()


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------


def _format_number(value):
    """Prometheus-style number rendering (ints stay ints)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def prometheus_text(registry):
    """Render the registry in the Prometheus text exposition format.

    Output order is registration order grouped by metric name (the
    ``# TYPE`` header is emitted once per name), so same-seed runs
    produce byte-identical exports.  Histograms expand to cumulative
    ``_bucket{le=...}`` series plus ``_sum`` and ``_count``, with
    nanosecond-recorded values exposed in microseconds to match the
    run summaries.
    """
    lines = []
    typed = set()
    for metric in registry.collect():
        if metric.name not in typed:
            typed.add(metric.name)
            if metric.help:
                lines.append("# HELP %s %s" % (metric.name, metric.help))
            lines.append("# TYPE %s %s" % (metric.name, metric.kind))
        if metric.kind == "histogram":
            lines.extend(_prom_histogram_lines(metric))
        else:
            lines.append(
                "%s %s" % (metric.flat, _format_number(metric.read()))
            )
    return "\n".join(lines) + "\n"


def _prom_histogram_lines(metric):
    histogram = metric.histogram
    cumulative = 0
    for index, bound in enumerate(histogram.bounds):
        cumulative += histogram.counts[index]
        labels = metric.labels + (("le", repr(to_usec(bound))),)
        yield "%s %d" % (
            flat_name(metric.name + "_bucket", labels),
            cumulative,
        )
    cumulative += histogram.counts[-1]
    labels = metric.labels + (("le", "+Inf"),)
    yield "%s %d" % (flat_name(metric.name + "_bucket", labels), cumulative)
    yield "%s %s" % (
        flat_name(metric.name + "_sum", metric.labels),
        _format_number(to_usec(histogram.sum)),
    )
    yield "%s %d" % (
        flat_name(metric.name + "_count", metric.labels),
        histogram.count,
    )


def write_prometheus(registry, path):
    """Write :func:`prometheus_text` to ``path``; returns the path."""
    with open(path, "w") as handle:
        handle.write(prometheus_text(registry))
    return path


class MetricScraper:
    """Periodic virtual-time scrape of every counter/gauge scalar.

    Rides the simulation engine like the time-series sampler: a
    callback every ``interval_ns`` reads :meth:`MetricRegistry.scalars`
    and appends one row.  Probes only read state, so a scraped run
    reaches the same virtual-time results as an unscraped one.
    Histograms are summarised once at export time (they change too
    often to snapshot per tick at bounded cost).
    """

    def __init__(self, engine, registry, interval_ns, max_samples=100_000):
        self.engine = engine
        self.registry = registry
        self.interval_ns = int(interval_ns)
        if self.interval_ns <= 0:
            raise MetricError("scrape interval must be positive")
        self.max_samples = max_samples
        self.samples = []  # (time_ns, {flat_name: value})
        self._event = None
        self._running = False

    def start(self):
        if self._running:
            return self
        self._running = True
        self._event = self.engine.schedule(self.interval_ns, self._tick)
        return self

    def stop(self):
        self._running = False
        if self._event is not None:
            self.engine.cancel(self._event)
            self._event = None

    def _tick(self):
        if not self._running:
            return
        if len(self.samples) < self.max_samples:
            self.samples.append((self.engine.now, self.registry.scalars()))
        if len(self.samples) < self.max_samples:
            self._event = self.engine.schedule(self.interval_ns, self._tick)
        else:
            self._running = False
            self._event = None

    def write_jsonl(self, path):
        """One JSON object per scrape tick; key order = registry order."""
        with open(path, "w") as handle:
            for time_ns, row in self.samples:
                handle.write(
                    json.dumps({"t_ns": time_ns, "metrics": row}) + "\n"
                )
        return path
