"""Per-op-class latency SLOs over the metric registry.

The ROADMAP's QoS front-end needs "is this run healthy?" answerable as
a table: for each operation class (and shard, when sharded), the
observed p99/p999 against a virtual-time latency target plus a count of
individual completions that blew the target.  :class:`SloTracker` is
that layer — it owns nothing but targets, and writes every observation
into labeled ``op_latency_ns`` histograms and ``slo_violations_total``
counters in a :class:`~repro.obs.metrics.MetricRegistry`, so the SLO
view and the raw metric view can never disagree.

Targets are in **microseconds** of virtual time (the unit the paper's
figures use); observations arrive in nanoseconds straight from
``op.latency_ns``.
"""

from repro.obs.metrics import NULL_REGISTRY
from repro.sim.clock import to_usec, usec

#: Default virtual-time latency targets (microseconds) per op class.
#: Point lookups and mutations share a budget comfortably above the
#: simulated NVMe read service time; scans and syncs touch many pages
#: and get proportionally looser budgets.
DEFAULT_TARGETS_US = {
    "search": 500.0,
    "insert": 500.0,
    "update": 500.0,
    "delete": 500.0,
    "range": 2_000.0,
    "sync": 20_000.0,
}

_DEFAULT_TARGET_US = 1_000.0


class SloTracker:
    """Tracks per-(op class, shard) latency against virtual-time targets."""

    def __init__(self, registry, targets_us=None):
        self.registry = registry
        self.targets_us = dict(DEFAULT_TARGETS_US)
        if targets_us:
            self.targets_us.update(targets_us)
        self._cells = {}  # (kind, shard) -> (target_ns, histogram, violations)

    def target_us(self, kind):
        return self.targets_us.get(kind, _DEFAULT_TARGET_US)

    def _cell(self, kind, shard):
        cell = self._cells.get((kind, shard))
        if cell is None:
            labels = {"op": kind}
            if shard is not None:
                labels["shard"] = str(shard)
            cell = (
                usec(self.target_us(kind)),
                self.registry.histogram(
                    "op_latency_ns",
                    labels,
                    help="per-op-class completion latency",
                ),
                self.registry.counter(
                    "slo_violations_total",
                    labels,
                    help="completions over the op class latency target",
                ),
            )
            self._cells[(kind, shard)] = cell
        return cell

    def observe(self, kind, latency_ns, shard=None):
        """Record one completion latency (nanoseconds)."""
        target_ns, histogram, violations = self._cell(kind, shard)
        histogram.observe(latency_ns)
        if latency_ns > target_ns:
            violations.inc()

    # -- reporting -----------------------------------------------------

    def table(self):
        """SLO rows in first-observation order (fresh list of dicts)."""
        rows = []
        for (kind, shard), cell in self._cells.items():
            target_ns, histogram, violations = cell
            rows.append(
                {
                    "op": kind,
                    "shard": "-" if shard is None else str(shard),
                    "count": histogram.histogram.count,
                    "p99_us": to_usec(histogram.quantile(0.99)),
                    "p999_us": to_usec(histogram.quantile(0.999)),
                    "target_us": to_usec(target_ns),
                    "violations": violations.read(),
                }
            )
        return rows

    def total_violations(self):
        return sum(cell[2].read() for cell in self._cells.values())

    def snapshot(self):
        """Machine-readable SLO summary (fresh dict)."""
        return {
            "targets_us": dict(self.targets_us),
            "rows": self.table(),
            "violations_total": self.total_violations(),
        }


def attach_slo(registry=None, targets_us=None):
    """Build an :class:`SloTracker`; a missing registry disables it."""
    return SloTracker(registry if registry is not None else NULL_REGISTRY,
                      targets_us=targets_us)
