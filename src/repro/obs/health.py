"""MetricsSession: attach the metric/SLO/flight-recorder stack to a run.

The metrics sibling of :class:`~repro.obs.session.TraceSession`: one
session owns a :class:`~repro.obs.metrics.MetricRegistry`, an
:class:`~repro.obs.slo.SloTracker`, a
:class:`~repro.obs.flight.FlightRecorder` and a periodic
:class:`~repro.obs.metrics.MetricScraper`, and wires them into the
stack through the same null-default hook points the tracer uses.

Hook points are single-slot attributes (``device.on_complete``,
``driver.on_retry``, ``worker.op_observer``), so the session *chains*
rather than replaces: the previously-installed hook still fires first
and :meth:`finish` restores it.  A trace session and a metrics session
can therefore observe the same run.

Escalation handling: when a completed operation carries a typed
:class:`~repro.errors.IoError` (retry budget spent, poisoned LBA) the
session captures a flight-recorder postmortem naming the failing LBA
and opcode next to the recent event history.  Postmortem capture is
bounded; the count of dropped ones is kept so nothing fails silently.

With no session attached nothing registers and every hook point stays
as it was — the metrics stack costs exactly zero.
"""

import json

from repro.errors import IoError
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import (
    MetricRegistry,
    MetricScraper,
    prometheus_text,
    write_prometheus,
)
from repro.obs.slo import SloTracker
from repro.sim.clock import usec


class _OpObserver:
    """Chains a worker's previous ``op_observer`` with the session."""

    __slots__ = ("session", "previous", "shard")

    def __init__(self, session, previous, shard):
        self.session = session
        self.previous = previous
        self.shard = shard

    def on_op_complete(self, op):
        if self.previous is not None:
            self.previous.on_op_complete(op)
        self.session._on_op_complete(op, self.shard)


class MetricsSession:
    """One metrics recording of one simulated machine (or fleet)."""

    def __init__(
        self,
        engine,
        targets_us=None,
        scrape_interval_ns=usec(500),
        flight_capacity=512,
        max_postmortems=16,
    ):
        self.engine = engine
        self.registry = MetricRegistry()
        self.slo = SloTracker(self.registry, targets_us=targets_us)
        self.flight = FlightRecorder(engine.clock, capacity=flight_capacity)
        self.scraper = MetricScraper(engine, self.registry, scrape_interval_ns)
        self.postmortems = []
        self.max_postmortems = max_postmortems
        self.postmortems_dropped = 0
        self._chains = []  # (obj, attr, previous, installed)

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------

    def _chain(self, obj, attr, make_hook):
        previous = getattr(obj, attr)
        installed = make_hook(previous)
        setattr(obj, attr, installed)
        self._chains.append((obj, attr, previous, installed))

    def _shard_labels(self, shard):
        return None if shard is None else {"shard": str(shard)}

    def attach_device(self, device, shard=None):
        """Register a device's metrics and record its completions."""
        device.register_metrics(self.registry, labels=self._shard_labels(shard))
        flight = self.flight

        def make_hook(previous):
            def on_complete(completion):
                if previous is not None:
                    previous(completion)
                flight.record_completion(
                    completion.command, completion.ok, completion.status
                )

            return on_complete

        self._chain(device, "on_complete", make_hook)
        return self

    def attach_backend(self, backend, shard=None):
        """Attach one :class:`~repro.backend.IoBackend` on its own.

        Registers the backend's full driver + device metric family and
        taps completions and retries.  For a backend *with* a worker on
        top prefer :meth:`attach_worker`, whose ``register_metrics``
        fan-out and retry tap already cover the backend underneath.
        """
        backend.register_metrics(
            self.registry, labels=self._shard_labels(shard)
        )
        flight = self.flight

        def make_complete_hook(previous):
            def on_complete(completion):
                if previous is not None:
                    previous(completion)
                flight.record_completion(
                    completion.command, completion.ok, completion.status
                )

            return on_complete

        def make_retry_hook(previous):
            def on_retry(completion):
                if previous is not None:
                    previous(completion)
                flight.record_retry(completion)

            return on_retry

        self._chain(backend.device, "on_complete", make_complete_hook)
        self._chain(backend.driver, "on_retry", make_retry_hook)
        return self

    def attach_worker(self, worker, shard=None):
        """Register a worker stack's metrics and observe its operations.

        The worker's ``register_metrics`` fans out to its driver,
        device, queue pair, latch table, buffer and policy, so one call
        covers the whole shard-local stack.
        """
        worker.register_metrics(self.registry, labels=self._shard_labels(shard))
        self._chain(
            worker,
            "op_observer",
            lambda previous: _OpObserver(self, previous, shard),
        )
        driver = getattr(worker, "driver", None)
        if driver is not None:
            flight = self.flight

            def make_hook(previous):
                def on_retry(completion):
                    if previous is not None:
                        previous(completion)
                    flight.record_retry(completion)

                return on_retry

            self._chain(driver, "on_retry", make_hook)
        return self

    def attach_machine(self, machine, worker=None):
        """Convenience: attach a bench ``_Machine`` and its worker."""
        self.attach_device(machine.device)
        if worker is not None:
            self.attach_worker(worker)
        return self

    def attach_sharded(self, sharded):
        """Attach every shard of a :class:`~repro.shard.ShardedPaTree`.

        Per-shard metrics carry a ``shard="<i>"`` label; the router's
        own rollup metrics register unlabeled.
        """
        sharded.register_metrics(self.registry)
        for index in range(sharded.n_shards):
            self.attach_device(sharded.devices[index], shard=index)
            self.attach_worker(sharded.engines[index], shard=index)
        return self

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self):
        self.scraper.start()
        return self

    def finish(self):
        """Stop scraping and restore every chained hook point."""
        self.scraper.stop()
        for obj, attr, previous, installed in reversed(self._chains):
            if getattr(obj, attr) is installed:
                setattr(obj, attr, previous)
        self._chains = []
        return self

    # ------------------------------------------------------------------
    # hook callbacks (read-only with respect to simulation state)
    # ------------------------------------------------------------------

    def _on_op_complete(self, op, shard):
        if op.error is None:
            self.flight.record_transition(op, "done")
            self.slo.observe(op.kind, op.latency_ns, shard=shard)
            return
        self.flight.record_error(op.error, op=op)
        if isinstance(op.error, IoError):
            context = {"op_kind": op.kind, "op_seq": op.seq}
            if shard is not None:
                context["shard"] = shard
            if len(self.postmortems) < self.max_postmortems:
                self.postmortems.append(
                    self.flight.postmortem(op.error, context=context)
                )
            else:
                self.postmortems_dropped += 1

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def health_report(self, top=20, out=None):
        """Human-readable health text: top metrics, SLO table, flight
        summary.  Returns the text; ``out`` (a write-a-line callable)
        receives it line by line when given.
        """
        lines = ["== health: metrics =="]
        scalars = self.registry.scalars()
        ranked = sorted(
            scalars.items(), key=lambda item: (-abs(item[1]), item[0])
        )
        width = max((len(name) for name, _v in ranked[:top]), default=0)
        for name, value in ranked[:top]:
            lines.append("  %-*s %s" % (width, name, value))
        if len(ranked) > top:
            lines.append("  ... %d more metrics" % (len(ranked) - top))

        lines.append("")
        lines.append("== health: SLO ==")
        rows = self.slo.table()
        if rows:
            lines.append(
                "  %-8s %-6s %8s %10s %10s %10s %10s"
                % ("op", "shard", "count", "p99_us", "p999_us",
                   "target_us", "violations")
            )
            for row in rows:
                lines.append(
                    "  %-8s %-6s %8d %10.1f %10.1f %10.1f %10d"
                    % (row["op"], row["shard"], row["count"], row["p99_us"],
                       row["p999_us"], row["target_us"], row["violations"])
                )
            lines.append(
                "  total violations: %d" % self.slo.total_violations()
            )
        else:
            lines.append("  (no operations observed)")

        lines.append("")
        lines.append("== health: flight recorder ==")
        summary = self.flight.summary()
        lines.append(
            "  ring %d/%d (recorded %d total)"
            % (summary["in_ring"], summary["capacity"],
               summary["recorded_total"])
        )
        for kind, count in summary["by_kind"].items():
            lines.append("  %-12s %d" % (kind, count))
        lines.append(
            "  postmortems captured: %d (dropped %d)"
            % (len(self.postmortems), self.postmortems_dropped)
        )
        text = "\n".join(lines) + "\n"
        if out is not None:
            for line in lines:
                out(line)
        return text

    def bench_summary(self):
        """Machine-readable summary for ``BENCH_*.json`` artefacts."""
        summary = {
            "metrics": self.registry.snapshot(),
            "slo": self.slo.snapshot(),
            "flight": self.flight.summary(),
            "scrape": {
                "interval_us": self.scraper.interval_ns / 1000,
                "samples": len(self.scraper.samples),
            },
        }
        # postmortem keys only appear when an error actually escalated,
        # so healthy-run artefacts carry no fault-path noise
        if self.postmortems or self.postmortems_dropped:
            summary["postmortems"] = {
                "captured": len(self.postmortems),
                "dropped": self.postmortems_dropped,
                "errors": [
                    {"error": p["error"], "op": p["op"], "lba": p["lba"]}
                    for p in self.postmortems
                ],
            }
        return summary

    def prometheus_text(self):
        return prometheus_text(self.registry)

    def write_artifacts(self, prefix):
        """Write ``<prefix>.metrics.jsonl`` and ``<prefix>.prom`` (plus
        ``<prefix>.postmortem.json`` when any error escalated)."""
        paths = [
            self.scraper.write_jsonl(prefix + ".metrics.jsonl"),
            write_prometheus(self.registry, prefix + ".prom"),
        ]
        if self.postmortems:
            path = prefix + ".postmortem.json"
            with open(path, "w") as handle:
                json.dump(
                    {
                        "captured": len(self.postmortems),
                        "dropped": self.postmortems_dropped,
                        "postmortems": self.postmortems,
                    },
                    handle,
                    sort_keys=True,
                    indent=2,
                )
                handle.write("\n")
            paths.append(path)
        return tuple(paths)
