"""The tracer: spans, instants, counters and async op lifecycles.

Every record carries the **virtual** clock — never wall time — and IDs
are small integers assigned in record order, so two runs of the same
deterministic simulation produce byte-identical traces.

Event model (mirrors the Chrome ``trace_event`` phases the exporter
emits):

* **slice** — a closed ``[start, end]`` interval on a named track
  (``ph: "X"``).  Tracks model the things that execute sequentially in
  virtual time: the working thread, the poller, a CPU core.
* **instant** — a point event on a track (``ph: "i"``).
* **async span** — a ``begin``/``end`` pair correlated by ``(cat, id)``
  rather than by track nesting (``ph: "b"/"n"/"e"``).  Operations and
  I/O commands overlap freely, so their lifecycles are async spans keyed
  by operation sequence number / command trace id.
* **counter** — a sampled dict of numeric values (``ph: "C"``).

The tracer only appends tuples to a list; all formatting lives in
:mod:`repro.obs.export`.  ``max_events`` bounds memory: past the cap new
events are dropped and counted in :attr:`Tracer.dropped`.
"""

# NullTracer lives in the foundation layer so engine components can
# hold the disabled default without importing repro.obs (PA501); it
# is re-exported here because observability callers look for it next
# to Tracer.
from repro.sim.nulltrace import NULL_TRACER, NullTracer

__all__ = ["NULL_TRACER", "NullTracer", "Span", "Tracer"]

# Internal record kinds (first element of each event tuple).
EV_SLICE = "slice"
EV_INSTANT = "instant"
EV_ASYNC_BEGIN = "async_begin"
EV_ASYNC_INSTANT = "async_instant"
EV_ASYNC_END = "async_end"
EV_COUNTER = "counter"


class Span:
    """An open slice returned by :meth:`Tracer.begin`."""

    __slots__ = ("track", "name", "cat", "start_ns", "args")

    def __init__(self, track, name, cat, start_ns, args):
        self.track = track
        self.name = name
        self.cat = cat
        self.start_ns = start_ns
        self.args = args

    def __repr__(self):
        return "Span(%s/%s @%d)" % (self.track, self.name, self.start_ns)


class Tracer:
    """Records trace events against a virtual clock."""

    enabled = True

    def __init__(self, clock, max_events=2_000_000):
        self.clock = clock
        self.max_events = max_events
        self.events = []
        self.dropped = 0
        self._tracks = {}  # name -> tid (registration order)

    # ------------------------------------------------------------------
    # tracks
    # ------------------------------------------------------------------

    def track_id(self, track):
        """Stable small-integer id for a track name."""
        tid = self._tracks.get(track)
        if tid is None:
            tid = len(self._tracks)
            self._tracks[track] = tid
        return tid

    @property
    def tracks(self):
        """Mapping of track name -> tid, in registration order."""
        return dict(self._tracks)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def _push(self, record):
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return False
        self.events.append(record)
        return True

    def begin(self, track, name, cat="", args=None):
        """Open a slice on ``track``; close it with :meth:`end`."""
        return Span(track, name, cat, self.clock.now, args)

    def end(self, span, args=None):
        """Close an open slice and record it."""
        if args:
            merged = dict(span.args) if span.args else {}
            merged.update(args)
            span.args = merged
        self._push(
            (EV_SLICE, span.track, span.name, span.cat, span.start_ns,
             self.clock.now, span.args)
        )

    def complete(self, track, name, start_ns, end_ns, cat="", args=None):
        """Record a slice retroactively from known timestamps."""
        self._push((EV_SLICE, track, name, cat, start_ns, end_ns, args))

    def instant(self, track, name, cat="", args=None):
        self._push((EV_INSTANT, track, name, cat, self.clock.now, args))

    def async_begin(self, cat, aid, name, args=None):
        self._push((EV_ASYNC_BEGIN, cat, aid, name, self.clock.now, args))

    def async_instant(self, cat, aid, name, args=None):
        self._push((EV_ASYNC_INSTANT, cat, aid, name, self.clock.now, args))

    def async_end(self, cat, aid, name, args=None):
        self._push((EV_ASYNC_END, cat, aid, name, self.clock.now, args))

    def counter(self, track, name, values):
        """Record sampled numeric ``values`` (a dict) at the current time."""
        self._push((EV_COUNTER, track, name, self.clock.now, dict(values)))

    def __len__(self):
        return len(self.events)

