"""TraceSession: attach the full observability stack to one machine.

A session owns a :class:`~repro.obs.tracer.Tracer`, a periodic
:class:`~repro.obs.series.TimeSeriesSampler` and a set of fixed-bucket
latency histograms, and knows how to plug them into the stack's
null-default hook points:

* ``Engine.on_dispatch`` — kernel event accounting,
* ``NvmeDevice.on_submit`` / ``on_complete`` — per-I/O async spans and
  read/write latency histograms (with fetch/post breakdown args),
* ``SimOS.on_thread_state`` — on-core slices per simulated thread,
* worker ``tracer`` / ``op_observer`` — operation lifecycle spans and
  per-kind operation latency histograms.

None of the callbacks charges virtual CPU or mutates simulation state,
so a traced run reaches the same virtual-time results as an untraced
one; with no session attached every hook point stays ``None`` and the
only cost is one attribute check.
"""

from repro.nvme.command import OP_READ
from repro.obs.export import trace_summary, write_chrome_trace, write_jsonl
from repro.obs.series import TimeSeriesSampler, latency_histogram
from repro.obs.tracer import Tracer
from repro.sim.clock import usec
from repro.simos.thread import T_RUNNING


class TraceSession:
    """One recording of one simulated machine."""

    def __init__(self, engine, sample_interval_ns=usec(100),
                 max_events=2_000_000):
        self.engine = engine
        self.tracer = Tracer(engine.clock, max_events=max_events)
        self.sampler = TimeSeriesSampler(
            engine, sample_interval_ns, tracer=self.tracer
        )
        self.read_latency = latency_histogram()
        self.write_latency = latency_histogram()
        self.op_latency = {}  # op kind -> Histogram
        self.dispatches = 0
        self.io_faults = 0
        self.io_retries = 0
        self.failed_ops = 0
        self._io_seq = 0
        self._io_ids = {}
        self._running_since = {}  # tid -> (start_ns, core_index)
        self._simos = None
        self._devices = []
        self._drivers = []
        self._buffer = None
        self._workers = []
        engine.on_dispatch = self._on_dispatch

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------

    def attach_device(self, device, name=None):
        """Hook one simulated NVMe device into the recording.

        A session can observe several devices (each shard of a
        :class:`~repro.shard.ShardedPaTree` owns one); pass ``name``
        to namespace the sampled series (``<name>_outstanding``).
        Without a name the legacy single-device series names are kept.
        """
        self._devices.append(device)
        device.on_submit = self._on_io_submit
        device.on_complete = self._on_io_complete
        profile = device.profile
        outstanding_name = (name + "_outstanding") if name else "device_outstanding"
        util_name = (name + "_channel_util") if name else "channel_util"
        self.sampler.add_probe(
            outstanding_name, lambda: device.outstanding.value
        )
        self.sampler.add_probe(
            util_name,
            lambda: (profile.channels - device._free_channels)
            / profile.channels,
        )
        return self

    def attach_backend(self, backend, name=None):
        """Hook one :class:`~repro.backend.IoBackend` into the recording.

        Taps both planes of the backend: the device's submit/complete
        hooks (as :meth:`attach_device`) plus the driver's retry hook.
        Use this when observing a backend without a worker on top;
        :meth:`attach_worker` installs the same retry tap itself.
        """
        self.attach_device(backend.device, name=name)
        self._drivers.append(backend.driver)
        backend.driver.on_retry = self._on_io_retry
        return self

    def attach_simos(self, simos):
        self._simos = simos
        simos.on_thread_state = self._on_thread_state
        return self

    def attach_worker(self, worker, name=None):
        """Wire a PA-Tree engine or PA-LSM worker into the session.

        As with :meth:`attach_device`, ``name`` namespaces the sampled
        series so several shard workers stay distinguishable in one
        recording.
        """
        self._workers.append(worker)
        worker.tracer = self.tracer
        worker.op_observer = self
        driver = getattr(worker, "driver", None)
        if driver is not None:
            self._drivers.append(driver)
            driver.on_retry = self._on_io_retry
        prefix = (name + "_") if name else ""
        self.sampler.add_probe(prefix + "ready_ops", worker.policy.ready_count)
        self.sampler.add_probe(prefix + "inflight_ops", lambda: worker.inflight)
        self.sampler.add_probe(
            prefix + "outstanding_ios",
            lambda: worker.io_history.outstanding_count,
        )
        return self

    def attach_buffer(self, buffer):
        if buffer is None:
            return self
        self._buffer = buffer
        self.sampler.add_probe("buffer_hit_rate", buffer.hit_rate)
        self.sampler.add_probe("buffer_dirty", lambda: buffer.dirty_count)
        return self

    def attach_machine(self, machine, worker=None, buffer=None):
        """Convenience: attach every component of a bench ``_Machine``."""
        self.attach_device(machine.device)
        self.attach_simos(machine.simos)
        if worker is not None:
            self.attach_worker(worker)
        self.attach_buffer(buffer)
        return self

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self):
        self.sampler.start()
        return self

    def finish(self):
        """Stop sampling and detach the hook points."""
        self.sampler.stop()
        if self.engine.on_dispatch == self._on_dispatch:
            self.engine.on_dispatch = None
        for device in self._devices:
            device.on_submit = None
            device.on_complete = None
        for driver in self._drivers:
            if driver.on_retry == self._on_io_retry:
                driver.on_retry = None
        if self._simos is not None:
            self._simos.on_thread_state = None
        return self

    # ------------------------------------------------------------------
    # hook callbacks (read-only with respect to simulation state)
    # ------------------------------------------------------------------

    def _on_dispatch(self, event):
        self.dispatches += 1

    def _on_io_submit(self, command):
        aid = self._io_seq
        self._io_seq += 1
        self._io_ids[command] = aid
        self.tracer.async_begin(
            "io", aid, command.opcode, args={"lba": command.lba}
        )

    def _on_io_complete(self, completion):
        command = completion.command
        if completion.ok:
            latency = command.visible_ns - command.submit_ns
            if command.opcode == OP_READ:
                self.read_latency.record(latency)
            else:
                self.write_latency.record(latency)
        else:
            self.io_faults += 1
        aid = self._io_ids.pop(command, None)
        if aid is None:
            return
        args = {
            "lba": command.lba,
            "fetch_us": (command.fetch_ns - command.submit_ns) / 1000,
            "service_us": (command.complete_ns - command.fetch_ns) / 1000,
            "post_us": (command.visible_ns - command.complete_ns) / 1000,
        }
        if not completion.ok:
            args["status"] = str(completion.status)
        self.tracer.async_end("io", aid, command.opcode, args=args)

    def _on_io_retry(self, completion):
        self.io_retries += 1
        command = completion.command
        self.tracer.instant(
            "io",
            "retry",
            cat="io",
            args={
                "lba": command.lba,
                "status": str(completion.status),
                "attempt": command.retries,
            },
        )

    def _on_thread_state(self, thread, state):
        if state == T_RUNNING:
            if thread.tid not in self._running_since:
                core = thread.core.index if thread.core is not None else -1
                self._running_since[thread.tid] = (self.engine.now, core)
            return
        started = self._running_since.pop(thread.tid, None)
        if started is None:
            return
        start_ns, core = started
        end_ns = self.engine.now
        if end_ns > start_ns:
            self.tracer.complete(
                "thread:%s" % thread.name,
                "on-core",
                start_ns,
                end_ns,
                cat="sched",
                args={"core": core, "to": state},
            )

    # worker op_observer interface -------------------------------------

    def on_op_complete(self, op):
        if op.error is not None:
            self.failed_ops += 1
            return
        histogram = self.op_latency.get(op.kind)
        if histogram is None:
            histogram = self.op_latency[op.kind] = latency_histogram()
        histogram.record(op.latency_ns)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def cpu_account(self):
        if self._simos is None:
            return None
        return self._simos.cpu_account()

    def summary_text(self, top=15, out=None):
        return trace_summary(
            self.tracer, cpu_account=self.cpu_account(), top=top, out=out
        )

    def bench_summary(self):
        """Machine-readable summary for ``BENCH_*.json`` artefacts."""
        buffer_stats = (
            self._buffer.snapshot() if self._buffer is not None else None
        )
        summary = {
            "buffer": buffer_stats,
            "dispatched_events": self.dispatches,
            "trace_events": len(self.tracer.events),
            "trace_events_dropped": self.tracer.dropped,
            "io_latency": {
                "read": self.read_latency.snapshot(),
                "write": self.write_latency.snapshot(),
            },
            "op_latency": {
                kind: histogram.snapshot()
                for kind, histogram in sorted(self.op_latency.items())
            },
            "timeseries": {
                "interval_us": self.sampler.interval_ns / 1000,
                "probes": self.sampler.summary(),
            },
        }
        # fault-path keys only appear when something actually failed so
        # fault-free artefacts stay byte-identical to pre-fault builds
        if self.io_faults or self.io_retries or self.failed_ops:
            summary["faults"] = {
                "io_faults": self.io_faults,
                "io_retries": self.io_retries,
                "failed_ops": self.failed_ops,
            }
        return summary

    def write_artifacts(self, prefix):
        """Write ``<prefix>.trace.json`` and ``<prefix>.trace.jsonl``."""
        trace_path = write_chrome_trace(self.tracer, prefix + ".trace.json")
        jsonl_path = write_jsonl(self.tracer, prefix + ".trace.jsonl")
        return trace_path, jsonl_path
