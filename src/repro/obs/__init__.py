"""Observability: tracing and metrics for the simulated PA-Tree stack.

The paper's claims rest on *accounted* quantities — latency breakdowns,
queue depth over time, CPU-cycle splits.  This package makes a run
inspectable instead of only aggregable:

* :mod:`repro.obs.tracer` — per-operation lifecycle spans and instant
  events recorded in virtual time with deterministic IDs.
* :mod:`repro.obs.series` — fixed-bucket latency histograms and a
  periodic virtual-time sampler for queue depth / outstanding I/Os /
  buffer hit rate.
* :mod:`repro.obs.export` — Chrome/Perfetto ``trace_event`` JSON and
  newline-delimited JSONL exporters, plus a text "top spans" summary.
* :mod:`repro.obs.session` — :class:`TraceSession`, which attaches all
  of the above to a simulated machine through the null-default hook
  points (``engine.on_dispatch``, device completion hooks, scheduler
  transition callbacks).

Everything is zero-overhead-when-disabled: components hold a
:data:`~repro.obs.tracer.NULL_TRACER` whose ``enabled`` flag gates every
record call behind a single attribute check, and the hook points default
to ``None``.
"""

from repro.obs.export import (
    chrome_trace_events,
    to_chrome_trace,
    trace_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.series import Histogram, TimeSeriesSampler, latency_histogram
from repro.obs.session import TraceSession
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "Histogram",
    "TimeSeriesSampler",
    "latency_histogram",
    "TraceSession",
    "chrome_trace_events",
    "to_chrome_trace",
    "trace_summary",
    "write_chrome_trace",
    "write_jsonl",
]
