"""Observability: tracing and metrics for the simulated PA-Tree stack.

The paper's claims rest on *accounted* quantities — latency breakdowns,
queue depth over time, CPU-cycle splits.  This package makes a run
inspectable instead of only aggregable:

* :mod:`repro.obs.tracer` — per-operation lifecycle spans and instant
  events recorded in virtual time with deterministic IDs.
* :mod:`repro.obs.series` — fixed-bucket latency histograms and a
  periodic virtual-time sampler for queue depth / outstanding I/Os /
  buffer hit rate.
* :mod:`repro.obs.export` — Chrome/Perfetto ``trace_event`` JSON and
  newline-delimited JSONL exporters, plus a text "top spans" summary.
* :mod:`repro.obs.session` — :class:`TraceSession`, which attaches all
  of the above to a simulated machine through the null-default hook
  points (``engine.on_dispatch``, device completion hooks, scheduler
  transition callbacks).
* :mod:`repro.obs.metrics` — the labeled metric registry
  (Counter/Gauge/Histogram under ``(name, labels)`` identity), the
  periodic virtual-time scraper and the Prometheus-text exporter.
* :mod:`repro.obs.slo` — per-op-class virtual-time latency targets
  with p99/p999 and violation counters per shard.
* :mod:`repro.obs.flight` — a bounded ring of recent completions,
  retries and transitions, dumped as a postmortem when a typed
  ``IoError`` escalates.
* :mod:`repro.obs.health` — :class:`MetricsSession`, which wires the
  registry, SLO tracker, flight recorder and scraper into a run.

Everything is zero-overhead-when-disabled: components hold a
:data:`~repro.obs.tracer.NULL_TRACER` whose ``enabled`` flag gates every
record call behind a single attribute check, metric registration only
happens when a session attaches (the :data:`~repro.obs.metrics.NULL_REGISTRY`
swallows registrations elsewhere), and the hook points default to
``None``.
"""

from repro.obs.export import (
    chrome_trace_events,
    to_chrome_trace,
    trace_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.flight import FlightRecorder
from repro.obs.health import MetricsSession
from repro.obs.metrics import (
    METRIC_NAME_SUFFIXES,
    MetricError,
    MetricRegistry,
    MetricScraper,
    NULL_REGISTRY,
    NullRegistry,
    prometheus_text,
    write_prometheus,
)
from repro.obs.series import Histogram, TimeSeriesSampler, latency_histogram
from repro.obs.session import TraceSession
from repro.obs.slo import DEFAULT_TARGETS_US, SloTracker
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "Histogram",
    "TimeSeriesSampler",
    "latency_histogram",
    "TraceSession",
    "chrome_trace_events",
    "to_chrome_trace",
    "trace_summary",
    "write_chrome_trace",
    "write_jsonl",
    "METRIC_NAME_SUFFIXES",
    "MetricError",
    "MetricRegistry",
    "MetricScraper",
    "NULL_REGISTRY",
    "NullRegistry",
    "prometheus_text",
    "write_prometheus",
    "DEFAULT_TARGETS_US",
    "SloTracker",
    "FlightRecorder",
    "MetricsSession",
]
