"""Flight recorder: the last N interesting events, dumped on escalation.

When a fault run surfaces a typed :class:`~repro.errors.IoError` the
interesting question is rarely the error itself — it is *what the stack
was doing in the virtual milliseconds before it*.  The
:class:`FlightRecorder` keeps a bounded ring of recent completions,
retries and operation state transitions (O(capacity) memory regardless
of run length), and renders a **postmortem** dict naming the failing
LBA, opcode and status next to the recent history when an error
escalates past the driver's retry budget.

Recording is read-only with respect to simulation state and charges no
virtual CPU, so an instrumented run reaches the same virtual-time
results as a bare one.
"""

from collections import deque

#: Ring entry kinds, in escalation order.
EV_COMPLETION = "completion"
EV_RETRY = "retry"
EV_TRANSITION = "transition"
EV_ERROR = "error"


class FlightRecorder:
    """Bounded ring buffer of recent I/O and operation events."""

    def __init__(self, clock, capacity=512):
        self.clock = clock
        self.capacity = capacity
        self.ring = deque(maxlen=capacity)
        self.recorded = 0  # total ever recorded (ring only keeps the tail)

    # -- recording -----------------------------------------------------

    def record(self, kind, fields):
        self.recorded += 1
        self.ring.append((self.clock.now, kind, fields))

    def record_completion(self, command, ok, status=None):
        fields = {
            "op": command.opcode,
            "lba": command.lba,
            "ok": bool(ok),
        }
        if not ok and status is not None:
            fields["status"] = str(status)
            if command.retries:
                fields["retries"] = command.retries
        self.record(EV_COMPLETION, fields)

    def record_retry(self, completion):
        command = completion.command
        self.record(
            EV_RETRY,
            {
                "op": command.opcode,
                "lba": command.lba,
                "status": str(completion.status),
                "attempt": command.retries,
            },
        )

    def record_transition(self, op, state):
        self.record(
            EV_TRANSITION,
            {"op": op.kind, "seq": op.seq, "state": state},
        )

    def record_error(self, error, op=None):
        fields = {
            "error": type(error).__name__,
            "message": str(error),
        }
        status = getattr(error, "status", None)
        if status is not None:
            fields["status"] = str(status)
        if getattr(error, "opcode", None) is not None:
            fields["op"] = error.opcode
        if getattr(error, "lba", None) is not None:
            fields["lba"] = error.lba
        if op is not None:
            fields["op_kind"] = op.kind
            fields["op_seq"] = op.seq
        self.record(EV_ERROR, fields)

    # -- reporting -----------------------------------------------------

    def events(self):
        """Ring contents oldest-first (fresh list of dicts)."""
        return [
            {"t_ns": t_ns, "kind": kind, **fields}
            for t_ns, kind, fields in self.ring
        ]

    def summary(self):
        """Counts by event kind plus ring occupancy (fresh dict)."""
        by_kind = {}
        for _t_ns, kind, _fields in self.ring:
            by_kind[kind] = by_kind.get(kind, 0) + 1
        return {
            "capacity": self.capacity,
            "in_ring": len(self.ring),
            "recorded_total": self.recorded,
            "by_kind": {kind: by_kind[kind] for kind in sorted(by_kind)},
        }

    def postmortem(self, error, context=None):
        """Dump the ring around an escalated typed error (fresh dict).

        Names the failing LBA, opcode and final status up front so a
        reader (or a test) never has to dig them out of the tail.
        """
        report = {
            "t_ns": self.clock.now,
            "error": type(error).__name__,
            "message": str(error),
            "status": str(error.status) if getattr(error, "status", None) is not None else None,
            "op": getattr(error, "opcode", None),
            "lba": getattr(error, "lba", None),
            "recent_events": self.events(),
            "summary": self.summary(),
        }
        if context:
            report["context"] = dict(context)
        return report
