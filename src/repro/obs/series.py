"""Fixed-bucket histograms and the periodic virtual-time sampler.

Histograms replace per-sample latency lists where a run only needs the
distribution shape: memory is O(buckets) regardless of run length, and
the snapshot reports count / mean / approximate percentiles read off the
bucket boundaries.

The :class:`TimeSeriesSampler` rides the simulation engine itself: it
schedules a callback every ``interval_ns`` of virtual time and reads a
set of named probes (queue depth, outstanding I/Os, buffer hit rate,
device utilisation).  Because the probes only *read* state, a sampled
run reaches the same virtual-time results as an unsampled one — the
sampler adds engine events but charges no CPU and mutates nothing.
"""

import bisect

from repro.sim.clock import to_usec


def _default_latency_bounds_ns():
    """Log-spaced bucket upper bounds from 1 us to ~1 s (1-2-5 decades)."""
    bounds = []
    for decade in range(7):  # 1e3 ns .. 1e9 ns
        for mantissa in (1, 2, 5):
            bounds.append(mantissa * 10 ** (decade + 3))
    return bounds


class Histogram:
    """Counts of samples in fixed buckets; bounds are upper edges (ns).

    Values above the last bound land in an overflow bucket whose edge is
    reported as ``inf``.  Exact count, sum, min and max are kept
    alongside, so means are exact and only percentiles are approximate.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, bounds=None):
        self.bounds = list(bounds) if bounds is not None else _default_latency_bounds_ns()
        if sorted(self.bounds) != self.bounds:
            raise ValueError("histogram bounds must be sorted ascending")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0
        self.min = None
        self.max = None

    def record(self, value):
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def quantile(self, q):
        """Approximate q-quantile (q in [0, 1]): the upper edge of the
        bucket containing the q-th sample, clamped to the observed max."""
        if self.count == 0:
            return 0
        rank = q * (self.count - 1)
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen > rank:
                if index >= len(self.bounds):
                    return self.max
                return min(self.bounds[index], self.max)
        return self.max

    def mean(self):
        return self.sum / self.count if self.count else 0.0

    def snapshot(self):
        """Summary dict (microsecond units) for exporters and BENCH json."""
        return {
            "count": self.count,
            "mean_us": to_usec(self.mean()),
            "min_us": to_usec(self.min) if self.count else 0.0,
            "p50_us": to_usec(self.quantile(0.50)),
            "p99_us": to_usec(self.quantile(0.99)),
            "p999_us": to_usec(self.quantile(0.999)),
            "max_us": to_usec(self.max) if self.count else 0.0,
            "buckets": [
                {"le_us": to_usec(bound), "count": self.counts[i]}
                for i, bound in enumerate(self.bounds)
            ]
            + [{"le_us": "inf", "count": self.counts[-1]}],
        }


def latency_histogram():
    """A histogram with the default 1 us .. 1 s latency buckets."""
    return Histogram()


class TimeSeriesSampler:
    """Samples named probes every ``interval_ns`` of virtual time."""

    def __init__(self, engine, interval_ns, tracer=None, track="metrics",
                 max_samples=100_000):
        self.engine = engine
        self.interval_ns = int(interval_ns)
        if self.interval_ns <= 0:
            raise ValueError("sampler interval must be positive")
        self.tracer = tracer
        self.track = track
        self.max_samples = max_samples
        self.samples = []  # (time_ns, {probe: value})
        self._probes = []  # (name, fn), registration order
        self._event = None
        self._running = False

    def add_probe(self, name, fn):
        """Register ``fn()`` to be read at every tick."""
        self._probes.append((name, fn))
        return self

    def start(self):
        if self._running:
            return
        self._running = True
        self._event = self.engine.schedule(self.interval_ns, self._tick)

    def stop(self):
        self._running = False
        if self._event is not None:
            self.engine.cancel(self._event)
            self._event = None

    def _tick(self):
        if not self._running:
            return
        row = {}
        for name, fn in self._probes:
            value = fn()
            if value is not None:
                row[name] = value
        if len(self.samples) < self.max_samples:
            self.samples.append((self.engine.now, row))
        if self.tracer is not None and self.tracer.enabled and row:
            self.tracer.counter(self.track, "samples", row)
        if len(self.samples) < self.max_samples:
            self._event = self.engine.schedule(self.interval_ns, self._tick)
        else:
            self._running = False
            self._event = None

    def summary(self):
        """Per-probe min/mean/max/last over all collected samples."""
        out = {}
        for name, _fn in self._probes:
            values = [row[name] for _t, row in self.samples if name in row]
            if not values:
                out[name] = {"samples": 0}
                continue
            out[name] = {
                "samples": len(values),
                "min": min(values),
                "mean": sum(values) / len(values),
                "max": max(values),
                "last": values[-1],
            }
        return out
