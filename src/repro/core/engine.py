"""The PA-Tree working-thread engine.

One simulated thread runs the paper's main loop (Algorithm 1 or 2,
depending on the plugged scheduling policy): admit operations from the
source, process the highest-priority ready operation until it blocks,
probe the NVMe completion queue when the policy says so, and yield the
CPU when the policy predicts nothing useful to do.

The engine translates operation-coroutine *effects* into simulated-CPU
charges, latch-table calls and driver I/O, and shepherds operations
between the ready set and the two waiting states (I/O wait and latch
wait).  Optionally it also spawns the dedicated polling thread of the
PAD / PAD+ variants (Fig 11).
"""

from collections import deque

from repro.core.batch import vector_cost_ns
from repro.core.latch import LatchTable
from repro.core.node import Node
from repro.core.ops import (
    BATCH,
    ChargeEff,
    LatchEff,
    ReadEff,
    ST_DONE,
    ST_IO_WAIT,
    ST_LATCH_WAIT,
    ST_READY,
    SYNC,
    SyncEff,
    UnlatchEff,
    UnlatchManyEff,
    WriteEff,
)
from repro.core.plans import make_plan
from repro.errors import (
    IoError,
    QueueFullError,
    RetryExhaustedError,
    SchedulerError,
    TreeError,
)
from repro.backend.base import as_backend
from repro.nvme.command import Completion, OP_READ
from repro.sim.nulltrace import NULL_TRACER
from repro.sim.metrics import (
    CPU_NVME,
    CPU_REAL_WORK,
    CPU_SCHED,
    CPU_SYNC,
    Counter,
    LatencyRecorder,
)
from repro.simos.thread import Cpu, Sleep

PERSISTENCE_STRONG = "strong"
PERSISTENCE_WEAK = "weak"

POLLER_NONE = None
POLLER_CONTINUOUS = "continuous"  # PAD-Tree
POLLER_MODEL = "model"  # PAD+-Tree

_NODE_CACHE_LIMIT = 1_000_000


class PaTreeEngine:
    """Drives a :class:`~repro.core.tree.PaTree` with the PA paradigm."""

    def __init__(
        self,
        simos,
        backend,
        tree,
        policy,
        source,
        buffer=None,
        persistence=PERSISTENCE_STRONG,
        qpair=None,
        dedicated_poller=POLLER_NONE,
        name="pa-tree",
        tracer=None,
    ):
        if persistence not in (PERSISTENCE_STRONG, PERSISTENCE_WEAK):
            raise SchedulerError("unknown persistence mode %r" % persistence)
        if persistence == PERSISTENCE_WEAK and buffer is None:
            raise SchedulerError("weak persistence requires a read-write buffer")
        if persistence == PERSISTENCE_WEAK and buffer.mode != "weak":
            raise SchedulerError("weak persistence requires a ReadWriteBuffer")
        if persistence == PERSISTENCE_STRONG and buffer is not None and buffer.mode != "strong":
            raise SchedulerError("strong persistence requires a ReadOnlyBuffer")
        self.simos = simos
        self.engine = simos.engine
        self.clock = simos.engine.clock
        # the engine speaks the IoBackend contract; a bare NvmeDriver
        # (the historical wiring) is adopted into a SimNvmeBackend, so
        # both spellings drive the identical code path
        self.backend = as_backend(backend)
        self.driver = self.backend
        self.tree = tree
        self.policy = policy
        self.source = source
        self.buffer = buffer
        self.persistence = persistence
        self.qpair = qpair or self.backend.alloc_qpair(sq_size=4096, cq_size=4096)
        self.dedicated_poller = dedicated_poller
        self.name = name
        # observability: tracer records spans when enabled; op_observer
        # (a TraceSession) sees every completed operation
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.op_observer = None
        self._track = "worker:%s" % name

        from repro.sched.history import IoHistory

        model = getattr(policy, "probe_model", None)
        if model is not None:
            self.io_history = IoHistory(
                self.clock, window_us=model.window_us, slices=model.slices
            )
        else:
            self.io_history = IoHistory(self.clock)
        self.latches = LatchTable()
        self.sched_pick_cost_ns = tree.costs.priority_pick_ns
        self.sched_gate_cost_ns = tree.costs.probe_model_ns
        tree.on_page_released = self._on_page_released

        self._node_cache = {}
        self._writes_in_flight = {}
        self._deferred_flushes = deque()
        self._deferred_escalations = deque()
        self._background_outstanding = 0
        self._active_sync = None
        self._next_seq = 0
        self.inflight = 0
        self._shutdown = False
        # a write that keeps failing is re-driven (fresh command, the
        # escalation count carried forward) this many times before the
        # engine declares the page lost; only pathological fault
        # configs (error rate ~1) ever reach the cap
        self.max_write_escalations = 8

        # measurement state
        self.latencies = LatencyRecorder()
        self.completed = Counter()
        self.completed_by_kind = {}
        self.user_completed = 0
        self.last_user_done_ns = 0
        self.probes = Counter()
        # scheduler decision accounting: probes the policy declined,
        # and how idle iterations resolved (yield vs busy-spin)
        self.probe_skips = Counter()
        self.idle_yields = Counter()
        self.idle_spins = Counter()
        self.latch_wait_events = Counter()
        # batch pipeline accounting: completed batched ops, the specs
        # they carried, the leaf groups they formed, and page writes
        # that rode a coalesced command vector instead of their own
        # doorbell
        self.batch_ops = Counter()
        self.batch_keys = Counter()
        self.batch_groups = Counter()
        self.coalesced_writes = Counter()
        # error-path accounting: failures the driver delivered to us,
        # operations aborted with a typed error, write re-drives, and
        # writes abandoned at the escalation cap
        self.io_errors = Counter()
        self.failed_ops = Counter()
        self.io_escalations = Counter()
        self.lost_writes = Counter()
        self.worker_thread = None
        self.poller_thread = None

        policy.bind(self)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self):
        """Spawn the working thread (and poller, if configured)."""
        self.worker_thread = self.simos.spawn(
            self._worker_body(), name=self.name, group=self.name
        )
        if self.dedicated_poller is not None:
            self.poller_thread = self.simos.spawn(
                self._poller_body(), name=self.name + "-poller", group=self.name
            )
        return self.worker_thread

    def run_to_completion(self, until_ns=None):
        """Convenience: run the simulation until the source drains."""
        self.start()
        self.engine.run(until_ns=until_ns, until=lambda: self.worker_thread.done)
        if not self.worker_thread.done:
            raise SchedulerError(
                "PA engine did not finish (inflight=%d, outstanding=%d)"
                % (self.inflight, self.io_history.outstanding_count)
            )
        self.latches.assert_quiescent()

    def reset_source(self, source=None):
        """Install a fresh operation source and re-arm the engine.

        The working thread exits once its source drains; facades that
        feed successive batches through one engine call this between
        batches instead of touching engine internals.  ``source=None``
        keeps the current source (routers whose per-shard pull queues
        are long-lived only need the re-arm).
        """
        if self.worker_thread is not None and not self.worker_thread.done:
            raise SchedulerError("cannot reset the source of a running engine")
        if source is not None:
            self.source = source
        self._shutdown = False

    # ------------------------------------------------------------------
    # the working thread main loop
    # ------------------------------------------------------------------

    def _worker_body(self):
        costs = self.tree.costs
        driver = self.driver
        policy = self.policy
        source = self.source
        profile = driver.profile
        poller = self.dedicated_poller is not None
        while True:
            worked = False

            new_ops = source.poll(self.clock.now)
            if new_ops:
                yield Cpu(costs.admit_ns * len(new_ops), CPU_SCHED)
                for op in new_ops:
                    self._admit(op)
                worked = True

            # drain deferred page writes (buffer evictions, sync
            # flushes) while the submission queue has headroom -- a
            # large sync() must not overrun the ring
            while self._deferred_flushes and self.qpair.sq.free_slots > 64:
                lba, data, flush_op = self._deferred_flushes.popleft()
                yield Cpu(driver.submit_cpu_ns, CPU_NVME)
                self._submit_page_write(lba, data, flush_op)
                worked = True

            # re-drive failed writes that could not be resubmitted from
            # callback context because the submission ring was full
            while self._deferred_escalations and self.qpair.sq.free_slots > 8:
                lba, data, esc_op, escalations = self._deferred_escalations.popleft()
                yield Cpu(driver.submit_cpu_ns, CPU_NVME)
                self._resubmit_write(lba, data, esc_op, escalations)
                worked = True

            if policy.ready_count():
                yield Cpu(policy.pick_cost_ns(), CPU_SCHED)
                op = policy.pick()
                tracer = self.tracer
                if tracer.enabled:
                    span = tracer.begin(
                        self._track,
                        "process:%s" % op.kind,
                        cat="worker",
                        args={"seq": op.seq},
                    )
                    yield from self._process(op)
                    tracer.end(span, args={"state": op.state})
                else:
                    yield from self._process(op)
                worked = True

            if not poller and self.io_history.outstanding_count:
                gate_cost = policy.gate_cost_ns()
                if gate_cost:
                    yield Cpu(gate_cost, CPU_SCHED)
                    worked = True
                if policy.should_probe():
                    tracer = self.tracer
                    probe_start_ns = self.clock.now if tracer.enabled else 0
                    yield Cpu(driver.probe_cpu_ns(0), CPU_NVME)
                    completed = driver.probe(self.qpair)
                    self.probes.add()
                    policy.note_probe(self.clock.now, len(completed))
                    if completed:
                        yield Cpu(
                            len(completed) * profile.probe_cpu_per_completion_ns,
                            CPU_NVME,
                        )
                    if tracer.enabled:
                        tracer.complete(
                            self._track,
                            "probe",
                            probe_start_ns,
                            self.clock.now,
                            cat="worker",
                            args={"completions": len(completed)},
                        )
                    worked = True
                else:
                    self.probe_skips.add()

            if self._finished():
                break

            if (
                policy.ready_count() == 0
                and not self._deferred_flushes
                and not self._deferred_escalations
            ):
                sleep_ns = policy.idle_sleep_ns()
                next_arrival = source.next_event_ns(self.clock.now)
                if sleep_ns > 0:
                    if next_arrival is not None:
                        sleep_ns = min(sleep_ns, max(1, next_arrival - self.clock.now))
                    self.idle_yields.add()
                    yield Sleep(sleep_ns)
                elif not worked:
                    self.idle_spins.add()
                    yield Cpu(costs.idle_spin_ns, CPU_SCHED)

        self._shutdown = True

    def _poller_body(self):
        """Dedicated polling thread (PAD / PAD+ variants, Fig 11)."""
        costs = self.tree.costs
        driver = self.driver
        profile = driver.profile
        model = getattr(self.policy, "probe_model", None)
        use_model = self.dedicated_poller == POLLER_MODEL and model is not None
        max_gap_ns = getattr(self.policy, "max_probe_gap_ns", 100_000)
        min_gap_ns = getattr(self.policy, "min_probe_gap_ns", 0)
        last_probe_ns = 0
        while not self._shutdown:
            if use_model:
                yield Cpu(costs.probe_model_ns, CPU_SCHED)
                gap = self.clock.now - last_probe_ns
                overdue = gap >= max_gap_ns
                gated = gap < min_gap_ns or (
                    self.io_history.outstanding_count == 0
                    or not model.predicts_completion(self.io_history.feature_vector())
                )
                if not overdue and gated:
                    yield Cpu(costs.idle_spin_ns, CPU_SCHED)
                    continue
                last_probe_ns = self.clock.now
            yield Cpu(driver.probe_cpu_ns(0), CPU_NVME)
            completed = driver.probe(self.qpair)
            self.probes.add()
            if completed:
                # cross-thread handoff: each completion moves through a
                # synchronized queue to the working thread
                yield Cpu(
                    len(completed)
                    * (profile.probe_cpu_per_completion_ns + costs.handoff_sync_ns),
                    CPU_SYNC,
                )
            else:
                yield Cpu(costs.idle_spin_ns, CPU_NVME)

    # ------------------------------------------------------------------
    # operation processing
    # ------------------------------------------------------------------

    def _admit(self, op):
        op.seq = self._next_seq
        self._next_seq += 1
        op.admit_ns = self.clock.now
        op.gen = make_plan(op, self.tree)
        op.state = ST_READY
        self.inflight += 1
        if self.tracer.enabled:
            self.tracer.async_begin(
                "op", op.seq, op.kind, args={"key": op.key}
            )
        self.policy.on_ready(op)

    def _process(self, op):
        """Run ``op`` until it waits or completes (paper's process(c))."""
        costs = self.tree.costs
        yield Cpu(costs.dispatch_ns, CPU_SCHED)

        send = op.resume_value
        op.resume_value = None
        if type(send) is Completion:
            # read completion: turn raw bytes into a parsed node
            yield Cpu(costs.node_parse_ns, CPU_REAL_WORK)
            send = self._node_from_completion(send)

        while True:
            try:
                effect = op.gen.send(send)
            except StopIteration:
                self._complete(op)
                return
            send = None
            kind = type(effect)

            if kind is LatchEff:
                yield Cpu(costs.latch_request_ns, CPU_SYNC)
                if not self.latches.request(op, effect.page_id, effect.mode):
                    op.state = ST_LATCH_WAIT
                    self.latch_wait_events.add()
                    if self.tracer.enabled:
                        self.tracer.async_instant(
                            "op", op.seq, "latch_wait",
                            args={"page": effect.page_id},
                        )
                    return

            elif kind is UnlatchEff:
                yield Cpu(costs.latch_release_ns, CPU_SYNC)
                woken = self.latches.release(op, effect.page_id)
                for waiter in woken:
                    waiter.state = ST_READY
                    self.policy.on_ready(waiter)

            elif kind is UnlatchManyEff:
                page_ids = effect.page_ids
                yield Cpu(
                    vector_cost_ns(costs.latch_release_ns, len(page_ids)),
                    CPU_SYNC,
                )
                woken = self.latches.release_many(op, page_ids)
                for waiter in woken:
                    waiter.state = ST_READY
                    self.policy.on_ready(waiter)

            elif kind is ReadEff:
                result = yield from self._read_page(op, effect.page_id)
                if result is None:
                    op.state = ST_IO_WAIT
                    if self.tracer.enabled:
                        self.tracer.async_instant("op", op.seq, "io_wait")
                    return
                send = result

            elif kind is WriteEff:
                waiting = yield from self._write_wave(op, effect)
                if waiting:
                    op.state = ST_IO_WAIT
                    if self.tracer.enabled:
                        self.tracer.async_instant("op", op.seq, "io_wait")
                    return

            elif kind is ChargeEff:
                yield Cpu(effect.ns, effect.category)

            elif kind is SyncEff:
                waiting, flushed = yield from self._start_sync(op)
                if waiting:
                    op.state = ST_IO_WAIT
                    if self.tracer.enabled:
                        self.tracer.async_instant("op", op.seq, "io_wait")
                    return
                send = flushed

            else:
                raise TreeError("operation yielded unknown effect %r" % (effect,))

    def _read_page(self, op, page_id):
        """Serve a node read; returns the node or None (I/O submitted)."""
        costs = self.tree.costs
        if self.buffer is not None:
            yield Cpu(costs.buffer_lookup_ns, CPU_REAL_WORK)
            data = self.buffer.lookup(page_id)
            if data is not None:
                yield Cpu(costs.node_parse_ns, CPU_REAL_WORK)
                node = self._node_cache.get(page_id)
                if node is None:
                    node = Node.from_bytes(self.tree.config, page_id, data)
                    self._cache_node(node)
                return node
        yield Cpu(self.driver.submit_cpu_ns, CPU_NVME)
        command = self.driver.read(
            self.qpair, page_id, callback=self._on_io_done, context=op
        )
        self.io_history.on_submit(command)
        op.io_remaining = 1
        return None

    def _write_wave(self, op, effect):
        """Persist one wave of nodes; returns True when op must wait."""
        costs = self.tree.costs
        images = []
        for node in effect.nodes:
            yield Cpu(costs.node_serialize_ns, CPU_REAL_WORK)
            images.append((node.page_id, node.to_bytes()))
            self._cache_node(node)
        if effect.write_meta:
            yield Cpu(costs.node_serialize_ns, CPU_REAL_WORK)
            images.append((self.tree.meta_page, self.tree.meta.to_bytes()))

        if self.persistence == PERSISTENCE_WEAK:
            for page_id, data in images:
                evicted = self.buffer.write(page_id, data)
                for victim_id, victim_data in evicted:
                    yield Cpu(self.driver.submit_cpu_ns, CPU_NVME)
                    self._submit_page_write(victim_id, victim_data, None)
            return False

        if effect.coalesce and len(images) > 1:
            # Batch path: one command vector, one doorbell.  Pages with
            # a write already in flight join that page's serialization
            # chain exactly like the scalar path.
            immediate = []
            count = 0
            for page_id, data in images:
                pending = self._writes_in_flight.get(page_id)
                if pending is not None:
                    pending.append((data, op))
                else:
                    self._writes_in_flight[page_id] = deque()
                    immediate.append((page_id, data))
                count += 1
            if immediate:
                yield Cpu(
                    self.driver.submit_many_cpu_ns(len(immediate)), CPU_NVME
                )
                commands = self.driver.write_many(
                    self.qpair, immediate, callback=self._on_io_done, context=op
                )
                for command in commands:
                    self.io_history.on_submit(command)
                self.coalesced_writes.add(len(immediate) - 1)
            op.io_remaining = count
            return count > 0

        count = 0
        for page_id, data in images:
            yield Cpu(self.driver.submit_cpu_ns, CPU_NVME)
            self._submit_page_write(page_id, data, op)
            count += 1
        op.io_remaining = count
        return count > 0

    def _start_sync(self, op):
        """Handle a ``sync()`` operation; returns (waiting, flushed).

        Flush writes are queued through the deferred list so the main
        loop meters them into the submission ring instead of
        overrunning it when thousands of pages are dirty.
        """
        if self.persistence == PERSISTENCE_STRONG:
            return False, 0
        if self._active_sync is not None:
            raise SchedulerError("concurrent sync operations are not supported")
        yield Cpu(self.tree.costs.dispatch_ns, CPU_SCHED)
        flushing = self.buffer.take_dirty()
        for page_id, data in flushing:
            self._deferred_flushes.append((page_id, data, op))
        op.io_remaining = len(flushing)
        if op.io_remaining == 0 and self._background_outstanding == 0:
            return False, 0
        self._active_sync = op
        op.resume_value = len(flushing)
        return True, None

    def _complete(self, op):
        if op.held_latches:
            raise TreeError(
                "operation %r completed holding latches %r"
                % (op, sorted(op.held_latches))
            )
        op.state = ST_DONE
        op.done_ns = self.clock.now
        self.inflight -= 1
        self.completed.add()
        self.completed_by_kind[op.kind] = self.completed_by_kind.get(op.kind, 0) + 1
        if op.kind == BATCH:
            self.batch_ops.add()
            self.batch_keys.add(len(op.specs or ()))
            self.batch_groups.add(op.groups)
        if op.kind != SYNC and op.error is None:
            self.user_completed += 1
            self.last_user_done_ns = op.done_ns
        if op.error is None:
            # goodput only: an errored op produced no usable result, so
            # its (truncated) latency must not dilute the distribution
            self.latencies.record(op.latency_ns)
        if self.tracer.enabled:
            self.tracer.async_end("op", op.seq, op.kind)
        if self.op_observer is not None:
            self.op_observer.on_op_complete(op)
        self.source.on_op_complete(op)
        if op.on_complete is not None:
            op.on_complete(op)

    # ------------------------------------------------------------------
    # I/O plumbing
    # ------------------------------------------------------------------

    def _submit_page_write(self, lba, data, op):
        """Submit a page write, serializing concurrent writes per LBA."""
        if op is None:
            self._background_outstanding += 1
        pending = self._writes_in_flight.get(lba)
        if pending is not None:
            pending.append((data, op))
            return
        self._writes_in_flight[lba] = deque()
        command = self.driver.write(
            self.qpair, lba, data, callback=self._on_io_done, context=op
        )
        self.io_history.on_submit(command)

    def _on_io_done(self, completion):
        """Completion callback, fired from a probe (zero virtual time)."""
        command = completion.command
        self.io_history.on_complete(command)
        if not completion.ok:
            self._on_io_failed(completion)
            return
        op = command.context

        if command.opcode == OP_READ:
            if self.buffer is not None:
                for victim_id, victim_data in self.buffer.install(
                    command.lba, command.data
                ):
                    self._deferred_flushes.append((victim_id, victim_data, None))
            if op.state is ST_DONE:
                return  # late completion for an already-aborted op
            op.resume_value = completion
            op.io_remaining -= 1
            if op.io_remaining == 0:
                op.state = ST_READY
                self.policy.on_ready(op)
            return

        # write completion
        lba = command.lba
        pending = self._writes_in_flight.get(lba)
        if pending:
            next_data, next_op = pending.popleft()
            self._resubmit_write(lba, next_data, next_op, 0)
        else:
            self._writes_in_flight.pop(lba, None)

        if op is None:
            # background flush (eviction)
            self._background_outstanding -= 1
            if self.buffer is not None:
                self.buffer.flush_done(lba)
            self._maybe_finish_sync()
            return

        if self.persistence == PERSISTENCE_STRONG and self.buffer is not None:
            self.buffer.install(lba, command.data)

        if op.kind == SYNC:
            if self.buffer is not None:
                self.buffer.flush_done(lba)
            op.io_remaining -= 1
            self._maybe_finish_sync()
            return

        op.io_remaining -= 1
        if op.io_remaining == 0:
            if op.error is not None:
                # a sibling write in this wave was abandoned; finish
                # the abort now that the wave has fully drained
                self._abort_op(op, None)
            else:
                op.state = ST_READY
                self.policy.on_ready(op)

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------

    def _on_io_failed(self, completion):
        """A failure the driver would not (or could no longer) retry."""
        command = completion.command
        self.io_errors.add()
        if self.tracer.enabled:
            self.tracer.async_instant(
                "io", id(command) % 1_000_000, "io_error",
                args={"status": str(completion.status), "lba": command.lba},
            )
        if command.opcode == OP_READ:
            op = command.context
            if op is None or op.state is ST_DONE:
                return
            op.io_remaining -= 1
            self._abort_op(op, self._error_from(completion))
            return
        # failed writes are never dropped: the in-memory tree already
        # reflects the mutation, so the page must eventually land or be
        # explicitly declared lost — abort would desync tree and media
        self._escalate_write(completion)

    def _error_from(self, completion):
        command = completion.command
        status = completion.status
        cls = RetryExhaustedError if status.retriable else IoError
        return cls(
            "%s of lba %d failed with status %s (retries=%d)"
            % (command.opcode, command.lba, status, command.retries),
            status=status,
            opcode=command.opcode,
            lba=command.lba,
        )

    def _abort_op(self, op, error):
        """Terminate ``op`` with a typed error, releasing its latches."""
        if error is not None and op.error is None:
            op.error = error
        op.result = None
        if op.gen is not None:
            op.gen.close()
        for page_id in sorted(op.held_latches):
            woken = self.latches.release(op, page_id)
            for waiter in woken:
                waiter.state = ST_READY
                self.policy.on_ready(waiter)
        self.failed_ops.add()
        if self.tracer.enabled:
            self.tracer.async_instant(
                "op", op.seq, "aborted", args={"error": str(op.error)}
            )
        self._complete(op)

    def _escalate_write(self, completion):
        """Re-drive a failed write (fresh command, escalation carried)."""
        command = completion.command
        if command.escalations >= self.max_write_escalations:
            self._give_up_write(completion)
            return
        self.io_escalations.add()
        self._resubmit_write(
            command.lba, command.data, command.context, command.escalations + 1
        )

    def _resubmit_write(self, lba, data, op, escalations):
        """Submit a write from callback context, deferring on a full ring."""
        try:
            command = self.driver.write(
                self.qpair, lba, data, callback=self._on_io_done, context=op
            )
        except QueueFullError:
            self._deferred_escalations.append((lba, data, op, escalations))
            return
        command.escalations = escalations
        self.io_history.on_submit(command)

    def _give_up_write(self, completion):
        """The escalation budget is spent; declare the page lost."""
        command = completion.command
        lba = command.lba
        op = command.context
        self.lost_writes.add()
        # advance the per-LBA serialization chain past the lost write
        pending = self._writes_in_flight.get(lba)
        if pending:
            next_data, next_op = pending.popleft()
            self._resubmit_write(lba, next_data, next_op, 0)
        else:
            self._writes_in_flight.pop(lba, None)
        error = self._error_from(completion)
        if op is None:
            self._background_outstanding -= 1
            if self.buffer is not None:
                self.buffer.flush_done(lba)
            self._maybe_finish_sync()
            return
        if op.kind == SYNC:
            if self.buffer is not None:
                self.buffer.flush_done(lba)
            if op.error is None:
                op.error = error
            op.io_remaining -= 1
            self._maybe_finish_sync()
            return
        op.io_remaining -= 1
        if op.error is None:
            op.error = error
        if op.io_remaining == 0:
            self._abort_op(op, None)

    def _maybe_finish_sync(self):
        op = self._active_sync
        if op is None:
            return
        if op.io_remaining == 0 and self._background_outstanding == 0:
            self._active_sync = None
            op.state = ST_READY
            self.policy.on_ready(op)

    def _finished(self):
        return (
            self.source.exhausted()
            and self.inflight == 0
            and self._background_outstanding == 0
            and not self._deferred_flushes
            and not self._deferred_escalations
        )

    # ------------------------------------------------------------------
    # caches
    # ------------------------------------------------------------------

    def _cache_node(self, node):
        if len(self._node_cache) >= _NODE_CACHE_LIMIT:
            self._node_cache.clear()
        self._node_cache[node.page_id] = node

    def _node_from_completion(self, completion):
        node = self._node_cache.get(completion.lba)
        if node is None:
            node = Node.from_bytes(self.tree.config, completion.lba, completion.data)
            self._cache_node(node)
        return node

    def _on_page_released(self, page_id):
        self._node_cache.pop(page_id, None)
        if self.buffer is not None:
            self.buffer.invalidate(page_id)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def register_metrics(self, registry, labels=None):
        """Expose the whole worker stack through a metric registry.

        Fans out to the driver (which covers the device), the queue
        pair, the latch table, the buffer and the scheduling policy, so
        attaching one engine registers every layer it owns under the
        same labels.  All registrations are callback-backed; nothing is
        added to the hot path.
        """
        registry.counter(
            "engine_completed_total", labels,
            fn=lambda: self.completed.value,
            help="operations completed (including failed ones)",
        )
        registry.counter(
            "engine_failed_ops_total", labels,
            fn=lambda: self.failed_ops.value,
            help="operations aborted with a typed error",
        )
        registry.counter(
            "engine_io_errors_total", labels,
            fn=lambda: self.io_errors.value,
            help="I/O failures the driver delivered to the engine",
        )
        registry.counter(
            "engine_io_escalations_total", labels,
            fn=lambda: self.io_escalations.value,
            help="failed writes re-driven with a fresh command",
        )
        registry.counter(
            "engine_lost_writes_total", labels,
            fn=lambda: self.lost_writes.value,
            help="writes abandoned at the escalation cap",
        )
        registry.counter(
            "engine_probes_total", labels,
            fn=lambda: self.probes.value,
            help="completion-queue probes performed",
        )
        registry.counter(
            "engine_probe_skips_total", labels,
            fn=lambda: self.probe_skips.value,
            help="probe opportunities the policy declined",
        )
        registry.counter(
            "engine_idle_yields_total", labels,
            fn=lambda: self.idle_yields.value,
            help="idle iterations resolved by yielding the core",
        )
        registry.counter(
            "engine_idle_spins_total", labels,
            fn=lambda: self.idle_spins.value,
            help="idle iterations resolved by busy-spinning",
        )
        registry.counter(
            "engine_latch_wait_events_total", labels,
            fn=lambda: self.latch_wait_events.value,
            help="operations that entered the latch-wait state",
        )
        registry.counter(
            "batch_ops_total", labels,
            fn=lambda: self.batch_ops.value,
            help="batched operations completed",
        )
        registry.counter(
            "batch_keys_total", labels,
            fn=lambda: self.batch_keys.value,
            help="specs carried by completed batched operations",
        )
        registry.counter(
            "batch_groups_total", labels,
            fn=lambda: self.batch_groups.value,
            help="leaf groups formed by completed batched operations",
        )
        registry.gauge(
            "batch_group_size", labels,
            fn=lambda: (
                self.batch_keys.value / self.batch_groups.value
                if self.batch_groups.value
                else 0.0
            ),
            help="mean specs per leaf group across completed batches",
        )
        registry.counter(
            "engine_coalesced_writes_total", labels,
            fn=lambda: self.coalesced_writes.value,
            help="page writes that shared a coalesced command vector",
        )
        registry.gauge(
            "engine_inflight_ops", labels,
            fn=lambda: self.inflight,
            help="admitted operations not yet complete",
        )
        registry.gauge(
            "engine_outstanding_io_count", labels,
            fn=lambda: self.io_history.outstanding_count,
            help="engine-submitted I/Os awaiting completion",
        )
        self.driver.register_metrics(registry, labels=labels)
        self.qpair.register_metrics(registry, labels=labels)
        self.latches.register_metrics(registry, labels=labels)
        self.policy.register_metrics(registry, labels=labels)
        if self.buffer is not None:
            self.buffer.register_metrics(registry, labels=labels)
        return registry

    def stats(self):
        """Totals snapshot; harnesses diff two snapshots for a window."""
        out = {
            "completed": self.completed.value,
            "completed_by_kind": dict(self.completed_by_kind),
            "probes": self.probes.value,
            "latch_waits": self.latch_wait_events.value,
            "outstanding_avg": self.io_history.outstanding_count,
            "mean_latency_us": self.latencies.mean_usec(),
            "p99_latency_us": self.latencies.p99_usec(),
            "io_errors": self.io_errors.value,
            "failed_ops": self.failed_ops.value,
            "io_retries": self.driver.retries_scheduled.value,
            "io_escalations": self.io_escalations.value,
            "lost_writes": self.lost_writes.value,
        }
        # batch keys appear only when batches actually ran, keeping
        # single-op artifacts bit-for-bit identical
        if self.batch_ops.value:
            out["batch_ops"] = self.batch_ops.value
            out["batch_keys"] = self.batch_keys.value
            out["batch_groups"] = self.batch_groups.value
            out["coalesced_writes"] = self.coalesced_writes.value
        return out
