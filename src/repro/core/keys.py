"""Key encoding.

The index keys are unsigned 64-bit integers, as in the paper (8-byte
keys).  Real workloads map richer attributes into that space:
T-Drive-style trajectories use a z-order (Morton) interleaving of
latitude/longitude, and SSE-style order books pack (stock id, price,
sequence) into a composite key so that orders for one stock at one
price band are contiguous in the tree.
"""

from repro.errors import KeyEncodingError

KEY_MIN = 0
KEY_MAX = (1 << 64) - 1


def check_key(key):
    """Validate a u64 key, returning it for chaining."""
    if not isinstance(key, int):
        raise KeyEncodingError("key must be int, got %r" % type(key).__name__)
    if key < KEY_MIN or key > KEY_MAX:
        raise KeyEncodingError("key %r outside u64 range" % (key,))
    return key


def _spread_bits_32(value):
    """Spread the low 32 bits of ``value`` to even bit positions."""
    value &= 0xFFFFFFFF
    value = (value | (value << 16)) & 0x0000FFFF0000FFFF
    value = (value | (value << 8)) & 0x00FF00FF00FF00FF
    value = (value | (value << 4)) & 0x0F0F0F0F0F0F0F0F
    value = (value | (value << 2)) & 0x3333333333333333
    value = (value | (value << 1)) & 0x5555555555555555
    return value


def _compact_bits_32(value):
    """Inverse of :func:`_spread_bits_32`."""
    value &= 0x5555555555555555
    value = (value | (value >> 1)) & 0x3333333333333333
    value = (value | (value >> 2)) & 0x0F0F0F0F0F0F0F0F
    value = (value | (value >> 4)) & 0x00FF00FF00FF00FF
    value = (value | (value >> 8)) & 0x0000FFFF0000FFFF
    value = (value | (value >> 16)) & 0x00000000FFFFFFFF
    return value


def zorder_encode(x, y):
    """Interleave two 32-bit coordinates into one 64-bit z-code."""
    for name, value in (("x", x), ("y", y)):
        if not 0 <= value < (1 << 32):
            raise KeyEncodingError("%s=%r outside 32-bit range" % (name, value))
    return _spread_bits_32(x) | (_spread_bits_32(y) << 1)


def zorder_decode(code):
    """Recover the (x, y) coordinates from a z-code."""
    check_key(code)
    return _compact_bits_32(code), _compact_bits_32(code >> 1)


def quantize_coordinate(value, low, high, bits=20):
    """Map a float coordinate in [low, high] to an integer grid."""
    if high <= low:
        raise KeyEncodingError("empty coordinate range")
    clamped = min(max(value, low), high)
    scale = (1 << bits) - 1
    return int(round((clamped - low) / (high - low) * scale))


# Composite order-book key: stock id (16 bits) | price tick (24 bits)
# | sequence (24 bits).  Orders for one stock sort by price then age.
_STOCK_BITS = 16
_PRICE_BITS = 24
_SEQ_BITS = 24


def order_key(stock_id, price_tick, seq):
    """Pack an order-book entry into a u64 composite key."""
    if not 0 <= stock_id < (1 << _STOCK_BITS):
        raise KeyEncodingError("stock_id %r outside %d bits" % (stock_id, _STOCK_BITS))
    if not 0 <= price_tick < (1 << _PRICE_BITS):
        raise KeyEncodingError("price_tick %r outside %d bits" % (price_tick, _PRICE_BITS))
    if not 0 <= seq < (1 << _SEQ_BITS):
        raise KeyEncodingError("seq %r outside %d bits" % (seq, _SEQ_BITS))
    return (stock_id << (_PRICE_BITS + _SEQ_BITS)) | (price_tick << _SEQ_BITS) | seq


def order_key_decode(key):
    """Unpack a composite order key into (stock_id, price_tick, seq)."""
    check_key(key)
    seq = key & ((1 << _SEQ_BITS) - 1)
    price_tick = (key >> _SEQ_BITS) & ((1 << _PRICE_BITS) - 1)
    stock_id = key >> (_PRICE_BITS + _SEQ_BITS)
    return stock_id, price_tick, seq


def order_key_range(stock_id, price_low, price_high):
    """Key range covering one stock between two price ticks, inclusive."""
    return (
        order_key(stock_id, price_low, 0),
        order_key(stock_id, price_high, (1 << _SEQ_BITS) - 1),
    )
