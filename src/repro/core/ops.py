"""Index operations and their state machines (paper §III-A).

Each index operation is decomposed into a finite sequence of
transitions.  We express the transition graph as a Python generator
that yields *effects* — latch requests, page reads, page writes, CPU
charges — to the working-thread engine.  Between effects the operation
is in a ready state; an effect that cannot complete immediately parks
the operation in a waiting state:

* ``IO_WAIT``    — waiting for the completion of submitted I/O
                   commands (detected by the working thread's probe),
* ``LATCH_WAIT`` — waiting in a node's FIFO pending-latch queue.

The generator expression of the state machine is exactly equivalent to
the paper's explicit state graph (Fig 5): every ``yield`` is a state,
active transitions are the engine resuming the generator, passive
transitions are I/O completion callbacks / latch grants moving the
operation back into the ready set.
"""

# Operation kinds
SEARCH = "search"
RANGE = "range"
INSERT = "insert"
UPDATE = "update"
DELETE = "delete"
SYNC = "sync"

UPDATE_KINDS = frozenset((INSERT, UPDATE, DELETE, SYNC))

# Operation scheduling states
ST_READY = "ready"
ST_IO_WAIT = "io_wait"
ST_LATCH_WAIT = "latch_wait"
ST_DONE = "done"


class Effect:
    """Base class for everything an operation coroutine yields."""

    __slots__ = ()


class LatchEff(Effect):
    """Request a latch on ``page_id``; resumes once granted."""

    __slots__ = ("page_id", "mode")

    def __init__(self, page_id, mode):
        self.page_id = page_id
        self.mode = mode


class UnlatchEff(Effect):
    """Release the latch held on ``page_id``."""

    __slots__ = ("page_id",)

    def __init__(self, page_id):
        self.page_id = page_id


class ReadEff(Effect):
    """Read a node page; resumes with the parsed :class:`Node`."""

    __slots__ = ("page_id",)

    def __init__(self, page_id):
        self.page_id = page_id


class WriteEff(Effect):
    """Persist one wave of modified nodes (plus optionally the meta page).

    Under strong persistence the operation resumes only when every
    write I/O in the wave completed; under weak persistence the writes
    land in the read-write buffer and the operation resumes
    immediately.  Ordering across waves is expressed by yielding
    multiple ``WriteEff``s: an insert split writes newly created right
    siblings in a first wave and the pages that point at them in a
    second, so a crash between waves never leaves dangling pointers.
    """

    __slots__ = ("nodes", "write_meta")

    def __init__(self, nodes, write_meta=False):
        self.nodes = list(nodes)
        self.write_meta = write_meta


class ChargeEff(Effect):
    """Charge ``ns`` of CPU in ``category`` (index real work)."""

    __slots__ = ("ns", "category")

    def __init__(self, ns, category):
        self.ns = ns
        self.category = category


class SyncEff(Effect):
    """Flush all buffered dirty pages; resumes when durable."""

    __slots__ = ()


class Operation:
    """One in-flight index operation."""

    __slots__ = (
        "kind",
        "key",
        "payload",
        "high_key",
        "limit",
        "seq",
        "state",
        "gen",
        "resume_value",
        "held_latches",
        "write_latches",
        "io_remaining",
        "result",
        "error",
        "admit_ns",
        "done_ns",
        "on_complete",
    )

    def __init__(self, kind, key=0, payload=None, high_key=None, limit=0):
        self.kind = kind
        self.key = key
        self.payload = payload
        self.high_key = high_key
        self.limit = limit
        self.seq = -1
        self.state = ST_READY
        self.gen = None
        self.resume_value = None
        self.held_latches = {}
        self.write_latches = 0
        self.io_remaining = 0
        self.result = None
        # typed IoError/RetryExhaustedError when the op's I/O failed;
        # a completed op with error set produced no usable result
        self.error = None
        self.admit_ns = None
        self.done_ns = None
        self.on_complete = None

    @property
    def is_update(self):
        return self.kind in UPDATE_KINDS

    @property
    def done(self):
        return self.state == ST_DONE

    @property
    def latency_ns(self):
        if self.done_ns is None or self.admit_ns is None:
            return None
        return self.done_ns - self.admit_ns

    def __repr__(self):
        return "Operation(%s key=%d %s)" % (self.kind, self.key, self.state)


def search_op(key, on_complete=None):
    op = Operation(SEARCH, key=key)
    op.on_complete = on_complete
    return op


def range_op(low, high, limit=0, on_complete=None):
    op = Operation(RANGE, key=low, high_key=high, limit=limit)
    op.on_complete = on_complete
    return op


def insert_op(key, payload, on_complete=None):
    op = Operation(INSERT, key=key, payload=payload)
    op.on_complete = on_complete
    return op


def update_op(key, payload, on_complete=None):
    op = Operation(UPDATE, key=key, payload=payload)
    op.on_complete = on_complete
    return op


def delete_op(key, on_complete=None):
    op = Operation(DELETE, key=key)
    op.on_complete = on_complete
    return op


def sync_op(on_complete=None):
    op = Operation(SYNC)
    op.on_complete = on_complete
    return op
